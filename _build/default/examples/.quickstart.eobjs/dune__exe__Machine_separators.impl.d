examples/machine_separators.ml: Const Dl_eval Encode Fact Format Instance List String Sys Th9 Tm View
