examples/quickstart.mli:
