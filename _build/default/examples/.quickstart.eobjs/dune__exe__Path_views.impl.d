examples/path_views.ml: Code Cq Datalog Dl_eval Format Forward Instance List Md_decide Md_rewrite Nta Parse Schema View
