examples/diamonds_example.mli:
