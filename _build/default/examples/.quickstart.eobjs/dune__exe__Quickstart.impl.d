examples/quickstart.ml: Const Cq Datalog Dl_eval Dl_fragment Fact Format Instance List Md_rewrite Md_tests Parse Printf Schema View
