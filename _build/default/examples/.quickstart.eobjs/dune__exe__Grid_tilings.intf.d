examples/grid_tilings.mli:
