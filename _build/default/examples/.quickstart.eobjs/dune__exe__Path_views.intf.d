examples/path_views.mli:
