examples/diamonds_example.ml: Cq Datalog Diamonds Dl_eval Format Instance List Md_rewrite Pebble Printf View
