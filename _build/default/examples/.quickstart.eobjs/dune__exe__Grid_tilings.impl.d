examples/grid_tilings.ml: Datalog Dl_eval Dl_fragment Format Instance List Parity Pebble Reduction Tiling View
