examples/machine_separators.mli:
