(* Theorems 6 and 8: the tiling reduction, grid-shaped canonical tests,
   and the TP* construction whose grids are untilable yet k-consistent.

   Run with:  dune exec examples/grid_tilings.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "A tiling problem and its reduction (Theorem 6)";
  let tp =
    {
      Tiling.tiles = [ "w"; "x" ];
      hc = [ ("w", "w"); ("x", "x") ];
      vc = [ ("w", "w"); ("x", "x") ];
      init = [ "w" ];
      final = [ "w" ];
    }
  in
  let q = Reduction.query tp in
  let views = Reduction.views tp in
  Format.printf "Q_TP: %d rules (%a); V_TP: %d views@."
    (List.length q.Datalog.program)
    Dl_fragment.pp_fragment
    (Dl_fragment.classify q)
    (List.length views);

  section "Grid tests (Figure 1)";
  let good = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 3 3 in
  Format.printf "valid 3×3 tiling: Q = %b  (False = the test fails, TP solvable)@."
    (Dl_eval.holds_boolean q good);
  let bad = Reduction.grid_test tp ~tau:(fun i _ -> if i = 2 then "x" else "w") 3 3 in
  Format.printf "horizontally broken tiling: Q = %b (violation detected)@."
    (Dl_eval.holds_boolean q bad);

  section "Proposition 10 on an unsolvable problem";
  let tpu = Tiling.simple_unsolvable in
  let qu = Reduction.query tpu in
  Format.printf "TP has a solution ≤4×4: %b@."
    (Tiling.has_solution ~max:4 tpu <> None);
  let all_pass = ref true in
  List.iter
    (fun ta ->
      List.iter
        (fun tb ->
          let t =
            Reduction.grid_test tpu
              ~tau:(fun i _ -> if i = 1 then ta else tb)
              2 1
          in
          if not (Dl_eval.holds_boolean qu t) then all_pass := false)
        tpu.Tiling.tiles)
    tpu.Tiling.tiles;
  Format.printf "all 2×1 grid tests satisfy Q_TP: %b (⇒ consistent with determinacy)@."
    !all_pass;

  section "The view image of the axes (Figure 2)";
  let ax = Reduction.axes 3 in
  let img = View.image views ax in
  Format.printf "I_3 axes: %d facts;  V(I_3): %d facts, S-facts: %d (the C×D product)@."
    (Instance.size ax) (Instance.size img)
    (List.length (Instance.tuples img "S"));

  section "Theorem 8: the parity problem TP*";
  let tps = Parity.tp_star in
  Format.printf "TP*: %d tiles, %d HC pairs, %d VC pairs@."
    (List.length tps.Tiling.tiles)
    (List.length tps.Tiling.hc)
    (List.length tps.Tiling.vc);
  List.iter
    (fun (n, m) ->
      Format.printf "  grid %d×%d: tilable %-5b   →2 I_TP* (duplicator wins): %b@."
        n m
        (Tiling.can_tile (Tiling.grid n m) tps)
        (Pebble.duplicator_wins ~k:2 (Tiling.grid n m) (Tiling.structure tps)))
    [ (3, 3); (4, 3); (4, 4) ];
  Format.printf
    "untilable but k-consistent ⇒ the MDL query Q_TP* is monotonically@.";
  Format.printf
    "determined over the UCQ views V_TP* yet has no Datalog rewriting.@.";
  Format.printf "@.done.@."
