(* Quickstart: Example 1 of the paper, end to end.

   A Datalog query over a ternary/binary/unary schema, two collections of
   views, monotonic-determinacy checks and rewritings.

   Run with:  dune exec examples/quickstart.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "The query (Example 1)";
  let q =
    Parse.query ~goal:"GoalQ"
      "GoalQ <- U1(x), W1(x).
       W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
       W1(x) <- U2(x)."
  in
  Format.printf "%a@." Datalog.pp_query q;
  Format.printf "fragment: %a@." Dl_fragment.pp_fragment (Dl_fragment.classify q);

  section "Views V0, V1, V2";
  let views =
    [
      View.cq "V0" (Parse.cq "v(x,w) <- T(x,y,z), B(z,w), B(y,w)");
      View.cq "V1" (Parse.cq "v(x) <- U1(x)");
      View.cq "V2" (Parse.cq "v(x) <- U2(x)");
    ]
  in
  Format.printf "%a@." View.pp_collection views;

  section "Evaluating the query";
  let witness =
    Parse.instance
      "U1(x0). T(x0,y0,z0). B(z0,w0). B(y0,w0).
       T(w0,y1,z1). B(z1,w1). B(y1,w1). U2(w1)."
  in
  Format.printf "Q on a two-diamond witness: %b@."
    (Dl_eval.holds_boolean q witness);
  Format.printf "its view image: %a@." Instance.pp (View.image views witness);

  section "Monotonic determinacy (bounded canonical tests, Lemma 5)";
  (match Md_tests.decide_bounded ~max_depth:5 q views with
  | Md_tests.No_failure_up_to n ->
      Format.printf "no failing test among %d canonical tests@." n
  | Md_tests.Not_determined t ->
      Format.printf "NOT determined; failing test:@.%a@." Md_tests.pp_test t);

  section "The paper's hand rewriting, verified";
  let hand =
    Parse.query ~goal:"GoalQ"
      "GoalQ <- V1(x), W1(x).
       W1(x) <- V0(x,w), W1(w).
       W1(x) <- V2(x)."
  in
  let schema = Schema.of_list [ ("T", 3); ("B", 2); ("U1", 1); ("U2", 1) ] in
  let insts =
    witness :: Md_rewrite.random_instances ~n:50 ~size:14 ~seed:2024 schema
  in
  Format.printf "agrees with Q through the views on %d instances: %b@."
    (List.length insts)
    (Md_rewrite.verify_boolean q hand views insts);

  section "The inverse-rules rewriting (appendix algorithm)";
  let ir = Md_rewrite.inverse_rules q views in
  Format.printf "%d rules; verified: %b@."
    (List.length ir.Datalog.program)
    (Md_rewrite.verify_boolean q ir views insts);

  section "A second view collection: V3 and the Datalog view V4";
  (* the paper: Q is also monotonically determined using V3, V4, with the
     CQ rewriting ∃y z V3(y,z) ∧ V4(y,z) *)
  let v3 = View.cq "V3" (Parse.cq "v(y,z) <- U1(x), T(x,y,z)") in
  let v4 =
    View.datalog "V4"
      (Parse.query ~goal:"GoalV4"
         "GoalV4(y,z) <- T(x,y,z), B(z,w), B(y,w), T(w,q,r), GoalV4(q,r).
          GoalV4(y,z) <- B(y,w), B(z,w), U2(w).")
  in
  let views34 = [ v3; v4 ] in
  let cq_rw = Parse.cq "q() <- V3(y,z), V4(y,z)" in
  (* soundness: the rewriting never over-approximates the query *)
  let sound =
    List.for_all
      (fun i ->
        (not (Cq.holds_boolean cq_rw (View.image views34 i)))
        || Dl_eval.holds_boolean q i)
      insts
  in
  Format.printf "soundness (rewriting ⇒ query) on %d random instances: %b@."
    (List.length insts) sound;
  (* completeness on diamond chains of every length ≥ 1 *)
  let diamond_chain n =
    let facts = ref [ Fact.make "U1" [ Const.named "p0" ] ] in
    for i = 0 to n - 1 do
      let p j = Const.named (Printf.sprintf "p%d" j) in
      let y = Const.named (Printf.sprintf "dy%d" i) in
      let z = Const.named (Printf.sprintf "dz%d" i) in
      facts :=
        Fact.make "T" [ p i; y; z ]
        :: Fact.make "B" [ z; p (i + 1) ]
        :: Fact.make "B" [ y; p (i + 1) ]
        :: !facts
    done;
    Instance.add (Fact.make "U2" [ Const.named (Printf.sprintf "p%d" n) ])
      (Instance.of_list !facts)
  in
  let complete =
    List.for_all
      (fun n ->
        Cq.holds_boolean cq_rw (View.image views34 (diamond_chain n)))
      [ 1; 2; 3; 4 ]
  in
  Format.printf "completeness on diamond chains of length 1..4: %b@." complete;

  section "A corner case the paper's Example 1 misses";
  (* With zero diamonds the query can still hold — U1(a) ∧ U2(a) — but
     both V3 and V4 are empty, so no monotone function of these views can
     answer Q.  Indeed the canonical-test search refutes monotonic
     determinacy over {V3, V4}: *)
  let degenerate = Parse.instance "U1(a). U2(a)." in
  Format.printf "I = {U1(a), U2(a)}: Q(I) = %b but V3(I) = V4(I) = ∅@."
    (Dl_eval.holds_boolean q degenerate);
  (match Md_tests.decide_bounded ~max_depth:3 q views34 with
  | Md_tests.Not_determined t ->
      Format.printf
        "bounded canonical tests find the failing test (approximation %a)@."
        Cq.pp t.Md_tests.approx
  | Md_tests.No_failure_up_to n ->
      Format.printf "unexpectedly, no failing test among %d@." n);
  Format.printf
    "so the paper's claim holds for runs with at least one diamond step,@.";
  Format.printf "but not in the degenerate zero-diamond case.@.";
  Format.printf "@.done.@."
