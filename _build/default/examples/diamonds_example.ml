(* Theorem 7: a Monadic Datalog query over CQ views that has a Datalog
   rewriting but no MDL rewriting.

   Run with:  dune exec examples/diamonds_example.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "The diamond query and its views (Theorem 7)";
  Format.printf "%a@.%a@." Datalog.pp_query Diamonds.query View.pp_collection
    Diamonds.views;

  section "The chain of diamonds I_k";
  let k = 2 in
  let ik = Diamonds.chain k in
  Format.printf "I_%d has %d facts; Q(I_%d) = %b@." k (Instance.size ik) k
    (Dl_eval.holds_boolean Diamonds.query ik);
  let jk = View.image Diamonds.views ik in
  Format.printf "its view image J_%d (Figure 3(b)): %a@." k Instance.pp jk;

  section "A Datalog rewriting exists (inverse rules)";
  let rw = Md_rewrite.inverse_rules Diamonds.query Diamonds.views in
  let insts =
    Diamonds.chain 0 :: Diamonds.chain 1 :: Diamonds.chain 3
    :: Md_rewrite.random_instances ~n:40 ~size:12 ~seed:21 Diamonds.schema
  in
  Format.printf "inverse-rules rewriting: %d rules, verified on %d instances: %b@."
    (List.length rw.Datalog.program)
    (List.length insts)
    (Md_rewrite.verify_boolean Diamonds.query rw Diamonds.views insts);

  section "But no MDL rewriting: the unravelled counterexample";
  let i' = Diamonds.unravelled_counterexample ~k ~depth:2 in
  Format.printf "I'_%d (inverse chase of the guarded (1,·)-unravelling of J_%d): %d facts@."
    k k (Instance.size i');
  Format.printf "Q(I'_%d) = %b  (the diamond chain is broken)@." k
    (Dl_eval.holds_boolean Diamonds.query i');
  let v_i = View.image Diamonds.views ik in
  let v_i' = View.image Diamonds.views i' in
  Format.printf
    "Duplicator wins the (1,%d) pebble game between V(I_%d) and V(I'_%d): %b@."
    k k k
    (Pebble.one_k_consistent ~k v_i v_i');
  Format.printf
    "→ any MDL rewriting would transfer Q across the game, contradiction.@.";

  section "Figure 4: the long row of R-rectangles has no homomorphism";
  (* the row of k+1 R-atoms sharing y/z pairs *)
  let row n =
    Cq.make ~head:[]
      (List.concat
         (List.init n (fun i ->
              [
                Cq.atom "R"
                  [
                    Cq.Var (Printf.sprintf "y%d" i);
                    Cq.Var (Printf.sprintf "z%d" i);
                    Cq.Var (Printf.sprintf "y%d" (i + 1));
                    Cq.Var (Printf.sprintf "z%d" (i + 1));
                  ];
              ])))
  in
  Format.printf "row of %d rectangles into V(I'_%d): %b (expect false)@."
    (k + 1) k
    (Cq.holds_boolean (row (k + 1)) v_i');
  Format.printf "row of %d rectangles into V(I_%d): %b (expect true)@." k k
    (Cq.holds_boolean (row k) v_i);
  Format.printf "@.done.@."
