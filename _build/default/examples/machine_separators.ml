(* Theorem 9: separators may be arbitrarily expensive.  The query detects
   an encoded accepting run; the views expose only the input and the
   pre-run skeleton, so a separator has to replay the machine.

   Run with:  dune exec examples/machine_separators.exe *)

let section title = Format.printf "@.== %s ==@." title

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  section "Machines";
  List.iter
    (fun (m : Tm.t) ->
      Format.printf "  %-22s steps on 0^4: %d, 0^8: %d@." m.Tm.name
        (Tm.steps m "0000")
        (Tm.steps m "00000000"))
    [ Tm.zigzag; Tm.binary_counter; Tm.binary_counter_parity ];

  section "Run encodings and the query";
  let m = Tm.binary_counter_parity in
  let q = Th9.query m and views = Th9.views m in
  List.iter
    (fun w ->
      let i = Encode.encode_run m w in
      Format.printf "  input %-6s run instance: %6d facts, Q = %b@."
        ("0^" ^ string_of_int (String.length w))
        (Instance.size i)
        (Dl_eval.holds_boolean q i))
    [ "0"; "00"; "000"; "0000" ];

  section "The separator replays the machine";
  (* A separator takes an arbitrary view-schema instance; we feed it the
     (tiny) image of the input part plus the pre-run certificate, exactly
     what a full run's image provides (checked on small sizes below). *)
  let small_image w =
    let img = View.image views (Encode.encode_input w) in
    Instance.add (Fact.make "Vprerun" [ Const.named "ie" ]) img
  in
  List.iter
    (fun w ->
      let img = small_image w in
      let verdict, dt = time (fun () -> Th9.simulating_separator m img) in
      Format.printf
        "  |w| = %2d: view image %3d facts, separator = %-5b machine steps = %8d (%.4fs)@."
        (String.length w) (Instance.size img) verdict
        (Tm.steps m w) dt)
    [ "0"; "000"; "000000"; "000000000"; "000000000000";
      "000000000000000"; "000000000000000000" ];
  (* the small image coincides with the full run's image on small cases *)
  let coincide =
    List.for_all
      (fun w ->
        Instance.equal (small_image w)
          (View.image views (Encode.encode_run m w)))
      [ "0"; "00"; "000" ]
  in
  Format.printf "  (small image = full run's image on small cases: %b)@."
    coincide;
  Format.printf
    "@.view-image size grows linearly, separator cost exponentially:@.";
  Format.printf
    "no function of the view image bounds the separator's running time.@.";

  section "Determinacy identity on samples";
  let ok =
    List.for_all
      (fun w ->
        let i = Encode.encode_run m w in
        Dl_eval.holds_boolean q i
        = Th9.simulating_separator m (View.image views i))
      [ "0"; "00"; "000"; "0000" ]
  in
  Format.printf "Q(I) = separator(V(I)) on run encodings: %b@." ok;
  Format.printf "@.done.@."
