(* Reachability queries and views: the §3 forward–backward pipeline and
   the Theorem 5 decision procedure on path-shaped workloads.

   Run with:  dune exec examples/path_views.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "An MDL reachability query";
  let conn =
    Parse.query ~goal:"G"
      "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."
  in
  Format.printf "%a@." Datalog.pp_query conn;

  section "Forward map (Prop. 3): an NTA capturing its approximations";
  let nta, k = Forward.approximations_nta conn in
  Format.printf "%a, code width k = %d@." Nta.pp nta k;
  (match Nta.witness nta with
  | Some w ->
      let i = Code.decode w in
      Format.printf "a witness code decodes to: %a@." Instance.pp i;
      Format.printf "  ... which satisfies the query: %b@."
        (Dl_eval.holds_boolean conn i)
  | None -> Format.printf "(empty language?)@.");

  section "Backward map over atomic views: a Datalog rewriting";
  let views =
    [ View.atomic "VR" "R" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
  in
  let rw = Md_rewrite.forward_backward_atomic conn views in
  Format.printf "rewriting has %d rules over %a@."
    (List.length rw.Datalog.program)
    Schema.pp (View.view_schema views);
  let schema = Schema.of_list [ ("R", 2); ("U", 1); ("S", 1) ] in
  let insts = Md_rewrite.random_instances ~n:60 ~size:12 ~seed:99 schema in
  Format.printf "verified against the query on %d random instances: %b@."
    (List.length insts)
    (Md_rewrite.verify_boolean conn rw views insts);

  section "Theorem 5: CQ queries over a recursive (Datalog) view";
  let tc_view =
    View.datalog "VT"
      (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")
  in
  let cases =
    [
      ("∃ an edge", Parse.cq "q() <- E(x,y)");
      ("∃ a 2-path", Parse.cq "q() <- E(x,y), E(y,z)");
      ("∃ a self-loop", Parse.cq "q() <- E(x,x)");
      ("∃ a 2-cycle", Parse.cq "q() <- E(x,y), E(y,x)");
    ]
  in
  List.iter
    (fun (name, q) ->
      Format.printf "  %-14s monotonically determined by TC: %b@." name
        (Md_decide.cq_query q [ tc_view ]))
    cases;

  section "Prop. 8 rewriting for a determined case";
  let q2 = Parse.cq "q() <- E(x,y), E(y,z)" in
  let rw8 = Md_rewrite.prop8_cq q2 [ tc_view ] in
  Format.printf "V(Q) = %a@." Cq.pp rw8;
  let insts_e =
    Md_rewrite.random_instances ~n:40 ~size:8 ~seed:5 (Schema.of_list [ ("E", 2) ])
  in
  let ok =
    List.for_all
      (fun i ->
        Cq.holds_boolean q2 i
        = Cq.holds_boolean rw8 (View.image [ tc_view ] i))
      insts_e
  in
  Format.printf "verified on %d random instances: %b@." (List.length insts_e) ok;
  Format.printf "@.done.@."
