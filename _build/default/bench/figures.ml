(* Regeneration of the paper's figures as machine-checked constructions.

   F1 — Figure 1: the grid-like canonical test and the HA/VA adjacency CQs.
   F2 — Figure 2: the approximation of Qstart (the marked axes) and its
        view image (S = C × D).
   F3 — Figure 3: the diamond chain, its view image, and the pebble-game
        separation behind Theorem 7.
   F4 — Figure 4: the long row of R-rectangles. *)

let pf = Format.printf

let tp2 =
  {
    Tiling.tiles = [ "w"; "x" ];
    hc = [ ("w", "w"); ("x", "x") ];
    vc = [ ("w", "w"); ("x", "x") ];
    init = [ "w" ];
    final = [ "w" ];
  }

let figure1 () =
  pf "@.### F1 — Figure 1: grid tests and HA/VA ###@.";
  let q = Reduction.query tp2 in
  pf "  %-10s %-8s %-14s %-14s %s@." "grid" "facts" "HA pairs" "VA pairs" "Q on valid tiling";
  List.iter
    (fun (n, m) ->
      let t = Reduction.grid_test tp2 ~tau:(fun _ _ -> "w") n m in
      let ha = List.length (Cq.eval Reduction.ha_cq t) in
      let va = List.length (Cq.eval Reduction.va_cq t) in
      pf "  %-10s %-8d %-14d %-14d %b@."
        (Printf.sprintf "%dx%d" n m)
        (Instance.size t) ha va
        (Dl_eval.holds_boolean q t))
    [ (2, 2); (3, 3); (4, 4); (5, 5) ];
  (* HA semantics: z2 is the right neighbour of z1 *)
  let t = Reduction.grid_test tp2 ~tau:(fun _ _ -> "w") 3 3 in
  let expected = 2 * 3 in
  pf "  HA count on 3x3 = (n-1)*m = %d: %b@." expected
    (List.length (Cq.eval Reduction.ha_cq t) = expected)

let figure2 () =
  pf "@.### F2 — Figure 2: Qstart approximations and their view images ###@.";
  let views = Reduction.views tp2 in
  let q = Reduction.query tp2 in
  pf "  %-6s %-12s %-12s %-10s %s@." "ℓ" "axes facts" "image facts" "S facts" "S = C×D";
  List.iter
    (fun l ->
      let ax = Reduction.axes l in
      let img = View.image views ax in
      let s = List.length (Instance.tuples img "S") in
      pf "  %-6d %-12d %-12d %-10d %b@." l (Instance.size ax)
        (Instance.size img) s
        (s = l * l))
    [ 1; 2; 3; 4; 5 ];
  let ax = Reduction.axes 3 in
  pf "  Qstart holds on the axes: %b@." (Dl_eval.holds_boolean q ax)

let figure3 () =
  pf "@.### F3 — Figure 3: diamonds and the (1,k) game (Theorem 7) ###@.";
  pf "  %-4s %-10s %-10s %-8s %-8s %s@." "k" "I_k facts" "J_k facts" "Q(I_k)" "Q(I'_k)" "(1,k) win";
  List.iter
    (fun k ->
      let ik = Diamonds.chain k in
      let jk = View.image Diamonds.views ik in
      let i' = Diamonds.unravelled_counterexample ~k ~depth:2 in
      let v_i = View.image Diamonds.views ik in
      let v_i' = View.image Diamonds.views i' in
      let t0 = Sys.time () in
      let win = Pebble.one_k_consistent ~k v_i v_i' in
      pf "  %-4d %-10d %-10d %-8b %-8b %b (%.2fs)@." k (Instance.size ik)
        (Instance.size jk)
        (Dl_eval.holds_boolean Diamonds.query ik)
        (Dl_eval.holds_boolean Diamonds.query i')
        win (Sys.time () -. t0))
    [ 1; 2; 3 ]

let figure4 () =
  pf "@.### F4 — Figure 4: the long row of R-rectangles ###@.";
  let row n =
    Cq.make ~head:[]
      (List.init n (fun i ->
           Cq.atom "R"
             [
               Cq.Var (Printf.sprintf "y%d" i);
               Cq.Var (Printf.sprintf "z%d" i);
               Cq.Var (Printf.sprintf "y%d" (i + 1));
               Cq.Var (Printf.sprintf "z%d" (i + 1));
             ]))
  in
  let k = 2 in
  let v_i = View.image Diamonds.views (Diamonds.chain k) in
  let i' = Diamonds.unravelled_counterexample ~k ~depth:2 in
  let v_i' = View.image Diamonds.views i' in
  pf "  %-8s %-26s %s@." "length" "into V(I_k) (chain)" "into V(I'_k) (unravelled)";
  List.iter
    (fun n ->
      pf "  %-8d %-26b %b@." n
        (Cq.holds_boolean (row n) v_i)
        (Cq.holds_boolean (row n) v_i'))
    [ 1; 2; 3; 4 ];
  pf "  (rows longer than the chain fit in neither; the unravelled image@.";
  pf "   rejects already at length k+1 — the Figure 4 argument)@."
