(* The experiment harness: regenerates every table and figure of the
   paper (printed reports, one section per artifact) and then runs a
   Bechamel micro-benchmark per table/figure on a representative
   workload.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- report  # reports only
     dune exec bench/main.exe -- micro   # micro-benchmarks only *)

let report () =
  Format.printf "==============================================================@.";
  Format.printf " mondet experiment report — every table & figure of the paper@.";
  Format.printf "==============================================================@.";
  Tables.table1 ();
  Tables.table2 ();
  Figures.figure1 ();
  Figures.figure2 ();
  Figures.figure3 ();
  Figures.figure4 ();
  Experiments.e5 ();
  Experiments.e6 ();
  Experiments.e7 ();
  Experiments.e8 ();
  Experiments.e9 ();
  Experiments.e10 ();
  Experiments.e11 ();
  Experiments.e12 ();
  Experiments.e13 ();
  Format.printf "@.report complete.@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table / figure.        *)

open Bechamel
open Toolkit

let tc_view =
  View.datalog "VT"
    (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")

let micro_tests =
  let t1 =
    (* Table 1 workload: Prop 8 rewriting construction + one verification *)
    Test.make ~name:"table1/prop8-rewriting"
      (Staged.stage (fun () ->
           let q = Parse.cq "q() <- E(x,y), E(y,z)" in
           let rw = Md_rewrite.prop8_cq q [ tc_view ] in
           ignore
             (Cq.holds_boolean rw
                (View.image [ tc_view ] (Parse.instance "E(a,b). E(b,c).")))))
  in
  let t2 =
    (* Table 2 workload: the Theorem 5 decision on a small case *)
    Test.make ~name:"table2/thm5-decision"
      (Staged.stage (fun () ->
           ignore (Md_decide.cq_query (Parse.cq "q() <- E(x,y), E(y,z)") [ tc_view ])))
  in
  let f1 =
    Test.make ~name:"figure1/grid-test-3x3"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_solvable in
           let t = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 3 3 in
           ignore (Dl_eval.holds_boolean (Reduction.query tp) t)))
  in
  let f2 =
    Test.make ~name:"figure2/axes-image"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_solvable in
           ignore (View.image (Reduction.views tp) (Reduction.axes 3))))
  in
  let f3 =
    Test.make ~name:"figure3/diamond-game"
      (Staged.stage (fun () ->
           let v_i = View.image Diamonds.views (Diamonds.chain 2) in
           ignore (Pebble.one_k_consistent ~k:2 v_i v_i)))
  in
  let f4 =
    Test.make ~name:"figure4/rectangle-row"
      (Staged.stage
         (let v_i = View.image Diamonds.views (Diamonds.chain 2) in
          let row =
            Cq.make ~head:[]
              [
                Cq.atom "R" [ Cq.Var "y0"; Cq.Var "z0"; Cq.Var "y1"; Cq.Var "z1" ];
                Cq.atom "R" [ Cq.Var "y1"; Cq.Var "z1"; Cq.Var "y2"; Cq.Var "z2" ];
              ]
          in
          fun () -> ignore (Cq.holds_boolean row v_i)))
  in
  let e6 =
    Test.make ~name:"e6/canonical-tests"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_unsolvable in
           ignore
             (Md_tests.decide_bounded ~max_depth:3 (Reduction.query tp)
                (Reduction.views tp))))
  in
  let e8 =
    Test.make ~name:"e8/tp-star-2-consistency"
      (Staged.stage
         (let g = Tiling.grid 3 3 and s = Tiling.structure Parity.tp_star in
          fun () -> ignore (Pebble.duplicator_wins ~k:2 g s)))
  in
  let e9 =
    Test.make ~name:"e9/separator-2^10"
      (Staged.stage (fun () -> ignore (Tm.steps Tm.binary_counter "0000000000")))
  in
  let e11 =
    Test.make ~name:"e11/fwd-bwd-pipeline"
      (Staged.stage
         (let q =
            Parse.query ~goal:"G"
              "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."
          in
          let views =
            [ View.atomic "VR" "R" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
          in
          fun () -> ignore (Md_rewrite.forward_backward_atomic q views)))
  in
  Test.make_grouped ~name:"mondet"
    [ t1; t2; f1; f2; f3; f4; e6; e8; e9; e11 ]

let micro () =
  Format.printf "@.### Bechamel micro-benchmarks (one per table/figure) ###@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "  %-34s %16s@." "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) ->
          let pretty =
            if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f µs" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
          in
          Format.printf "  %-34s %16s@." name pretty
      | _ -> Format.printf "  %-34s %16s@." name "n/a")
    rows

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "report" -> report ()
  | "micro" -> micro ()
  | _ ->
      report ();
      micro ());
  Format.printf "@.done.@."
