(* Regeneration of Table 1 (rewritability of monotonically determined
   queries) and Table 2 (decidability/complexity of monotonic
   determinacy).

   For every populated cell we run the corresponding algorithm on
   representative query/view pairs and report the verdict the paper's
   table states, checked mechanically:
   - rewritings are verified by differential testing against the original
     query through the views on randomized instances;
   - decision procedures are run on both positive and negative seeds. *)

let pf = Format.printf

let line () = pf "  %s@." (String.make 76 '-')

(* ---------- workloads ---------- *)

let tc_view =
  View.datalog "VT"
    (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")

let example1_query =
  Parse.query ~goal:"GoalQ"
    "GoalQ <- U1(x), W1(x).
     W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
     W1(x) <- U2(x)."

let example1_views =
  [
    View.cq "V0" (Parse.cq "v(x,w) <- T(x,y,z), B(z,w), B(y,w)");
    View.cq "V1" (Parse.cq "v(x) <- U1(x)");
    View.cq "V2" (Parse.cq "v(x) <- U2(x)");
  ]

let example1_schema = Schema.of_list [ ("T", 3); ("B", 2); ("U1", 1); ("U2", 1) ]

let conn =
  Parse.query ~goal:"G" "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."

let conn_views =
  [ View.atomic "VR" "R" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]

let conn_schema = Schema.of_list [ ("R", 2); ("U", 1); ("S", 1) ]

let fg_query =
  (* frontier-guarded but not monadic: guarded reachability *)
  Parse.query ~goal:"G"
    "P(x,y) <- E(x,y), U(y).
     P(x,y) <- E(x,y), P(y,z).
     G <- P(x,y), S(x)."

let tc_bool =
  Parse.query ~goal:"T0" "R0(x) <- U(x). R0(x) <- E(x,y), R0(y). T0 <- R0(x), S(x)."

(* ---------- Table 1 ---------- *)

let verify_dl q rw views schema seed =
  let insts = Md_rewrite.random_instances ~n:30 ~size:12 ~seed schema in
  Md_rewrite.verify_boolean q rw views insts

let table1 () =
  pf "@.### Table 1 — rewritability of monotonically determined queries ###@.";
  pf "  %-34s %-22s %s@." "cell (query \\ views)" "paper verdict" "our run";
  line ();

  (* CQ over Datalog views -> CQ (Prop 8a) *)
  let q = Parse.cq "q() <- E(x,y), E(y,z)" in
  let rw = Md_rewrite.prop8_cq q [ tc_view ] in
  let insts =
    Md_rewrite.random_instances ~n:30 ~size:10 ~seed:31 (Schema.of_list [ ("E", 2) ])
  in
  let ok =
    List.for_all
      (fun i ->
        Cq.holds_boolean q i = Cq.holds_boolean rw (View.image [ tc_view ] i))
      insts
  in
  pf "  %-34s %-22s CQ rewriting built & verified: %b@." "CQ \\ Datalog"
    "CQ [Prop 8a]" ok;

  (* UCQ over Datalog views -> UCQ (Prop 8b) *)
  let u = Parse.ucq "q() <- E(x,y), E(y,z). q() <- E(x,x)." in
  let ru = Md_rewrite.prop8_ucq u [ View.atomic "VE" "E" 2 ] in
  let ok =
    List.for_all
      (fun i ->
        Ucq.holds_boolean u i
        = Ucq.holds_boolean ru (View.image [ View.atomic "VE" "E" 2 ] i))
      insts
  in
  pf "  %-34s %-22s UCQ rewriting built & verified: %b@." "UCQ \\ Datalog"
    "UCQ [Prop 8b]" ok;

  (* MDL over CQ views -> FGDL via inverse rules; not necessarily MDL *)
  let rw = Md_rewrite.inverse_rules example1_query example1_views in
  let ok = verify_dl example1_query rw example1_views example1_schema 32 in
  let fg = Dl_fragment.is_syntactically_frontier_guarded rw.Datalog.program in
  pf "  %-34s %-22s inverse-rules: verified %b, FG %b@." "MDL \\ CQ"
    "FGDL, nn MDL [14],[Th7]" ok fg;
  pf "  %-34s %-22s see experiment F3/E7 (diamond query)@." "" "";

  (* MDL over FGDL (atomic) views -> MDL/Datalog via Theorem 1 pipeline *)
  let rw = Md_rewrite.forward_backward_atomic conn conn_views in
  let ok = verify_dl conn rw conn_views conn_schema 33 in
  pf "  %-34s %-22s fwd/proj/bwd pipeline verified: %b@." "MDL \\ FGDL (atomic)"
    "MDL [Th 1]" ok;

  (* MDL over UCQ views: not necessarily Datalog (Th 8) *)
  let tps = Parity.tp_star in
  let untilable = not (Tiling.can_tile (Tiling.grid 3 3) tps) in
  let kcons =
    Pebble.duplicator_wins ~k:2 (Tiling.grid 3 3) (Tiling.structure tps)
  in
  pf "  %-34s %-22s TP* separation: untilable %b, →2 %b@." "MDL \\ UCQ"
    "nn Datalog [Th 8]" untilable kcons;

  (* FGDL over CQ views -> FGDL [14] *)
  let fg_views =
    [ View.atomic "VE" "E" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
  in
  let rw = Md_rewrite.inverse_rules fg_query fg_views in
  let ok =
    verify_dl fg_query rw fg_views
      (Schema.of_list [ ("E", 2); ("U", 1); ("S", 1) ])
      34
  in
  let fg = Dl_fragment.is_syntactically_frontier_guarded rw.Datalog.program in
  pf "  %-34s %-22s inverse-rules: verified %b, FG %b@." "FGDL \\ CQ"
    "FGDL [14]" ok fg;

  (* Datalog over CQ views -> Datalog [14] *)
  let dq = Parse.query ~goal:"G" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y). G <- T(x,y), S(x), U(y)." in
  let dviews =
    [ View.atomic "VE" "E" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
  in
  let rw = Md_rewrite.inverse_rules dq dviews in
  let ok =
    verify_dl dq rw dviews (Schema.of_list [ ("E", 2); ("U", 1); ("S", 1) ]) 35
  in
  pf "  %-34s %-22s inverse-rules: verified %b@." "Datalog \\ CQ"
    "Datalog [14]" ok;

  (* Datalog over Datalog views: separators may be arbitrarily expensive *)
  pf "  %-34s %-22s see experiment E9 (TM separators)@." "Datalog \\ Datalog"
    "no sep. bound [Th 9]"

(* ---------- Table 2 ---------- *)

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let table2 () =
  pf "@.### Table 2 — deciding monotonic determinacy ###@.";
  pf "  %-26s %-24s %s@." "cell" "paper status" "our run";
  line ();

  (* CQ / CQ : NP-complete, exact here *)
  let pos, t1 =
    time (fun () ->
        Md_decide.cq_query (Parse.cq "q() <- E(x,y)")
          [ View.cq "P1" (Parse.cq "v(x) <- E(x,y)") ])
  in
  let neg, t2 =
    time (fun () ->
        Md_decide.cq_query (Parse.cq "q() <- E(x,x)")
          [ View.cq "P1" (Parse.cq "v(x) <- E(x,y)") ])
  in
  pf "  %-26s %-24s +:%b -:%b (%.3fs, %.3fs)@." "CQ \\ CQ" "NP-c [21]" pos neg t1 t2;

  (* UCQ / UCQ : Πp2-complete *)
  let vu = View.atomic "VU" "U" 1 and vw = View.atomic "VW" "W" 1 in
  let u = Parse.ucq "q() <- U(x). q() <- W(x)." in
  let pos, t1 = time (fun () -> Md_decide.ucq_query u [ vu; vw ]) in
  let neg, t2 = time (fun () -> Md_decide.ucq_query u [ vu ]) in
  pf "  %-26s %-24s +:%b -:%b (%.3fs, %.3fs)@." "UCQ \\ UCQ" "Πp2-c [22]" pos neg t1 t2;

  (* CQ / Datalog : 2ExpTime (Th 5) — with a size sweep on the query *)
  let path n =
    let atoms =
      List.init n (fun i ->
          Cq.atom "E" [ Cq.Var (Printf.sprintf "x%d" i); Cq.Var (Printf.sprintf "x%d" (i + 1)) ])
    in
    Cq.make ~head:[] atoms
  in
  pf "  %-26s %-24s@." "CQ \\ Datalog" "2ExpTime-c [Th 5/Prop 9]";
  List.iter
    (fun n ->
      let r, t = time (fun () -> Md_decide.cq_query (path n) [ tc_view ]) in
      pf "      %d-path over TC view: determined %b (%.3fs)@." n r t)
    [ 1; 2; 3; 4; 5; 6 ];
  let r, t = time (fun () -> Md_decide.cq_query (Parse.cq "q() <- E(x,x)") [ tc_view ]) in
  pf "      self-loop over TC view: determined %b (%.3fs)@." r t;

  (* MDL / CQ : 2ExpTime-hard; bounded canonical tests here *)
  let verdict, t =
    time (fun () -> Md_tests.decide_bounded ~max_depth:4 example1_query example1_views)
  in
  (match verdict with
  | Md_tests.No_failure_up_to n ->
      pf "  %-26s %-24s Example 1: no failing test /%d (%.3fs)@." "MDL \\ CQ"
        "2ExpTime-h [Cor 9]" n t
  | Md_tests.Not_determined _ ->
      pf "  %-26s %-24s unexpected failing test@." "MDL \\ CQ" "2ExpTime-h");

  (* MDL / UCQ : undecidable (Th 6) — the reduction, both directions *)
  pf "  %-26s %-24s@." "MDL \\ UCQ" "undecidable [Th 6]";
  let tp_solvable = Tiling.simple_solvable in
  let q_tp = Reduction.query tp_solvable in
  let v_tp = Reduction.views tp_solvable in
  let verdict, t =
    time (fun () ->
        Md_tests.decide_bounded ~max_depth:4 ~max_choices_per_fact:6
          ~max_tests_per_approx:2048 q_tp v_tp)
  in
  (match verdict with
  | Md_tests.Not_determined _ ->
      pf "      solvable TP: failing canonical test found (%.3fs) — Prop 10 ⇒@." t;
      pf "      (a failing test ↔ a tiling solution)@."
  | Md_tests.No_failure_up_to n ->
      pf "      solvable TP: no failing test among %d (depth too small)@." n);
  let tpu = Tiling.simple_unsolvable in
  let verdict, t =
    time (fun () ->
        Md_tests.decide_bounded ~max_depth:4 ~max_choices_per_fact:6
          ~max_tests_per_approx:2048 (Reduction.query tpu) (Reduction.views tpu))
  in
  (match verdict with
  | Md_tests.No_failure_up_to n ->
      pf "      unsolvable TP: all %d bounded tests pass (%.3fs)@." n t
  | Md_tests.Not_determined _ ->
      pf "      unsolvable TP: unexpected failing test@.");

  (* Datalog / Datalog : undecidable; bounded fallback *)
  let verdict, t =
    time (fun () -> Md_decide.decide tc_bool [ View.atomic "VE" "E" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ])
  in
  (match verdict with
  | Md_decide.Bounded_no_failure n ->
      pf "  %-26s %-24s bounded search: no failure /%d (%.3fs)@."
        "Datalog \\ Datalog" "undecidable [Prop 9]" n t
  | v -> pf "  %-26s %-24s %a@." "Datalog \\ Datalog" "undecidable" Md_decide.pp_verdict v)
