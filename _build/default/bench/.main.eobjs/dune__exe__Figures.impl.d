bench/figures.ml: Cq Diamonds Dl_eval Format Instance List Pebble Printf Reduction Sys Tiling View
