bench/main.mli:
