bench/tables.ml: Cq Datalog Dl_fragment Format List Md_decide Md_rewrite Md_tests Parity Parse Pebble Printf Reduction Schema String Sys Tiling Ucq View
