(* Parser tests. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rule () =
  let r = Parse.rule "W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w)." in
  check_int "four body atoms" 4 (List.length r.Datalog.body);
  check_bool "head" true (r.Datalog.head.Cq.rel = "W1");
  (* ':-' is accepted too *)
  let r2 = Parse.rule "W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w)" in
  check_bool "same" true (r = r2)

let test_nullary () =
  let r = Parse.rule "Goal <- U1(x), W1(x)." in
  check_int "nullary head" 0 (List.length r.Datalog.head.Cq.args);
  let r2 = Parse.rule "Goal() <- U1(x), W1(x)." in
  check_bool "parens optional" true (r = r2)

let test_constants () =
  let r = Parse.rule "P(x) <- E(x,'b')" in
  (match List.hd r.Datalog.body with
  | { Cq.args = [ Cq.Var "x"; Cq.Cst c ]; _ } ->
      check_bool "const b" true (Const.equal c (Const.named "b"))
  | _ -> Alcotest.fail "bad parse")

let test_instance () =
  let i = Parse.instance "E(a,b). E(b,c). U(a). Zero." in
  check_int "four facts" 4 (Instance.size i);
  check_bool "nullary fact" true (Instance.mem (Fact.make "Zero" []) i)

let test_comments () =
  let i = Parse.instance "E(a,b). % an edge\nU(a)." in
  check_int "comment skipped" 2 (Instance.size i)

let test_program () =
  let p = Parse.program "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)." in
  check_int "two rules" 2 (List.length p)

let test_cq_ucq () =
  let q = Parse.cq "q(x,y) <- E(x,z), E(z,y)" in
  check_int "arity" 2 (Cq.arity q);
  let u = Parse.ucq "q(x) <- U(x). q(x) <- V(x)." in
  check_int "disjuncts" 2 (List.length u.Ucq.disjuncts)

let test_errors () =
  let raises s f =
    match f () with
    | exception Parse.Error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected error: " ^ s)
  in
  raises "unterminated quote" (fun () -> Parse.rule "P(x) <- E(x,'b");
  raises "head var not in body" (fun () -> Parse.rule "P(x) <- E(y,z)");
  raises "garbage" (fun () -> Parse.program "P(x) <- @");
  raises "ucq mixed heads" (fun () -> Parse.ucq "q(x) <- U(x). r(x) <- V(x).")

let suite =
  [
    Alcotest.test_case "rule" `Quick test_rule;
    Alcotest.test_case "nullary" `Quick test_nullary;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "instance" `Quick test_instance;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "program" `Quick test_program;
    Alcotest.test_case "cq/ucq" `Quick test_cq_ucq;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
