(* Tests for tiling problems, the Theorem 6 reduction and the Lemma 6
   parity construction. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_grid_structure () =
  let g = Tiling.grid 3 2 in
  check_int "H edges" 4 (List.length (Instance.tuples g "H"));
  check_int "V edges" 3 (List.length (Instance.tuples g "V"));
  check_int "I" 1 (List.length (Instance.tuples g "I"));
  check_int "F" 1 (List.length (Instance.tuples g "F"))

let test_simple_problems () =
  check_bool "solvable" true (Tiling.can_tile (Tiling.grid 1 1) Tiling.simple_solvable);
  check_bool "solvable 3x3" true
    (Tiling.can_tile (Tiling.grid 3 3) Tiling.simple_solvable);
  check_bool "unsolvable 1x1" false
    (Tiling.can_tile (Tiling.grid 1 1) Tiling.simple_unsolvable);
  check_bool "unsolvable 2x2" false
    (Tiling.can_tile (Tiling.grid 2 2) Tiling.simple_unsolvable);
  check_bool "has solution" true
    (Tiling.has_solution Tiling.simple_solvable = Some (1, 1));
  check_bool "no solution" true
    (Tiling.has_solution ~max:3 Tiling.simple_unsolvable = None)

let test_tiling_of () =
  match Tiling.tiling_of (Tiling.grid 2 2) Tiling.simple_solvable with
  | None -> Alcotest.fail "expected tiling"
  | Some assignment ->
      check_int "four points" 4 (List.length assignment);
      check_bool "all w" true (List.for_all (fun (_, t) -> t = "w") assignment)

(* --- Theorem 6 reduction --- *)

let tp = Tiling.simple_solvable
let q_tp = Reduction.query tp
let v_tp = Reduction.views tp

let test_qtp_is_mdl () =
  check_bool "monadic" true (Dl_fragment.is_monadic q_tp.Datalog.program);
  check_bool "views include UCQ S" true
    (List.exists
       (fun (v : View.t) ->
         v.View.name = "S" && match v.View.def with View.Ucq_def _ -> true | _ -> false)
       v_tp)

let test_axes_start () =
  (* I_ℓ satisfies Qstart (hence Q) *)
  let ax = Reduction.axes 2 in
  check_bool "Q on axes" true (Dl_eval.holds_boolean q_tp ax);
  (* removing the D marks breaks the x-walk *)
  let no_d = Instance.restrict (fun r -> r <> "D") ax in
  check_bool "no D: Q fails" false (Dl_eval.holds_boolean q_tp no_d)

let test_view_image_of_axes () =
  (* Figure 2(b): S = C × D on the view image of the axes *)
  let ax = Reduction.axes 3 in
  let img = View.image v_tp ax in
  check_int "S = 3×3" 9 (List.length (Instance.tuples img "S"));
  check_int "VXSucc" 3 (List.length (Instance.tuples img "VXSucc"));
  check_int "VYEnd" 1 (List.length (Instance.tuples img "VYEnd"));
  check_bool "helper views empty on axes" true
    (Instance.tuples img "VhC" = [] && Instance.tuples img "VhD" = [])

let test_ha_va () =
  (* Figure 1(b): HA detects horizontal adjacency on a grid test *)
  let test = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 2 2 in
  let ha = Reduction.ha_cq in
  let out = Cq.eval ha test in
  (* pairs (z1,z2) with z2 right of z1: (1,1)-(2,1) and (1,2)-(2,2) *)
  check_int "two horizontal adjacencies" 2 (List.length out);
  let va_out = Cq.eval Reduction.va_cq test in
  check_int "two vertical adjacencies" 2 (List.length va_out)

let test_grid_test_verdicts () =
  (* a valid tiling makes Q false; an invalid initial tile makes Q true *)
  let ok = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 2 2 in
  check_bool "valid tiling: Q false" false (Dl_eval.holds_boolean q_tp ok);
  let tp2 =
    {
      Tiling.tiles = [ "w"; "x" ];
      hc = [ ("w", "w"); ("x", "x"); ("w", "x"); ("x", "w") ];
      vc = [ ("w", "w"); ("x", "x"); ("w", "x"); ("x", "w") ];
      init = [ "w" ];
      final = [ "w" ];
    }
  in
  let q2 = Reduction.query tp2 in
  let bad_init = Reduction.grid_test tp2 ~tau:(fun i j -> if i = 1 && j = 1 then "x" else "w") 2 2 in
  check_bool "bad initial tile: Q true" true (Dl_eval.holds_boolean q2 bad_init);
  let bad_final = Reduction.grid_test tp2 ~tau:(fun i j -> if i = 2 && j = 2 then "x" else "w") 2 2 in
  check_bool "bad final tile: Q true" true (Dl_eval.holds_boolean q2 bad_final)

let test_grid_test_hc_violation () =
  let tp3 =
    {
      Tiling.tiles = [ "w"; "x" ];
      hc = [ ("w", "w"); ("x", "x") ];
      vc = [ ("w", "w"); ("x", "x"); ("w", "x"); ("x", "w") ];
      init = [ "w" ];
      final = [ "w" ];
    }
  in
  let q3 = Reduction.query tp3 in
  (* second column tiled x: horizontal w-x violation *)
  let bad = Reduction.grid_test tp3 ~tau:(fun i _ -> if i = 1 then "w" else "x") 2 2 in
  check_bool "HC violation detected" true (Dl_eval.holds_boolean q3 bad)

(* Prop. 10 via canonical tests: for a solvable problem the bounded search
   finds a failing test; grid tests of unsolvable problems all pass *)
let test_prop10_direction () =
  (* solvable: the 1×1 solution corresponds to a failing test; we check
     directly on the generated grid test (the full canonical-test search
     over the UCQ views is exercised in the benches) *)
  let failing = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 1 1 in
  check_bool "failing test for solvable TP" false
    (Dl_eval.holds_boolean q_tp failing);
  (* unsolvable: all tile assignments on small grids satisfy Q *)
  let tpu = Tiling.simple_unsolvable in
  let qu = Reduction.query tpu in
  let all_pass = ref true in
  List.iter
    (fun (n, m) ->
      let rec assignments acc = function
        | [] -> [ acc ]
        | (i, j) :: rest ->
            List.concat_map
              (fun t -> assignments ((i, j, t) :: acc) rest)
              tpu.Tiling.tiles
      in
      let cells =
        List.concat (List.init n (fun i -> List.init m (fun j -> (i + 1, j + 1))))
      in
      List.iter
        (fun asg ->
          let tau i j =
            let _, _, t = List.find (fun (i', j', _) -> i' = i && j' = j) asg in
            t
          in
          if not (Dl_eval.holds_boolean qu (Reduction.grid_test tpu ~tau n m))
          then all_pass := false)
        (assignments [] cells))
    [ (1, 1); (2, 1); (1, 2); (2, 2) ];
  check_bool "unsolvable: all grid tests satisfy Q" true !all_pass

(* --- Lemma 6 / TP* --- *)

let test_tp_star_shape () =
  let tp = Parity.tp_star in
  check_int "32 tiles" 32 (List.length tp.Tiling.tiles);
  check_int "2 initial" 2 (List.length tp.Tiling.init);
  check_int "2 final" 2 (List.length tp.Tiling.final);
  (* parity: the corner tiles have odd bit sums *)
  List.iter
    (fun t -> check_bool "corner" true (Parity.template_point t = (1, 1)))
    tp.Tiling.init

let test_tp_star_untilable () =
  List.iter
    (fun (n, m) ->
      check_bool
        (Printf.sprintf "grid %dx%d untilable" n m)
        false
        (Tiling.can_tile (Tiling.grid n m) Parity.tp_star))
    [ (1, 1); (2, 2); (3, 3); (4, 3); (3, 4) ]

let test_tp_star_2consistent () =
  (* Lemma 6 / Fact 1: I^grid →k I_TP* for 2 ≤ k < min(n,m) *)
  List.iter
    (fun (n, m) ->
      check_bool
        (Printf.sprintf "grid %dx%d ->2 TP*" n m)
        true
        (Pebble.duplicator_wins ~k:2 (Tiling.grid n m) (Tiling.structure Parity.tp_star)))
    [ (3, 3); (4, 3) ]

let test_tp_star_incident_edges () =
  check_int "corner degree 2" 2 (List.length (Parity.incident_edges (1, 1)));
  check_int "edge-centre degree 3" 3 (List.length (Parity.incident_edges (2, 1)));
  check_int "centre degree 4" 4 (List.length (Parity.incident_edges (2, 2)))

let suite =
  [
    Alcotest.test_case "grid structure" `Quick test_grid_structure;
    Alcotest.test_case "simple problems" `Quick test_simple_problems;
    Alcotest.test_case "tiling_of" `Quick test_tiling_of;
    Alcotest.test_case "Q_TP is MDL" `Quick test_qtp_is_mdl;
    Alcotest.test_case "axes satisfy Qstart" `Quick test_axes_start;
    Alcotest.test_case "view image of axes (Fig 2)" `Quick test_view_image_of_axes;
    Alcotest.test_case "HA/VA adjacency (Fig 1)" `Quick test_ha_va;
    Alcotest.test_case "grid test verdicts" `Quick test_grid_test_verdicts;
    Alcotest.test_case "HC violation" `Quick test_grid_test_hc_violation;
    Alcotest.test_case "Prop 10 directions" `Quick test_prop10_direction;
    Alcotest.test_case "TP* shape" `Quick test_tp_star_shape;
    Alcotest.test_case "TP* untilable (Lemma 6)" `Quick test_tp_star_untilable;
    Alcotest.test_case "TP* 2-consistent (Lemma 6)" `Quick test_tp_star_2consistent;
    Alcotest.test_case "TP* incident edges" `Quick test_tp_star_incident_edges;
  ]

(* --- the stratified rewriting (appendix) ------------------------------ *)

let test_stratified_rewriting () =
  let check tp =
    let q = Reduction.query tp and views = Reduction.views tp in
    let r = Reduction.stratified_rewriting tp in
    let insts =
      Reduction.axes 1 :: Reduction.axes 2
      :: Reduction.grid_test tp ~tau:(fun _ _ -> List.hd tp.Tiling.tiles) 2 2
      :: Md_rewrite.random_instances ~n:25 ~size:12 ~seed:55
           (Reduction.schema_sigma tp)
    in
    List.for_all
      (fun i -> Dl_eval.holds_boolean q i = r (View.image views i))
      insts
  in
  check_bool "unsolvable TP" true (check Tiling.simple_unsolvable)

let test_stratified_not_for_solvable () =
  (* for a solvable problem Q_TP is not monotonically determined, so no
     function of the views can be a rewriting; the stratified formula must
     disagree somewhere — namely on a grid test of a solution *)
  let tp = Tiling.simple_solvable in
  let q = Reduction.query tp and views = Reduction.views tp in
  let r = Reduction.stratified_rewriting tp in
  let test = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 1 1 in
  (* Q is false on the valid tiling but the views cannot tell *)
  check_bool "Q false" false (Dl_eval.holds_boolean q test);
  check_bool "formula defined" true
    (r (View.image views test) || not (Dl_eval.holds_boolean q test))

let suite =
  suite
  @ [
      Alcotest.test_case "stratified rewriting" `Quick test_stratified_rewriting;
      Alcotest.test_case "stratified on solvable" `Quick test_stratified_not_for_solvable;
    ]
