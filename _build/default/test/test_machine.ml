(* Tests for the Turing-machine substrate and the Theorem 9 construction. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_zigzag () =
  check_bool "accepts" true (Tm.accepts Tm.zigzag "000");
  check_int "linear steps" 4 (Tm.steps Tm.zigzag "000");
  check_int "empty input" 1 (Tm.steps Tm.zigzag "")

let test_counter_exponential () =
  let s2 = Tm.steps Tm.binary_counter "00" in
  let s4 = Tm.steps Tm.binary_counter "0000" in
  let s6 = Tm.steps Tm.binary_counter "000000" in
  check_bool "doubling steps" true (s4 > 3 * s2 && s6 > 3 * s4);
  check_bool "accepts" true (Tm.accepts Tm.binary_counter "0000")

let test_counter_parity () =
  let m = Tm.binary_counter_parity in
  check_bool "even accepts" true (Tm.accepts m "00");
  check_bool "odd rejects" false (Tm.accepts m "000");
  check_bool "still halts" true (Tm.steps m "000" > 8)

let test_step_mechanics () =
  let m = Tm.binary_counter in
  let c0 = Tm.initial m "01" in
  check_bool "head on first" true (c0.Tm.head = '0');
  match Tm.step m c0 with
  | None -> Alcotest.fail "should step"
  | Some c1 ->
      check_bool "moved right" true (c1.Tm.head = '1');
      check_bool "state ret" true (String.equal c1.Tm.state "ret")

let test_config_cells () =
  let m = Tm.binary_counter in
  let c = Tm.initial m "01" in
  let cells = Tm.config_cells m ~width:4 c in
  check_int "width" 4 (List.length cells);
  check_bool "head cell" true (List.hd cells = "ret|0");
  check_bool "padded blank" true (List.nth cells 3 = "_")

let test_encode_input () =
  let i = Encode.encode_input "01" in
  check_int "succ chain" 3 (List.length (Instance.tuples i "Succ"));
  check_int "letters" 1 (List.length (Instance.tuples i (Encode.input_rel '0')));
  check_bool "markers" true
    (Instance.tuples i "InpBegin" <> [] && Instance.tuples i "InpEnd" <> [])

let test_encode_run_coherent () =
  let m = Tm.zigzag in
  let enc = Encode.encode_run m "00" in
  (* one RunEnd, a nonempty Align relation, an accept cell *)
  check_int "one run end" 1 (List.length (Instance.tuples enc "RunEnd"));
  check_bool "aligned" true (Instance.tuples enc "Align" <> []);
  let acc_rel = Encode.cell_rel "acc|_" in
  check_bool "accept cell present" true (Instance.tuples enc acc_rel <> [])

let test_query_detects_accepting_run () =
  let m = Tm.zigzag in
  let q = Th9.query m in
  check_bool "accepting run" true
    (Dl_eval.holds_boolean q (Encode.encode_run m "00"));
  check_bool "input only" false
    (Dl_eval.holds_boolean q (Encode.encode_input "00"))

let test_query_rejecting_run () =
  let m = Tm.binary_counter_parity in
  let q = Th9.query m in
  check_bool "rejecting run: Q false" false
    (Dl_eval.holds_boolean q (Encode.encode_run m "0"));
  check_bool "accepting run: Q true" true
    (Dl_eval.holds_boolean q (Encode.encode_run m "00"))

let test_views_and_decode () =
  let m = Tm.binary_counter in
  let vs = Th9.views m in
  let img = View.image vs (Encode.encode_run m "00") in
  check_bool "prerun flagged" true (Instance.tuples img "Vprerun" <> []);
  check_bool "decode" true (Th9.decode_input img = Some "00");
  let img_inp = View.image vs (Encode.encode_input "01") in
  check_bool "no prerun on input only" true (Instance.tuples img_inp "Vprerun" = []);
  check_bool "decode input" true (Th9.decode_input img_inp = Some "01")

let test_separator_agreement () =
  (* Q(I) = separator(V(I)) on run encodings — the monotonic-determinacy
     identity the construction relies on (determinism of the machine) *)
  let m = Tm.binary_counter_parity in
  let q = Th9.query m and vs = Th9.views m in
  List.iter
    (fun w ->
      let i = Encode.encode_run m w in
      check_bool ("agree on " ^ w) true
        (Dl_eval.holds_boolean q i
        = Th9.simulating_separator m (View.image vs i)))
    [ "0"; "00"; "000" ];
  (* and on input-only instances *)
  let i = Encode.encode_input "00" in
  check_bool "input-only agree" true
    (Dl_eval.holds_boolean (Th9.query m) i
    = Th9.simulating_separator m (View.image vs i))

let suite =
  [
    Alcotest.test_case "zigzag" `Quick test_zigzag;
    Alcotest.test_case "counter exponential" `Quick test_counter_exponential;
    Alcotest.test_case "counter parity" `Quick test_counter_parity;
    Alcotest.test_case "step mechanics" `Quick test_step_mechanics;
    Alcotest.test_case "config cells" `Quick test_config_cells;
    Alcotest.test_case "encode input" `Quick test_encode_input;
    Alcotest.test_case "encode run" `Quick test_encode_run_coherent;
    Alcotest.test_case "query detects accept" `Quick test_query_detects_accepting_run;
    Alcotest.test_case "query vs rejecting run" `Quick test_query_rejecting_run;
    Alcotest.test_case "views and decode" `Quick test_views_and_decode;
    Alcotest.test_case "separator agreement" `Quick test_separator_agreement;
  ]
