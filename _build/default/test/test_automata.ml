(* Tests for the tree-automata pipeline: NTA core operations, the forward
   map (Prop. 3), the CQ-satisfaction DTA, the lazy product (emptiness),
   and the backward map. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- NTA core ------------------------------------------------------ *)

(* an automaton accepting exactly the single-leaf code with label U[0] *)
let single_u =
  Nta.make ~n_states:1 ~finals:[ 0 ]
    [ { Nta.children = []; sym = { Nta.label = [ ("U", [ 0 ]) ]; edges = [] }; target = 0 } ]

(* chains of E-nodes ending in a U leaf: state 0 = done *)
let chain_nta =
  let sym_leaf = { Nta.label = [ ("U", [ 0 ]) ]; edges = [] } in
  let sym_step = { Nta.label = [ ("E", [ 0; 1 ]) ]; edges = [ [ (1, 0) ] ] } in
  Nta.make ~n_states:1 ~finals:[ 0 ]
    [
      { Nta.children = []; sym = sym_leaf; target = 0 };
      { Nta.children = [ 0 ]; sym = sym_step; target = 0 };
    ]

let leaf_u = Code.leaf [ ("U", [ 0 ]) ]
let chain1 = Code.node [ ("E", [ 0; 1 ]) ] [ ([ (1, 0) ], leaf_u) ]
let chain2 = Code.node [ ("E", [ 0; 1 ]) ] [ ([ (1, 0) ], chain1) ]

let test_accepts () =
  check_bool "leaf" true (Nta.accepts single_u leaf_u);
  check_bool "chain rejected by single" false (Nta.accepts single_u chain1);
  check_bool "chain1" true (Nta.accepts chain_nta chain1);
  check_bool "chain2" true (Nta.accepts chain_nta chain2);
  check_bool "wrong leaf" false
    (Nta.accepts chain_nta (Code.leaf [ ("W", [ 0 ]) ]))

let test_emptiness_witness () =
  check_bool "nonempty" false (Nta.is_empty chain_nta);
  (match Nta.witness chain_nta with
  | None -> Alcotest.fail "expected witness"
  | Some w -> check_bool "witness accepted" true (Nta.accepts chain_nta w));
  let dead =
    Nta.make ~n_states:2 ~finals:[ 1 ]
      [ { Nta.children = []; sym = { Nta.label = []; edges = [] }; target = 0 } ]
  in
  check_bool "empty" true (Nta.is_empty dead)

let test_product_union () =
  let p = Nta.product chain_nta single_u in
  check_bool "product: leaf only" true (Nta.accepts p leaf_u);
  check_bool "product rejects chain" false (Nta.accepts p chain1);
  let u = Nta.union single_u chain_nta in
  check_bool "union leaf" true (Nta.accepts u leaf_u);
  check_bool "union chain" true (Nta.accepts u chain1)

let test_relabel () =
  let renamed =
    Nta.relabel
      (List.map (fun (r, ps) -> ((if r = "U" then "U'" else r), ps)))
      chain_nta
  in
  check_bool "renamed leaf" true
    (Nta.accepts renamed (Code.leaf [ ("U'", [ 0 ]) ]));
  check_bool "old leaf rejected" false (Nta.accepts renamed leaf_u)

let test_trim () =
  let messy =
    Nta.make ~n_states:3 ~finals:[ 0 ]
      [
        { Nta.children = []; sym = { Nta.label = []; edges = [] }; target = 0 };
        (* unreachable transition: state 2 never derivable *)
        { Nta.children = [ 2 ]; sym = { Nta.label = []; edges = [ [] ] }; target = 1 };
      ]
  in
  check_int "trimmed" 1 (Nta.size (Nta.trim messy))

(* --- forward map (Prop. 3) ----------------------------------------- *)

let conn = Parse.query ~goal:"G" "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."

let test_forward_basics () =
  let nta, k = Forward.approximations_nta conn in
  check_bool "k ≥ 2" true (k >= 2);
  check_int "three transitions" 3 (Nta.size nta);
  check_bool "nonempty" false (Nta.is_empty nta)

let test_forward_witness_is_approximation () =
  let nta, _ = Forward.approximations_nta conn in
  match Nta.witness nta with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
      (* decoding a witness satisfies the query *)
      let i = Code.decode w in
      check_bool "decoded satisfies query" true (Dl_eval.holds_boolean conn i)

let test_forward_repeated_idb_args () =
  (* repeated variables in intensional atoms are specialized away *)
  let q = Parse.query ~goal:"G" "G <- P(x,x). P(x,y) <- E(x,y)." in
  let nta, _ = Forward.approximations_nta q in
  (match Nta.witness nta with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
      check_bool "decoded witness is a loop" true
        (Cq.holds_boolean (Parse.cq "q() <- E(x,x)") (Code.decode w)))

let test_forward_unsupported () =
  match Forward.approximations_nta
          (Parse.query ~goal:"G" "G <- E(x,'a').")
  with
  | exception Forward.Unsupported _ -> ()
  | _ -> Alcotest.fail "constants should be unsupported"

(* --- CQ-satisfaction DTA ------------------------------------------- *)

let test_cq_dta_on_codes () =
  (* build codes from instances and compare with direct evaluation *)
  let check_code q inst =
    let td = Decomp.binarize (Decomp.heuristic inst) in
    let code = Code.of_decomposition td inst in
    Cq_dta.holds_on_code q code = Cq.holds_boolean q inst
  in
  let q_path = Parse.cq "q() <- E(x,y), E(y,z)" in
  let q_loop = Parse.cq "q() <- E(x,x)" in
  let insts =
    [
      Parse.instance "E(a,b). E(b,c).";
      Parse.instance "E(a,b). E(c,d).";
      Parse.instance "E(a,a).";
      Parse.instance "E(a,b). E(b,a).";
      Parse.instance "E(a,b). E(b,c). E(c,d). U(a).";
    ]
  in
  List.iter
    (fun i ->
      check_bool "path agrees" true (check_code q_path i);
      check_bool "loop agrees" true (check_code q_loop i))
    insts

let prop_cq_dta_random =
  QCheck.Test.make ~name:"CQ DTA agrees with evaluation on random codes"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         let cg = map (fun i -> Const.named ("e" ^ string_of_int i)) (int_bound 4) in
         let fg =
           let* r = int_bound 1 in
           if r = 0 then
             let* a = cg and* b = cg in
             return (Fact.make "E" [ a; b ])
           else
             let* a = cg in
             return (Fact.make "U" [ a ])
         in
         map Instance.of_list (list_size (int_range 1 8) fg)))
    (fun i ->
      let td = Decomp.binarize (Decomp.heuristic i) in
      let code = Code.of_decomposition td i in
      let q = Parse.cq "q() <- E(x,y), U(y)" in
      Cq_dta.holds_on_code q code = Cq.holds_boolean q i)

(* --- containment via Run ------------------------------------------- *)

let test_datalog_in_cq_containment () =
  (* conn ⊆ ∃x S(x): every expansion has an S atom *)
  check_bool "conn ⊆ ∃S" true
    (Md_decide.datalog_contained_in_cq conn (Parse.cq "q() <- S(x)"));
  check_bool "conn ⊆ ∃U" true
    (Md_decide.datalog_contained_in_cq conn (Parse.cq "q() <- U(x)"));
  check_bool "conn ⊄ ∃R" false
    (Md_decide.datalog_contained_in_cq conn (Parse.cq "q() <- R(x,y)"));
  (* the S and U elements may differ, but S is on the chain start *)
  check_bool "conn ⊆ ∃x (S(x))∧∃y U(y) as one CQ" true
    (Md_decide.datalog_contained_in_cq conn (Parse.cq "q() <- S(x), U(y)"))

let test_datalog_in_ucq_containment () =
  let tc = Parse.query ~goal:"T0" "T0 <- E(x,y). T0 <- E(x,z), T0." in
  ignore tc;
  let p = Parse.query ~goal:"G" "G <- U(x). G <- W(x)." in
  let u = Parse.ucq "q() <- U(x). q() <- W(x)." in
  check_bool "union contained" true (Md_decide.datalog_contained_in_ucq p u);
  let u1 = Parse.ucq "q() <- U(x)." in
  check_bool "not in single disjunct" false
    (Md_decide.datalog_contained_in_ucq p u1)

(* --- backward map --------------------------------------------------- *)

let test_backward_roundtrip () =
  (* backward(forward(Q)) over the identity "views" is equivalent to Q *)
  let nta, k = Forward.approximations_nta conn in
  let schema = Schema.of_list [ ("R", 2); ("U", 1); ("S", 1) ] in
  let qa = Backward.backward ~schema ~k nta in
  let insts =
    Md_rewrite.random_instances ~n:25 ~size:10 ~seed:5 schema
    @ [ Parse.instance "S(a). R(a,b). R(b,d). U(d)." ]
  in
  List.iter
    (fun i ->
      check_bool "agrees" true
        (Dl_eval.holds_boolean conn i = Dl_eval.holds_boolean qa i))
    insts

let test_adom_rules () =
  let schema = Schema.of_list [ ("R", 2); ("U", 1) ] in
  let rules = Backward.adom_rules schema in
  check_int "three rules" 3 (List.length rules);
  let q = Datalog.query rules "Adom" in
  let i = Parse.instance "R(a,b). U(d)." in
  check_int "adom size" 3 (List.length (Dl_eval.eval q i))

let suite =
  [
    Alcotest.test_case "accepts" `Quick test_accepts;
    Alcotest.test_case "emptiness/witness" `Quick test_emptiness_witness;
    Alcotest.test_case "product/union" `Quick test_product_union;
    Alcotest.test_case "relabel (Prop 5)" `Quick test_relabel;
    Alcotest.test_case "trim" `Quick test_trim;
    Alcotest.test_case "forward basics" `Quick test_forward_basics;
    Alcotest.test_case "forward witness" `Quick test_forward_witness_is_approximation;
    Alcotest.test_case "forward repeated IDB args" `Quick test_forward_repeated_idb_args;
    Alcotest.test_case "forward unsupported" `Quick test_forward_unsupported;
    Alcotest.test_case "CQ DTA on codes" `Quick test_cq_dta_on_codes;
    Alcotest.test_case "Datalog ⊆ CQ" `Quick test_datalog_in_cq_containment;
    Alcotest.test_case "Datalog ⊆ UCQ" `Quick test_datalog_in_ucq_containment;
    Alcotest.test_case "backward round trip" `Quick test_backward_roundtrip;
    Alcotest.test_case "adom rules" `Quick test_adom_rules;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_cq_dta_random ]

(* ablation flags preserve verdicts *)
let test_ablation_flags_agree () =
  let tc_view =
    View.datalog "VT"
      (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")
  in
  let q = Parse.cq "q() <- E(x,y), E(y,z)" in
  let q'' = Md_decide.compose_with_views (Datalog.of_cq ~goal:"G0" q) [ tc_view ] in
  let verdict ~binarize ~prune =
    let nta, _ = Forward.approximations_nta ~binarize q'' in
    Run.check_empty nta (Cq_dta.make ~negate:true ~prune q)
  in
  let full = verdict ~binarize:true ~prune:true in
  check_bool "no-prune agrees" true (verdict ~binarize:true ~prune:false = full);
  check_bool "no-binarize agrees" true (verdict ~binarize:false ~prune:true = full)

let test_cq_dta_prune_agree () =
  let i = Parse.instance "E(a,b). E(b,c). U(b)." in
  let td = Decomp.binarize (Decomp.heuristic i) in
  let code = Code.of_decomposition td i in
  let q = Parse.cq "q() <- E(x,y), U(y)" in
  check_bool "prune = no-prune" true
    (Cq_dta.holds_on_code ~prune:true q code
    = Cq_dta.holds_on_code ~prune:false q code)

let suite =
  suite
  @ [
      Alcotest.test_case "ablation flags agree" `Quick test_ablation_flags_agree;
      Alcotest.test_case "prune agree on codes" `Quick test_cq_dta_prune_agree;
    ]
