(* Tests for views, view images, and the inverse-rules algorithm. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let path_view = View.cq "P2" (Parse.cq "v(x,y) <- E(x,z), E(z,y)")
let proj_view = View.cq "P1" (Parse.cq "v(x) <- E(x,y)")
let atomic_e = View.atomic "VE" "E" 2

let inst = Parse.instance "E(a,b). E(b,d). E(d,a)."

let test_image () =
  let img = View.image [ path_view; proj_view ] inst in
  check_int "P2 tuples" 3 (List.length (Instance.tuples img "P2"));
  check_int "P1 tuples" 3 (List.length (Instance.tuples img "P1"));
  check_bool "P2(a,d)" true
    (Instance.mem (Fact.make "P2" [ c "a"; c "d" ]) img)

let test_atomic () =
  let img = View.image [ atomic_e ] inst in
  check_int "copies" 3 (List.length (Instance.tuples img "VE"));
  check_int "arity" 2 (View.arity atomic_e)

let test_datalog_view () =
  let tc = Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)." in
  let v = View.datalog "VT" tc in
  let img = View.image [ v ] inst in
  (* transitive closure of a 3-cycle: all 9 pairs *)
  check_int "tc tuples" 9 (List.length (Instance.tuples img "VT"))

let test_def_as_datalog () =
  let q = View.def_as_datalog path_view in
  check_bool "goal is view name" true (String.equal q.Datalog.goal "P2");
  let out = Dl_eval.eval q inst in
  check_int "same as direct eval" 3 (List.length out)

let test_schemas () =
  let vs = [ path_view; proj_view ] in
  check_bool "view schema" true
    (Schema.relations (View.view_schema vs) = [ ("P1", 1); ("P2", 2) ]);
  check_bool "base schema" true
    (Schema.relations (View.base_schema vs) = [ ("E", 2) ])

let test_classification () =
  check_bool "cq collection" true (View.is_cq_collection [ path_view; atomic_e ]);
  check_bool "not cq" false
    (View.is_cq_collection [ View.ucq "U" (Parse.ucq "v(x) <- E(x,y). v(x) <- E(y,x).") ]);
  check_bool "max radius" true (View.max_radius [ path_view; proj_view ] = Some 1);
  check_bool "connected" true (View.all_connected_cqs [ path_view ])

let test_split_disconnected () =
  let disc = View.cq "W" (Parse.cq "v(x,y) <- U(x), V(y)") in
  let parts = View.split_disconnected disc in
  check_int "two parts" 2 (List.length parts);
  (* reconstruction: the product of the parts has the same tuples *)
  let i = Parse.instance "U(a). U(b). V(z)." in
  let orig = View.image [ disc ] i in
  let imgs = View.image parts i in
  let product =
    List.concat_map
      (fun t1 ->
        List.map
          (fun t2 -> Fact.make "W" [ t1.(0); t2.(0) ])
          (Instance.tuples imgs (List.nth parts 1).View.name))
      (Instance.tuples imgs (List.nth parts 0).View.name)
  in
  check_bool "product reconstructs" true
    (Instance.equal orig (Instance.of_list product))

(* ------------- inverse rules ------------- *)

let tc_query = Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

let test_inverse_identity_views () =
  (* views = identity copy: certain answers = the query itself *)
  let rw = Inverse_rules.rewrite tc_query [ atomic_e ] in
  let img = View.image [ atomic_e ] inst in
  let out = Dl_eval.eval rw img in
  check_int "tc of 3-cycle" 9 (List.length out)

let test_inverse_path_views () =
  (* view exposes only 2-paths: certain answers of "exists an edge" from
     P2(a,c) must be true (some edge is certain), and the goal pairs are
     the composed 2-paths *)
  let q = Parse.query ~goal:"G" "G(x,y) <- E(x,z), E(z,y)." in
  let rw = Inverse_rules.rewrite q [ path_view ] in
  let j = Instance.of_list [ Fact.make "P2" [ c "a"; c "b" ] ] in
  let out = Dl_eval.eval rw j in
  (* P2(a,b) certainly contains a 2-path from a to b *)
  check_bool "certain 2-path" true
    (List.exists (fun t -> Const.equal t.(0) (c "a") && Const.equal t.(1) (c "b")) out)

let test_inverse_skolem_no_leak () =
  (* certain answers never contain invented elements *)
  let q = Parse.query ~goal:"G" "G(x) <- E(x,y)." in
  let rw = Inverse_rules.rewrite q [ path_view ] in
  let j = Instance.of_list [ Fact.make "P2" [ c "a"; c "b" ] ] in
  let out = Dl_eval.eval rw j in
  check_int "only a" 1 (List.length out);
  check_bool "is a" true (Const.equal (List.hd out).(0) (c "a"))

let test_inverse_guarded () =
  (* with guarding on, every non-inverse rule carries a view atom *)
  let rw = Inverse_rules.rewrite ~guard:true tc_query [ atomic_e ] in
  check_bool "has rules" true (List.length rw.Datalog.program > 0);
  let rw_unguarded = Inverse_rules.rewrite ~guard:false tc_query [ atomic_e ] in
  (* both compute the same certain answers *)
  let img = View.image [ atomic_e ] inst in
  check_bool "guarded = unguarded" true
    (List.length (Dl_eval.eval rw img)
    = List.length (Dl_eval.eval rw_unguarded img))

let test_inverse_unsupported () =
  let u = View.ucq "U" (Parse.ucq "v(x) <- E(x,y). v(x) <- E(y,x).") in
  (match Inverse_rules.rewrite tc_query [ u ] with
  | exception Inverse_rules.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported")

let test_certain_answers_monotone () =
  let j1 = Instance.of_list [ Fact.make "P2" [ c "a"; c "b" ] ] in
  let j2 = Instance.add (Fact.make "P2" [ c "b"; c "a" ]) j1 in
  let q = Parse.query ~goal:"G" "G(x,y) <- E(x,z), E(z,y)." in
  let o1 = Inverse_rules.certain_answers q [ path_view ] j1 in
  let o2 = Inverse_rules.certain_answers q [ path_view ] j2 in
  check_bool "monotone" true (List.length o1 <= List.length o2)

(* randomized: inverse-rules rewriting of Example 1 agrees with the query
   through the views *)
let example1_query =
  Parse.query ~goal:"GoalQ"
    "GoalQ <- U1(x), W1(x).
     W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
     W1(x) <- U2(x)."

let example1_views =
  [
    View.cq "V0" (Parse.cq "v(x,w) <- T(x,y,z), B(z,w), B(y,w)");
    View.cq "V1" (Parse.cq "v(x) <- U1(x)");
    View.cq "V2" (Parse.cq "v(x) <- U2(x)");
  ]

let prop_example1_inverse_rules =
  let schema = Schema.of_list [ ("T", 3); ("B", 2); ("U1", 1); ("U2", 1) ] in
  let insts = Md_rewrite.random_instances ~n:25 ~size:12 ~seed:42 schema in
  QCheck.Test.make ~name:"Example 1: inverse rules = query through views"
    ~count:1 QCheck.unit (fun () ->
      let rw = Inverse_rules.rewrite example1_query example1_views in
      Md_rewrite.verify_boolean example1_query rw example1_views insts)

let suite =
  [
    Alcotest.test_case "image" `Quick test_image;
    Alcotest.test_case "atomic" `Quick test_atomic;
    Alcotest.test_case "datalog view" `Quick test_datalog_view;
    Alcotest.test_case "def as datalog" `Quick test_def_as_datalog;
    Alcotest.test_case "schemas" `Quick test_schemas;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "split disconnected" `Quick test_split_disconnected;
    Alcotest.test_case "inverse: identity views" `Quick test_inverse_identity_views;
    Alcotest.test_case "inverse: path views" `Quick test_inverse_path_views;
    Alcotest.test_case "inverse: no skolem leak" `Quick test_inverse_skolem_no_leak;
    Alcotest.test_case "inverse: guarding" `Quick test_inverse_guarded;
    Alcotest.test_case "inverse: unsupported" `Quick test_inverse_unsupported;
    Alcotest.test_case "certain answers monotone" `Quick test_certain_answers_monotone;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_example1_inverse_rules ]
