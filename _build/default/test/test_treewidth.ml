(* Tests for tree decompositions, codes and unravellings. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let path n =
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [ c (Printf.sprintf "v%d" i); c (Printf.sprintf "v%d" (i + 1)) ]))

let cycle n =
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [
             c (Printf.sprintf "v%d" i);
             c (Printf.sprintf "v%d" ((i + 1) mod n));
           ]))

let test_trivial () =
  let i = path 3 in
  let td = Decomp.trivial i in
  check_bool "valid" true (Decomp.is_valid td i);
  check_int "width = adom" 4 (Decomp.width td);
  check_int "one node" 1 (Decomp.size td)

let test_heuristic_path () =
  let i = path 5 in
  let td = Decomp.heuristic i in
  check_bool "valid" true (Decomp.is_valid td i);
  check_int "width 2 on a path" 2 (Decomp.width td)

let test_heuristic_cycle () =
  let i = cycle 6 in
  let td = Decomp.heuristic i in
  check_bool "valid" true (Decomp.is_valid td i);
  check_int "width 3 on a cycle" 3 (Decomp.width td)

let test_heuristic_ternary () =
  let i = Parse.instance "T(a,b,c). T(b,c,d). U(a)." in
  let td = Decomp.heuristic i in
  check_bool "valid" true (Decomp.is_valid td i);
  check_bool "width ≥ 3" true (Decomp.width td >= 3)

let test_invalid_decomposition () =
  let i = path 2 in
  (* a decomposition missing the second edge *)
  let bad = { Decomp.bag = [ c "v0"; c "v1" ]; children = [] } in
  check_bool "invalid" false (Decomp.is_valid bad i)

let test_l_measure () =
  let i = path 3 in
  let td = Decomp.heuristic i in
  check_bool "l ≥ 1" true (Decomp.l_measure td >= 1);
  check_int "trivial l" 1 (Decomp.l_measure (Decomp.trivial i))

let test_binarize () =
  let star =
    Instance.of_list
      (List.init 5 (fun i ->
           Fact.make "E" [ c "hub"; c (Printf.sprintf "s%d" i) ]))
  in
  let td = Decomp.heuristic star in
  let b = Decomp.binarize td in
  check_bool "still valid" true (Decomp.is_valid b star);
  check_bool "degree ≤ 2" true
    (List.for_all
       (fun (n : Decomp.node) -> List.length n.Decomp.children <= 2)
       (Decomp.nodes b))

let test_extend_lemma3 () =
  (* Lemma 3: after applying radius-r connected CQ views, the r-extended
     decomposition covers the view facts *)
  let i = path 6 in
  let td = Decomp.heuristic i in
  let views = [ View.cq "P2" (Parse.cq "v(x,y) <- E(x,z), E(z,y)") ] in
  let r = Option.get (View.max_radius views) in
  let img = View.image views i in
  let ext = Decomp.extend td r in
  check_bool "extension covers view facts" true
    (Decomp.is_valid ext (Instance.union i img));
  (* the width bound k(k^{r+1}-1)/(k-1) of Lemma 3 *)
  let k = Decomp.width td in
  let bound =
    float_of_int k *. (((float_of_int k ** float_of_int (r + 1)) -. 1.) /. float_of_int (k - 1))
  in
  check_bool "within Lemma 3 bound" true (float_of_int (Decomp.width ext) <= bound)

(* ------------- codes ------------- *)

let test_code_roundtrip () =
  let i = path 4 in
  let td = Decomp.binarize (Decomp.heuristic i) in
  let code = Code.of_decomposition td i in
  let decoded = Code.decode code in
  check_int "same size" (Instance.size i) (Instance.size decoded);
  check_bool "hom-equivalent both ways" true
    (Hom.exists i decoded && Hom.exists decoded i);
  check_int "same adom size"
    (Const.Set.cardinal (Instance.adom i))
    (Const.Set.cardinal (Instance.adom decoded))

let test_code_roundtrip_ternary () =
  let i = Parse.instance "T(a,b,c). B(c,d). B(b,d). U(a)." in
  let td = Decomp.binarize (Decomp.heuristic i) in
  let code = Code.of_decomposition td i in
  let decoded = Code.decode code in
  check_int "same size" (Instance.size i) (Instance.size decoded);
  check_bool "isomorphic-ish" true (Hom.exists i decoded && Hom.exists decoded i)

let test_code_manual () =
  (* a two-node code sharing one element: E(x,y) at root pos (0,1); child
     asserts U at the shared element *)
  let child = Code.leaf [ ("U", [ 0 ]) ] in
  let code = Code.node [ ("E", [ 0; 1 ]) ] [ ([ (1, 0) ], child) ] in
  let decoded = Code.decode code in
  check_int "two facts" 2 (Instance.size decoded);
  check_int "two elements" 2 (Const.Set.cardinal (Instance.adom decoded));
  (* the U element is the E-target *)
  let e = List.hd (Instance.tuples decoded "E") in
  let u = List.hd (Instance.tuples decoded "U") in
  check_bool "shared element" true (Const.equal e.(1) u.(0))

let test_code_bad_edge () =
  match Code.node [] [ ([ (0, 0); (1, 0) ], Code.leaf []) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid edge rejection"

let test_code_stats () =
  let code =
    Code.node [ ("E", [ 0; 1 ]) ]
      [ ([ (1, 0) ], Code.leaf [ ("U", [ 0 ]) ]); ([ (0, 0) ], Code.leaf []) ]
  in
  check_int "size" 3 (Code.size code);
  check_int "depth" 2 (Code.depth code);
  check_int "max position" 1 (Code.max_position code)

(* ------------- unravellings ------------- *)

let test_subsets () =
  check_int "≤2 of 4" 10 (List.length (Unravel.subsets_leq 2 [ 1; 2; 3; 4 ]));
  check_int "≤1 of 3" 3 (List.length (Unravel.subsets_leq 1 [ 1; 2; 3 ]))

let test_unravel_hom () =
  let i = cycle 3 in
  let u = Unravel.unravel ~k:2 ~depth:2 i in
  (* Φ is a homomorphism *)
  check_bool "phi is hom" true
    (Hom.is_hom u.Unravel.hom u.Unravel.instance i);
  (* decomposition is valid and of width ≤ 2 *)
  check_bool "decomp valid" true
    (Decomp.is_valid u.Unravel.decomposition u.Unravel.instance);
  check_bool "width ≤ 2" true (Decomp.width u.Unravel.decomposition <= 2)

let test_unravel_breaks_cycle () =
  (* the 2-unravelling of a triangle is a forest of edges: triangle-free *)
  let i = cycle 3 in
  let u = Unravel.unravel ~k:2 ~depth:3 i in
  let triangle = Parse.cq "q() <- E(x,y), E(y,z), E(z,x)" in
  check_bool "no triangle" false (Cq.holds_boolean triangle u.Unravel.instance)

let test_unravel_guarded () =
  let i = Parse.instance "R(a,b,c). R(b,c,d)." in
  let u =
    Unravel.unravel ~bags:(Unravel.fact_scopes i) ~k:3 ~depth:2 i
  in
  check_bool "has R facts" true (Instance.tuples u.Unravel.instance "R" <> []);
  check_bool "phi hom" true (Hom.is_hom u.Unravel.hom u.Unravel.instance i)

let test_unravel_size_guard () =
  let big =
    Instance.of_list
      (List.init 20 (fun i ->
           Fact.make "E" [ c (string_of_int i); c (string_of_int (i + 1)) ]))
  in
  match Unravel.unravel ~k:3 ~depth:5 big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size guard"

(* property: decode ∘ encode preserves CQ answers *)
let prop_code_preserves_cqs =
  QCheck.Test.make ~name:"codes preserve Boolean CQs" ~count:25
    (QCheck.make
       QCheck.Gen.(
         let cg = map (fun i -> c ("e" ^ string_of_int i)) (int_bound 4) in
         let fg =
           let* a = cg and* b = cg in
           return (Fact.make "E" [ a; b ])
         in
         map Instance.of_list (list_size (int_range 1 8) fg)))
    (fun i ->
      let td = Decomp.binarize (Decomp.heuristic i) in
      let code = Code.of_decomposition td i in
      let decoded = Code.decode code in
      let q1 = Parse.cq "q() <- E(x,y), E(y,z)" in
      let q2 = Parse.cq "q() <- E(x,x)" in
      Cq.holds_boolean q1 i = Cq.holds_boolean q1 decoded
      && Cq.holds_boolean q2 i = Cq.holds_boolean q2 decoded)

let suite =
  [
    Alcotest.test_case "trivial decomposition" `Quick test_trivial;
    Alcotest.test_case "heuristic on path" `Quick test_heuristic_path;
    Alcotest.test_case "heuristic on cycle" `Quick test_heuristic_cycle;
    Alcotest.test_case "heuristic ternary" `Quick test_heuristic_ternary;
    Alcotest.test_case "invalid decomposition" `Quick test_invalid_decomposition;
    Alcotest.test_case "l measure" `Quick test_l_measure;
    Alcotest.test_case "binarize" `Quick test_binarize;
    Alcotest.test_case "extend (Lemma 3)" `Quick test_extend_lemma3;
    Alcotest.test_case "code round trip" `Quick test_code_roundtrip;
    Alcotest.test_case "code round trip ternary" `Quick test_code_roundtrip_ternary;
    Alcotest.test_case "code manual" `Quick test_code_manual;
    Alcotest.test_case "code bad edge" `Quick test_code_bad_edge;
    Alcotest.test_case "code stats" `Quick test_code_stats;
    Alcotest.test_case "subsets" `Quick test_subsets;
    Alcotest.test_case "unravel hom" `Quick test_unravel_hom;
    Alcotest.test_case "unravel breaks cycles" `Quick test_unravel_breaks_cycle;
    Alcotest.test_case "unravel guarded" `Quick test_unravel_guarded;
    Alcotest.test_case "unravel size guard" `Quick test_unravel_size_guard;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_code_preserves_cqs ]
