(* Tests for existential pebble games (k-consistency). *)

let check_bool = Alcotest.(check bool)

let tri = Parse.instance "E(a,b). E(b,c). E(c,a)."
let k2 = Parse.instance "E(u,v). E(v,u)."
let loop = Parse.instance "E(o,o)."
let path3 = Parse.instance "E(a,b). E(b,c). E(c,d)."

let test_hom_implies_game () =
  (* path3 → k2 (2-colourable), so duplicator wins every k *)
  check_bool "path3 ->2 k2" true (Pebble.duplicator_wins ~k:2 path3 k2);
  check_bool "path3 ->3 k2" true (Pebble.duplicator_wins ~k:3 path3 k2)

let test_triangle_vs_k2 () =
  (* classic: triangle is not 2-colourable but 2 pebbles can't tell *)
  check_bool "tri ->2 k2" true (Pebble.duplicator_wins ~k:2 tri k2);
  check_bool "tri not->3 k2" false (Pebble.duplicator_wins ~k:3 tri k2)

let test_loop_target () =
  (* everything maps into a loop *)
  check_bool "tri ->3 loop" true (Pebble.duplicator_wins ~k:3 tri loop);
  check_bool "path ->2 loop" true (Pebble.duplicator_wins ~k:2 path3 loop)

let test_empty_target () =
  check_bool "nonempty -> empty fails" false
    (Pebble.duplicator_wins ~k:2 tri Instance.empty)

let test_unary_mismatch () =
  let src = Parse.instance "U(a)." and dst = Parse.instance "W(b)." in
  check_bool "unary mismatch" false (Pebble.duplicator_wins ~k:1 src dst)

let test_family () =
  match Pebble.kconsistent ~k:2 path3 k2 with
  | None -> Alcotest.fail "expected family"
  | Some fam ->
      check_bool "nonempty" true (Pebble.family_size fam > 0);
      check_bool "contains empty map" true (Pebble.family_mem fam []);
      (* a ↦ u is a valid pebble placement *)
      check_bool "singleton" true
        (Pebble.family_mem fam [ (Const.named "a", Const.named "u") ])

let test_one_k () =
  check_bool "(1,2): path3 vs k2" true (Pebble.one_k_consistent ~k:2 path3 k2);
  check_bool "(1,2): tri vs k2" true (Pebble.one_k_consistent ~k:2 tri k2);
  check_bool "(1,1): unary mismatch" false
    (Pebble.one_k_consistent ~k:1
       (Parse.instance "U(a).")
       (Parse.instance "W(b)."))

(* Fact 1 (sanity direction): if some treewidth<k instance maps into I but
   not I', then I -/->k I'.  The triangle has treewidth 2 (< 3), maps into
   itself but not into K2: hence tri -/->3 K2 — checked above.  Here the
   converse direction on a sample: tri ->2 k2 and every width-≤1 (path)
   pattern mapping into tri maps into k2. *)
let test_fact1_sample () =
  let paths = [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun n ->
      let p =
        Instance.of_list
          (List.init n (fun i ->
               Fact.make "E"
                 [
                   Const.named (Printf.sprintf "p%d" i);
                   Const.named (Printf.sprintf "p%d" (i + 1));
                 ]))
      in
      if Hom.exists p tri then
        check_bool "path into k2 too" true (Hom.exists p k2))
    paths

(* property: homomorphism implies duplicator win; and wins are monotone
   downwards in k *)
let inst_gen =
  QCheck.make
    QCheck.Gen.(
      let cg = map (fun i -> Const.named ("e" ^ string_of_int i)) (int_bound 3) in
      let fg =
        let* a = cg and* b = cg in
        return (Fact.make "E" [ a; b ])
      in
      map Instance.of_list (list_size (int_range 1 6) fg))

let prop_hom_implies_win =
  QCheck.Test.make ~name:"I → I' implies I →k I'" ~count:25
    (QCheck.pair inst_gen inst_gen) (fun (a, b) ->
      if Hom.exists a b then Pebble.duplicator_wins ~k:2 a b else true)

let prop_win_antitone_k =
  QCheck.Test.make ~name:"→3 implies →2" ~count:20
    (QCheck.pair inst_gen inst_gen) (fun (a, b) ->
      if Pebble.duplicator_wins ~k:3 a b then Pebble.duplicator_wins ~k:2 a b
      else true)

let suite =
  [
    Alcotest.test_case "hom implies game" `Quick test_hom_implies_game;
    Alcotest.test_case "triangle vs K2" `Quick test_triangle_vs_k2;
    Alcotest.test_case "loop target" `Quick test_loop_target;
    Alcotest.test_case "empty target" `Quick test_empty_target;
    Alcotest.test_case "unary mismatch" `Quick test_unary_mismatch;
    Alcotest.test_case "winning family" `Quick test_family;
    Alcotest.test_case "(1,k) games" `Quick test_one_k;
    Alcotest.test_case "Fact 1 sample" `Quick test_fact1_sample;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_hom_implies_win; prop_win_antitone_k ]
