(* Tests for the core monotonic-determinacy machinery: canonical tests,
   decision procedures, rewritings, separators, and the Theorem 7 diamond
   construction. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- canonical tests (Lemma 5) -------------------------------------- *)

let atomic_e = View.atomic "VE" "E" 2
let proj_view = View.cq "P1" (Parse.cq "v(x) <- E(x,y)")

let edge_q = Parse.query ~goal:"G" "G <- E(x,y)."
let loop_q = Parse.query ~goal:"G" "G <- E(x,x)."

let test_tests_shape () =
  let ts = List.of_seq (Md_tests.tests edge_q [ atomic_e ]) in
  check_int "one approximation, one test" 1 (List.length ts);
  let t = List.hd ts in
  check_int "image has one fact" 1 (Instance.size t.Md_tests.image);
  check_bool "test succeeds" true (Md_tests.succeeds edge_q t)

let test_bounded_determined () =
  match Md_tests.decide_bounded edge_q [ atomic_e ] with
  | Md_tests.No_failure_up_to n -> check_bool "some tests" true (n >= 1)
  | Md_tests.Not_determined _ -> Alcotest.fail "should be determined"

let test_bounded_counterexample () =
  (* loop query with projection view: the chase of P1(a) is E(a,fresh) —
     no loop, Q fails *)
  match Md_tests.decide_bounded loop_q [ proj_view ] with
  | Md_tests.Not_determined t ->
      check_bool "counterexample checked" false (Md_tests.succeeds loop_q t)
  | Md_tests.No_failure_up_to _ -> Alcotest.fail "expected counterexample"

let test_boolean_only () =
  let q = Parse.query ~goal:"G" "G(x) <- E(x,y)." in
  match Md_tests.decide_bounded q [ atomic_e ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Boolean-only"

let test_example1_no_failure () =
  let q =
    Parse.query ~goal:"GoalQ"
      "GoalQ <- U1(x), W1(x).
       W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
       W1(x) <- U2(x)."
  in
  let views =
    [
      View.cq "V0" (Parse.cq "v(x,w) <- T(x,y,z), B(z,w), B(y,w)");
      View.cq "V1" (Parse.cq "v(x) <- U1(x)");
      View.cq "V2" (Parse.cq "v(x) <- U2(x)");
    ]
  in
  match Md_tests.decide_bounded ~max_depth:4 q views with
  | Md_tests.No_failure_up_to n -> check_bool "≥3 tests" true (n >= 3)
  | Md_tests.Not_determined _ -> Alcotest.fail "Example 1 is determined"

(* --- Theorem 5 exact decisions -------------------------------------- *)

let test_thm5_positive () =
  check_bool "edge/atomic" true (Md_decide.cq_query (Parse.cq "q() <- E(x,y)") [ atomic_e ]);
  check_bool "edge/projection" true
    (Md_decide.cq_query (Parse.cq "q() <- E(x,y)") [ proj_view ])

let test_thm5_negative () =
  check_bool "loop/projection" false
    (Md_decide.cq_query (Parse.cq "q() <- E(x,x)") [ proj_view ]);
  check_bool "2path/projection" false
    (Md_decide.cq_query (Parse.cq "q() <- E(x,y), E(y,z)") [ proj_view ])

let test_thm5_datalog_views () =
  (* view = transitive closure; query = ∃ edge; TC(I) nonempty iff E
     nonempty: determined *)
  let tc_view =
    View.datalog "VT"
      (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")
  in
  check_bool "∃edge over TC view" true
    (Md_decide.cq_query (Parse.cq "q() <- E(x,y)") [ tc_view ]);
  (* 2-path existence IS determined: two composable TC facts always come
     from a path of length ≥ 2 *)
  check_bool "2path over TC view" true
    (Md_decide.cq_query (Parse.cq "q() <- E(x,y), E(y,z)") [ tc_view ]);
  (* a self-loop is NOT determined by TC: the loop and the 2-cycle have
     comparable TC images but disagree on the query *)
  check_bool "loop over TC view" false
    (Md_decide.cq_query (Parse.cq "q() <- E(x,x)") [ tc_view ])

let test_thm5_ucq () =
  let u = Parse.ucq "q() <- U(x). q() <- W(x)." in
  let vu = View.atomic "VU" "U" 1 and vw = View.atomic "VW" "W" 1 in
  check_bool "ucq atomic" true (Md_decide.ucq_query u [ vu; vw ]);
  check_bool "ucq missing view" false (Md_decide.ucq_query u [ vu ])

let test_decide_dispatch () =
  (match Md_decide.decide edge_q [ atomic_e ] with
  | Md_decide.Determined -> ()
  | _ -> Alcotest.fail "expected exact Determined");
  (match Md_decide.decide loop_q [ proj_view ] with
  | Md_decide.Not_determined_cert _ -> ()
  | _ -> Alcotest.fail "expected Not_determined");
  let rec_q = Parse.query ~goal:"G" "P(x) <- U(x). P(x) <- E(x,y), P(y). G <- P(x)." in
  match Md_decide.decide rec_q [ View.atomic "VE" "E" 2; View.atomic "VU" "U" 1 ] with
  | Md_decide.Bounded_no_failure _ -> ()
  | _ -> Alcotest.fail "expected bounded fallback"

(* --- rewritings ------------------------------------------------------ *)

let test_prop8 () =
  let q = Parse.cq "q() <- E(x,y), E(y,z)" in
  let rw = Md_rewrite.prop8_cq q [ proj_view; atomic_e ] in
  (* evaluating the rewriting on view images agrees with Q, since Q is
     monotonically determined over {P1, VE} (VE is a full copy) *)
  let schema = Schema.of_list [ ("E", 2) ] in
  let insts = Md_rewrite.random_instances ~n:20 ~size:8 ~seed:1 schema in
  List.iter
    (fun i ->
      let lhs = Cq.holds_boolean q i in
      let rhs = Cq.holds_boolean rw (View.image [ proj_view; atomic_e ] i) in
      check_bool "prop8 rewriting agrees" true (lhs = rhs))
    insts

let test_prop8_ucq () =
  let u = Parse.ucq "q() <- U(x). q() <- W(x)." in
  let vu = View.atomic "VU" "U" 1 and vw = View.atomic "VW" "W" 1 in
  let rw = Md_rewrite.prop8_ucq u [ vu; vw ] in
  check_int "two disjuncts" 2 (List.length rw.Ucq.disjuncts)

let test_forward_backward_atomic () =
  let conn =
    Parse.query ~goal:"G" "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."
  in
  let views =
    [ View.atomic "VR" "R" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
  in
  let rw = Md_rewrite.forward_backward_atomic conn views in
  let schema = Schema.of_list [ ("R", 2); ("U", 1); ("S", 1) ] in
  let insts = Md_rewrite.random_instances ~n:20 ~size:10 ~seed:9 schema in
  check_bool "verified" true (Md_rewrite.verify_boolean conn rw views insts)

let test_forward_backward_missing_view () =
  let conn = Parse.query ~goal:"G" "G <- R(x,y), U(y)." in
  match Md_rewrite.forward_backward_atomic conn [ View.atomic "VR" "R" 2 ] with
  | exception Md_rewrite.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* --- separators ------------------------------------------------------ *)

let test_separator_certain () =
  let q = Parse.query ~goal:"G" "G <- E(x,y), E(y,z)." in
  let sep j = Md_separator.certain_answers_cq_views q [ View.cq "P2" (Parse.cq "v(x,y) <- E(x,z), E(z,y)") ] j in
  let j = Parse.instance "P2(a,b)." in
  check_bool "certainly a 2-path" true (sep j);
  check_bool "empty image" false (sep Instance.empty)

let test_separator_brute_force () =
  let q = Parse.query ~goal:"G" "G <- E(x,y)." in
  let views = [ proj_view ] in
  let candidates =
    [ Parse.instance "E(a,b)."; Parse.instance "E(a,b). E(b,a)."; Instance.empty ]
  in
  let j = View.image views (Parse.instance "E(a,b).") in
  (match Md_separator.brute_force_certain q views ~candidates j with
  | Some true -> ()
  | _ -> Alcotest.fail "expected certain true");
  match Md_separator.brute_force_certain q views ~candidates (Parse.instance "P9(z).") with
  | None -> ()
  | _ -> Alcotest.fail "expected no preimage"

(* --- Theorem 7 diamonds ---------------------------------------------- *)

let test_diamonds_query_holds () =
  check_bool "Q(I_0)" true (Dl_eval.holds_boolean Diamonds.query (Diamonds.chain 0));
  check_bool "Q(I_3)" true (Dl_eval.holds_boolean Diamonds.query (Diamonds.chain 3))

let test_diamonds_views_shape () =
  let jk = View.image Diamonds.views (Diamonds.chain 2) in
  check_int "one S" 1 (List.length (Instance.tuples jk "S"));
  check_int "one T" 1 (List.length (Instance.tuples jk "T"));
  check_int "two R" 2 (List.length (Instance.tuples jk "R"))

let test_diamonds_counterexample () =
  let i' = Diamonds.unravelled_counterexample ~k:2 ~depth:2 in
  check_bool "Q false on I'" false (Dl_eval.holds_boolean Diamonds.query i');
  let v_i = View.image Diamonds.views (Diamonds.chain 2) in
  let v_i' = View.image Diamonds.views i' in
  check_bool "(1,2) duplicator wins" true (Pebble.one_k_consistent ~k:2 v_i v_i')

let test_diamonds_datalog_rewriting () =
  let rw = Md_rewrite.inverse_rules Diamonds.query Diamonds.views in
  let insts =
    Diamonds.chain 0 :: Diamonds.chain 2
    :: Md_rewrite.random_instances ~n:15 ~size:10 ~seed:13 Diamonds.schema
  in
  check_bool "verified" true
    (Md_rewrite.verify_boolean Diamonds.query rw Diamonds.views insts)

let suite =
  [
    Alcotest.test_case "tests shape" `Quick test_tests_shape;
    Alcotest.test_case "bounded: determined" `Quick test_bounded_determined;
    Alcotest.test_case "bounded: counterexample" `Quick test_bounded_counterexample;
    Alcotest.test_case "boolean only" `Quick test_boolean_only;
    Alcotest.test_case "example 1 no failure" `Quick test_example1_no_failure;
    Alcotest.test_case "thm5 positive" `Quick test_thm5_positive;
    Alcotest.test_case "thm5 negative" `Quick test_thm5_negative;
    Alcotest.test_case "thm5 datalog views" `Quick test_thm5_datalog_views;
    Alcotest.test_case "thm5 ucq" `Quick test_thm5_ucq;
    Alcotest.test_case "decide dispatch" `Quick test_decide_dispatch;
    Alcotest.test_case "prop8 cq" `Quick test_prop8;
    Alcotest.test_case "prop8 ucq" `Quick test_prop8_ucq;
    Alcotest.test_case "fwd-bwd atomic" `Quick test_forward_backward_atomic;
    Alcotest.test_case "fwd-bwd missing view" `Quick test_forward_backward_missing_view;
    Alcotest.test_case "separator certain" `Quick test_separator_certain;
    Alcotest.test_case "separator brute force" `Quick test_separator_brute_force;
    Alcotest.test_case "diamonds: query holds" `Quick test_diamonds_query_holds;
    Alcotest.test_case "diamonds: view shape" `Quick test_diamonds_views_shape;
    Alcotest.test_case "diamonds: counterexample" `Quick test_diamonds_counterexample;
    Alcotest.test_case "diamonds: datalog rewriting" `Quick test_diamonds_datalog_rewriting;
  ]

(* --- chase separators (§7 observation) ------------------------------- *)

let test_chase_separator () =
  let q = Parse.query ~goal:"G" "G <- E(x,y), E(y,z)." in
  let views = [ View.cq "P2" (Parse.cq "v(x,y) <- E(x,z), E(z,y)") ] in
  let j = Parse.instance "P2(a,b)." in
  (* with a single CQ view the chase is unique, so Any = All = certain *)
  check_bool "any" true (Md_separator.chase_separator ~mode:Md_separator.Any q views j);
  check_bool "all" true (Md_separator.chase_separator ~mode:Md_separator.All q views j);
  check_bool "agrees with inverse rules" true
    (Md_separator.certain_answers_cq_views q views j
    = Md_separator.chase_separator q views j)

let test_chase_separator_ucq () =
  (* UCQ view: U-or-W; a V-fact chases two ways *)
  let q = Parse.query ~goal:"G" "G <- U(x)." in
  let views = [ View.ucq "VUW" (Parse.ucq "v(x) <- U(x). v(x) <- W(x).") ] in
  let j = Parse.instance "VUW(a)." in
  check_bool "any: some chase has U" true
    (Md_separator.chase_separator ~mode:Md_separator.Any q views j);
  check_bool "all: not every chase has U" false
    (Md_separator.chase_separator ~mode:Md_separator.All q views j)

let test_chase_separator_identity () =
  (* under monotonic determinacy Any and All coincide on view images *)
  let q = Parse.query ~goal:"G" "G <- E(x,y)." in
  let views = [ View.ucq "VE2" (Parse.ucq "v(x,y) <- E(x,y). v(x,y) <- E(y,x).") ] in
  let i = Parse.instance "E(a,b). E(c,c)." in
  let j = View.image views i in
  let any = Md_separator.chase_separator ~mode:Md_separator.Any q views j in
  let all = Md_separator.chase_separator ~mode:Md_separator.All q views j in
  check_bool "coincide" true (any = all);
  check_bool "equal query" true (any = Dl_eval.holds_boolean q i)

let suite =
  suite
  @ [
      Alcotest.test_case "chase separator" `Quick test_chase_separator;
      Alcotest.test_case "chase separator ucq" `Quick test_chase_separator_ucq;
      Alcotest.test_case "chase separator identity" `Quick test_chase_separator_identity;
    ]
