test/test_core.ml: Alcotest Cq Diamonds Dl_eval Instance List Md_decide Md_rewrite Md_separator Md_tests Parse Pebble Schema Ucq View
