test/test_tiling.ml: Alcotest Cq Datalog Dl_eval Dl_fragment Instance List Md_rewrite Parity Pebble Printf Reduction Tiling View
