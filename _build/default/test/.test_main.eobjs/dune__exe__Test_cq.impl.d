test/test_cq.ml: Alcotest Array Const Cq Fact Fmt Instance List Parse QCheck QCheck_alcotest Ucq
