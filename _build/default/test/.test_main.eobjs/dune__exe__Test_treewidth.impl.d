test/test_treewidth.ml: Alcotest Array Code Const Cq Decomp Fact Hom Instance List Option Parse Printf QCheck QCheck_alcotest Unravel View
