test/test_games.ml: Alcotest Const Fact Hom Instance List Parse Pebble Printf QCheck QCheck_alcotest
