test/test_relational.ml: Alcotest Array Const Fact Fmt Gaifman Hom Instance List QCheck QCheck_alcotest String
