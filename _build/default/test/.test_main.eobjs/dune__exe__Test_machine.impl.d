test/test_machine.ml: Alcotest Dl_eval Encode Instance List String Th9 Tm View
