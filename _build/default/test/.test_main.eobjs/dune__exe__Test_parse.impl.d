test/test_parse.ml: Alcotest Const Cq Datalog Fact Instance List Parse Ucq
