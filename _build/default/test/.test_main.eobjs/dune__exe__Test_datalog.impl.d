test/test_datalog.ml: Alcotest Const Cq Datalog Dl_approx Dl_binarize Dl_eval Dl_fragment Dl_normalize Dl_specialize Fact Fmt Instance List Parse Printf QCheck QCheck_alcotest Ucq
