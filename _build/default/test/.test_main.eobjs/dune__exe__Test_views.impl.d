test/test_views.ml: Alcotest Array Const Datalog Dl_eval Fact Instance Inverse_rules List Md_rewrite Parse QCheck QCheck_alcotest Schema String View
