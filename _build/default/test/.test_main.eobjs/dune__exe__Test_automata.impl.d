test/test_automata.ml: Alcotest Backward Code Const Cq Cq_dta Datalog Decomp Dl_eval Fact Forward Instance List Md_decide Md_rewrite Nta Parse QCheck QCheck_alcotest Run Schema View
