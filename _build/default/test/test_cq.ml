(* Tests for conjunctive queries and UCQs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let path2 = Parse.cq "q(x,y) <- E(x,z), E(z,y)"
let edge = Parse.cq "q(x,y) <- E(x,y)"
let triangle_q = Parse.cq "q() <- E(x,y), E(y,z), E(z,x)"

let inst_path = Parse.instance "E(a,b). E(b,c)."
let inst_tri = Parse.instance "E(x,y). E(y,z). E(z,x)."

let test_eval () =
  let out = Cq.eval path2 inst_path in
  check_int "one 2-path" 1 (List.length out);
  (match out with
  | [ t ] ->
      check_bool "a..c" true (Const.equal t.(0) (c "a") && Const.equal t.(1) (c "c"))
  | _ -> Alcotest.fail "expected single tuple");
  check_int "edges" 2 (List.length (Cq.eval edge inst_path));
  check_int "paths in triangle" 3 (List.length (Cq.eval path2 inst_tri))

let test_holds () =
  check_bool "holds" true (Cq.holds path2 inst_path [| c "a"; c "c" |]);
  check_bool "not holds" false (Cq.holds path2 inst_path [| c "a"; c "b" |]);
  check_bool "boolean triangle yes" true (Cq.holds_boolean triangle_q inst_tri);
  check_bool "boolean triangle no" false (Cq.holds_boolean triangle_q inst_path)

let test_constants_in_body () =
  let q = Parse.cq "q(x) <- E(x,'b')" in
  let out = Cq.eval q inst_path in
  check_int "only a" 1 (List.length out);
  check_bool "is a" true (Const.equal (List.hd out).(0) (c "a"))

let test_repeated_head_vars () =
  let q = Cq.make ~head:[ "x"; "x" ] [ Parse.atom "U(x)" ] in
  let i = Parse.instance "U(a)." in
  let out = Cq.eval q i in
  check_int "diag" 1 (List.length out);
  check_bool "same" true (Const.equal (List.hd out).(0) (List.hd out).(1))

let test_canonical_db () =
  let db = Cq.canonical_db path2 in
  check_int "two facts" 2 (Instance.size db);
  check_int "three elements" 3 (Const.Set.cardinal (Instance.adom db));
  (* round trip: of_instance gives an equivalent CQ *)
  let q' = Cq.of_instance ~head:(Cq.head_consts path2) db in
  check_bool "round trip equivalent" true (Cq.equivalent path2 q')

let test_containment () =
  (* 2-path is contained in 1-of-2-specializations? edge ⊆ ... no:
     classic: path2 ⊄ edge, edge ⊄ path2;
     q(x,y) <- E(x,z),E(z,y),E(x,w) is contained in path2 *)
  check_bool "path2 ⊄ edge" false (Cq.contained_in path2 edge);
  check_bool "edge ⊄ path2" false (Cq.contained_in edge path2);
  let spec = Parse.cq "q(x,y) <- E(x,z), E(z,y), U(x)" in
  check_bool "spec ⊆ path2" true (Cq.contained_in spec path2);
  check_bool "path2 ⊄ spec" false (Cq.contained_in path2 spec);
  (* an extra atom that is homomorphically implied does not strengthen *)
  let implied = Parse.cq "q(x,y) <- E(x,z), E(z,y), E(x,w)" in
  check_bool "implied atom: equivalent" true (Cq.equivalent path2 implied);
  check_bool "refl" true (Cq.contained_in path2 path2)

let test_containment_constants () =
  let qa = Parse.cq "q() <- U('a')" in
  let qx = Parse.cq "q() <- U(x)" in
  check_bool "U(a) ⊆ ∃x U(x)" true (Cq.contained_in qa qx);
  check_bool "∃x U(x) ⊄ U(a)" false (Cq.contained_in qx qa)

let test_minimize () =
  let redundant = Parse.cq "q(x,y) <- E(x,z), E(z,y), E(x,w), E(w,y)" in
  let m = Cq.minimize redundant in
  check_int "minimized to 2 atoms" 2 (List.length m.Cq.body);
  check_bool "equivalent" true (Cq.equivalent m redundant);
  let already = Cq.minimize path2 in
  check_int "path2 already minimal" 2 (List.length already.Cq.body)

let test_radius_connected () =
  check_bool "path2 radius" true (Cq.radius path2 = Some 1);
  check_bool "connected" true (Cq.connected path2);
  let disc = Parse.cq "q() <- U(x), V(y)" in
  check_bool "disconnected" false (Cq.connected disc);
  check_bool "radius none" true (Cq.radius disc = None)

let test_conjoin_freshen () =
  let q1 = Parse.cq "q(x) <- U(x)" and q2 = Parse.cq "q(y) <- V(y)" in
  let qq = Cq.conjoin q1 q2 in
  check_int "arity 2" 2 (Cq.arity qq);
  let i = Parse.instance "U(a). V(b)." in
  check_int "product" 1 (List.length (Cq.eval qq i));
  let fr = Cq.freshen q1 in
  check_bool "freshen equivalent" true (Cq.equivalent q1 fr);
  check_bool "fresh vars differ" true (fr.Cq.head <> q1.Cq.head)

(* UCQ ------------------------------------------------------------- *)

let ucq_paths = Parse.ucq "q(x,y) <- E(x,y). q(x,y) <- E(x,z), E(z,y)."

let test_ucq_eval () =
  check_int "union" 3 (List.length (Ucq.eval ucq_paths inst_path));
  check_bool "holds direct" true (Ucq.holds ucq_paths inst_path [| c "a"; c "b" |]);
  check_bool "holds 2path" true (Ucq.holds ucq_paths inst_path [| c "a"; c "c" |])

let test_ucq_containment () =
  check_bool "edge ⊆ union" true (Ucq.cq_contained_in edge ucq_paths);
  check_bool "path2 ⊆ union" true (Ucq.cq_contained_in path2 ucq_paths);
  let u1 = Ucq.of_cq edge in
  check_bool "sub-union" true (Ucq.contained_in u1 ucq_paths);
  check_bool "not contained" false (Ucq.contained_in ucq_paths u1);
  check_bool "self" true (Ucq.equivalent ucq_paths ucq_paths)

(* properties ------------------------------------------------------ *)

let instance_gen =
  QCheck.Gen.(
    let cg = map (fun i -> Const.named ("e" ^ string_of_int i)) (int_bound 4) in
    let fg =
      let* r = int_bound 1 in
      if r = 0 then
        let* a = cg and* b = cg in
        return (Fact.make "E" [ a; b ])
      else
        let* a = cg in
        return (Fact.make "U" [ a ])
    in
    map Instance.of_list (list_size (int_bound 10) fg))

let instance_arb =
  QCheck.make ~print:(fun i -> Fmt.str "%a" Instance.pp i) instance_gen

let prop_monotone =
  QCheck.Test.make ~name:"CQ evaluation is monotone" ~count:80
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      let big = Instance.union a b in
      let q = Parse.cq "q(x,y) <- E(x,z), E(z,y), U(x)" in
      let small_out = Cq.eval q a in
      List.for_all (fun t -> Cq.holds q big t) small_out)

let prop_containment_sound =
  QCheck.Test.make ~name:"containment sound on random instances" ~count:60
    instance_arb (fun i ->
      let q1 = Parse.cq "q(x) <- E(x,y), E(y,z)" in
      let q2 = Parse.cq "q(x) <- E(x,y)" in
      (* q1 ⊆ q2 holds; so every q1 answer is a q2 answer *)
      Cq.contained_in q1 q2
      && List.for_all (fun t -> Cq.holds q2 i t) (Cq.eval q1 i))

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize preserves semantics" ~count:40 instance_arb
    (fun i ->
      let q = Parse.cq "q(x) <- E(x,y), E(x,z), U(x)" in
      let m = Cq.minimize q in
      Cq.eval q i = Cq.eval m i)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_monotone; prop_containment_sound; prop_minimize_equivalent ]

let suite =
  [
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "holds" `Quick test_holds;
    Alcotest.test_case "constants in body" `Quick test_constants_in_body;
    Alcotest.test_case "repeated head vars" `Quick test_repeated_head_vars;
    Alcotest.test_case "canonical db" `Quick test_canonical_db;
    Alcotest.test_case "containment" `Quick test_containment;
    Alcotest.test_case "containment with constants" `Quick test_containment_constants;
    Alcotest.test_case "minimize" `Quick test_minimize;
    Alcotest.test_case "radius/connected" `Quick test_radius_connected;
    Alcotest.test_case "conjoin/freshen" `Quick test_conjoin_freshen;
    Alcotest.test_case "ucq eval" `Quick test_ucq_eval;
    Alcotest.test_case "ucq containment" `Quick test_ucq_containment;
  ]
  @ qcheck
