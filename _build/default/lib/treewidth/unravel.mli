(** k-unravellings and (1,k)-unravellings (paper §7).

    A k-unravelling of [I] is an instance [U] with a homomorphism [Φ] to
    [I] and a width-k tree decomposition whose bags are partial-isomorphic
    copies of ≤k-subsets of [I], and in which every node has one child per
    non-empty ≤k-subset of [I].  The (1,k) variant additionally shares at
    most one element between any two bags.

    True unravellings are infinite; we build the depth-[d] truncation,
    which suffices for every finite-radius property the experiments check
    (the depth is always stated by the caller). *)

type result = {
  instance : Instance.t;
  hom : Const.t Const.Map.t;  (** Φ : unravelling → original *)
  decomposition : Decomp.t;
}

val unravel :
  ?one_sharing:bool ->
  ?bags:Const.t list list ->
  k:int ->
  depth:int ->
  Instance.t ->
  result
(** [one_sharing] selects the (1,k) variant (default false).

    [bags] restricts the subsets used as child bags (default: all
    non-empty subsets of size ≤ k).  Passing the fact scopes gives the
    {e guarded} unravelling, which is what the constructions of §7 need
    when facts are wider than the pebble count.

    Size guard: raises [Invalid_argument] when the number of generated
    bags would exceed 200_000. *)

val fact_scopes : Instance.t -> Const.t list list
(** The element sets of the facts of an instance (deduplicated). *)

val subsets_leq : int -> 'a list -> 'a list list
(** All non-empty subsets of size ≤ k (exposed for tests). *)
