type label = (string * int list) list
type edge = (int * int) list
type t = { label : label; children : (edge * t) list }

let check_edge e =
  let dom = List.map fst e and rng = List.map snd e in
  let distinct l = List.length l = List.length (List.sort_uniq Int.compare l) in
  if not (distinct dom && distinct rng) then
    invalid_arg "Code.node: edge map is not a partial injection"

let node label children =
  let label = List.sort compare label in
  let children =
    List.map
      (fun (e, c) ->
        let e = List.sort compare e in
        check_edge e;
        (e, c))
      children
  in
  { label; children }

let leaf label = node label []

let rec size t = 1 + List.fold_left (fun n (_, c) -> n + size c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun d (_, c) -> max d (depth c)) 0 t.children

let rec max_position t =
  let m =
    List.fold_left
      (fun m (_, ps) -> List.fold_left max m ps)
      (-1) t.label
  in
  List.fold_left
    (fun m (e, c) ->
      let m =
        List.fold_left (fun m (i, j) -> max m (max i j)) m e
      in
      max m (max_position c))
    m t.children

(* ------------------------------------------------------------------ *)
(* Decoding: union-find over (node id, position).                      *)

module UF = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find uf x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some p ->
        let r = find uf p in
        if r <> p then Hashtbl.replace uf x r;
        r

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf ra rb
end

let decode_internal t =
  (* assign ids: (node_number, position) -> node_number * (k+1) + position;
     we first bound positions. *)
  let k = max_position t + 1 in
  let uf = UF.create () in
  let counter = ref 0 in
  let atoms = ref [] in
  (* returns the node number of the subtree root *)
  let rec walk t =
    let me = !counter in
    incr counter;
    List.iter (fun (rel, ps) -> atoms := (rel, List.map (fun p -> (me, p)) ps) :: !atoms) t.label;
    List.iter
      (fun (e, c) ->
        let child = walk c in
        List.iter
          (fun (i, j) -> UF.union uf ((me * k) + i) ((child * k) + j))
          e)
      t.children;
    me
  in
  let root = walk t in
  let elem_tbl = Hashtbl.create 64 in
  let elem (n, p) =
    let r = UF.find uf ((n * k) + p) in
    match Hashtbl.find_opt elem_tbl r with
    | Some c -> c
    | None ->
        let c = Const.fresh () in
        Hashtbl.add elem_tbl r c;
        c
  in
  let inst =
    List.fold_left
      (fun acc (rel, coords) ->
        Instance.add (Fact.make rel (List.map elem coords)) acc)
      Instance.empty !atoms
  in
  let root_elem p =
    let key = (root * k) + p in
    let r = UF.find uf key in
    Hashtbl.find_opt elem_tbl r
  in
  (inst, root_elem)

let decode t = fst (decode_internal t)
let decode_with_root t = decode_internal t

(* ------------------------------------------------------------------ *)
(* Standard code of a decomposition                                    *)

let of_decomposition (td : Decomp.t) inst =
  if not (Decomp.is_valid td inst) then
    invalid_arg "Code.of_decomposition: invalid decomposition";
  (* assign each fact to the shallowest covering node (DFS pre-order) *)
  let remaining = ref (Instance.facts inst) in
  let pos_in bag c =
    let rec idx i = function
      | [] -> None
      | x :: rest -> if Const.equal x c then Some i else idx (i + 1) rest
    in
    idx 0 bag
  in
  let rec build (n : Decomp.node) =
    let mine, rest =
      List.partition
        (fun (f : Fact.t) ->
          Array.for_all (fun c -> Option.is_some (pos_in n.Decomp.bag c)) f.args)
        !remaining
    in
    remaining := rest;
    let label =
      List.map
        (fun (f : Fact.t) ->
          ( f.rel,
            Array.to_list f.args
            |> List.map (fun c -> Option.get (pos_in n.Decomp.bag c)) ))
        mine
    in
    let children =
      List.map
        (fun (ch : Decomp.node) ->
          let e =
            List.filteri (fun _ _ -> true) n.Decomp.bag
            |> List.mapi (fun i c -> (i, c))
            |> List.filter_map (fun (i, c) ->
                   Option.map (fun j -> (i, j)) (pos_in ch.Decomp.bag c))
          in
          (e, build ch))
        n.Decomp.children
    in
    node label children
  in
  build td

let rec pp ppf t =
  Fmt.pf ppf "{%a}%a"
    Fmt.(
      list ~sep:comma (fun ppf (r, ps) ->
          Fmt.pf ppf "%s%a" r Fmt.(brackets (list ~sep:comma int)) ps))
    t.label
    (fun ppf -> function
      | [] -> ()
      | cs ->
          Fmt.pf ppf "(%a)"
            Fmt.(
              list ~sep:sp (fun ppf (e, c) ->
                  Fmt.pf ppf "%a→%a"
                    (Fmt.list ~sep:Fmt.comma (fun ppf (i, j) ->
                         Fmt.pf ppf "%d%d" i j))
                    e pp c))
            cs)
    t.children
