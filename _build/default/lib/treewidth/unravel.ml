type result = {
  instance : Instance.t;
  hom : Const.t Const.Map.t;
  decomposition : Decomp.t;
}

let subsets_leq k l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let tails = go rest in
        tails @ List.filter_map
                  (fun s -> if List.length s < k then Some (x :: s) else None)
                  tails
  in
  List.filter (fun s -> s <> []) (go l)

let fact_scopes inst =
  Instance.fold
    (fun f acc ->
      let s = Const.Set.elements (Fact.consts f) in
      if List.mem s acc then acc else s :: acc)
    inst []

let unravel ?(one_sharing = false) ?bags ~k ~depth inst =
  let elements = Const.Set.elements (Instance.adom inst) in
  let subsets =
    match bags with Some bs -> bs | None -> subsets_leq k elements
  in
  let n_sub = List.length subsets in
  (* crude size estimate: branching^(depth) *)
  let branching = n_sub * if one_sharing then k + 1 else 1 in
  let est =
    let rec pow acc i = if i = 0 then acc else
        if acc > 200_000 then acc else pow (acc * branching) (i - 1)
    in
    pow 1 depth
  in
  if est > 200_000 then
    invalid_arg
      (Printf.sprintf "Unravel.unravel: too many bags (%d subsets, depth %d)"
         n_sub depth);
  let facts = ref Instance.empty in
  let hom = ref Const.Map.empty in
  let in_subset s (f : Fact.t) =
    Array.for_all (fun c -> List.exists (Const.equal c) s) f.args
  in
  let all_facts = Instance.facts inst in
  (* build a node: [bag] is an assoc list original element -> copy *)
  let rec build d (bag : (Const.t * Const.t) list) : Decomp.node =
    (* add the facts of I restricted to this bag, on the copies *)
    List.iter
      (fun f ->
        if in_subset (List.map fst bag) f then
          facts :=
            Instance.add
              (Fact.map (fun c -> List.assoc c bag) f)
              !facts)
      all_facts;
    let children =
      if d = 0 then []
      else
        List.concat_map
          (fun s ->
            let sharings =
              if not one_sharing then
                [ List.filter (fun (o, _) -> List.exists (Const.equal o) s) bag ]
              else
                []
                @ [ [] ]
                @ List.filter_map
                    (fun (o, c) ->
                      if List.exists (Const.equal o) s then Some [ (o, c) ]
                      else None)
                    bag
            in
            List.map
              (fun shared ->
                let child_bag =
                  List.map
                    (fun o ->
                      match List.assoc_opt o shared with
                      | Some c -> (o, c)
                      | None ->
                          let c = Const.fresh () in
                          hom := Const.Map.add c o !hom;
                          (o, c))
                    s
                in
                build (d - 1) child_bag)
              sharings)
          subsets
    in
    { Decomp.bag = List.map snd bag; children }
  in
  let root = build depth [] in
  { instance = !facts; hom = !hom; decomposition = root }
