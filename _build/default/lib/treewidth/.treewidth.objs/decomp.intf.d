lib/treewidth/decomp.mli: Const Fmt Instance
