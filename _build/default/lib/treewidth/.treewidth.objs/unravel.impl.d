lib/treewidth/unravel.ml: Array Const Decomp Fact Instance List Printf
