lib/treewidth/unravel.mli: Const Decomp Instance
