lib/treewidth/code.mli: Const Decomp Fmt Instance
