lib/treewidth/code.ml: Array Const Decomp Fact Fmt Hashtbl Instance Int List Option
