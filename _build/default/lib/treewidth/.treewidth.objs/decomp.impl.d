lib/treewidth/decomp.ml: Array Const Fact Fmt Gaifman Hashtbl Instance List Option
