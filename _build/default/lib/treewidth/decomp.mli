(** Tree decompositions (paper §3).

    A decomposition of an instance is a rooted tree of bags (tuples of
    distinct elements) such that every fact's elements appear together in
    some bag and every element's set of bags is connected.  Following the
    paper, the width of a decomposition is the maximum bag {e size} (not
    size − 1). *)

type node = { bag : Const.t list; children : node list }
type t = node

val width : t -> int
(** Maximum bag size. *)

val l_measure : t -> int
(** The paper's [l(TD)]: the maximum, over elements, of the number of bags
    containing the element. *)

val nodes : t -> node list
val size : t -> int

val is_valid : t -> Instance.t -> bool
(** Checks both decomposition conditions against the instance. *)

val covers_tuple : t -> Const.t list -> bool
(** Some bag contains all the given elements (used for rooted
    decompositions of pairs [(I, ā)]). *)

val trivial : Instance.t -> t
(** The one-bag decomposition. *)

val heuristic : Instance.t -> t
(** A decomposition produced by min-fill elimination on the Gaifman graph.
    Always valid; width is a (usually good) upper bound on treewidth. *)

val binarize : t -> t
(** An equivalent decomposition in which every node has at most two
    children (the paper's convention for codes); inserts copies of bags. *)

val extend : t -> int -> t
(** Lemma 3's [r]-extension: replace each bag [b] by [ext(b, r)], where
    [ext(b, n)] adds all elements sharing a bag with [ext(b, n-1)].  The
    result has the same tree shape and covers every view fact whose
    defining CQ has radius ≤ r. *)

val treewidth_upper_bound : Instance.t -> int
(** Width of {!heuristic}. *)

val pp : t Fmt.t
