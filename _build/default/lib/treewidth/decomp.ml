type node = { bag : Const.t list; children : node list }
type t = node

let rec nodes n = n :: List.concat_map nodes n.children
let size t = List.length (nodes t)
let width t = List.fold_left (fun m n -> max m (List.length n.bag)) 0 (nodes t)

let l_measure t =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun n ->
      List.iter
        (fun c ->
          Hashtbl.replace counts c
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
        (List.sort_uniq Const.compare n.bag))
    (nodes t);
  Hashtbl.fold (fun _ v m -> max v m) counts 0

let covers_tuple t cs =
  List.exists
    (fun n -> List.for_all (fun c -> List.mem c n.bag) cs)
    (nodes t)

let is_valid t inst =
  let covers =
    Instance.fold
      (fun f ok -> ok && covers_tuple t (Const.Set.elements (Fact.consts f)))
      inst true
  in
  (* connectivity: for each element, the nodes containing it form a
     connected subtree, i.e. exactly one of them has no parent containing
     the element *)
  let ok = ref covers in
  let roots = Hashtbl.create 32 in
  let rec walk parent_bag n =
    List.iter
      (fun c ->
        if not (List.mem c parent_bag) then
          Hashtbl.replace roots c
            (1 + Option.value ~default:0 (Hashtbl.find_opt roots c)))
      (List.sort_uniq Const.compare n.bag);
    List.iter (walk n.bag) n.children
  in
  walk [] t;
  Const.Set.iter
    (fun c ->
      match Hashtbl.find_opt roots c with
      | Some 1 -> ()
      | Some _ | None -> ok := false)
    (Instance.adom inst);
  !ok

let trivial inst = { bag = Const.Set.elements (Instance.adom inst); children = [] }

(* min-fill elimination ordering over the Gaifman graph *)
let heuristic inst =
  let g = Gaifman.of_instance inst in
  let adj = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace adj v (Gaifman.neighbours g v)) (Gaifman.nodes g);
  let live = ref (Const.Set.of_list (Gaifman.nodes g)) in
  let neighbours v =
    Const.Set.inter !live
      (Option.value ~default:Const.Set.empty (Hashtbl.find_opt adj v))
  in
  let fill_cost v =
    let ns = Const.Set.elements (neighbours v) in
    let cost = ref 0 in
    let rec pairs = function
      | [] -> ()
      | x :: rest ->
          List.iter
            (fun y ->
              if not (Const.Set.mem y (neighbours x)) then incr cost)
            rest;
          pairs rest
    in
    pairs ns;
    !cost
  in
  (* eliminate; record (v, bag) in order *)
  let order = ref [] in
  while not (Const.Set.is_empty !live) do
    let v =
      Const.Set.fold
        (fun v best ->
          match best with
          | None -> Some (v, fill_cost v)
          | Some (_, c) ->
              let c' = fill_cost v in
              if c' < c then Some (v, c') else best)
        !live None
      |> Option.get |> fst
    in
    let ns = neighbours v in
    (* add fill edges *)
    Const.Set.iter
      (fun x ->
        let cur = Option.value ~default:Const.Set.empty (Hashtbl.find_opt adj x) in
        Hashtbl.replace adj x (Const.Set.union cur (Const.Set.remove x ns)))
      ns;
    order := (v, Const.Set.elements (Const.Set.add v ns)) :: !order;
    live := Const.Set.remove v !live
  done;
  let order = List.rev !order in
  (* build the tree: parent of bag(v) is bag(first-later-eliminated
     neighbour in bag(v)) *)
  match order with
  | [] -> { bag = []; children = [] }
  | _ ->
      let position = Hashtbl.create 32 in
      List.iteri (fun i (v, _) -> Hashtbl.add position v i) order;
      let arr = Array.of_list order in
      let children = Array.make (Array.length arr) [] in
      let root = Array.length arr - 1 in
      Array.iteri
        (fun i (v, bag) ->
          if i < root then
            let parent =
              List.fold_left
                (fun acc u ->
                  if Const.equal u v then acc
                  else
                    let j = Hashtbl.find position u in
                    match acc with
                    | None -> Some j
                    | Some j' -> Some (min j j')
                    )
                None bag
            in
            let p = match parent with Some j when j > i -> j | _ -> root in
            children.(p) <- i :: children.(p))
        arr;
      let rec build i =
        let _, bag = arr.(i) in
        { bag; children = List.map build children.(i) }
      in
      build root

let rec binarize n =
  let children = List.map binarize n.children in
  match children with
  | [] | [ _ ] | [ _; _ ] -> { n with children }
  | c :: rest ->
      let rec chain = function
        | [] -> assert false
        | [ x ] -> x
        | [ x; y ] -> { bag = n.bag; children = [ x; y ] }
        | x :: more -> { bag = n.bag; children = [ x; chain more ] }
      in
      { n with children = [ c; chain rest ] }

let extend t r =
  (* element co-occurrence graph over bags *)
  let co = Hashtbl.create 32 in
  List.iter
    (fun n ->
      let b = List.sort_uniq Const.compare n.bag in
      List.iter
        (fun c ->
          let cur = Option.value ~default:Const.Set.empty (Hashtbl.find_opt co c) in
          Hashtbl.replace co c
            (Const.Set.union cur (Const.Set.of_list b)))
        b)
    (nodes t);
  let step s =
    Const.Set.fold
      (fun c acc ->
        Const.Set.union acc
          (Option.value ~default:Const.Set.empty (Hashtbl.find_opt co c)))
      s s
  in
  let rec iterate s n = if n = 0 then s else iterate (step s) (n - 1) in
  let rec go n =
    let s = iterate (Const.Set.of_list n.bag) r in
    { bag = Const.Set.elements s; children = List.map go n.children }
  in
  go t

let treewidth_upper_bound inst = width (heuristic inst)

let rec pp ppf n =
  Fmt.pf ppf "[%a]%a"
    Fmt.(list ~sep:comma Const.pp)
    n.bag
    (fun ppf -> function
      | [] -> ()
      | cs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp pp) cs)
    n.children
