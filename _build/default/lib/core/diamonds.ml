let query =
  Parse.query ~goal:"Goal"
    "W(x) <- A(x,y), B(y,v), C(x,z), D(z,v), U(v).
     W(x) <- A(x,y), B(y,v), C(x,z), D(z,v), W(v).
     Goal <- W(x), M(x)."

let views =
  [
    View.cq "S" (Parse.cq "s(x,y,z) <- M(x), A(x,y), C(x,z)");
    View.cq "R" (Parse.cq "r(y,z,y2,z2) <- B(y,v), D(z,v), A(v,y2), C(v,z2)");
    View.cq "T" (Parse.cq "t(y,z,v) <- U(v), B(y,v), D(z,v)");
  ]

let schema =
  Schema.of_list
    [ ("A", 2); ("B", 2); ("C", 2); ("D", 2); ("M", 1); ("U", 1) ]

let chain k =
  let p i = Const.named (Printf.sprintf "p%d" i) in
  let y i = Const.named (Printf.sprintf "y%d" i) in
  let z i = Const.named (Printf.sprintf "z%d" i) in
  let facts = ref [ Fact.make "M" [ p 0 ]; Fact.make "U" [ p (k + 1) ] ] in
  for i = 0 to k do
    facts :=
      Fact.make "A" [ p i; y i ]
      :: Fact.make "C" [ p i; z i ]
      :: Fact.make "B" [ y i; p (i + 1) ]
      :: Fact.make "D" [ z i; p (i + 1) ]
      :: !facts
  done;
  Instance.of_list !facts

(* the inverse rules of the three view definitions, applied to an instance
   over the view schema (proof of Theorem 7):
     S(x,y,z) → M(x) ∧ A(x,y) ∧ C(x,z)
     R(y,z,y',z') → ∃v B(y,v) ∧ D(z,v) ∧ A(v,y') ∧ C(v,z')
     T(y,z,v) → U(v) ∧ B(y,v) ∧ D(z,v) *)
let inverse_chase j =
  Instance.fold
    (fun (f : Fact.t) acc ->
      let a = f.args in
      match f.rel with
      | "S" ->
          Instance.union acc
            (Instance.of_list
               [
                 Fact.make "M" [ a.(0) ];
                 Fact.make "A" [ a.(0); a.(1) ];
                 Fact.make "C" [ a.(0); a.(2) ];
               ])
      | "R" ->
          let v = Const.fresh () in
          Instance.union acc
            (Instance.of_list
               [
                 Fact.make "B" [ a.(0); v ];
                 Fact.make "D" [ a.(1); v ];
                 Fact.make "A" [ v; a.(2) ];
                 Fact.make "C" [ v; a.(3) ];
               ])
      | "T" ->
          Instance.union acc
            (Instance.of_list
               [
                 Fact.make "U" [ a.(2) ];
                 Fact.make "B" [ a.(0); a.(2) ];
                 Fact.make "D" [ a.(1); a.(2) ];
               ])
      | _ -> acc)
    j Instance.empty

let unravelled_counterexample ~k ~depth =
  let jk = View.image views (chain k) in
  (* guarded (1,·)-unravelling: bags are the view-fact scopes (the facts of
     J_k have arity up to 4, wider than the pebble count) *)
  let u =
    Unravel.unravel ~one_sharing:true ~bags:(Unravel.fact_scopes jk) ~k:4
      ~depth jk
  in
  inverse_chase u.Unravel.instance
