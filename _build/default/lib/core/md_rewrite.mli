(** Rewriting algorithms (paper §4).

    - Proposition 8: a monotonically-determined CQ (UCQ) over arbitrary
      Datalog views has the polynomial-size CQ (UCQ) rewriting [V(Q)].
    - Inverse rules (appendix, after [14]): a Datalog query over CQ views
      has a Datalog certain-answer program, which is an exact rewriting
      under monotonic determinacy and is frontier-guarded when the query
      is (re-exported from {!Inverse_rules}).
    - The §3 forward–backward pipeline: for atomic views (full copies of
      the base relations, possibly renamed) we run it literally — forward
      map (Prop. 3), projection to the view signature (Prop. 5), backward
      map — producing a Datalog rewriting (the degenerate but fully
      faithful instance of Theorem 1's construction; the general FGDL-view
      automaton is discussed in DESIGN.md §5). *)

exception Unsupported of string

val prop8_cq : Cq.t -> View.collection -> Cq.t
(** The rewriting [V(Q)] over the view schema, for a Boolean CQ. *)

val prop8_ucq : Ucq.t -> View.collection -> Ucq.t

val inverse_rules : Datalog.query -> View.collection -> Datalog.query
(** Re-export of {!Inverse_rules.rewrite} (guarded). *)

val forward_backward_atomic :
  Datalog.query -> View.collection -> Datalog.query
(** The forward–projection–backward pipeline for a collection of atomic
    views covering every base relation of the query.
    @raise Unsupported otherwise. *)

val verify_boolean :
  Datalog.query -> Datalog.query -> View.collection -> Instance.t list -> bool
(** Differential check of a candidate Boolean rewriting [r]:
    [Q(I) = r(V(I))] on every sample instance. *)

val random_instances :
  ?n:int -> ?size:int -> seed:int -> Schema.t -> Instance.t list
(** Random instances over a schema, for differential testing. *)
