lib/core/md_decide.ml: Cq Cq_dta Datalog Dl_approx Dl_fragment Dta Fmt Forward List Md_tests Run Ucq View
