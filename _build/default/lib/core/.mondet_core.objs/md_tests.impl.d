lib/core/md_tests.ml: Array Const Cq Datalog Dl_approx Dl_eval Fact Fmt Hashtbl Instance List Seq View
