lib/core/md_tests.mli: Cq Datalog Fmt Instance Seq View
