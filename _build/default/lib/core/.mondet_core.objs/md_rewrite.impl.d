lib/core/md_rewrite.ml: Array Backward Const Cq Datalog Dl_eval Fact Forward Instance Inverse_rules List Nta Printf Random Schema String Ucq View
