lib/core/md_decide.mli: Cq Datalog Fmt Md_tests Ucq View
