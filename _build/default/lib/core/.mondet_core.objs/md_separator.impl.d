lib/core/md_separator.ml: Datalog Dl_eval Instance Inverse_rules List Md_tests Seq View
