lib/core/diamonds.ml: Array Const Fact Instance Parse Printf Schema Unravel View
