lib/core/md_separator.mli: Datalog Instance View
