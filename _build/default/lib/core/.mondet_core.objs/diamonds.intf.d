lib/core/diamonds.mli: Datalog Instance Schema View
