lib/core/md_rewrite.mli: Cq Datalog Instance Schema Ucq View
