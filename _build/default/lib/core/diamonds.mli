(** The Theorem 7 construction: a Monadic Datalog query over CQ views that
    is Datalog-rewritable but not MDL-rewritable.

    [Q] walks a chain of "diamonds" [A,B / C,D] from an [M]-point to a
    [U]-point; the views [S, R, T] expose diamond halves.  The paper shows
    the Duplicator wins (1,k)-pebble games between the view images of the
    chain [I_k] and of an instance [I'_k] built by unravelling the view
    image and chasing back with the inverse rules — so no MDL rewriting
    exists, while the inverse-rules algorithm gives a Datalog one. *)

val query : Datalog.query
(** Goal ← W(x), M(x);  W by diamond steps. *)

val views : View.collection
(** S(x,y,z), R(y,z,y',z'), T(y,z,v). *)

val chain : int -> Instance.t
(** [I_k]: a chain of k+1 diamonds from an [M]-point to a [U]-point
    (Figure 3(a)); satisfies the query. *)

val unravelled_counterexample :
  k:int -> depth:int -> Instance.t
(** [I'_k]: apply the inverse rules to a depth-bounded (1,k)-unravelling
    of the view image of [chain k] (the construction in the proof of
    Theorem 7).  Does not satisfy the query, yet is (1,k)-indistinguishable
    from [chain k] through the views at the stated depth. *)

val schema : Schema.t
