let of_rewriting r j = Dl_eval.holds_boolean r j

let certain_answers_cq_views q views j =
  Dl_eval.holds_boolean (Inverse_rules.rewrite q views) j

type chase_mode = Any | All

let chase_separator ?(mode = All) ?view_depth ?max_choices_per_fact
    ?(max_chases = 512) (q : Datalog.query) views j =
  let chases =
    Seq.take max_chases (Md_tests.chases ?view_depth ?max_choices_per_fact views j)
  in
  match mode with
  | Any -> Seq.exists (fun d -> Dl_eval.holds_boolean q d) chases
  | All ->
      (* the universal (co-NP) variant; on an empty chase set it is
         vacuously true, matching certain answers over no preimages *)
      Seq.for_all (fun d -> Dl_eval.holds_boolean q d) chases

let brute_force_certain ?(max_preimages = 50) (q : Datalog.query) views
    ~candidates j =
  let matching =
    List.filter (fun i -> Instance.subset j (View.image views i)) candidates
  in
  let rec first_n n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: first_n (n - 1) r
  in
  match first_n max_preimages matching with
  | [] -> None
  | ms -> Some (List.for_all (fun i -> Dl_eval.holds_boolean q i) ms)
