type map = Const.t Const.Map.t

let is_hom h src dst =
  let ok = ref true in
  Instance.iter
    (fun f ->
      if !ok then
        match
          Array.for_all (fun c -> Const.Map.mem c h) f.Fact.args
        with
        | false -> ok := false
        | true ->
            let f' = Fact.map (fun c -> Const.Map.find c h) f in
            if not (Instance.mem f' dst) then ok := false)
    src;
  !ok

(* Order the facts of [src] so that each fact (after the first) shares an
   element with an earlier fact whenever possible: this keeps the frontier
   of the backtracking search connected and prunes early. *)
let order_facts src =
  let fs = Instance.facts src in
  let rec go seen pending acc =
    match pending with
    | [] -> List.rev acc
    | _ ->
        let connected, rest =
          List.partition
            (fun f -> not (Const.Set.is_empty (Const.Set.inter (Fact.consts f) seen)))
            pending
        in
        (match (connected, rest) with
        | f :: more, _ ->
            go (Const.Set.union seen (Fact.consts f)) (more @ rest) (f :: acc)
        | [], f :: more ->
            go (Const.Set.union seen (Fact.consts f)) more (f :: acc)
        | [], [] -> List.rev acc)
  in
  go Const.Set.empty fs []

(* Enumerate homomorphisms extending [init]; call [yield] on each complete
   one.  [yield] returns [true] to continue enumeration, [false] to stop. *)
let enumerate ?(init = Const.Map.empty) src dst yield =
  let ordered = order_facts src in
  (* elements of src not covered by any fact still need images?  adom of an
     instance only contains elements in facts, so the fact ordering covers
     everything. *)
  let rec solve h = function
    | [] -> yield h
    | f :: rest ->
        let bound = ref [] in
        Array.iteri
          (fun i c ->
            match Const.Map.find_opt c h with
            | Some c' -> bound := (i, c') :: !bound
            | None -> ())
          f.Fact.args;
        let candidates = Instance.tuples_with dst f.Fact.rel !bound in
        let rec try_tuples = function
          | [] -> true
          | tup :: tups ->
              let h' = ref h and ok = ref true in
              Array.iteri
                (fun i c ->
                  if !ok then
                    match Const.Map.find_opt c !h' with
                    | Some c' -> if not (Const.equal c' tup.(i)) then ok := false
                    | None -> h' := Const.Map.add c tup.(i) !h')
                f.Fact.args;
              if !ok then if solve !h' rest then try_tuples tups else false
              else try_tuples tups
        in
        try_tuples candidates
  in
  ignore (solve init ordered)

let find ?init src dst =
  let result = ref None in
  enumerate ?init src dst (fun h ->
      result := Some h;
      false);
  !result

let exists ?init src dst = Option.is_some (find ?init src dst)

let all ?init ?(limit = 1000) src dst =
  let acc = ref [] and n = ref 0 in
  enumerate ?init src dst (fun h ->
      acc := h :: !acc;
      incr n;
      !n < limit);
  List.rev !acc

let count ?init ?(limit = 1000) src dst =
  let n = ref 0 in
  enumerate ?init src dst (fun _ ->
      incr n;
      !n < limit);
  !n

let compose g h = Const.Map.map (fun c -> match Const.Map.find_opt c g with Some c' -> c' | None -> c) h

let image h src = Instance.map (fun c -> Const.Map.find c h) src

let endo_core inst =
  let rec shrink inst =
    let dom = Const.Set.elements (Instance.adom inst) in
    let try_drop a =
      let target = Instance.filter (fun f -> not (Const.Set.mem a (Fact.consts f))) inst in
      find inst target
    in
    let rec loop = function
      | [] -> inst
      | a :: rest -> (
          match try_drop a with
          | Some h -> shrink (image h inst)
          | None -> loop rest)
    in
    loop dom
  in
  shrink inst

let pp_map ppf h =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:comma (fun ppf (a, b) -> Fmt.pf ppf "%a↦%a" Const.pp a Const.pp b))
    (Const.Map.bindings h)
