type t = Named of string | Fresh of int

let compare a b =
  match (a, b) with
  | Named x, Named y -> String.compare x y
  | Fresh i, Fresh j -> Int.compare i j
  | Named _, Fresh _ -> -1
  | Fresh _, Named _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Named s -> Hashtbl.hash (0, s)
  | Fresh i -> Hashtbl.hash (1, i)

let named s = Named s

let counter = ref 0

let fresh () =
  incr counter;
  Fresh !counter

let fresh_reset () = counter := 0
let is_fresh = function Fresh _ -> true | Named _ -> false

let to_string = function Named s -> s | Fresh i -> "_" ^ string_of_int i
let pp ppf c = Fmt.string ppf (to_string c)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
