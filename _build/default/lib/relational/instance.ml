module Tuple = struct
  type t = Const.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
end

module TS = Set.Make (Tuple)
module M = Map.Make (String)

type t = TS.t M.t

let empty = M.empty

let add (f : Fact.t) t =
  let ts = Option.value ~default:TS.empty (M.find_opt f.rel t) in
  M.add f.rel (TS.add f.args ts) t

let remove (f : Fact.t) t =
  match M.find_opt f.rel t with
  | None -> t
  | Some ts ->
      let ts = TS.remove f.args ts in
      if TS.is_empty ts then M.remove f.rel t else M.add f.rel ts t

let of_list fs = List.fold_left (fun t f -> add f t) empty fs
let of_facts fs = Fact.Set.fold add fs empty
let singleton f = add f empty

let fold g t acc =
  M.fold
    (fun rel ts acc -> TS.fold (fun args acc -> g { Fact.rel; args } acc) ts acc)
    t acc

let iter g t = fold (fun f () -> g f) t ()
let facts t = List.rev (fold (fun f acc -> f :: acc) t [])
let fact_set t = fold Fact.Set.add t Fact.Set.empty

let mem (f : Fact.t) t =
  match M.find_opt f.rel t with None -> false | Some ts -> TS.mem f.args ts

let size t = M.fold (fun _ ts n -> n + TS.cardinal ts) t 0
let is_empty t = M.for_all (fun _ ts -> TS.is_empty ts) t

let union a b =
  M.union (fun _ x y -> Some (TS.union x y)) a b

let diff a b =
  M.merge
    (fun _ x y ->
      match (x, y) with
      | None, _ -> None
      | Some x, None -> Some x
      | Some x, Some y ->
          let d = TS.diff x y in
          if TS.is_empty d then None else Some d)
    a b

let inter a b =
  M.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y ->
          let i = TS.inter x y in
          if TS.is_empty i then None else Some i
      | _ -> None)
    a b

let subset a b =
  M.for_all
    (fun rel ts ->
      match M.find_opt rel b with
      | None -> TS.is_empty ts
      | Some ts' -> TS.subset ts ts')
    a

let compare = M.compare TS.compare
let equal a b = compare a b = 0

let relations t =
  M.bindings t |> List.filter (fun (_, ts) -> not (TS.is_empty ts)) |> List.map fst

let tuples t rel =
  match M.find_opt rel t with None -> [] | Some ts -> TS.elements ts

let tuples_with t rel cs =
  let ok tup = List.for_all (fun (p, c) -> Const.equal tup.(p) c) cs in
  List.filter ok (tuples t rel)

let adom t =
  fold (fun f s -> Const.Set.union (Fact.consts f) s) t Const.Set.empty

let map h t = fold (fun f acc -> add (Fact.map h f) acc) t empty
let restrict p t = M.filter (fun rel _ -> p rel) t
let restrict_schema s t = restrict (Schema.mem s) t

let filter p t =
  fold (fun f acc -> if p f then add f acc else acc) t empty

let schema t =
  M.fold
    (fun rel ts s ->
      match TS.choose_opt ts with
      | None -> s
      | Some tup -> Schema.add rel (Array.length tup) s)
    t Schema.empty

let rename_apart t =
  let tbl = Hashtbl.create 16 in
  let rename c =
    match Hashtbl.find_opt tbl c with
    | Some c' -> c'
    | None ->
        let c' = Const.fresh () in
        Hashtbl.add tbl c c';
        c'
  in
  map rename t

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:semi Fact.pp) (facts t)
