(** String-keyed maps, shared across the code base. *)

include Map.Make (String)
