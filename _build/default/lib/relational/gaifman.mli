(** Gaifman graphs of instances: nodes are active-domain elements, with an
    edge between two elements whenever they co-occur in a fact.  Used for
    radius computations (Lemma 3) and connectivity of CQs. *)

type t

val of_instance : Instance.t -> t
val nodes : t -> Const.t list
val neighbours : t -> Const.t -> Const.Set.t

val distance : t -> Const.t -> Const.t -> int option
(** BFS distance; [None] if disconnected. *)

val eccentricity : t -> Const.t -> int option
(** Max distance to any node; [None] if the graph is disconnected. *)

val radius : t -> int option
(** [min_u max_v dist(u,v)]; [None] if disconnected, [Some 0] on empty or
    singleton graphs. *)

val connected : t -> bool
val components : t -> Const.Set.t list

val ball : t -> Const.t -> int -> Const.Set.t
(** All nodes within the given distance of the centre. *)
