lib/relational/gaifman.ml: Const Fact Hashtbl Instance List Option Queue
