lib/relational/hom.ml: Array Const Fact Fmt Instance List Option
