lib/relational/hom.mli: Const Fmt Instance
