lib/relational/instance.mli: Const Fact Fmt Schema
