lib/relational/smap.ml: Map String
