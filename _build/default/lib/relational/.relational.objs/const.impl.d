lib/relational/const.ml: Fmt Hashtbl Int Map Set String
