lib/relational/gaifman.mli: Const Instance
