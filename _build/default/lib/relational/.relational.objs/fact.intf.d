lib/relational/fact.mli: Const Fmt Set
