lib/relational/const.mli: Fmt Map Set
