lib/relational/fact.ml: Array Const Fmt Int Set String
