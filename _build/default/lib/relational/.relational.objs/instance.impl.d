lib/relational/instance.ml: Array Const Fact Fmt Hashtbl Int List Map Option Schema Set String
