type t = Const.Set.t Const.Map.t

let of_instance inst =
  let add_edge a b g =
    let upd x y g =
      let s = Option.value ~default:Const.Set.empty (Const.Map.find_opt x g) in
      Const.Map.add x (Const.Set.add y s) g
    in
    upd a b (upd b a g)
  in
  let ensure a g =
    if Const.Map.mem a g then g else Const.Map.add a Const.Set.empty g
  in
  Instance.fold
    (fun f g ->
      let cs = Const.Set.elements (Fact.consts f) in
      let g = List.fold_left (fun g c -> ensure c g) g cs in
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.fold_left (fun g (a, b) -> add_edge a b g) g (pairs cs))
    inst Const.Map.empty

let nodes g = List.map fst (Const.Map.bindings g)

let neighbours g c =
  Option.value ~default:Const.Set.empty (Const.Map.find_opt c g)

let bfs g start =
  let dist = Hashtbl.create 16 in
  Hashtbl.add dist start 0;
  let q = Queue.create () in
  Queue.add start q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let d = Hashtbl.find dist u in
    Const.Set.iter
      (fun v ->
        if not (Hashtbl.mem dist v) then (
          Hashtbl.add dist v (d + 1);
          Queue.add v q))
      (neighbours g u)
  done;
  dist

let distance g a b =
  if not (Const.Map.mem a g) then None
  else Hashtbl.find_opt (bfs g a) b

let eccentricity g a =
  let dist = bfs g a in
  if Hashtbl.length dist <> Const.Map.cardinal g then None
  else Hashtbl.fold (fun _ d m -> max d m) dist 0 |> Option.some

let radius g =
  if Const.Map.is_empty g then Some 0
  else
    List.fold_left
      (fun acc u ->
        match (acc, eccentricity g u) with
        | _, None -> acc
        | None, Some e -> Some e
        | Some r, Some e -> Some (min r e))
      None (nodes g)

let components g =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun u ->
      if Hashtbl.mem seen u then None
      else
        let dist = bfs g u in
        let comp =
          Hashtbl.fold (fun v _ s -> Const.Set.add v s) dist Const.Set.empty
        in
        Const.Set.iter (fun v -> Hashtbl.replace seen v ()) comp;
        Some comp)
    (nodes g)

let connected g = List.length (components g) <= 1

let ball g c r =
  let dist = bfs g c in
  Hashtbl.fold
    (fun v d s -> if d <= r then Const.Set.add v s else s)
    dist Const.Set.empty
