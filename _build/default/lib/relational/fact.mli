(** Ground facts [R(c1,...,cn)]. *)

type t = { rel : string; args : Const.t array }

val make : string -> Const.t list -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val arity : t -> int

val map : (Const.t -> Const.t) -> t -> t
(** [map h f] applies [h] to every argument of [f]. *)

val consts : t -> Const.Set.t
val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
