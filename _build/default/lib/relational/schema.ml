module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let add r n s =
  match M.find_opt r s with
  | Some m when m <> n ->
      invalid_arg
        (Printf.sprintf "Schema.add: %s redeclared with arity %d (was %d)" r n m)
  | _ -> M.add r n s

let of_list l = List.fold_left (fun s (r, n) -> add r n s) empty l
let arity s r = M.find_opt r s

let arity_exn s r =
  match M.find_opt r s with
  | Some n -> n
  | None -> invalid_arg ("Schema.arity_exn: unknown relation " ^ r)

let mem s r = M.mem r s
let relations s = M.bindings s
let names s = List.map fst (M.bindings s)
let union a b = M.fold add b a
let restrict p s = M.filter (fun r _ -> p r) s
let remove_all rs s = List.fold_left (fun s r -> M.remove r s) s rs
let equal = M.equal Int.equal

let pp ppf s =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:comma (fun ppf (r, n) -> Fmt.pf ppf "%s/%d" r n))
    (relations s)
