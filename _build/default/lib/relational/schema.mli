(** Relational schemas: finite maps from relation names to arities. *)

type t

val empty : t
val add : string -> int -> t -> t
(** [add r n s] declares relation [r] with arity [n].
    @raise Invalid_argument if [r] is already declared with a different arity. *)

val of_list : (string * int) list -> t
val arity : t -> string -> int option
val arity_exn : t -> string -> int
val mem : t -> string -> bool
val relations : t -> (string * int) list
val names : t -> string list

val union : t -> t -> t
(** Union of two schemas. @raise Invalid_argument on an arity clash. *)

val restrict : (string -> bool) -> t -> t
val remove_all : string list -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
