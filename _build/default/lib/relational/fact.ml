type t = { rel : string; args : Const.t array }

let make rel args = { rel; args = Array.of_list args }

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0
let arity f = Array.length f.args
let map h f = { f with args = Array.map h f.args }

let consts f = Array.fold_left (fun s c -> Const.Set.add c s) Const.Set.empty f.args

let pp ppf f =
  if Array.length f.args = 0 then Fmt.string ppf f.rel
  else Fmt.pf ppf "%s(%a)" f.rel Fmt.(array ~sep:comma Const.pp) f.args

let to_string f = Fmt.str "%a" pp f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
