(** Domain elements of database instances.

    Elements are either named (coming from user input or canonical databases
    of queries, where the name records the originating variable) or fresh
    nulls generated during chase steps and inverse-rule applications. *)

type t =
  | Named of string  (** a user-visible constant *)
  | Fresh of int  (** an anonymous null, identified by a unique integer *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val named : string -> t
(** [named s] is the constant written [s]. *)

val fresh : unit -> t
(** [fresh ()] is a globally fresh null.  Freshness is per-process. *)

val fresh_reset : unit -> unit
(** Reset the fresh-null counter.  Only for reproducible tests. *)

val is_fresh : t -> bool
val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
