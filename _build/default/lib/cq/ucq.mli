(** Unions of conjunctive queries. *)



type t = { disjuncts : Cq.t list }
(** All disjuncts must have the same arity. *)

val make : Cq.t list -> t
(** @raise Invalid_argument on arity mismatch or empty disjunct list. *)

val arity : t -> int
val of_cq : Cq.t -> t
val eval : t -> Instance.t -> Const.t array list
val holds : t -> Instance.t -> Const.t array -> bool
val holds_boolean : t -> Instance.t -> bool

val cq_contained_in : Cq.t -> t -> bool
(** [q ⊆ U] iff [q] is contained in some disjunct (Sagiv–Yannakakis). *)

val contained_in : t -> t -> bool
val equivalent : t -> t -> bool
val body_schema : t -> Schema.t
val pp : t Fmt.t
