

type t = { disjuncts : Cq.t list }

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: rest as all ->
      let a = Cq.arity q in
      List.iter
        (fun q' ->
          if Cq.arity q' <> a then invalid_arg "Ucq.make: arity mismatch")
        rest;
      { disjuncts = all }

let arity u = Cq.arity (List.hd u.disjuncts)
let of_cq q = { disjuncts = [ q ] }

let compare_tuple (a : Const.t array) b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a then 0
      else
        let c = Const.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let eval u inst =
  List.concat_map (fun q -> Cq.eval q inst) u.disjuncts
  |> List.sort_uniq compare_tuple

let holds u inst tup = List.exists (fun q -> Cq.holds q inst tup) u.disjuncts
let holds_boolean u inst = List.exists (fun q -> Cq.holds_boolean q inst) u.disjuncts

let cq_contained_in q u =
  List.exists (fun d -> Cq.contained_in q d) u.disjuncts

let contained_in u1 u2 =
  List.for_all (fun q -> cq_contained_in q u2) u1.disjuncts

let equivalent u1 u2 = contained_in u1 u2 && contained_in u2 u1

let body_schema u =
  List.fold_left
    (fun s q -> Schema.union s (Cq.body_schema q))
    Schema.empty u.disjuncts

let pp ppf u = Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ∪ ") Cq.pp) u.disjuncts
