(** Conjunctive queries.

    A CQ is a formula [q(x̄) = ∃ȳ φ(x̄,ȳ)] with [φ] a conjunction of
    relational atoms.  Following the paper, a CQ is identified with its
    canonical database whenever convenient: each variable becomes a fresh
    constant, and evaluation is homomorphism search. *)



type term = Var of string | Cst of Const.t

type atom = { rel : string; args : term list }

type t = {
  head : string list;  (** free variables, in output order *)
  body : atom list;
}

val atom : string -> term list -> atom
val make : head:string list -> atom list -> t
(** @raise Invalid_argument if a head variable does not occur in the body. *)

val boolean : atom list -> t
(** A Boolean CQ (empty head). *)

val arity : t -> int
val vars : t -> string list
(** All variables, head first, each once. *)

val exi_vars : t -> string list
(** Existential (non-head) variables. *)

val body_schema : t -> Schema.t

(** {1 Canonical database} *)

val const_of_var : string -> Const.t
(** The canonical-database constant for a variable.  Injective, and disjoint
    from constants produced by {!Const.named} on ordinary names. *)

val canonical_db : t -> Instance.t
(** [Canondb(Q)]: each atom becomes a fact, variables frozen via
    {!const_of_var}. *)

val head_consts : t -> Const.t list
(** The canonical constants of the head variables, in head order. *)

val of_instance : head:Const.t list -> Instance.t -> t
(** Read an instance back as a CQ: every element becomes a variable, the
    given elements become the head (in order).  Inverse of
    {!canonical_db} up to renaming. *)

(** {1 Evaluation} *)

val eval : t -> Instance.t -> Const.t array list
(** All output tuples (deduplicated). *)

val holds : t -> Instance.t -> Const.t array -> bool
val holds_boolean : t -> Instance.t -> bool

(** {1 Static analysis} *)

val contained_in : t -> t -> bool
(** [contained_in q1 q2] decides [q1 ⊆ q2] (homomorphism theorem). *)

val equivalent : t -> t -> bool

val minimize : t -> t
(** Core of the CQ: an equivalent CQ with minimal body. *)

val radius : t -> int option
(** Radius of the Gaifman graph of the canonical database (paper §2);
    [None] when disconnected. *)

val connected : t -> bool

val rename_vars : (string -> string) -> t -> t
val freshen : t -> t
(** Rename all variables to globally fresh names (for disjoint unions). *)

val conjoin : t -> t -> t
(** Conjunction; variable sets are assumed disjoint except for shared head
    variables.  Head is the concatenation (duplicates dropped). *)

val pp : t Fmt.t
val pp_atom : atom Fmt.t
