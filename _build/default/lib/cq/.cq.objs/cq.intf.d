lib/cq/cq.mli: Const Fmt Instance Schema
