lib/cq/cq.ml: Array Const Fact Fmt Gaifman Hashtbl Hom Instance Int List Printf Schema String
