lib/cq/ucq.mli: Const Cq Fmt Instance Schema
