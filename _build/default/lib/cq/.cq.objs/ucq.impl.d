lib/cq/ucq.ml: Array Const Cq Fmt Int List Schema
