(** Tiling problems (paper §6).

    A tiling problem [TP = (Tiles, HC, VC, IT, FT)] asks for an [n × m]
    grid assignment respecting horizontal/vertical compatibility with an
    initial tile at (1,1) and a final tile at (n,m).  Viewing [TP] as a
    relational structure [I_TP] over [δ = {H, V, I, F}], an instance over
    [δ] can be tiled iff it maps homomorphically into [I_TP]. *)

type t = {
  tiles : string list;
  hc : (string * string) list;  (** horizontally compatible pairs *)
  vc : (string * string) list;
  init : string list;  (** IT *)
  final : string list;  (** FT *)
}

val structure : t -> Instance.t
(** [I_TP]: domain [tiles], [H]/[V] from the compatibility relations,
    [I]/[F] from the initial/final sets. *)

val grid : int -> int -> Instance.t
(** [I^grid_{n,m}] over δ: H/V edges, I((1,1)), F((n,m)). *)

val grid_point : int -> int -> Const.t

val can_tile : Instance.t -> t -> bool
(** Homomorphism into {!structure}. *)

val tiling_of : Instance.t -> t -> (Const.t * string) list option
(** An explicit tiling (element → tile name), if one exists. *)

val has_solution : ?max:int -> t -> (int * int) option
(** Search for the smallest solvable [n × m] grid with [n, m ≤ max]
    (default 6). *)

val horizontally_compatible : t -> string -> string -> bool
val vertically_compatible : t -> string -> string -> bool

val simple_solvable : t
(** A tiny solvable problem (used in tests and benches). *)

val simple_unsolvable : t
(** A tiny unsolvable problem (incompatible initial and final rows). *)
