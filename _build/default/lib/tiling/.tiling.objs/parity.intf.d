lib/tiling/parity.mli: Tiling
