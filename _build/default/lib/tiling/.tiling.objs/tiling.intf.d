lib/tiling/tiling.mli: Const Instance
