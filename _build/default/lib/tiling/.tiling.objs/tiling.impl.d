lib/tiling/tiling.ml: Const Fact Fmt Hom Instance List Printf String
