lib/tiling/reduction.ml: Array Const Cq Datalog Dl_eval Fact Instance List Parse Printf Schema Tiling Ucq View
