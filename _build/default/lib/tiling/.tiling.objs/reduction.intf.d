lib/tiling/reduction.mli: Cq Datalog Instance Schema Tiling View
