lib/tiling/parity.ml: Char List Printf String Tiling
