(** The Theorem 6 reduction: from a tiling problem [TP] to an MDL query
    [Q_TP] and UCQ views [V_TP] such that [Q_TP] is monotonically
    determined by [V_TP] iff [TP] has no solution (Prop. 10).

    Conventions (the paper's Figures 1–2): the x-axis is a chain of
    [XSucc] atoms marked [D], the y-axis a chain of [YSucc] atoms marked
    [C], both starting at a common origin; grid points are linked to the
    axes by [XProj]/[YProj]; [XEnd]/[YEnd] mark the axis tips.  (We fix
    two evident typos of the conference version: the [D]/[C] marks in the
    [A]/[B] rules are swapped to match the instance [I_ℓ] of Theorem 8,
    and rule (10) projects the grid point onto both axes.  We additionally
    make [Qstart] take one marked step on each axis: approximations with
    an empty axis would otherwise have an empty [S] view and lose the
    other axis's marks, breaking Prop. 10 — see EXPERIMENTS.md,
    finding 2.) *)

val schema_sigma : Tiling.t -> Schema.t
(** σ: XSucc, YSucc, C, D, XEnd, YEnd, XProj, YProj, and one unary
    relation per tile. *)

val query : Tiling.t -> Datalog.query
(** [Q_TP = Qstart ∨ Qhelper ∨ Qverify] as a single MDL query. *)

val views : Tiling.t -> View.collection
(** [V_TP]: the grid-generating UCQ view [S], atomic views for the
    successor/end relations and tiles, and the special views
    [VhelperC, VhelperD, VHA, VVA, VI, VF]. *)

val ha_cq : Cq.t
(** HA(z1,z2,x1,x2,y): z2 is the right neighbour of z1 (Figure 1(b)). *)

val va_cq : Cq.t
(** VA(z1,z2,x,y1,y2): z2 is the upper neighbour of z1. *)

val axes : int -> Instance.t
(** [I_ℓ] (Figure 2(a)): the two marked axes of length ℓ with a common
    origin — the canonical expansion of [Qstart]. *)

val grid_test : Tiling.t -> tau:(int -> int -> string) -> int -> int -> Instance.t
(** Figure 1(a): the grid-like canonical test for an [n × m] grid with the
    tile assignment [tau] — the instance obtained from the view image of
    {!axes} by expanding every [S]-atom with the tile-projection disjunct. *)

val tile_rel : string -> string
(** Relation name of a tile's unary predicate. *)

val stratified_rewriting : Tiling.t -> Instance.t -> bool
(** The appendix's positive Boolean combination of Datalog queries and a
    relational-algebra product test:
    [∃VhC ∨ ∃VhD ∨ Q*verify ∨ (Q*start ∧ ProductTest)], evaluated over a
    view-schema instance.  When no rectangular grid can be tiled by the
    problem, this is an exact rewriting of [Q_TP] over [V_TP] — i.e. the
    Theorem 8 example, though not Datalog-rewritable, is rewritable in
    stratified Datalog.  [Q*start] reads the [C]/[D] marks from the
    projections of [S]; [ProductTest] checks [S = π₁(S) × π₂(S)]. *)
