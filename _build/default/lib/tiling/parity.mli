(** The tiling problem [TP*] of Lemma 6 (after Atserias–Bulatov–Dalmau).

    Tiles are pairs of an "abstract grid point" [u] of the 3×3 template
    grid and a 0/1 assignment to the edges of the template incident to
    [u], with even parity everywhere except at the lower-left corner
    (odd).  Compatibility makes adjacent concrete points agree on shared
    edges.  No rectangular grid can be tiled (a global parity argument:
    every edge is counted twice, but the corner demands odd total), yet
    every k-unravelling of a large enough grid can — equivalently
    (Fact 1), [I^grid →k I_TP*] while [I^grid ↛ I_TP*].  This witnesses
    a monotonically-determined MDL query over UCQ views with no Datalog
    rewriting (Theorem 8). *)

val tp_star : Tiling.t

val tile_name : int * int -> int list -> string
(** [tile_name (i,j) bits]: the tile for template point (i,j) with the
    given incident-edge bits (in the canonical edge order). *)

val template_point : string -> int * int
(** First-coordinate projection π1. *)

val incident_edges : int * int -> ((int * int) * (int * int)) list
(** The canonical enumeration of the template edges at a point; each edge
    is (lower-left endpoint, upper-right endpoint). *)
