(* template points are (i,j) with 1 ≤ i,j ≤ 3; an edge is a pair of
   adjacent points, normalized with the smaller point first *)

let points = List.concat (List.init 3 (fun i -> List.init 3 (fun j -> (i + 1, j + 1))))

let edge a b = if a <= b then (a, b) else (b, a)

let incident_edges (i, j) =
  let cand =
    [
      ((i, j), (i + 1, j));  (* right *)
      ((i - 1, j), (i, j));  (* left *)
      ((i, j), (i, j + 1));  (* up *)
      ((i, j), (i, j - 1));  (* down; normalized below *)
    ]
  in
  List.filter_map
    (fun (a, b) ->
      let (ax, ay), (bx, by) = (a, b) in
      if ax >= 1 && ax <= 3 && ay >= 1 && ay <= 3
         && bx >= 1 && bx <= 3 && by >= 1 && by <= 3
      then Some (edge a b)
      else None)
    cand

let tile_name (i, j) bits =
  Printf.sprintf "p%d%d:%s" i j
    (String.concat "" (List.map string_of_int bits))

let template_point name =
  (Char.code name.[1] - Char.code '0', Char.code name.[2] - Char.code '0')

let tile_bits name =
  let s = String.sub name 4 (String.length name - 4) in
  List.init (String.length s) (fun i -> Char.code s.[i] - Char.code '0')

(* all 0/1 vectors of length n with given parity *)
let bit_vectors n parity =
  let rec go n =
    if n = 0 then [ [] ]
    else List.concat_map (fun t -> [ 0 :: t; 1 :: t ]) (go (n - 1))
  in
  List.filter (fun bs -> List.fold_left ( + ) 0 bs mod 2 = parity) (go n)

let tiles_of_point u =
  let parity = if u = (1, 1) then 1 else 0 in
  List.map (tile_name u) (bit_vectors (List.length (incident_edges u)) parity)

let all_tiles = List.concat_map tiles_of_point points

let bit_of name e =
  let u = template_point name in
  let bits = tile_bits name in
  let rec idx i = function
    | [] -> None
    | e' :: rest -> if e' = e then Some (List.nth bits i) else idx (i + 1) rest
  in
  idx 0 (incident_edges u)

(* compatibility of two tiles sharing template edge e (t1's edge e must
   agree with t2's edge e') *)
let agree t1 e1 t2 e2 =
  match (bit_of t1 e1, bit_of t2 e2) with
  | Some b1, Some b2 -> b1 = b2
  | _ -> false

let horizontal_pairs =
  let pairs = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let (i1, j1) = template_point t1 and (i2, j2) = template_point t2 in
          let ok =
            if i2 = i1 + 1 && j2 = j1 && i1 < 3 then
              (* distinct adjacent template points *)
              let e = edge (i1, j1) (i2, j2) in
              agree t1 e t2 e
            else if (i1, j1) = (i2, j2) && i1 = 2 then
              (* same middle-column point: t1's right edge = t2's left edge *)
              let e_right = edge (2, j1) (3, j1) in
              let e_left = edge (1, j1) (2, j1) in
              agree t1 e_right t2 e_left
            else false
          in
          if ok then pairs := (t1, t2) :: !pairs)
        all_tiles)
    all_tiles;
  !pairs

let vertical_pairs =
  let pairs = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let (i1, j1) = template_point t1 and (i2, j2) = template_point t2 in
          let ok =
            if j2 = j1 + 1 && i2 = i1 && j1 < 3 then
              let e = edge (i1, j1) (i2, j2) in
              agree t1 e t2 e
            else if (i1, j1) = (i2, j2) && j1 = 2 then
              (* same middle-row point: t1's up edge = t2's down edge *)
              let e_up = edge (i1, 2) (i1, 3) in
              let e_down = edge (i1, 1) (i1, 2) in
              agree t1 e_up t2 e_down
            else false
          in
          if ok then pairs := (t1, t2) :: !pairs)
        all_tiles)
    all_tiles;
  !pairs

let tp_star =
  {
    Tiling.tiles = all_tiles;
    hc = horizontal_pairs;
    vc = vertical_pairs;
    init = List.filter (fun t -> template_point t = (1, 1)) all_tiles;
    final = List.filter (fun t -> template_point t = (3, 3)) all_tiles;
  }
