(** The inverse-rules algorithm of Duschka–Genesereth–Levy [14], as
    described in the paper's appendix ("Rewritability results inherited
    from prior work").

    Given a Datalog query [Q] over the base schema and a collection of
    {b CQ} views, the algorithm produces a Datalog query over the view
    schema computing the certain answers of [Q] w.r.t. the views
    (Theorem 10).  When [Q] is monotonically determined over the views the
    result is an exact rewriting; when [Q] is frontier-guarded the
    {!rewrite} output is frontier-guarded as well (each rule is guarded by
    a view atom, as in the appendix's Example 5).

    Pipeline: skolemized inverse rules → defunctionalization via annotated
    predicates → frontier-guarding.  Terms never nest (inverse-rule heads
    are the only place skolems are introduced, and query rules are
    function-free), so annotations assign each variable either the plain
    shape or a single skolem symbol. *)

exception Unsupported of string
(** Raised when the query or views fall outside the algorithm's scope:
    non-CQ view definitions, constants in rule bodies or view definitions,
    or repeated variables in rule heads. *)

type annotation = Plain | Sk of string * int
(** The shape of a defunctionalized position: either a single base-domain
    variable, or the skolem function of that name and arity applied to the
    view's distinguished variables. *)

val skolem_name : view:string -> var:string -> string

val rewrite : ?guard:bool -> Datalog.query -> View.collection -> Datalog.query
(** The defunctionalized certain-answer program, a Datalog query over the
    view schema.  With [guard] (default true) every rule is conjoined with
    the guarding view atom, making the output frontier-guarded whenever the
    input query is. *)

val certain_answers :
  Datalog.query -> View.collection -> Instance.t -> Const.t array list
(** Certain answers of [Q] w.r.t. the views over an arbitrary instance of
    the view schema (Theorem 10): evaluates the {!rewrite} program. *)
