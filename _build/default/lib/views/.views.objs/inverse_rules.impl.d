lib/views/inverse_rules.ml: Array Cq Datalog Dl_eval Format Hashtbl List Option Printf Queue Smap String View
