lib/views/view.mli: Cq Datalog Fact Fmt Instance Schema Ucq
