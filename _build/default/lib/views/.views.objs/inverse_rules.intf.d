lib/views/inverse_rules.mli: Const Datalog Instance View
