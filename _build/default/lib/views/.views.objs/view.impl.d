lib/views/view.ml: Const Cq Datalog Dl_approx Dl_eval Dl_fragment Fact Fmt Gaifman Instance List Printf Schema String Ucq
