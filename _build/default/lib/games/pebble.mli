(** Existential pebble games (paper §7).

    The Duplicator wins the existential k-pebble game on [(I, I')] iff
    there is a non-empty family of partial homomorphisms of domain size
    ≤ k that is closed under restrictions and has the forth (extension)
    property (Fact 5).  We compute the greatest such family by the
    standard k-consistency deletion fixpoint.

    [I →k I'] (Duplicator wins) is implied by [I → I'] and, by Fact 1,
    coincides with "every instance of treewidth < k mapping into [I] also
    maps into [I']". *)

type family
(** A winning family of partial homomorphisms. *)

val kconsistent : k:int -> Instance.t -> Instance.t -> family option
(** The greatest winning family for the existential k-pebble game, or
    [None] when the Spoiler wins. *)

val duplicator_wins : k:int -> Instance.t -> Instance.t -> bool

val one_k_consistent : k:int -> Instance.t -> Instance.t -> bool
(** The (1,k) variant used against Monadic Datalog (Fact 3): between
    moves at most one pebble keeps its position, so the family must allow
    jumping from any placement to any other domain set while preserving a
    single chosen pebble. *)

val family_size : family -> int
val family_mem : family -> (Const.t * Const.t) list -> bool
(** Is the given partial map (sorted or not) in the family? *)
