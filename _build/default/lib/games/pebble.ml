(* Elements of both instances are re-indexed as small integers; a partial
   map is a sorted association list [(x1,b1); ...] encoded as the flat int
   list [x1;b1;x2;b2;...] for hashing. *)

type family = {
  src : Const.t array;
  dst : Const.t array;
  maps : (int list, unit) Hashtbl.t;
}

let family_size f = Hashtbl.length f.maps

let index_of arr c =
  let n = Array.length arr in
  let rec go i =
    if i >= n then None
    else if Const.equal arr.(i) c then Some i
    else go (i + 1)
  in
  go 0

let family_mem fam assoc =
  let enc =
    List.sort compare
      (List.filter_map
         (fun (a, b) ->
           match (index_of fam.src a, index_of fam.dst b) with
           | Some x, Some y -> Some (x, y)
           | _ -> None)
         assoc)
  in
  if List.length enc <> List.length assoc then false
  else Hashtbl.mem fam.maps (List.concat_map (fun (x, y) -> [ x; y ]) enc)

(* ------------------------------------------------------------------ *)

type ctx = {
  n : int;
  m : int;
  src_facts : (string * int array) list;
  (* facts of the target, as a membership set *)
  dst_facts : (string * int list, unit) Hashtbl.t;
}

let make_ctx i i' =
  let src = Array.of_list (Const.Set.elements (Instance.adom i)) in
  let dst = Array.of_list (Const.Set.elements (Instance.adom i')) in
  let idx arr =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun j c -> Hashtbl.add tbl c j) arr;
    fun c -> Hashtbl.find tbl c
  in
  let si = idx src and di = idx dst in
  let src_facts =
    List.map
      (fun (f : Fact.t) -> (f.rel, Array.map si f.args))
      (Instance.facts i)
  in
  let dst_facts = Hashtbl.create 256 in
  List.iter
    (fun (f : Fact.t) ->
      Hashtbl.replace dst_facts
        (f.rel, Array.to_list (Array.map di f.args))
        ())
    (Instance.facts i');
  (src, dst, { n = Array.length src; m = Array.length dst; src_facts; dst_facts })

(* is the partial map (assoc sorted list) a partial homomorphism? *)
let valid ctx assoc =
  List.for_all
    (fun (rel, args) ->
      let imgs =
        Array.map (fun x -> List.assoc_opt x assoc) args
      in
      if Array.for_all Option.is_some imgs then
        Hashtbl.mem ctx.dst_facts
          (rel, Array.to_list (Array.map Option.get imgs))
      else true)
    ctx.src_facts

let encode assoc = List.concat_map (fun (x, y) -> [ x; y ]) assoc

(* all sorted domains of size ≤ k over 0..n-1 *)
let domains n k =
  let rec go start size =
    if size = 0 then [ [] ]
    else
      List.concat
        (List.init (n - start) (fun d ->
             let x = start + d in
             List.map (fun rest -> x :: rest) (go (x + 1) (size - 1))))
  in
  List.concat (List.init (k + 1) (fun size -> go 0 size))

(* all assignments of a sorted domain into 0..m-1 *)
let rec assignments m = function
  | [] -> [ [] ]
  | x :: rest ->
      let tails = assignments m rest in
      List.concat
        (List.init m (fun b -> List.map (fun t -> (x, b) :: t) tails))

let kconsistent ~k i i' =
  let src, dst, ctx = make_ctx i i' in
  if ctx.m = 0 && ctx.n > 0 then None
  else begin
    let h : (int list, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
    List.iter
      (fun dom ->
        List.iter
          (fun assoc -> if valid ctx assoc then Hashtbl.replace h (encode assoc) assoc)
          (assignments ctx.m dom))
      (domains ctx.n k);
    let mem assoc = Hashtbl.mem h (encode assoc) in
    let remove assoc = Hashtbl.remove h (encode assoc) in
    (* deletion sweeps to fixpoint *)
    let changed = ref true in
    while !changed do
      changed := false;
      let entries = Hashtbl.fold (fun _ assoc acc -> assoc :: acc) h [] in
      List.iter
        (fun assoc ->
          if mem assoc then
            let size = List.length assoc in
            (* closure under restrictions *)
            let restriction_ok =
              List.for_all
                (fun (x, _) ->
                  mem (List.filter (fun (x', _) -> x' <> x) assoc))
                assoc
            in
            (* forth property *)
            let forth_ok =
              size >= k
              || (let rec all_elems a =
                    if a >= ctx.n then true
                    else if List.mem_assoc a assoc then all_elems (a + 1)
                    else
                      let rec some_b b =
                        if b >= ctx.m then false
                        else
                          let ext =
                            List.sort compare ((a, b) :: assoc)
                          in
                          if mem ext then true else some_b (b + 1)
                      in
                      some_b 0 && all_elems (a + 1)
                  in
                  all_elems 0)
            in
            if not (restriction_ok && forth_ok) then (
              remove assoc;
              changed := true))
        entries
    done;
    if Hashtbl.mem h [] then
      let maps = Hashtbl.create (Hashtbl.length h) in
      Hashtbl.iter (fun key _ -> Hashtbl.replace maps key ()) h;
      Some { src; dst; maps }
    else None
  end

let duplicator_wins ~k i i' = Option.is_some (kconsistent ~k i i')

(* ------------------------------------------------------------------ *)
(* (1,k) games: since at most one pebble survives a move, the winning
   family is generated by its single-pebble members: a pair (x,b) is good
   iff for every ≤k-element domain S containing x there is a valid map on
   S sending x to b all of whose pairs are good.  The family of all valid
   maps whose pairs are good is then restriction-closed and has the
   required jumping property. *)

let one_k_consistent ~k i i' =
  let _, _, ctx = make_ctx i i' in
  if ctx.n = 0 then true
  else if ctx.m = 0 then false
  else begin
    let good = Hashtbl.create 256 in
    for x = 0 to ctx.n - 1 do
      for b = 0 to ctx.m - 1 do
        if valid ctx [ (x, b) ] then Hashtbl.replace good (x, b) ()
      done
    done;
    let doms = domains ctx.n k in
    (* backtracking search for a valid all-good assignment of [dom]
       extending [seed]; facts are checked incrementally as soon as their
       last element gets assigned *)
    let exists_assignment dom seed =
      let facts_within =
        List.filter
          (fun (_, args) -> Array.for_all (fun a -> List.mem a dom) args)
          ctx.src_facts
      in
      let check assoc =
        List.for_all
          (fun (rel, args) ->
            let imgs = Array.map (fun a -> List.assoc_opt a assoc) args in
            (not (Array.for_all Option.is_some imgs))
            || Hashtbl.mem ctx.dst_facts
                 (rel, Array.to_list (Array.map Option.get imgs)))
          facts_within
      in
      let rec go assoc = function
        | [] -> true
        | x :: rest ->
            if List.mem_assoc x assoc then
              check assoc && go assoc rest
            else
              let rec try_b b =
                b < ctx.m
                && ((Hashtbl.mem good (x, b)
                    &&
                    let assoc' = (x, b) :: assoc in
                    check assoc' && go assoc' rest)
                   || try_b (b + 1))
              in
              try_b 0
      in
      go seed dom
    in
    let supported x b =
      List.for_all
        (fun dom -> (not (List.mem x dom)) || exists_assignment dom [ (x, b) ])
        doms
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun (x, b) () ->
          if not (supported x b) then (
            Hashtbl.remove good (x, b);
            changed := true))
        (Hashtbl.copy good)
    done;
    (* duplicator must be able to answer any initial placement *)
    List.for_all (fun dom -> dom = [] || exists_assignment dom []) doms
  end
