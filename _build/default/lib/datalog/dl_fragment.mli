(** Fragments of Datalog used in the paper: Monadic Datalog (MDL) and
    frontier-guarded Datalog (FGDL). *)

val is_monadic : Datalog.program -> bool
(** All intensional predicates have arity ≤ 1 (we allow the 0-ary goal
    predicates the paper's constructions use). *)

val is_frontier_guarded_rule : Datalog.program -> Datalog.rule -> bool
(** All head variables co-occur in a single extensional body atom. *)

val is_frontier_guarded : Datalog.program -> bool
(** FGDL in the paper's sense: either syntactically frontier-guarded, or
    monadic (the paper declares MDL ⊆ FGDL by convention). *)

val is_syntactically_frontier_guarded : Datalog.program -> bool

val is_nonrecursive : Datalog.program -> bool
(** No IDB depends on itself. *)

val is_linear : Datalog.program -> bool
(** Every rule body has at most one IDB atom. *)

type fragment = CQ | UCQ | MDL | FGDL | DATALOG

val classify : Datalog.query -> fragment
(** The smallest fragment (in the paper's hierarchy) containing the
    query. *)

val pp_fragment : fragment Fmt.t

val to_ucq : Datalog.query -> Ucq.t option
(** For a nonrecursive query: the equivalent UCQ (full unfolding). *)
