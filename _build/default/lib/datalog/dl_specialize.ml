let repeat_pattern (args : Cq.term list) =
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  let pattern =
    List.mapi
      (fun i t ->
        match t with
        | Cq.Cst _ ->
            ok := false;
            i
        | Cq.Var v -> (
            match Hashtbl.find_opt seen v with
            | Some j -> j
            | None ->
                Hashtbl.add seen v i;
                i))
      args
  in
  if !ok then Some pattern else None

let is_identity pattern = List.for_all2 ( = ) pattern (List.mapi (fun i _ -> i) pattern)

let specialized_name pred pattern =
  Printf.sprintf "%s^%s" pred (String.concat "" (List.map string_of_int pattern))

let subst_term m = function
  | Cq.Cst c -> Cq.Cst c
  | Cq.Var v -> ( match Smap.find_opt v m with Some t -> t | None -> Cq.Var v)

let subst_atom m (a : Cq.atom) = { a with args = List.map (subst_term m) a.args }

let transform (q : Datalog.query) =
  let idb = Datalog.is_idb q.Datalog.program in
  let out = ref [] in
  let done_ = Hashtbl.create 16 in
  let worklist = Queue.create () in
  (* rewrite a body atom, enqueuing needed specializations *)
  let rewrite_atom (a : Cq.atom) =
    if not (idb a.Cq.rel) then a
    else
      match repeat_pattern a.Cq.args with
      | None -> invalid_arg "Dl_specialize: constant in an intensional atom"
      | Some pattern when is_identity pattern -> a
      | Some pattern ->
          let name = specialized_name a.Cq.rel pattern in
          if not (Hashtbl.mem done_ (a.Cq.rel, pattern)) then (
            Hashtbl.add done_ (a.Cq.rel, pattern) ();
            Queue.add (a.Cq.rel, pattern) worklist);
          let reduced =
            List.filteri (fun i _ -> List.nth pattern i = i) a.Cq.args
          in
          { Cq.rel = name; args = reduced }
  in
  (* original rules, with bodies rewritten *)
  List.iter
    (fun (r : Datalog.rule) ->
      out :=
        Datalog.rule r.Datalog.head (List.map rewrite_atom r.Datalog.body)
        :: !out)
    q.Datalog.program;
  (* specialized rules *)
  while not (Queue.is_empty worklist) do
    let pred, pattern = Queue.pop worklist in
    List.iter
      (fun (r : Datalog.rule) ->
        let hv =
          List.map
            (function
              | Cq.Var v -> v
              | Cq.Cst _ -> invalid_arg "Dl_specialize: constant in a head")
            r.Datalog.head.Cq.args
        in
        if List.length hv <> List.length (List.sort_uniq String.compare hv)
        then invalid_arg "Dl_specialize: repeated head variables";
        let hv_arr = Array.of_list hv in
        (* unify head variables per the pattern *)
        let m =
          List.fold_left
            (fun m (i, j) ->
              if i = j then m
              else Smap.add hv_arr.(i) (Cq.Var hv_arr.(j)) m)
            Smap.empty
            (List.mapi (fun i j -> (i, j)) pattern)
        in
        let head_args =
          List.filteri (fun i _ -> List.nth pattern i = i) r.Datalog.head.Cq.args
        in
        let head =
          { Cq.rel = specialized_name pred pattern; args = head_args }
        in
        let body =
          List.map (fun a -> rewrite_atom (subst_atom m a)) r.Datalog.body
        in
        out := Datalog.rule head body :: !out)
      (Datalog.rules_for q.Datalog.program pred)
  done;
  Datalog.query (List.rev !out) q.Datalog.goal
