(** Elimination of repeated variables in intensional body atoms.

    An atom [P(x,y,x)] is replaced by [P^010(x,y)], where the new
    predicate is defined by the rules of [P] with head variables unified
    according to the pattern.  The transformation is semantics-preserving
    and produces a program in which every intensional body atom has
    pairwise-distinct variables — the shape required by the forward
    mapping (Prop. 3), whose codes connect child bags through partial
    1-1 maps. *)

val repeat_pattern : Cq.term list -> int list option
(** First-occurrence pattern of the variables, or [None] if the atom
    contains a constant.  [Some [0;1;0]] for [(x,y,x)]; the identity
    pattern means no repetition. *)

val specialized_name : string -> int list -> string

val transform : Datalog.query -> Datalog.query
(** The specialized query (same goal; the goal predicate is never
    specialized since it is not a body atom of itself... it is renamed only
    if some rule uses it with repeats).
    @raise Invalid_argument on constants in intensional atoms or repeated
    head variables. *)
