let is_monadic p =
  let idb_schema = Datalog.idb_schema p in
  List.for_all (fun (_, n) -> n <= 1) (Schema.relations idb_schema)

let is_frontier_guarded_rule p (r : Datalog.rule) =
  let hv = Datalog.head_vars r |> List.sort_uniq String.compare in
  hv = []
  || List.exists
       (fun (a : Cq.atom) ->
         (not (Datalog.is_idb p a.rel))
         && List.for_all
              (fun v -> List.mem (Cq.Var v) a.args)
              hv)
       r.body

let is_syntactically_frontier_guarded p =
  List.for_all (is_frontier_guarded_rule p) p

let is_frontier_guarded p = is_syntactically_frontier_guarded p || is_monadic p

let is_nonrecursive p =
  List.for_all (fun name -> not (Datalog.depends_on p name name)) (Datalog.idbs p)

let is_linear p =
  List.for_all
    (fun (r : Datalog.rule) ->
      List.length (List.filter (fun (a : Cq.atom) -> Datalog.is_idb p a.rel) r.body)
      <= 1)
    p

type fragment = CQ | UCQ | MDL | FGDL | DATALOG

let classify (q : Datalog.query) =
  if is_nonrecursive q.program then
    (* nonrecursive queries over a single goal: CQ if one goal rule and no
       auxiliary IDBs feed it through multiple rules *)
    match Dl_approx.complete_unfolding ~max_count:64 q with
    | Some [ _ ] -> CQ
    | Some _ -> UCQ
    | None -> if is_monadic q.program then MDL
              else if is_syntactically_frontier_guarded q.program then FGDL
              else DATALOG
  else if is_monadic q.program then MDL
  else if is_syntactically_frontier_guarded q.program then FGDL
  else DATALOG

let pp_fragment ppf f =
  Fmt.string ppf
    (match f with
    | CQ -> "CQ"
    | UCQ -> "UCQ"
    | MDL -> "MDL"
    | FGDL -> "FGDL"
    | DATALOG -> "Datalog")

let to_ucq (q : Datalog.query) =
  match Dl_approx.complete_unfolding q with
  | None -> None
  | Some [] -> None
  | Some qs -> Some (Ucq.make qs)
