lib/datalog/dl_normalize.mli: Cq Datalog
