lib/datalog/dl_approx.ml: Cq Datalog Fmt Hashtbl List Printf Schema Smap String
