lib/datalog/dl_binarize.ml: Cq Datalog List Printf String
