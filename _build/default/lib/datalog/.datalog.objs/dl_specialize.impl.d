lib/datalog/dl_specialize.ml: Array Cq Datalog Hashtbl List Printf Queue Smap String
