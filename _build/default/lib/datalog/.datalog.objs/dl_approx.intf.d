lib/datalog/dl_approx.mli: Cq Datalog
