lib/datalog/dl_eval.mli: Const Cq Datalog Instance Smap
