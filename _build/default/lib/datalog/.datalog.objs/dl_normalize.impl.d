lib/datalog/dl_normalize.ml: Cq Datalog List Option Smap String
