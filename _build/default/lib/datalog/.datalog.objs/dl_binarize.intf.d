lib/datalog/dl_binarize.mli: Datalog
