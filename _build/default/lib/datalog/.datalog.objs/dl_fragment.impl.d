lib/datalog/dl_fragment.ml: Cq Datalog Dl_approx Fmt List Schema String Ucq
