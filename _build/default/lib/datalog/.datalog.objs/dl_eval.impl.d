lib/datalog/dl_eval.ml: Array Const Cq Datalog Fact Instance List Smap
