lib/datalog/dl_fragment.mli: Datalog Fmt Ucq
