lib/datalog/datalog.mli: Cq Fmt Schema Ucq
