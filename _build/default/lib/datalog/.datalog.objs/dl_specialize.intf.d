lib/datalog/dl_specialize.mli: Cq Datalog
