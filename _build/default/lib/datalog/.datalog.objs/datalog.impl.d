lib/datalog/datalog.ml: Cq Fmt Hashtbl List Printf Schema String Ucq
