(** CQ approximations of Datalog queries (paper §2, Proposition 1).

    [CQAppr(Π, U(x̄), i)] is defined by induction: at depth 1, bodies of
    [U]-rules without intensional atoms; at depth [i+1], bodies of
    [U]-rules with every intensional atom replaced by one of its
    approximations of depth ≤ [i].  Every output tuple of a Datalog query
    is witnessed by some approximation (Prop. 1), so approximations drive
    the canonical tests of §5.

    Rule heads must have pairwise-distinct variables (all of the paper's
    constructions comply); {!approximations} raises [Invalid_argument]
    otherwise. *)

val approximations_of_pred :
  ?max_depth:int ->
  ?max_count:int ->
  Datalog.program ->
  string ->
  Cq.t list
(** Approximations of predicate [p]; the CQ heads are the formal variables
    [p#0 … p#(n-1)].  Defaults: depth 4, count 2000.  Deduplicated up to a
    canonical variable renaming. *)

val approximations :
  ?max_depth:int -> ?max_count:int -> Datalog.query -> Cq.t list
(** Approximations of the goal predicate. *)

val complete_unfolding : ?max_count:int -> Datalog.query -> Cq.t list option
(** For a nonrecursive program, the full (finite) set of approximations —
    i.e. the equivalent UCQ.  [None] if the program is recursive or the
    cap is hit. *)

val formal_head : Datalog.program -> string -> string list
(** The formal head variables used by {!approximations_of_pred}. *)

val canonical_string : Cq.t -> string
(** A renaming-invariant (best effort) key used for deduplication. *)
