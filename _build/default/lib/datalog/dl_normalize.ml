exception Diverged

let offending_atom p (r : Datalog.rule) =
  if not (Datalog.is_recursive_rule p r) then None
  else
    let hv = Datalog.head_vars r in
    List.find_opt
      (fun (a : Cq.atom) ->
        Datalog.is_idb p a.rel
        && List.exists
             (function Cq.Var v -> List.mem v hv | Cq.Cst _ -> false)
             a.args)
      r.body

let violations p =
  List.filter_map
    (fun r -> Option.map (fun a -> (r, a)) (offending_atom p r))
    p

let is_normalized p = violations p = []

let cq_of_rule (r : Datalog.rule) =
  Cq.make ~head:(Datalog.head_vars r) r.body

let rule_subsumes (r1 : Datalog.rule) (r2 : Datalog.rule) =
  String.equal r1.head.Cq.rel r2.head.Cq.rel
  && List.length r1.head.Cq.args = List.length r2.head.Cq.args
  && Cq.contained_in (cq_of_rule r2) (cq_of_rule r1)

let subst_term m = function
  | Cq.Cst c -> Cq.Cst c
  | Cq.Var v -> ( match Smap.find_opt v m with Some t -> t | None -> Cq.Var v)

let subst_atom m (a : Cq.atom) = { a with args = List.map (subst_term m) a.args }

(* Unfold atom [a] in rule [r] using defining rule [def]. *)
let unfold_with (r : Datalog.rule) (a : Cq.atom) (def : Datalog.rule) =
  let def = Datalog.rename_rule_apart def in
  let m =
    List.fold_left2
      (fun m hv t -> Smap.add hv t m)
      Smap.empty (Datalog.head_vars def) a.Cq.args
  in
  let expanded = List.map (subst_atom m) def.body in
  let body =
    List.concat_map (fun b -> if b == a then expanded else [ b ]) r.body
  in
  Datalog.rule r.head body

(* A rule whose head atom occurs in its own body is redundant: firing it
   presupposes its conclusion, so it contributes nothing to the least
   fixpoint.  Deleting such rules is also what makes the unfolding
   saturation below terminate on self-recursive rules. *)
let head_in_body (r : Datalog.rule) =
  List.exists (fun (a : Cq.atom) -> a = r.head) r.body

let normalize ?(max_steps = 2000) (q : Datalog.query) =
  let steps = ref 0 in
  let rec go (rules : Datalog.program) =
    let rules = List.filter (fun r -> not (head_in_body r)) rules in
    match
      List.find_map
        (fun r -> Option.map (fun a -> (r, a)) (offending_atom rules r))
        rules
    with
    | None -> rules
    | Some (r, a) ->
        incr steps;
        if !steps > max_steps then raise Diverged;
        let others = List.filter (fun r' -> r' != r) rules in
        let unfoldings =
          List.map (unfold_with r a) (Datalog.rules_for rules a.Cq.rel)
          |> List.filter (fun u -> not (head_in_body u))
        in
        (* keep an unfolding only if no existing rule subsumes it *)
        let keep u =
          not (List.exists (fun r' -> rule_subsumes r' u) others)
        in
        let fresh = List.filter keep unfoldings in
        (* also drop older rules subsumed by a fresh one *)
        let others =
          List.filter
            (fun r' -> not (List.exists (fun u -> rule_subsumes u r') fresh))
            others
        in
        go (others @ fresh)
  in
  { q with program = go q.program }
