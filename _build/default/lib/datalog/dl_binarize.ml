let atom_vars (a : Cq.atom) =
  List.filter_map (function Cq.Var v -> Some v | Cq.Cst _ -> None) a.Cq.args
  |> List.sort_uniq String.compare

let vars_of atoms = List.concat_map atom_vars atoms |> List.sort_uniq String.compare

let max_idb_atoms_per_rule p =
  let idb = Datalog.is_idb p in
  List.fold_left
    (fun m (r : Datalog.rule) ->
      max m (List.length (List.filter (fun (a : Cq.atom) -> idb a.Cq.rel) r.Datalog.body)))
    0 p

let transform ?(max_idb_atoms = 2) (q : Datalog.query) =
  if max_idb_atoms < 2 then invalid_arg "Dl_binarize: bound must be ≥ 2";
  let idb = Datalog.is_idb q.Datalog.program in
  let out = ref [] in
  let emit r = out := r :: !out in
  List.iteri
    (fun rule_idx (r : Datalog.rule) ->
      let intensional, extensional =
        List.partition (fun (a : Cq.atom) -> idb a.Cq.rel) r.Datalog.body
      in
      if List.length intensional <= max_idb_atoms then emit r
      else begin
        let aux_name j =
          Printf.sprintf "%s&%d&%d" r.Datalog.head.Cq.rel rule_idx j
        in
        (* delegate [covered] to auxiliary number [j]; [outside] are the
           variables of the rest of the original rule (head included);
           returns the auxiliary atom to put in the delegating rule *)
        let rec delegate j covered outside =
          let shared =
            List.filter (fun v -> List.mem v outside) (vars_of covered)
          in
          let aux = Cq.atom (aux_name j) (List.map (fun v -> Cq.Var v) shared) in
          (match covered with
          | [ _ ] | [ _; _ ] -> emit (Datalog.rule aux covered)
          | first :: rest ->
              let outside' =
                List.sort_uniq String.compare (shared @ atom_vars first)
              in
              let tail_atom = delegate (j + 1) rest outside' in
              emit (Datalog.rule aux [ first; tail_atom ])
          | [] -> assert false);
          aux
        in
        match intensional with
        | first :: rest ->
            let outside =
              List.sort_uniq String.compare
                (Datalog.head_vars r @ vars_of extensional @ atom_vars first)
            in
            let aux_atom = delegate 0 rest outside in
            emit (Datalog.rule r.Datalog.head (extensional @ [ first; aux_atom ]))
        | [] -> assert false
      end)
    q.Datalog.program;
  Datalog.query (List.rev !out) q.Datalog.goal
