(** Normalization of Monadic Datalog (paper Prop. 2, after [12]).

    An MDL query is {e normalized} when the body of any recursive rule
    contains no IDB atom mentioning the head variable.  Normalization
    matters because CQ approximations of normalized queries admit tree
    decompositions with treespan [l(TD) ≤ 2] (Lemma 1), the hypothesis of
    the view-image treewidth bound (Lemma 3). *)

exception Diverged

val is_normalized : Datalog.program -> bool

val violations : Datalog.program -> (Datalog.rule * Cq.atom) list
(** The (recursive rule, offending IDB atom) pairs. *)

val normalize : ?max_steps:int -> Datalog.query -> Datalog.query
(** Repeatedly unfold offending IDB atoms with the rules defining them,
    dropping rules subsumed by existing ones.  Semantics-preserving.
    @raise Diverged if the saturation exceeds [max_steps] (default 2000)
    rule rewrites. *)

val rule_subsumes : Datalog.rule -> Datalog.rule -> bool
(** [rule_subsumes r1 r2]: every fact derivable by firing [r2] is derivable
    by firing [r1] (same head predicate; body containment fixing head
    variables). *)
