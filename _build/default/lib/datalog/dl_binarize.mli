(** Bounding the number of intensional atoms per rule.

    The forward mapping (Prop. 3) turns each rule into a tree-automaton
    transition with one child per intensional body atom; emptiness-style
    searches then enumerate tuples of child states, which is exponential
    in the branching.  This transformation chains the intensional atoms of
    wide rules through fresh auxiliary predicates so that every rule keeps
    at most two of them — the paper's "0 or 2 IDB atoms" normalization,
    done semantics-preservingly. *)

val transform : ?max_idb_atoms:int -> Datalog.query -> Datalog.query
(** Default bound 2.  Auxiliary predicates are named [pred&i&j] after the
    head predicate, rule index, and chain position. *)

val max_idb_atoms_per_rule : Datalog.program -> int
