type env = Const.t Smap.t

(* Match a single atom against an instance, extending [env]. *)
let match_atom inst (a : Cq.atom) env yield =
  let bound = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Cq.Cst c -> bound := (i, c) :: !bound
      | Cq.Var v -> (
          match Smap.find_opt v env with
          | Some c -> bound := (i, c) :: !bound
          | None -> ()))
    a.args;
  let candidates = Instance.tuples_with inst a.rel !bound in
  let rec go = function
    | [] -> true
    | tup :: rest ->
        if Array.length tup <> List.length a.args then go rest
        else
          let env' = ref env and ok = ref true in
          List.iteri
            (fun i t ->
              if !ok then
                match t with
                | Cq.Cst c -> if not (Const.equal c tup.(i)) then ok := false
                | Cq.Var v -> (
                    match Smap.find_opt v !env' with
                    | Some c -> if not (Const.equal c tup.(i)) then ok := false
                    | None -> env' := Smap.add v tup.(i) !env'))
            a.args;
          if !ok then if yield !env' then go rest else false else go rest
  in
  ignore (go candidates)

(* Enumerate all matches of [atoms] into [inst]; continuation-passing with
   an early-stop boolean protocol mirroring {!Hom.enumerate}. *)
let rec match_all inst atoms env yield =
  match atoms with
  | [] -> yield env
  | a :: rest ->
      let continue_ = ref true in
      match_atom inst a env (fun env' ->
          let c = match_all inst rest env' yield in
          continue_ := c;
          c);
      !continue_

let match_body ?delta inst atoms env yield =
  match delta with
  | None -> ignore (match_all inst atoms env yield)
  | Some d ->
      (* at least one atom must match the delta: try each atom first
         against the delta, the rest against the full instance. *)
      let rec split pre = function
        | [] -> true
        | a :: post ->
            let cont = ref true in
            match_atom d a env (fun env' ->
                let c = match_all inst (List.rev_append pre post) env' yield in
                cont := c;
                c);
            if !cont then split (a :: pre) post else false
      in
      ignore (split [] atoms)

let head_fact (r : Datalog.rule) env =
  let args =
    List.map
      (function
        | Cq.Var v -> Smap.find v env
        | Cq.Cst _ -> assert false (* ruled out by Datalog.rule *))
      r.head.Cq.args
  in
  Fact.make r.head.Cq.rel args

let fixpoint p inst =
  (* initial round: naive evaluation of every rule *)
  let fire ?delta full =
    let fresh = ref Instance.empty in
    List.iter
      (fun (r : Datalog.rule) ->
        match_body ?delta full r.body Smap.empty (fun env ->
            let f = head_fact r env in
            if not (Instance.mem f full) then fresh := Instance.add f !fresh;
            true))
      p;
    !fresh
  in
  let rec loop full delta =
    if Instance.is_empty delta then full
    else
      let fresh = fire ~delta full in
      let fresh = Instance.diff fresh full in
      loop (Instance.union full fresh) fresh
  in
  let first = fire inst in
  loop (Instance.union inst first) first

let eval (q : Datalog.query) inst =
  let fp = fixpoint q.program inst in
  Instance.tuples fp q.goal

let holds q inst tup =
  List.exists
    (fun t -> Array.length t = Array.length tup
              && Array.for_all2 Const.equal t tup)
    (eval q inst)

let holds_boolean q inst = eval q inst <> []

let contained_cq_in (cq : Cq.t) q =
  let db = Cq.canonical_db cq in
  let tup = Array.of_list (Cq.head_consts cq) in
  holds q db tup

let equivalent_on q1 q2 insts =
  let norm ts = List.sort compare (List.map Array.to_list ts) in
  List.for_all (fun i -> norm (eval q1 i) = norm (eval q2 i)) insts
