type move = L | R | S

type t = {
  name : string;
  tape_alphabet : char list;
  blank : char;
  states : string list;
  start : string;
  accept : string;
  halting : string list;
  delta : ((string * char) * (string * char * move)) list;
}

type config = {
  left : char list;
  state : string;
  head : char;
  right : char list;
}

let initial m input =
  let chars = List.init (String.length input) (String.get input) in
  match chars with
  | [] -> { left = []; state = m.start; head = m.blank; right = [] }
  | h :: rest -> { left = []; state = m.start; head = h; right = rest }

let step m c =
  if List.mem c.state m.halting then None
  else
    match List.assoc_opt (c.state, c.head) m.delta with
    | None -> None
    | Some (q, w, mv) ->
        Some
          (match mv with
          | S -> { c with state = q; head = w }
          | R -> (
              match c.right with
              | [] -> { left = w :: c.left; state = q; head = m.blank; right = [] }
              | h :: rest -> { left = w :: c.left; state = q; head = h; right = rest })
          | L -> (
              match c.left with
              | [] -> { left = []; state = q; head = m.blank; right = w :: c.right }
              | h :: rest -> { left = rest; state = q; head = h; right = w :: c.right }))

let run ?(max_steps = 2_000_000) m input =
  let rec go acc c n =
    if n >= max_steps then (List.rev (c :: acc), false)
    else
      match step m c with
      | None -> (List.rev (c :: acc), String.equal c.state m.accept)
      | Some c' -> go (c :: acc) c' (n + 1)
  in
  go [] (initial m input) 0

let steps ?max_steps m input = List.length (fst (run ?max_steps m input)) - 1
let accepts ?max_steps m input = snd (run ?max_steps m input)

let config_cells m ~width c =
  let cells =
    List.rev_map (fun ch -> String.make 1 ch) c.left
    @ (Printf.sprintf "%s|%c" c.state c.head
      :: List.map (fun ch -> String.make 1 ch) c.right)
  in
  let pad = width - List.length cells in
  cells @ List.init (max 0 pad) (fun _ -> String.make 1 m.blank)

let binary_counter =
  {
    name = "binary-counter";
    tape_alphabet = [ '0'; '1'; '_' ];
    blank = '_';
    states = [ "ret"; "inc"; "acc" ];
    start = "ret";
    accept = "acc";
    halting = [ "acc" ];
    delta =
      [
        (* sweep right to the end of the number *)
        (("ret", '0'), ("ret", '0', R));
        (("ret", '1'), ("ret", '1', R));
        (("ret", '_'), ("inc", '_', L));
        (* increment: flip trailing 1s, set the first 0 *)
        (("inc", '1'), ("inc", '0', L));
        (("inc", '0'), ("ret", '1', R));
        (* carry past the leftmost bit: overflow, accept *)
        (("inc", '_'), ("acc", '_', S));
      ];
  }

let zigzag =
  {
    name = "zigzag";
    tape_alphabet = [ '0'; '1'; '_' ];
    blank = '_';
    states = [ "go"; "acc" ];
    start = "go";
    accept = "acc";
    halting = [ "acc" ];
    delta = [ (("go", '0'), ("go", '0', R)); (("go", '1'), ("go", '1', R)); (("go", '_'), ("acc", '_', S)) ];
  }

(* parity pass first (p0/p1), then the counter with the parity bit carried
   through the state; overflow accepts iff the input length was even *)
let binary_counter_parity =
  let d = ref [] in
  let add k v = d := (k, v) :: !d in
  add ("p0", '0') ("p1", '0', R);
  add ("p1", '0') ("p0", '0', R);
  add ("p0", '_') ("inc0", '_', L);
  add ("p1", '_') ("inc1", '_', L);
  List.iter
    (fun p ->
      add ("ret" ^ p, '0') ("ret" ^ p, '0', R);
      add ("ret" ^ p, '1') ("ret" ^ p, '1', R);
      add ("ret" ^ p, '_') ("inc" ^ p, '_', L);
      add ("inc" ^ p, '1') ("inc" ^ p, '0', L);
      add ("inc" ^ p, '0') ("ret" ^ p, '1', R))
    [ "0"; "1" ];
  add ("inc0", '_') ("acc", '_', S);
  add ("inc1", '_') ("rej", '_', S);
  {
    name = "binary-counter-parity";
    tape_alphabet = [ '0'; '1'; '_' ];
    blank = '_';
    states = [ "p0"; "p1"; "ret0"; "ret1"; "inc0"; "inc1"; "acc"; "rej" ];
    start = "p0";
    accept = "acc";
    halting = [ "acc"; "rej" ];
    delta = !d;
  }
