(** The Theorem 9 query/view construction over the run encodings of
    {!Encode}.

    The query detects an encoded accepting run; the views expose the
    input, the pre-run skeleton and local structure, but answering the
    query from the views requires replaying the machine: the separator's
    cost tracks machine {e time}, while the view image of the input only
    grows with input {e length}.  With the binary-counter machine this
    exhibits an exponential separator over linear-size view inputs — the
    laptop-scale shape of Theorem 9's "no computable time bound". *)

val query : Tm.t -> Datalog.query
(** Boolean: some accepting-state cell lies on a run-string path from an
    input begin marker to the run-end marker. *)

val views : Tm.t -> View.collection
(** Atomic input views and the recursive pre-run view [Vprerun].  No view
    reveals acceptance: that is exactly why a separator must replay the
    machine. *)

val decode_input : Instance.t -> string option
(** Read the input word back from a view image (follows the [VSucc]
    chain). *)

val simulating_separator : ?max_steps:int -> Tm.t -> Instance.t -> bool
(** The separator the proof constructs implicitly: decode the input from
    the view image and replay the (deterministic) machine. *)
