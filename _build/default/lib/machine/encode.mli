(** Relational encodings of machine runs (Theorem 9).

    A run of a machine on input [w] becomes a "run-string instance": the
    input part [σInpBegin w σInpEnd] over [Succ]/[In_c], the configuration
    part over [SuccR]/[Cell_*] with separators and a final [RunEnd]
    marker, plus an explicit [Align] relation between corresponding cells
    of consecutive configurations and [InputAlign] between the input and
    the first configuration.  ([Align] replaces the paper's reliance on
    homomorphic string images; see DESIGN.md §5.) *)

val cell_rel : string -> string
(** Relation name of a configuration-cell symbol. *)

val input_rel : char -> string
(** Relation name of an input letter. *)

val encode_input : string -> Instance.t
(** Just the input part. *)

val encode_run : ?max_steps:int -> Tm.t -> string -> Instance.t
(** Input part plus the full run of the machine. *)

val schema : Tm.t -> Schema.t
