let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else if c = '_' then 'b'
      else '_')
    s

let cell_rel sym = "Cell_" ^ sanitize sym
let input_rel c = Printf.sprintf "In_%s" (sanitize (String.make 1 c))

let c s = Const.named s

let encode_input w =
  let n = String.length w in
  let cell j = c (Printf.sprintf "i%d" j) in
  let facts = ref [ Fact.make "InpBegin" [ c "ib" ]; Fact.make "InpEnd" [ c "ie" ] ] in
  let add f = facts := f :: !facts in
  add (Fact.make "Succ" [ c "ib"; (if n = 0 then c "ie" else cell 0) ]);
  for j = 0 to n - 1 do
    add (Fact.make (input_rel w.[j]) [ cell j ]);
    add
      (Fact.make "Succ" [ cell j; (if j = n - 1 then c "ie" else cell (j + 1)) ])
  done;
  Instance.of_list !facts

let encode_run ?max_steps (m : Tm.t) w =
  let configs, _ = Tm.run ?max_steps m w in
  let width =
    List.fold_left
      (fun acc (cf : Tm.config) ->
        max acc (List.length cf.Tm.left + 1 + List.length cf.Tm.right))
      (String.length w + 1)
      configs
  in
  let rows = List.map (Tm.config_cells m ~width) configs in
  let cell t j = c (Printf.sprintf "c%d_%d" t j) in
  let facts = ref (Instance.facts (encode_input w)) in
  let add f = facts := f :: !facts in
  let n_rows = List.length rows in
  List.iteri
    (fun t row ->
      List.iteri
        (fun j sym ->
          add (Fact.make (cell_rel sym) [ cell t j ]);
          if j < width - 1 then add (Fact.make "SuccR" [ cell t j; cell t (j + 1) ]))
        row;
      (* separator / end marker after the row *)
      if t < n_rows - 1 then begin
        let sep = c (Printf.sprintf "s%d" t) in
        add (Fact.make "SuccR" [ cell t (width - 1); sep ]);
        add (Fact.make "Sep" [ sep ]);
        add (Fact.make "SuccR" [ sep; cell (t + 1) 0 ]);
        (* alignment between consecutive configurations *)
        for j = 0 to width - 1 do
          add (Fact.make "Align" [ cell t j; cell (t + 1) j ])
        done
      end
      else begin
        add (Fact.make "SuccR" [ cell t (width - 1); c "rend" ]);
        add (Fact.make "RunEnd" [ c "rend" ])
      end)
    rows;
  (* link the input part to the first configuration *)
  add (Fact.make "SuccR" [ c "ie"; cell 0 0 ]);
  for j = 0 to min (String.length w) width - 1 do
    add (Fact.make "InputAlign" [ c (Printf.sprintf "i%d" j); cell 0 j ])
  done;
  Instance.of_list !facts

let schema (m : Tm.t) =
  let cells =
    List.map (fun ch -> (cell_rel (String.make 1 ch), 1)) m.Tm.tape_alphabet
    @ List.concat_map
        (fun q ->
          List.map
            (fun ch -> (cell_rel (Printf.sprintf "%s|%c" q ch), 1))
            m.Tm.tape_alphabet)
        m.Tm.states
  in
  Schema.of_list
    ([
       ("Succ", 2); ("SuccR", 2); ("InpBegin", 1); ("InpEnd", 1);
       ("Sep", 1); ("RunEnd", 1); ("Align", 2); ("InputAlign", 2);
     ]
    @ List.map (fun ch -> (input_rel ch, 1)) m.Tm.tape_alphabet
    @ cells)
