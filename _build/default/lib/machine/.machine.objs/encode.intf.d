lib/machine/encode.mli: Instance Schema Tm
