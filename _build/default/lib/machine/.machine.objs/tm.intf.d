lib/machine/tm.mli:
