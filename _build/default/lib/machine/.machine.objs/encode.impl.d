lib/machine/encode.ml: Const Fact Instance List Printf Schema String Tm
