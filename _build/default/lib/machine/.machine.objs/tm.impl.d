lib/machine/tm.ml: List Printf String
