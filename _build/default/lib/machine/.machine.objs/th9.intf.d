lib/machine/th9.mli: Datalog Instance Tm View
