lib/machine/th9.ml: Array Buffer Const Cq Datalog Encode Instance List Parse Printf String Tm View
