let accept_cell_rels (m : Tm.t) =
  List.map
    (fun ch -> Encode.cell_rel (Printf.sprintf "%s|%c" m.Tm.accept ch))
    m.Tm.tape_alphabet

let halting_cell_rels (m : Tm.t) =
  List.concat_map
    (fun q ->
      List.map
        (fun ch -> Encode.cell_rel (Printf.sprintf "%s|%c" q ch))
        m.Tm.tape_alphabet)
    m.Tm.halting

let query (m : Tm.t) =
  let acc_rules =
    List.map
      (fun rel -> Datalog.rule (Cq.atom "Acc" [ Cq.Var "z" ]) [ Cq.atom rel [ Cq.Var "z" ] ])
      (accept_cell_rels m)
  in
  let base =
    Parse.program
      "Fwd(x) <- InpBegin(x).
       Fwd(y) <- Fwd(x), Succ(x,y).
       Fwd(y) <- Fwd(x), SuccR(x,y).
       ToEnd(x) <- RunEnd(x).
       ToEnd(x) <- SuccR(x,y), ToEnd(y).
       Goal <- Fwd(z), ToEnd(z), Acc(z)."
  in
  Datalog.query (base @ acc_rules) "Goal"

let views (m : Tm.t) : View.collection =
  let input_atomic =
    [
      View.atomic "VSucc" "Succ" 2;
      View.atomic "VInpBegin" "InpBegin" 1;
      View.atomic "VInpEnd" "InpEnd" 1;
    ]
    @ List.map
        (fun ch ->
          View.atomic ("V" ^ Encode.input_rel ch) (Encode.input_rel ch) 1)
        m.Tm.tape_alphabet
  in
  let prerun =
    (* a pre-run: the input end marker reaches, along the run string, a
       halting-state cell that reaches the run-end marker *)
    let halt_rules =
      List.map
        (fun rel ->
          Datalog.rule (Cq.atom "Halt" [ Cq.Var "z" ]) [ Cq.atom rel [ Cq.Var "z" ] ])
        (halting_cell_rels m)
    in
    let base =
      Parse.program
        "FromB(x) <- InpBegin(y), Succ(y,x).
         FromB(x) <- FromB(y), Succ(y,x).
         ReachEnd(x) <- SuccR(x,y), RunEnd(y).
         ReachEnd(x) <- SuccR(x,y), ReachEnd(y).
         HaltToEnd(x) <- Halt(x), ReachEnd(x).
         ReachHalt(x) <- SuccR(x,y), HaltToEnd(y).
         ReachHalt(x) <- SuccR(x,y), ReachHalt(y).
         PR(x) <- InpEnd(x), FromB(x), ReachHalt(x)."
    in
    View.datalog "Vprerun" (Datalog.query (base @ halt_rules) "PR")
  in
  input_atomic @ [ prerun ]

let decode_input j =
  (* find the begin marker, then follow VSucc reading VIn_* labels *)
  match Instance.tuples j "VInpBegin" with
  | [] -> None
  | b :: _ -> (
      let letter x =
        List.find_map
          (fun rel ->
            if String.length rel > 4 && String.sub rel 0 3 = "VIn" then
              if List.exists (fun t -> Const.equal t.(0) x) (Instance.tuples j rel)
              then Some rel.[4]
              else None
            else None)
          (Instance.relations j)
      in
      let is_end x =
        List.exists (fun t -> Const.equal t.(0) x) (Instance.tuples j "VInpEnd")
      in
      let next x =
        match Instance.tuples_with j "VSucc" [ (0, x) ] with
        | t :: _ -> Some t.(1)
        | [] -> None
      in
      let buf = Buffer.create 16 in
      let rec walk x fuel =
        if fuel = 0 then None
        else if is_end x then Some (Buffer.contents buf)
        else begin
          (match letter x with Some ch -> Buffer.add_char buf ch | None -> ());
          match next x with None -> None | Some y -> walk y (fuel - 1)
        end
      in
      match next b.(0) with
      | None -> None
      | Some first -> walk first (Instance.size j + 1))

let simulating_separator ?max_steps (m : Tm.t) j =
  (* a complete halting run must be certified by the pre-run view; then
     determinism means replaying the machine decides acceptance *)
  if Instance.tuples j "Vprerun" = [] then false
  else
    match decode_input j with
    | None -> false
    | Some w -> Tm.accepts ?max_steps m w
