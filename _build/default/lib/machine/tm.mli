(** Deterministic Turing machines — the substrate for the Theorem 9
    separator lower-bound experiment.

    Theorem 9's proof needs, for any computable [F], a machine whose
    runtime beats [F]; at laptop scale we use a concrete exponential-time
    machine (a binary counter) against polynomial baselines, which is the
    observable content of the theorem: the separator must replay the run,
    so its cost tracks machine time, not view-image size. *)

type move = L | R | S

type t = {
  name : string;
  tape_alphabet : char list;  (** includes the blank *)
  blank : char;
  states : string list;
  start : string;
  accept : string;
  halting : string list;
      (** states where the machine stops and the run-string is complete
          (always includes [accept]) *)
  delta : ((string * char) * (string * char * move)) list;
      (** deterministic transition table; missing entries halt-reject *)
}

type config = {
  left : char list;  (** tape left of the head, nearest first *)
  state : string;
  head : char;
  right : char list;
}

val initial : t -> string -> config
val step : t -> config -> config option
(** [None] once in the accepting state or on a missing transition. *)

val run : ?max_steps:int -> t -> string -> config list * bool
(** The run (including the initial configuration) and whether it ended in
    the accepting state.  Default cap 2_000_000 steps. *)

val steps : ?max_steps:int -> t -> string -> int
val accepts : ?max_steps:int -> t -> string -> bool

val config_cells : t -> width:int -> config -> string list
(** The configuration as a list of cell symbols padded to [width]: tape
    characters as ["c"], the head cell as ["state|c"]. *)

val binary_counter : t
(** On input [0^n]: counts through all [2^n] values, then accepts —
    runtime Θ(n·2^n). *)

val binary_counter_parity : t
(** Counts through all [2^n] values, then accepts iff the input length is
    even (halts in a rejecting state otherwise) — the separator has to
    replay the count to know which. *)

val zigzag : t
(** On input [0^n]: sweeps the tape once and accepts — runtime Θ(n). *)
