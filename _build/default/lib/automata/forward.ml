exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let var_only = function
  | Cq.Var v -> v
  | Cq.Cst _ -> unsupported "Forward: constants in rules are not supported"

let distinct l = List.length l = List.length (List.sort_uniq String.compare l)

(* the position layout of a rule: head variables first, in head order,
   then the remaining body variables *)
let layout (r : Datalog.rule) =
  let hv = List.map var_only r.Datalog.head.Cq.args in
  if not (distinct hv) then unsupported "Forward: repeated head variables";
  let bv =
    List.concat_map
      (fun (a : Cq.atom) -> List.map var_only a.Cq.args)
      r.Datalog.body
    |> List.sort_uniq String.compare
    |> List.filter (fun v -> not (List.mem v hv))
  in
  let vars = hv @ bv in
  let pos v =
    let rec idx i = function
      | [] -> assert false
      | x :: rest -> if String.equal x v then i else idx (i + 1) rest
    in
    idx 0 vars
  in
  (vars, pos)

let approximations_nta ?(binarize = true) (q : Datalog.query) =
  (* eliminate repeated variables in intensional body atoms first: codes
     connect bags through partial 1-1 maps, so child roots need pairwise
     distinct head elements; then bound the branching of wide rules *)
  let q =
    try
      let q = Dl_specialize.transform q in
      if binarize then Dl_binarize.transform q else q
    with Invalid_argument msg -> unsupported "Forward: %s" msg
  in
  let p = q.Datalog.program in
  let preds = Datalog.idbs p in
  let state_of name =
    let rec idx i = function
      | [] -> None
      | x :: rest -> if String.equal x name then Some i else idx (i + 1) rest
    in
    idx 0 preds
  in
  let idb = Datalog.is_idb p in
  let k = ref 0 in
  let transitions =
    List.map
      (fun (r : Datalog.rule) ->
        let vars, pos = layout r in
        k := max !k (List.length vars);
        let intensional, extensional =
          List.partition (fun (a : Cq.atom) -> idb a.Cq.rel) r.Datalog.body
        in
        let label =
          List.map
            (fun (a : Cq.atom) ->
              (a.Cq.rel, List.map (fun t -> pos (var_only t)) a.Cq.args))
            extensional
        in
        let children, edges =
          List.split
            (List.map
               (fun (a : Cq.atom) ->
                 let args = List.map var_only a.Cq.args in
                 if not (distinct args) then
                   unsupported
                     "Forward: repeated variables in an intensional body atom";
                 let child =
                   match state_of a.Cq.rel with
                   | Some s -> s
                   | None -> assert false
                 in
                 (* edge: parent position of arg t ↦ child position t
                    (child head variable t sits at position t) *)
                 let edge = List.mapi (fun t v -> (pos v, t)) args in
                 (child, edge))
               intensional)
        in
        {
          Nta.children;
          sym = { Nta.label; edges };
          target = Option.get (state_of r.Datalog.head.Cq.rel);
        })
      p
  in
  let goal =
    match state_of q.Datalog.goal with
    | Some s -> s
    | None -> unsupported "Forward: goal %s has no rules" q.Datalog.goal
  in
  (Nta.make ~n_states:(List.length preds) ~finals:[ goal ] transitions, !k)

let state_of_pred (q : Datalog.query) name =
  let preds = Datalog.idbs q.Datalog.program in
  let rec idx i = function
    | [] -> None
    | x :: rest -> if String.equal x name then Some i else idx (i + 1) rest
  in
  idx 0 preds
