(** The backward mapping of §3: from an NTA on width-k codes to a Datalog
    program [Q_A] over a given schema.

    For every transition [q1,…,qm, σ^{s1..sm}_L → q] the program gets a
    rule

    {v P_q(x̄) ← ⋀ Adom(x_i) ∧ ⋀_j P_{q_j}(ȳ^j) ∧ ⋀_l R_l(x_{n̄_l}) v}

    where [ȳ^j] shares [x_i] at the positions related by [s_j] and is
    fresh elsewhere (the paper's equalities, inlined by substitution), and
    [Adom] is axiomatized over the given schema.  By Proposition 7, if the
    automaton sandwiches the view images of the approximations of a
    homomorphically-determined query, [Q_A] is a Datalog rewriting. *)

val adom_rules : Schema.t -> Datalog.rule list
(** [Adom(x) ← R(.., x, ..)] for every relation and position. *)

val backward : schema:Schema.t -> k:int -> Nta.t -> Datalog.query
(** The query [(Π_A, Goal_A)]; Boolean (the goal is 0-ary: the paper's
    construction for Boolean queries, projecting over the root bag). *)
