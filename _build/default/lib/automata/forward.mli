(** The forward mapping of Proposition 3: an NTA capturing the codes of
    canonical databases of the CQ approximations of a Datalog query.

    States are the intensional predicates; the transition for a rule reads
    one child per intensional body atom.  Codes are "canonical": a node's
    bag lists the rule's head variables first (head variable [i] at
    position [i]) followed by the remaining body variables, so the
    automaton has exactly one transition per rule and the accepted codes
    decode precisely to the approximations (capture in the paper's
    sense). *)

exception Unsupported of string
(** Raised on constants in rules or repeated variables in rule heads.
    Repeated variables in intensional body atoms are handled by the
    {!Dl_specialize} preprocessing. *)

val approximations_nta : ?binarize:bool -> Datalog.query -> Nta.t * int
(** The capturing automaton and the code width [k] (the paper's
    [k = O(|Q|)], here the maximum number of body variables).  [binarize]
    (default true) chains wide rules through auxiliary predicates so that
    transitions have ≤ 2 children; disable only for ablation. *)

val state_of_pred : Datalog.query -> string -> Nta.state option
(** The automaton state of an intensional predicate. *)
