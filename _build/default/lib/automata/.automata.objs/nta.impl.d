lib/automata/nta.ml: Code Fmt Hashtbl Int List Option
