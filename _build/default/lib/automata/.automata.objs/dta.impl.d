lib/automata/dta.ml: Fmt List Nta
