lib/automata/backward.ml: Cq Datalog List Nta Printf Schema
