lib/automata/cq_dta.mli: Code Cq Dta
