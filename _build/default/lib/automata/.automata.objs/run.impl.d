lib/automata/run.ml: Code Dta Hashtbl List Nta Option
