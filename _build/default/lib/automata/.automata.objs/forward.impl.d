lib/automata/forward.ml: Cq Datalog Dl_binarize Dl_specialize Format List Nta Option String
