lib/automata/cq_dta.ml: Array Code Cq Dta Fmt Hashtbl Int List Nta Queue String
