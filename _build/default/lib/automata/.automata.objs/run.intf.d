lib/automata/run.mli: Code Dta Nta
