lib/automata/forward.mli: Datalog Nta
