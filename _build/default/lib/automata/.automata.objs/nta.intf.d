lib/automata/nta.mli: Code Fmt Hashtbl
