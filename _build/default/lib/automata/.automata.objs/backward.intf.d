lib/automata/backward.mli: Datalog Nta Schema
