exception Unsupported of string

(* a pair (S, f): S = sorted list of matched atom indices, f = sorted assoc
   var index -> bag position *)
type pair = { s : int list; f : (int * int) list }

let pair_compare (a : pair) b = compare (a.s, a.f) (b.s, b.f)

module Make (Q : sig
  val cq : Cq.t
  val prune : bool
end) =
struct
  type dstate = pair list (* sorted, deduplicated *)

  let atoms =
    Array.of_list
      (List.map
         (fun (a : Cq.atom) ->
           ( a.Cq.rel,
             List.map
               (function
                 | Cq.Var v -> v
                 | Cq.Cst _ -> raise (Unsupported "Cq_dta: constants in the CQ"))
               a.Cq.args ))
         Q.cq.Cq.body)

  let n_atoms = Array.length atoms

  let all_vars =
    Array.to_list atoms
    |> List.concat_map snd
    |> List.sort_uniq String.compare
    |> Array.of_list

  let var_index v =
    let rec idx i = if String.equal all_vars.(i) v then i else idx (i + 1) in
    idx 0

  let atom_vars = Array.map (fun (_, vs) -> List.map var_index vs) atoms

  (* is variable v needed once the atoms in S are matched? *)
  let needed s v =
    let rec outside j =
      if j >= n_atoms then false
      else if (not (List.mem j s)) && List.mem v atom_vars.(j) then true
      else outside (j + 1)
    in
    outside 0

  (* p1 dominates p2 when p1 has matched at least the atoms of p2 under at
     most p2's constraints: any completion of p2 also completes p1, so p2
     can be dropped.  This keeps states small (in particular, a full match
     collapses the state to a single pair). *)
  let subset_int a b = List.for_all (fun x -> List.mem x b) a

  let dominates p1 p2 =
    subset_int p2.s p1.s
    && List.for_all (fun (v, pos) -> List.assoc_opt v p2.f = Some pos) p1.f

  let normalize (ps : pair list) : dstate =
    let ps = List.sort_uniq pair_compare ps in
    if not Q.prune then ps
    else
      List.filter
        (fun p ->
          not
            (List.exists
               (fun p' -> pair_compare p p' <> 0 && dominates p' p)
               ps))
        ps

  (* restrict f to needed variables *)
  let restrict p = { p with f = List.filter (fun (v, _) -> needed p.s v) p.f }

  (* extend pairs by matching atoms against the node label, to fixpoint *)
  let close_in_label (label : Code.label) (ps : pair list) : pair list =
    let result = Hashtbl.create 32 in
    let queue = Queue.create () in
    let push p =
      let key = (p.s, p.f) in
      if not (Hashtbl.mem result key) then (
        Hashtbl.add result key p;
        Queue.add p queue)
    in
    List.iter push ps;
    while not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      for j = 0 to n_atoms - 1 do
        if not (List.mem j p.s) then
          let rel, _ = atoms.(j) in
          let vs = atom_vars.(j) in
          List.iter
            (fun (lrel, positions) ->
              if String.equal lrel rel && List.length positions = List.length vs
              then
                (* try to bind vs to positions consistently with p.f *)
                let rec bind f = function
                  | [] -> Some f
                  | (v, pos) :: rest -> (
                      match List.assoc_opt v f with
                      | Some pos' when pos' = pos -> bind f rest
                      | Some _ -> None
                      | None -> bind ((v, pos) :: f) rest)
                in
                match bind p.f (List.combine vs positions) with
                | None -> ()
                | Some f ->
                    push
                      {
                        s = List.sort_uniq Int.compare (j :: p.s);
                        f = List.sort compare f;
                      })
            label
      done
    done;
    Hashtbl.fold (fun _ p acc -> p :: acc) result []

  (* translate a pair through an edge (parent pos -> child pos), bottom-up *)
  let translate (edge : Code.edge) (p : pair) : pair option =
    let inverse j = List.find_opt (fun (_, j') -> j' = j) edge in
    let rec go acc = function
      | [] -> Some { p with f = List.sort compare acc }
      | (v, j) :: rest -> (
          match inverse j with
          | Some (i, _) -> go ((v, i) :: acc) rest
          | None -> if needed p.s v then None else go acc rest)
    in
    go [] p.f

  (* combine two pairs (consistency on shared visible variables) *)
  let combine p1 p2 =
    let rec merge f = function
      | [] -> Some f
      | (v, pos) :: rest -> (
          match List.assoc_opt v f with
          | Some pos' when pos' = pos -> merge f rest
          | Some _ -> None
          | None -> merge ((v, pos) :: f) rest)
    in
    match merge p1.f p2.f with
    | None -> None
    | Some f ->
        Some
          {
            s = List.sort_uniq Int.compare (p1.s @ p2.s);
            f = List.sort compare f;
          }

  let step (children : dstate list) (sym : Nta.sym) : dstate =
    let translated =
      List.map2
        (fun st edge -> List.filter_map (translate edge) st)
        children sym.Nta.edges
    in
    let merged =
      List.fold_left
        (fun acc st ->
          List.concat_map
            (fun p1 -> List.filter_map (fun p2 -> combine p1 p2) st)
            acc)
        [ { s = []; f = [] } ]
        translated
    in
    let closed = close_in_label sym.Nta.label merged in
    normalize (List.map restrict closed)

  let accept (st : dstate) = List.exists (fun p -> List.length p.s = n_atoms) st

  let compare = compare

  let pp ppf (st : dstate) =
    Fmt.pf ppf "{%a}"
      Fmt.(
        list ~sep:semi (fun ppf p ->
            Fmt.pf ppf "S=%a f=%a"
              (brackets (list ~sep:comma int))
              p.s
              (brackets
                 (list ~sep:comma (fun ppf (v, j) -> Fmt.pf ppf "%d@%d" v j)))
              p.f))
      st
end

let make ?(negate = false) ?(prune = true) (cq : Cq.t) : Dta.t =
  let module M = Make (struct
    let cq = cq
    let prune = prune
  end) in
  if negate then
    (module struct
      include M

      let accept st = not (M.accept st)
    end : Dta.S)
  else (module M : Dta.S)

let holds_on_code ?(prune = true) cq code =
  let module M = Make (struct
    let cq = cq
    let prune = prune
  end) in
  let rec run (c : Code.t) =
    let kids = List.map (fun (_, ch) -> run ch) c.Code.children in
    M.step kids (Nta.sym_of_node c)
  in
  M.accept (run code)
