(** Lazy product of an explicit NTA with a symbolic deterministic automaton
    ({!Dta.S}).

    This is how the paper's intersection-and-emptiness arguments are run:
    the NTA is a generator with finitely many concrete symbols (e.g. the
    forward map of Prop. 3), the DTA is a property of the decoded instance
    (e.g. (non-)satisfaction of a CQ), and we search for a code accepted by
    both.  Complementation never needs to be materialized. *)

val find :
  Nta.t -> Dta.t -> Code.t option
(** A code accepted by the NTA on which the DTA accepts, or [None].
    Terminates because the DTA has finitely many states reachable from the
    NTA's symbols. *)

val check_empty : Nta.t -> Dta.t -> bool
(** No such code exists. *)
