(** The CQ-satisfaction automaton: a deterministic (symbolic) bottom-up
    tree automaton deciding, for a fixed Boolean CQ [Q], whether the
    decoding of a code satisfies [Q].

    A state is a set of pairs [(S, f)]: [S] a set of atoms of [Q] matched
    somewhere in the processed subtree, and [f] the positions (in the
    current bag) of the matched variables that are still visible.  A pair
    is discarded when a variable that still occurs in an unmatched atom
    disappears from the bag.  This is the standard technique for running
    MSO-ish properties over tree decompositions, and is the engine behind
    our Datalog ⊆ CQ containment test (Theorem 5). *)

exception Unsupported of string
(** The CQ must be constant-free. *)

val make : ?negate:bool -> ?prune:bool -> Cq.t -> Dta.t
(** Satisfaction of the CQ taken as a Boolean query (head ignored).
    [negate] complements acceptance (the set of codes whose decoding does
    {e not} satisfy the CQ — Proposition 6 for nonrecursive queries).
    [prune] (default true) drops state pairs dominated by a pair with more
    atoms matched under fewer constraints; disable only for ablation. *)

val holds_on_code : ?prune:bool -> Cq.t -> Code.t -> bool
(** Run the automaton on a concrete code (equivalent to decoding and
    evaluating; used for differential testing). *)
