let find (nta : Nta.t) (dta : Dta.t) =
  let module D = (val dta : Dta.S) in
  (* entries per NTA state: (dstate, witness code); grown semi-naively —
     each round only combines tuples containing at least one entry
     discovered in the previous round. *)
  let table : (int, (D.dstate * Code.t) list) Hashtbl.t = Hashtbl.create 16 in
  let get q = Option.value ~default:[] (Hashtbl.find_opt table q) in
  let mem q d = List.exists (fun (d', _) -> D.compare d d' = 0) (get q) in
  let found = ref None in
  let fresh = ref [] in
  let add q d w =
    if not (mem q d) then begin
      Hashtbl.replace table q ((d, w) :: get q);
      fresh := (q, d, w) :: !fresh;
      if !found = None && List.mem q nta.Nta.finals && D.accept d then
        found := Some w
    end
  in
  (* combinations of entries for the child states such that the entry at
     position [pivot] is drawn from [delta] and positions before the pivot
     from the old table only (standard semi-naive split to avoid
     recomputation) *)
  let combos_with children delta_q delta_entries pivot old =
    let rec go i qs =
      match qs with
      | [] -> [ ([], []) ]
      | q :: rest ->
          let pool =
            if i = pivot then
              if q = delta_q then delta_entries else []
            else if i < pivot then
              if q = delta_q then old q else get q
            else get q
          in
          let tails = go (i + 1) rest in
          List.concat_map
            (fun (d, w) -> List.map (fun (ds, ws) -> (d :: ds, w :: ws)) tails)
            pool
    in
    go 0 children
  in
  (* initial round: leaf transitions *)
  List.iter
    (fun (tr : Nta.transition) ->
      if tr.Nta.children = [] then
        let d = D.step [] tr.Nta.sym in
        add tr.Nta.target d { Code.label = tr.Nta.sym.Nta.label; children = [] })
    nta.Nta.transitions;
  while !fresh <> [] && !found = None do
    let delta = !fresh in
    fresh := [];
    (* old table = current table minus this delta, per state *)
    let old q =
      List.filter
        (fun (d, _) ->
          not
            (List.exists
               (fun (q', d', _) -> q' = q && D.compare d d' = 0)
               delta))
        (get q)
    in
    (* group delta by state *)
    let delta_states =
      List.sort_uniq compare (List.map (fun (q, _, _) -> q) delta)
    in
    List.iter
      (fun (tr : Nta.transition) ->
        if tr.Nta.children <> [] && !found = None then
          List.iter
            (fun dq ->
              if List.mem dq tr.Nta.children then
                let delta_entries =
                  List.filter_map
                    (fun (q, d, w) -> if q = dq then Some (d, w) else None)
                    delta
                in
                List.iteri
                  (fun pivot q ->
                    if q = dq && !found = None then
                      List.iter
                        (fun (ds, ws) ->
                          if !found = None then
                            let d = D.step ds tr.Nta.sym in
                            add tr.Nta.target d
                              {
                                Code.label = tr.Nta.sym.Nta.label;
                                children = List.combine tr.Nta.sym.Nta.edges ws;
                              })
                        (combos_with tr.Nta.children dq delta_entries pivot old))
                  tr.Nta.children)
            delta_states)
      nta.Nta.transitions
  done;
  !found

let check_empty nta dta = Option.is_none (find nta dta)
