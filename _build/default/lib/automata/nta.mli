(** Nondeterministic bottom-up tree automata over tree codes (paper §3).

    The paper's automata read binary codes with node labels [σ_L] and edge
    labels [s1, s2]; we generalize to arbitrary finite branching: a
    transition consumes the states of the children together with the node
    label and the list of child edge maps.  Leaves are the 0-child case
    (the paper's initial transitions [σ_L → q]).

    Transitions carry concrete symbols, so the alphabet of an automaton is
    the finite set of symbols its transitions mention; language operations
    that need the complement are done relative to a given automaton's
    alphabet via the lazy product constructions in {!Run}. *)

type state = int

type sym = { label : Code.label; edges : Code.edge list }
(** A node shape: its label and, in order, the edge maps to its children.
    [edges = []] is a leaf symbol. *)

type transition = { children : state list; sym : sym; target : state }

type t = {
  n_states : int;
  finals : state list;
  transitions : transition list;
}

val make : n_states:int -> finals:state list -> transition list -> t
(** @raise Invalid_argument if a transition's child count does not match
    its symbol's edge count or a state is out of range. *)

val sym_of_node : Code.t -> sym
val symbols : t -> sym list
(** Distinct symbols mentioned by the automaton. *)

val size : t -> int
(** Number of transitions. *)

val accepts : t -> Code.t -> bool
(** Bottom-up membership (sets of reachable states per subtree). *)

val reachable : t -> (state, Code.t) Hashtbl.t
(** For each reachable state, a witness code reaching it. *)

val is_empty : t -> bool
val witness : t -> Code.t option
(** Some accepted code, if the language is non-empty. *)

val product : t -> t -> t
(** Language intersection; symbols must match exactly. *)

val union : t -> t -> t
(** Language union (disjoint sum of state spaces). *)

val relabel : (Code.label -> Code.label) -> t -> t
(** Apply a function to every transition label: the projection of
    Proposition 5 is [relabel] with a label filter. *)

val trim : t -> t
(** Remove transitions through states that are not reachable. *)

val pp_sym : sym Fmt.t
val pp : t Fmt.t
