let adom_rules schema =
  List.concat_map
    (fun (rel, arity) ->
      List.init arity (fun i ->
          let args = List.init arity (fun j -> Cq.Var (Printf.sprintf "a%d" j)) in
          Datalog.rule
            (Cq.atom "Adom" [ Cq.Var (Printf.sprintf "a%d" i) ])
            [ Cq.atom rel args ]))
    (Schema.relations schema)

let state_pred q = Printf.sprintf "P%d" q

let backward ~schema ~k (a : Nta.t) =
  let xs = List.init k (fun i -> Printf.sprintf "x%d" i) in
  let x i = Cq.Var (List.nth xs i) in
  let fresh_counter = ref 0 in
  let trans_rules =
    List.map
      (fun (tr : Nta.transition) ->
        let head = Cq.atom (state_pred tr.Nta.target) (List.map (fun v -> Cq.Var v) xs) in
        let adoms = List.map (fun v -> Cq.atom "Adom" [ Cq.Var v ]) xs in
        let child_atoms =
          List.map2
            (fun q edge ->
              incr fresh_counter;
              let c = !fresh_counter in
              let arg p =
                (* parent position i linked to child position p? *)
                match List.find_opt (fun (_, p') -> p' = p) edge with
                | Some (i, _) -> x i
                | None -> Cq.Var (Printf.sprintf "z%d_%d" c p)
              in
              Cq.atom (state_pred q) (List.init k arg))
            tr.Nta.children tr.Nta.sym.Nta.edges
        in
        let label_atoms =
          List.map
            (fun (rel, positions) -> Cq.atom rel (List.map x positions))
            tr.Nta.sym.Nta.label
        in
        Datalog.rule head (adoms @ child_atoms @ label_atoms))
      a.Nta.transitions
  in
  let goal_rules =
    List.map
      (fun q ->
        Datalog.rule (Cq.atom "GoalA" [])
          [ Cq.atom (state_pred q) (List.map (fun v -> Cq.Var v) xs) ])
      a.Nta.finals
  in
  Datalog.query (adom_rules schema @ trans_rules @ goal_rules) "GoalA"
