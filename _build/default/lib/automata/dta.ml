(** Deterministic bottom-up tree "automata" given symbolically: the state
    space is implicit (a function of the input tree), which lets us work
    over the unbounded alphabet of code symbols.  Complementation is free
    (negate [accept]); intersection with an explicit {!Nta.t} is the lazy
    product of {!Run}. *)

module type S = sig
  type dstate

  val step : dstate list -> Nta.sym -> dstate
  (** [step [] sym] is the leaf case. *)

  val accept : dstate -> bool
  val compare : dstate -> dstate -> int
  val pp : dstate Fmt.t
end

type t = (module S)

(** The trivial automaton accepting everything. *)
let true_ : t =
  (module struct
    type dstate = unit

    let step _ _ = ()
    let accept () = true
    let compare () () = 0
    let pp ppf () = Fmt.string ppf "()"
  end)

(** Conjunction: run both automata side by side; accept iff both do. *)
let conj (a : t) (b : t) : t =
  let module A = (val a) in
  let module B = (val b) in
  (module struct
    type dstate = A.dstate * B.dstate

    let step ds sym = (A.step (List.map fst ds) sym, B.step (List.map snd ds) sym)
    let accept (x, y) = A.accept x && B.accept y

    let compare (x1, y1) (x2, y2) =
      let c = A.compare x1 x2 in
      if c <> 0 then c else B.compare y1 y2

    let pp ppf (x, y) = Fmt.pf ppf "(%a,%a)" A.pp x B.pp y
  end)

let conj_list = List.fold_left conj true_

(** Complement: accept iff the automaton rejects. *)
let neg (a : t) : t =
  let module A = (val a) in
  (module struct
    include A

    let accept s = not (A.accept s)
  end)
