type state = int
type sym = { label : Code.label; edges : Code.edge list }
type transition = { children : state list; sym : sym; target : state }
type t = { n_states : int; finals : state list; transitions : transition list }

let norm_sym s =
  { label = List.sort compare s.label; edges = List.map (List.sort compare) s.edges }

let make ~n_states ~finals transitions =
  let check_state q =
    if q < 0 || q >= n_states then invalid_arg "Nta.make: state out of range"
  in
  List.iter check_state finals;
  let transitions =
    List.map
      (fun tr ->
        check_state tr.target;
        List.iter check_state tr.children;
        if List.length tr.children <> List.length tr.sym.edges then
          invalid_arg "Nta.make: child/edge arity mismatch";
        { tr with sym = norm_sym tr.sym })
      transitions
  in
  { n_states; finals; transitions }

let sym_of_node (c : Code.t) =
  norm_sym { label = c.Code.label; edges = List.map fst c.Code.children }

let symbols a =
  List.sort_uniq compare (List.map (fun tr -> tr.sym) a.transitions)

let size a = List.length a.transitions

let accepts a code =
  let rec states (c : Code.t) : state list =
    let child_states = List.map (fun (_, ch) -> states ch) c.Code.children in
    let sym = sym_of_node c in
    List.filter_map
      (fun tr ->
        if tr.sym = sym
           && List.for_all2 (fun q qs -> List.mem q qs) tr.children child_states
        then Some tr.target
        else None)
      a.transitions
    |> List.sort_uniq Int.compare
  in
  let roots = states code in
  List.exists (fun q -> List.mem q roots) a.finals

let reachable a =
  let witness : (state, Code.t) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun tr ->
        if not (Hashtbl.mem witness tr.target) then
          let kids = List.map (Hashtbl.find_opt witness) tr.children in
          if List.for_all Option.is_some kids then (
            let children =
              List.map2
                (fun e k -> (e, Option.get k))
                tr.sym.edges kids
            in
            Hashtbl.add witness tr.target
              { Code.label = tr.sym.label; children };
            changed := true))
      a.transitions
  done;
  witness

let witness a =
  let w = reachable a in
  List.find_map (fun q -> Hashtbl.find_opt w q) a.finals

let is_empty a = Option.is_none (witness a)

let product a b =
  (* state (qa, qb) encoded as qa * b.n_states + qb *)
  let enc qa qb = (qa * b.n_states) + qb in
  let transitions =
    List.concat_map
      (fun (ta : transition) ->
        List.filter_map
          (fun (tb : transition) ->
            if ta.sym = tb.sym then
              Some
                {
                  children = List.map2 enc ta.children tb.children;
                  sym = ta.sym;
                  target = enc ta.target tb.target;
                }
            else None)
          b.transitions)
      a.transitions
  in
  let finals =
    List.concat_map (fun qa -> List.map (fun qb -> enc qa qb) b.finals) a.finals
  in
  make ~n_states:(a.n_states * b.n_states) ~finals transitions

let union a b =
  let shift q = q + a.n_states in
  let transitions =
    a.transitions
    @ List.map
        (fun tr ->
          {
            tr with
            children = List.map shift tr.children;
            target = shift tr.target;
          })
        b.transitions
  in
  make
    ~n_states:(a.n_states + b.n_states)
    ~finals:(a.finals @ List.map shift b.finals)
    transitions

let relabel f a =
  {
    a with
    transitions =
      List.map
        (fun tr ->
          { tr with sym = norm_sym { tr.sym with label = f tr.sym.label } })
        a.transitions;
  }

let trim a =
  let w = reachable a in
  {
    a with
    transitions =
      List.filter
        (fun tr ->
          Hashtbl.mem w tr.target
          && List.for_all (Hashtbl.mem w) tr.children)
        a.transitions;
  }

let pp_sym ppf s =
  Fmt.pf ppf "⟨%a|%d⟩"
    Fmt.(list ~sep:comma (fun ppf (r, ps) ->
        Fmt.pf ppf "%s%a" r Fmt.(brackets (list ~sep:comma int)) ps))
    s.label (List.length s.edges)

let pp ppf a =
  Fmt.pf ppf "NTA(%d states, %d transitions, finals=%a)" a.n_states
    (size a)
    Fmt.(brackets (list ~sep:comma int))
    a.finals
