(** A small surface syntax for rules, queries and instances.

    Rules are written
    {v  W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w). v}
    ([":-"] is accepted for ["<-"]).  In rules, plain identifiers are
    variables and quoted identifiers (['a]) are constants.  In instances,
    plain identifiers are constants:
    {v  R(a,b). U(a). v}
    Nullary atoms are written with or without parentheses.  Comments run
    from [%] to the end of the line. *)

exception Error of string
(** Raised on any syntax error, with a human-readable message. *)

val program : string -> Datalog.program
val query : goal:string -> string -> Datalog.query
val rule : string -> Datalog.rule
(** A single rule (trailing period optional). *)

val cq : string -> Cq.t
(** A single rule; the head arguments become the CQ head variables. *)

val ucq : string -> Ucq.t
(** One or more rules sharing a head predicate. *)

val atom : string -> Cq.atom
val instance : string -> Instance.t
(** Period- or whitespace-separated ground facts; identifiers denote
    constants. *)
