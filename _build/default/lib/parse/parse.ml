exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type token =
  | Ident of string
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Period
  | Arrow
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '#' || c = '~' || c = '!' || c = '?' || c = '$' || c = '*'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then (
      while !i < n && s.[!i] <> '\n' do
        incr i
      done)
    else if c = '(' then (
      toks := Lparen :: !toks;
      incr i)
    else if c = ')' then (
      toks := Rparen :: !toks;
      incr i)
    else if c = ',' then (
      toks := Comma :: !toks;
      incr i)
    else if c = '.' then (
      toks := Period :: !toks;
      incr i)
    else if c = '\'' then (
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail "unterminated quote";
      toks := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
      i := !j + 1)
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '-' then (
      toks := Arrow :: !toks;
      i := !i + 2)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '-' then (
      toks := Arrow :: !toks;
      i := !i + 2)
    else if is_ident_char c then (
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j)
    else fail "unexpected character %C" c
  done;
  List.rev (Eof :: !toks)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* term in rule position: identifiers are variables, quotes are constants *)
let parse_args st ~term =
  match peek st with
  | Lparen ->
      advance st;
      if peek st = Rparen then (
        advance st;
        [])
      else
        let rec go acc =
          let a = term st in
          match peek st with
          | Comma ->
              advance st;
              go (a :: acc)
          | Rparen ->
              advance st;
              List.rev (a :: acc)
          | _ -> fail "expected ',' or ')'"
        in
        go []
  | _ -> []

let rule_term st =
  match peek st with
  | Ident v ->
      advance st;
      Cq.Var v
  | Quoted c ->
      advance st;
      Cq.Cst (Const.named c)
  | _ -> fail "expected term"

let fact_term st =
  match peek st with
  | Ident v ->
      advance st;
      Const.named v
  | Quoted c ->
      advance st;
      Const.named c
  | _ -> fail "expected constant"

let parse_atom st =
  match peek st with
  | Ident name ->
      advance st;
      Cq.atom name (parse_args st ~term:rule_term)
  | _ -> fail "expected atom"

let parse_rule st =
  let head = parse_atom st in
  let body =
    match peek st with
    | Arrow ->
        advance st;
        let rec go acc =
          let a = parse_atom st in
          match peek st with
          | Comma ->
              advance st;
              go (a :: acc)
          | _ -> List.rev (a :: acc)
        in
        go []
    | _ -> []
  in
  if peek st = Period then advance st;
  Datalog.rule head body

let parse_program st =
  let rec go acc =
    match peek st with
    | Eof -> List.rev acc
    | _ -> go (parse_rule st :: acc)
  in
  go []

let with_input s f =
  let st = { toks = tokenize s } in
  let r = f st in
  (match peek st with Eof -> () | _ -> fail "trailing input");
  r

let program s = with_input s parse_program

let query ~goal s = Datalog.query (program s) goal

let rule s =
  with_input s (fun st ->
      let r = parse_rule st in
      r)

let atom s = with_input s parse_atom

let cq_of_rule (r : Datalog.rule) =
  let head =
    List.map
      (function
        | Cq.Var v -> v
        | Cq.Cst _ -> fail "constant in CQ head")
      r.head.Cq.args
  in
  Cq.make ~head r.body

let cq s = cq_of_rule (rule s)

let ucq s =
  let rules = program s in
  match rules with
  | [] -> fail "empty UCQ"
  | r :: _ ->
      let name = r.head.Cq.rel in
      List.iter
        (fun (r' : Datalog.rule) ->
          if not (String.equal r'.head.Cq.rel name) then
            fail "UCQ disjuncts must share a head predicate")
        rules;
      Ucq.make (List.map cq_of_rule rules)

let instance s =
  with_input s (fun st ->
      let rec go acc =
        match peek st with
        | Eof -> acc
        | Ident name ->
            advance st;
            let args = parse_args st ~term:fact_term in
            if peek st = Period then advance st;
            go (Instance.add (Fact.make name args) acc)
        | _ -> fail "expected fact"
      in
      go Instance.empty)
