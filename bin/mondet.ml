(* mondet — command-line front end.

   Queries and programs use the Parse syntax (see lib/parse/parse.mli).
   A views file is a program whose rules are grouped by head predicate:
   each group defines one view (a CQ view if a single rule, a UCQ view
   otherwise). *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let views_of_file path = Parse.views (read_file path)

let query_of ~goal path = Parse.query ~goal (read_file path)
let instance_of path = Parse.instance (read_file path)

(* ------------------------------------------------------------------ *)

let goal_arg =
  Arg.(required & opt (some string) None & info [ "goal"; "g" ] ~docv:"GOAL"
         ~doc:"Goal predicate of the query.")

let query_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")
let data_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"DATA")
let views_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"VIEWS")

let engine_arg =
  let engine_conv =
    Arg.enum (List.map (fun s -> (Dl_engine.to_string s, s)) Dl_engine.all)
  in
  Arg.(
    value
    & opt engine_conv (Dl_engine.default ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Datalog evaluation strategy: $(b,naive) (scan-based naive \
           iteration), $(b,indexed) (slot-compiled semi-naive), \
           $(b,magic) (magic-sets demand transformation over the indexed \
           engine) or $(b,parallel) (semi-naive rounds sharded across \
           OCaml 5 domains; see $(b,--domains)).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker count for the $(b,parallel) engine (the coordinating \
           thread included).  Defaults to $(b,MONDET_DOMAINS) if set, \
           else the machine's recommended domain count; clamped to \
           [1, 64].")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Report evaluation details.")

(* the engine choice is a process-wide setting so that it also reaches the
   call sites with no [?engine] parameter in scope (view evaluation inside
   images, rewriting verification, ...) *)
let set_engine verbose e d =
  (match d with Some n -> Dl_parallel.set_domains n | None -> ());
  Dl_engine.set_default e;
  if verbose then
    Format.eprintf "engine: %s (domains=%d)@."
      (Dl_engine.to_string (Dl_engine.default ()))
      (Dl_parallel.domains ())

let eval_cmd =
  let run qf goal df engine domains verbose =
    set_engine verbose engine domains;
    let q = query_of ~goal qf in
    let i = instance_of df in
    let out = Dl_engine.eval q i in
    if Datalog.goal_arity q = 0 then
      Format.printf "%b@." (out <> [])
    else
      List.iter
        (fun t ->
          Format.printf "%a@."
            Fmt.(array ~sep:(any ",") Const.pp)
            t)
        out;
    `Ok ()
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a Datalog query on an instance.")
    Term.(
      ret (const run $ query_file $ goal_arg $ data_pos 1 $ engine_arg
           $ domains_arg $ verbose_arg))

let md_cmd =
  let depth =
    Arg.(value & opt int 4 & info [ "depth" ] ~doc:"Approximation depth bound.")
  in
  let run qf goal vf depth engine domains verbose =
    set_engine verbose engine domains;
    let q = query_of ~goal qf in
    let views = views_of_file vf in
    let verdict = Md_decide.decide ~max_depth:depth q views in
    Format.printf "%a@." Md_decide.pp_verdict verdict;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "md"
       ~doc:
         "Check monotonic determinacy of a Boolean query over views (exact \
          for CQ/UCQ queries, bounded canonical-test search otherwise).")
    Term.(
      ret (const run $ query_file $ goal_arg $ views_pos 1 $ depth $ engine_arg
           $ domains_arg $ verbose_arg))

let rewrite_cmd =
  let meth =
    Arg.(
      value
      & opt (enum [ ("inverse-rules", `Inverse); ("prop8", `Prop8) ]) `Inverse
      & info [ "method" ] ~doc:"Rewriting algorithm: inverse-rules or prop8.")
  in
  let run qf goal vf meth =
    let q = query_of ~goal qf in
    let views = views_of_file vf in
    (match meth with
    | `Inverse ->
        let rw = Md_rewrite.inverse_rules q views in
        Format.printf "%a@." Datalog.pp_query rw
    | `Prop8 -> (
        match Dl_fragment.to_ucq q with
        | Some u ->
            let rw = Md_rewrite.prop8_ucq u views in
            Format.printf "%a@." Ucq.pp rw
        | None -> Format.printf "prop8 needs a CQ or UCQ query@."));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Compute a rewriting of the query over the views.")
    Term.(ret (const run $ query_file $ goal_arg $ views_pos 1 $ meth))

let image_cmd =
  let run vf df =
    let views = views_of_file vf in
    let i = instance_of df in
    Format.printf "%a@." Instance.pp (View.image views i);
    `Ok ()
  in
  Cmd.v (Cmd.info "image" ~doc:"Compute the view image of an instance.")
    Term.(ret (const run $ views_pos 0 $ data_pos 1))

let pebble_cmd =
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Number of pebbles.") in
  let run k d1 d2 =
    let i1 = instance_of d1 and i2 = instance_of d2 in
    Format.printf "duplicator wins the existential %d-pebble game: %b@." k
      (Pebble.duplicator_wins ~k i1 i2);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "pebble"
       ~doc:"Play the existential k-pebble game between two instances.")
    Term.(ret (const run $ k_arg $ data_pos 0 $ data_pos 1))

let tiling_cmd =
  let n_arg = Arg.(value & opt int 3 & info [ "width" ] ~doc:"Grid width.") in
  let m_arg = Arg.(value & opt int 3 & info [ "height" ] ~doc:"Grid height.") in
  let run n m =
    let tps = Parity.tp_star in
    let g = Tiling.grid n m in
    Format.printf "TP* (Lemma 6): grid %dx%d tilable: %b;  →2 I_TP*: %b@." n m
      (Tiling.can_tile g tps)
      (Pebble.duplicator_wins ~k:2 g (Tiling.structure tps));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "tiling" ~doc:"Run the Lemma 6 parity-tiling separation on a grid.")
    Term.(ret (const run $ n_arg $ m_arg))

(* ------------------------------------------------------------------ *)
(* The decision service (lib/service): [serve] runs the long-lived
   server, [batch] one-shots a request script, [client] drives a running
   socket server in lockstep. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on (resp. connect to) a Unix-domain socket at $(docv) \
           instead of stdio.")

let cache_arg =
  Arg.(
    value
    & opt int 512
    & info [ "cache" ] ~docv:"N"
        ~doc:"Capacity of the LRU result cache, in entries.")

let sequential_arg =
  Arg.(
    value & flag
    & info [ "sequential" ]
        ~doc:
          "Handle batched requests sequentially on the coordinating \
           thread instead of dispatching cache misses onto the domain \
           pool.")

let read_lines_of = function
  | "-" ->
      let rec go acc =
        match input_line stdin with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go []
  | path -> String.split_on_char '\n' (read_file path)

let script_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"SCRIPT"
        ~doc:"Request script, one request per line ($(b,-) for stdin).")

let serve_cmd =
  let run socket cache sequential engine domains verbose =
    set_engine verbose engine domains;
    let service =
      Svc_service.create ~cache_capacity:cache ~parallel:(not sequential) ()
    in
    (match socket with
    | None -> Svc_server.serve_stdio service
    | Some path -> Svc_server.serve_socket ~path service);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the decision service: named sessions of loaded \
          programs/views/instances, an LRU result cache, per-request \
          deadlines, and batch dispatch onto the domain pool.  Protocol: \
          see lib/service/svc_proto.mli and the README.")
    Term.(
      ret
        (const run $ socket_arg $ cache_arg $ sequential_arg $ engine_arg
       $ domains_arg $ verbose_arg))

let batch_cmd =
  let run script cache sequential engine domains verbose =
    set_engine verbose engine domains;
    let service =
      Svc_service.create ~cache_capacity:cache ~parallel:(not sequential) ()
    in
    let lines =
      List.filter (fun l -> String.trim l <> "") (read_lines_of script)
    in
    List.iter
      (fun r -> print_endline (Svc_proto.print_response r))
      (Svc_service.handle_lines service lines);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "One-shot the decision service on a request script: all lines \
          form one batch (loads execute at their position; cache-missed \
          eval/holds requests overlap on the domain pool) and the \
          responses print in request order.")
    Term.(
      ret
        (const run $ script_arg $ cache_arg $ sequential_arg $ engine_arg
       $ domains_arg $ verbose_arg))

let client_cmd =
  let socket_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of a running $(b,mondet serve).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit nonzero if any response is not $(b,ok).")
  in
  let run socket strict script =
    let lines = read_lines_of script in
    let bad = Svc_server.client_socket ~path:socket lines stdout in
    if strict && bad > 0 then `Error (false, string_of_int bad ^ " non-ok responses")
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive a running $(b,mondet serve --socket) in lockstep: send \
          each script line, await and print its response.")
    Term.(ret (const run $ socket_req $ strict $ script_arg))

let main =
  Cmd.group
    (Cmd.info "mondet" ~version:"1.0"
       ~doc:
         "Monotonic determinacy and rewritability for recursive queries and \
          views (PODS 2020 reproduction).")
    [
      eval_cmd; md_cmd; rewrite_cmd; image_cmd; pebble_cmd; tiling_cmd;
      serve_cmd; batch_cmd; client_cmd;
    ]

let () = exit (Cmd.eval main)
