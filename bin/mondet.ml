(* mondet — command-line front end.

   Queries and programs use the Parse syntax (see lib/parse/parse.mli).
   A views file is a program whose rules are grouped by head predicate:
   each group defines one view (a CQ view if a single rule, a UCQ view
   otherwise). *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let views_of_file path = Parse.views (read_file path)

let query_of ~goal path = Parse.query ~goal (read_file path)
let instance_of path = Parse.instance (read_file path)

(* ------------------------------------------------------------------ *)

let goal_arg =
  Arg.(required & opt (some string) None & info [ "goal"; "g" ] ~docv:"GOAL"
         ~doc:"Goal predicate of the query.")

let query_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")
let data_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"DATA")
let views_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"VIEWS")

let engine_arg =
  let engine_conv =
    Arg.enum (List.map (fun s -> (Dl_engine.to_string s, s)) Dl_engine.all)
  in
  Arg.(
    value
    & opt engine_conv (Dl_engine.default ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Datalog evaluation strategy: $(b,naive) (scan-based naive \
           iteration), $(b,indexed) (slot-compiled semi-naive), \
           $(b,magic) (magic-sets demand transformation over the indexed \
           engine), $(b,parallel) (semi-naive rounds sharded across \
           OCaml 5 domains; see $(b,--domains)) or $(b,vm) (static join \
           plans lowered to register bytecode, with mid-round \
           cancellation).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker count for the $(b,parallel) engine (the coordinating \
           thread included).  Defaults to $(b,MONDET_DOMAINS) if set, \
           else the machine's recommended domain count; clamped to \
           [1, 64].")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Report evaluation details.")

(* the engine choice is a process-wide setting so that it also reaches the
   call sites with no [?engine] parameter in scope (view evaluation inside
   images, rewriting verification, ...) *)
let set_engine verbose e d =
  (match d with Some n -> Dl_parallel.set_domains n | None -> ());
  Dl_engine.set_default e;
  if verbose then
    Format.eprintf "engine: %s (domains=%d)@."
      (Dl_engine.to_string (Dl_engine.default ()))
      (Dl_parallel.domains ())

let eval_cmd =
  let run qf goal df engine domains verbose =
    set_engine verbose engine domains;
    let q = query_of ~goal qf in
    let i = instance_of df in
    let out = Dl_engine.eval q i in
    if Datalog.goal_arity q = 0 then
      Format.printf "%b@." (out <> [])
    else
      List.iter
        (fun t ->
          Format.printf "%a@."
            Fmt.(array ~sep:(any ",") Const.pp)
            t)
        out;
    `Ok ()
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a Datalog query on an instance.")
    Term.(
      ret (const run $ query_file $ goal_arg $ data_pos 1 $ engine_arg
           $ domains_arg $ verbose_arg))

let md_cmd =
  let depth =
    Arg.(value & opt int 4 & info [ "depth" ] ~doc:"Approximation depth bound.")
  in
  let run qf goal vf depth engine domains verbose =
    set_engine verbose engine domains;
    let q = query_of ~goal qf in
    let views = views_of_file vf in
    let verdict = Md_decide.decide ~max_depth:depth q views in
    Format.printf "%a@." Md_decide.pp_verdict verdict;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "md"
       ~doc:
         "Check monotonic determinacy of a Boolean query over views (exact \
          for CQ/UCQ queries, bounded canonical-test search otherwise).")
    Term.(
      ret (const run $ query_file $ goal_arg $ views_pos 1 $ depth $ engine_arg
           $ domains_arg $ verbose_arg))

let rewrite_cmd =
  let meth =
    Arg.(
      value
      & opt (enum [ ("inverse-rules", `Inverse); ("prop8", `Prop8) ]) `Inverse
      & info [ "method" ] ~doc:"Rewriting algorithm: inverse-rules or prop8.")
  in
  let run qf goal vf meth =
    let q = query_of ~goal qf in
    let views = views_of_file vf in
    (match meth with
    | `Inverse ->
        let rw = Md_rewrite.inverse_rules q views in
        Format.printf "%a@." Datalog.pp_query rw
    | `Prop8 -> (
        match Dl_fragment.to_ucq q with
        | Some u ->
            let rw = Md_rewrite.prop8_ucq u views in
            Format.printf "%a@." Ucq.pp rw
        | None -> Format.printf "prop8 needs a CQ or UCQ query@."));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Compute a rewriting of the query over the views.")
    Term.(ret (const run $ query_file $ goal_arg $ views_pos 1 $ meth))

let image_cmd =
  let run vf df =
    let views = views_of_file vf in
    let i = instance_of df in
    Format.printf "%a@." Instance.pp (View.image views i);
    `Ok ()
  in
  Cmd.v (Cmd.info "image" ~doc:"Compute the view image of an instance.")
    Term.(ret (const run $ views_pos 0 $ data_pos 1))

let pebble_cmd =
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Number of pebbles.") in
  let run k d1 d2 =
    let i1 = instance_of d1 and i2 = instance_of d2 in
    Format.printf "duplicator wins the existential %d-pebble game: %b@." k
      (Pebble.duplicator_wins ~k i1 i2);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "pebble"
       ~doc:"Play the existential k-pebble game between two instances.")
    Term.(ret (const run $ k_arg $ data_pos 0 $ data_pos 1))

let tiling_cmd =
  let n_arg = Arg.(value & opt int 3 & info [ "width" ] ~doc:"Grid width.") in
  let m_arg = Arg.(value & opt int 3 & info [ "height" ] ~doc:"Grid height.") in
  let run n m =
    let tps = Parity.tp_star in
    let g = Tiling.grid n m in
    Format.printf "TP* (Lemma 6): grid %dx%d tilable: %b;  →2 I_TP*: %b@." n m
      (Tiling.can_tile g tps)
      (Pebble.duplicator_wins ~k:2 g (Tiling.structure tps));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "tiling" ~doc:"Run the Lemma 6 parity-tiling separation on a grid.")
    Term.(ret (const run $ n_arg $ m_arg))

let rpq_cmd =
  let rpq_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REGEX"
          ~doc:
            "The regular path query: a regex over edge relation names \
             with $(b,|), concatenation ($(b,.) optional), $(b,*), \
             $(b,+), $(b,?), $(b,^) (reversal) and $(b,eps).")
  in
  let data_opt = Arg.(value & pos 1 (some file) None & info [] ~docv:"DATA") in
  let graph_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph" ] ~docv:"SPEC"
          ~doc:
            "Generate the instance instead of reading DATA: \
             $(b,chain:N), $(b,cycle:N), $(b,grid:HxW) or \
             $(b,scale-free:NODES:EDGES[:SEED]).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"C"
          ~doc:"Anchor at source $(docv): print the reachable nodes.")
  in
  let to_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "to" ] ~docv:"C"
          ~doc:
            "With $(b,--from), decide membership of the pair and print a \
             Boolean.")
  in
  let views_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "views" ] ~docv:"FILE"
          ~doc:
            "RPQ view definitions ($(b,name = regex ;) ...): evaluate \
             the maximal contained rewriting of the query over the views \
             (certain answers) instead of the query directly, reporting \
             whether the rewriting is lossless.")
  in
  let graph_of_spec s =
    let int_part p =
      match int_of_string_opt p with
      | Some n -> n
      | None -> failwith (Printf.sprintf "bad graph spec %S" s)
    in
    match String.split_on_char ':' s with
    | [ "chain"; n ] -> Rpq_graph.chain (int_part n)
    | [ "cycle"; n ] -> Rpq_graph.cycle (int_part n)
    | [ "grid"; hw ] -> (
        match String.split_on_char 'x' hw with
        | [ h; w ] -> Rpq_graph.grid (int_part h) (int_part w)
        | _ -> failwith (Printf.sprintf "bad graph spec %S" s))
    | [ "scale-free"; n; e ] ->
        Rpq_graph.scale_free ~nodes:(int_part n) ~edges:(int_part e) ()
    | [ "scale-free"; n; e; seed ] ->
        Rpq_graph.scale_free ~seed:(int_part seed) ~nodes:(int_part n)
          ~edges:(int_part e) ()
    | _ -> failwith (Printf.sprintf "bad graph spec %S" s)
  in
  let run regex data graph from_ to_ views engine domains verbose =
    set_engine verbose engine domains;
    try
      let e = Rpq.parse regex in
      let i =
        match (data, graph) with
        | Some f, None -> instance_of f
        | None, Some s -> graph_of_spec s
        | None, None -> failwith "give a DATA file or --graph"
        | Some _, Some _ -> failwith "give DATA or --graph, not both"
      in
      let pair_mode, from_mode, bool_mode =
        match views with
        | None ->
            ( (fun () -> Rpq_translate.eval e i),
              (fun c -> Rpq_translate.eval_from e i c),
              fun x y -> Rpq_translate.holds e i x y )
        | Some vf ->
            let defs = Rpq.parse_defs (read_file vf) in
            let rw = Rpq_views.rewrite ~views:defs e in
            (match rw.Rpq_views.gap with
            | None -> Format.printf "lossless: true@."
            | Some w ->
                Format.printf "lossless: false (gap %s)@."
                  (Rpq_nfa.word_to_string w));
            ( (fun () -> Rpq_views.certain rw i),
              (fun c -> Rpq_views.certain_from rw i c),
              fun x y -> Rpq_views.certain_holds rw i x y )
      in
      (match (from_, to_) with
      | None, Some _ -> failwith "--to needs --from"
      | None, None ->
          List.iter
            (fun (x, y) ->
              Format.printf "%a,%a@." Const.pp x Const.pp y)
            (pair_mode ())
      | Some c, None ->
          List.iter
            (fun x -> Format.printf "%a@." Const.pp x)
            (from_mode (Const.named c))
      | Some c, Some d ->
          Format.printf "%b@." (bool_mode (Const.named c) (Const.named d)));
      `Ok ()
    with
    | Rpq.Error m -> `Error (false, "rpq parse error: " ^ m)
    | Failure m | Invalid_argument m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "rpq"
       ~doc:
         "Evaluate a regular path query on a graph instance — directly, \
          or as certain answers through the maximal contained rewriting \
          over RPQ views.")
    Term.(
      ret
        (const run $ rpq_pos $ data_opt $ graph_arg $ from_arg $ to_arg
       $ views_arg $ engine_arg $ domains_arg $ verbose_arg))

(* ------------------------------------------------------------------ *)
(* The decision service (lib/service): [serve] runs the long-lived
   server, [batch] one-shots a request script, [client] drives a running
   socket server in lockstep. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on (resp. connect to) a Unix-domain socket at $(docv) \
           instead of stdio.")

(* HOST:PORT (":PORT" and "*:PORT" bind every interface) *)
let tcp_addr_of_string s =
  match String.rindex_opt s ':' with
  | None -> failwith (s ^ ": expected HOST:PORT")
  | Some i ->
      let host = String.sub s 0 i in
      let port =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some p when p >= 0 && p < 65536 -> p
        | _ -> failwith (s ^ ": bad port")
      in
      let ip =
        if host = "" || host = "*" then Unix.inet_addr_any
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> failwith (host ^ ": unknown host"))
      in
      Unix.ADDR_INET (ip, port)

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve on (resp. connect to) a TCP address instead of stdio.  \
           The server handles connections on a fixed pool of worker \
           domains (see $(b,--workers)); $(b,:PORT) binds every \
           interface, port $(b,0) picks an ephemeral port (printed on \
           stderr).")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Connection worker domains for $(b,--tcp) (clamped to \
           [1, 64]).  Each worker multiplexes its share of the \
           connections; more workers than cores buys nothing.")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Admission cap for $(b,--tcp): a connection arriving while \
           $(docv) are active is answered $(b,- busy) and closed \
           (shed, not queued).")

let max_line_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "max-line" ] ~docv:"BYTES"
        ~doc:
          "Per-request line cap for $(b,--tcp); longer lines are \
           discarded as they stream in and answered with an error.")

let quota_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quota" ] ~docv:"N"
        ~doc:
          "Per-session request quota for $(b,--tcp): at most $(docv) \
           requests per quota window (see $(b,--quota-window)); excess \
           requests are answered $(b,busy) without being evaluated.")

let quota_window_arg =
  Arg.(
    value & opt float 1.0
    & info [ "quota-window" ] ~docv:"SECONDS"
        ~doc:"Length of the $(b,--quota) window (default 1s).")

let cache_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-file" ] ~docv:"PATH"
        ~doc:
          "Persist the result cache: reload a snapshot from $(docv) on \
           boot (ignored with a warning if invalid) and write one back \
           on shutdown — EOF on stdio, SIGTERM/SIGINT on socket and TCP \
           servers.  Snapshots carry the symbol table, so fingerprint \
           keys stay valid across restarts.")

(* Reload the snapshot before serving; a bad snapshot warns and serves
   cold rather than refusing to boot. *)
let load_cache_file service = function
  | None -> ()
  | Some path -> (
      match Svc_persist.load path service with
      | Ok 0 -> ()
      | Ok n -> Printf.eprintf "mondet: reloaded %d cached entries\n%!" n
      | Error m ->
          Printf.eprintf "mondet: ignoring cache snapshot %s: %s\n%!" path m)

let save_cache_file service = function
  | None -> ()
  | Some path -> Svc_persist.save path service

(* Graceful shutdown: SIGTERM/SIGINT flip a flag the serve loops poll,
   so the server closes its sockets and snapshots its cache instead of
   dying mid-write. *)
let install_stop_signals () =
  let stop = Atomic.make false in
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ());
  fun () -> Atomic.get stop

let cache_arg =
  Arg.(
    value
    & opt int 512
    & info [ "cache" ] ~docv:"N"
        ~doc:"Capacity of the LRU result cache, in entries.")

let sequential_arg =
  Arg.(
    value & flag
    & info [ "sequential" ]
        ~doc:
          "Handle batched requests sequentially on the coordinating \
           thread instead of dispatching cache misses onto the domain \
           pool.")

let read_lines_of = function
  | "-" ->
      let rec go acc =
        match input_line stdin with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go []
  | path -> String.split_on_char '\n' (read_file path)

let script_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"SCRIPT"
        ~doc:"Request script, one request per line ($(b,-) for stdin).")

let serve_cmd =
  let run socket tcp cache sequential workers max_conns max_line quota
      quota_window cache_file engine domains verbose =
    set_engine verbose engine domains;
    let service =
      Svc_service.create ~cache_capacity:cache ~parallel:(not sequential)
        ?quota ~quota_window ()
    in
    load_cache_file service cache_file;
    match (socket, tcp) with
    | Some _, Some _ -> `Error (true, "--socket and --tcp are exclusive")
    | None, None ->
        Svc_server.serve_stdio service;
        save_cache_file service cache_file;
        `Ok ()
    | Some path, None ->
        let stop = install_stop_signals () in
        Svc_server.serve_socket ~stop ~path service;
        save_cache_file service cache_file;
        `Ok ()
    | None, Some spec -> (
        match tcp_addr_of_string spec with
        | exception Failure m -> `Error (true, m)
        | addr ->
            let stop = install_stop_signals () in
            let config = { Svc_tcp.workers; max_conns; max_line } in
            Svc_tcp.serve ~stop
              ~on_listen:(fun bound ->
                match bound with
                | Unix.ADDR_INET (ip, port) ->
                    Printf.eprintf "mondet: serving on %s:%d\n%!"
                      (Unix.string_of_inet_addr ip)
                      port
                | _ -> ())
              config service addr;
            save_cache_file service cache_file;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the decision service: named sessions of loaded \
          programs/views/instances, $(b,assert)/$(b,retract) verbs that \
          edit a session instance in place (incrementally repairing its \
          materialized fixpoints), an LRU result cache (optionally \
          persisted across restarts with $(b,--cache-file)), per-request \
          deadlines, and — with $(b,--tcp) — concurrent connection \
          handling on a fixed pool of worker domains with shed-not-queue \
          admission control.  Protocol: see lib/service/svc_proto.mli \
          and the README.")
    Term.(
      ret
        (const run $ socket_arg $ tcp_arg $ cache_arg $ sequential_arg
       $ workers_arg $ max_conns_arg $ max_line_arg $ quota_arg
       $ quota_window_arg $ cache_file_arg $ engine_arg $ domains_arg
       $ verbose_arg))

let batch_cmd =
  let run script cache sequential cache_file engine domains verbose =
    set_engine verbose engine domains;
    let service =
      Svc_service.create ~cache_capacity:cache ~parallel:(not sequential) ()
    in
    load_cache_file service cache_file;
    let lines =
      List.filter (fun l -> String.trim l <> "") (read_lines_of script)
    in
    List.iter
      (fun r -> print_endline (Svc_proto.print_response r))
      (Svc_service.handle_lines service lines);
    save_cache_file service cache_file;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "One-shot the decision service on a request script: all lines \
          form one batch (loads and assert/retract mutations execute at \
          their position; cache-missed eval/holds requests overlap on \
          the domain pool) and the responses print in request order.")
    Term.(
      ret
        (const run $ script_arg $ cache_arg $ sequential_arg $ cache_file_arg
       $ engine_arg $ domains_arg $ verbose_arg))

let client_cmd =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit nonzero if any response is not $(b,ok).")
  in
  let run socket tcp strict script =
    let addr =
      match (socket, tcp) with
      | Some path, None -> Ok (Unix.ADDR_UNIX path)
      | None, Some spec -> (
          match tcp_addr_of_string spec with
          | addr -> Ok addr
          | exception Failure m -> Error m)
      | _ -> Error "exactly one of --socket or --tcp is required"
    in
    match addr with
    | Error m -> `Error (true, m)
    | Ok addr ->
        let lines = read_lines_of script in
        let bad = Svc_server.client ~addr lines stdout in
        if strict && bad > 0 then
          `Error (false, string_of_int bad ^ " non-ok responses")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive a running $(b,mondet serve) ($(b,--socket) or $(b,--tcp)) \
          in lockstep: send each script line, await and print its \
          response.")
    Term.(ret (const run $ socket_arg $ tcp_arg $ strict $ script_arg))

(* ------------------------------------------------------------------ *)
(* bench-serve: the load harness.  Runs the TCP server in-process on an
   ephemeral loopback port, drives it with Svc_loadgen, verifies every
   response against the sequential oracle, and optionally merges
   latency rows into a mondet-bench/1 JSON trajectory. *)

(* same row format Bench_json writes and bench_diff parses *)
let read_bench_rows path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         match
           Scanf.sscanf line " {\"name\": %S, \"ns_per_run\": %f" (fun n t ->
               (n, t))
         with
         | row -> rows := row :: !rows
         | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

let write_bench_rows path rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"mondet-bench/1\",\n";
  output_string oc "  \"unit\": \"ns_per_run\",\n";
  output_string oc "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, t) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %.2f}%s\n" name
        t
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

(* replace matching rows in place, append the rest *)
let merge_bench_rows path fresh =
  let existing = read_bench_rows path in
  let replaced =
    List.map
      (fun (n, t) ->
        match List.assoc_opt n fresh with Some t' -> (n, t') | None -> (n, t))
      existing
  in
  let appended =
    List.filter (fun (n, _) -> not (List.mem_assoc n existing)) fresh
  in
  write_bench_rows path (replaced @ appended)

let bench_serve_cmd =
  let conns_arg =
    Arg.(
      value & opt int 32
      & info [ "c"; "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let per_conn_arg =
    Arg.(
      value & opt int 64
      & info [ "n"; "requests" ] ~docv:"N"
          ~doc:"Requests per connection (closed loop: one outstanding).")
  in
  let warm_flag =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:
            "After the cold pass, run the identical workload again \
             against the now-warm server and record a $(b,-warm) row.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:
            "Merge the p50-latency rows into a mondet-bench/1 JSON file \
             (rows with the same name are replaced, others kept), so \
             bench_diff can gate them.")
  in
  let no_verify_flag =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the sequential-oracle byte-comparison pass.")
  in
  let run conns per_conn workers warm json_out no_verify =
    (* PR3 caveat, restated where the numbers are produced: on one core
       the concurrency rows measure multiplexing and scheduling
       overhead, not parallel speedup *)
    if Domain.recommended_domain_count () = 1 then
      print_endline
        "note: single core available — concurrency rows record \
         scheduling/multiplexing overhead, not parallel speedup";
    let service = Svc_service.create ~parallel:false () in
    let stop = Atomic.make false in
    let bound = ref None in
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let config =
      { Svc_tcp.workers; max_conns = conns + 8; max_line = 1 lsl 20 }
    in
    let server =
      Domain.spawn (fun () ->
          Svc_tcp.serve
            ~stop:(fun () -> Atomic.get stop)
            ~on_listen:(fun a ->
              Mutex.lock mu;
              bound := Some a;
              Condition.signal cv;
              Mutex.unlock mu)
            config service
            (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)))
    in
    Mutex.lock mu;
    while !bound = None do
      Condition.wait cv mu
    done;
    let addr = Option.get !bound in
    Mutex.unlock mu;
    let pass name =
      let stats, exchanges =
        Svc_loadgen.run ~addr ~conns ~per_conn ~verify:false ()
      in
      Printf.printf
        "%s: %d requests over %d conns in %.2f s\n\
        \  throughput %.1f req/s   p50 %.1f µs   p99 %.1f µs\n\
        \  ok %d  busy %d  failed %d\n%!"
        name stats.Svc_loadgen.total conns stats.Svc_loadgen.elapsed_s
        stats.Svc_loadgen.throughput_rps
        (stats.Svc_loadgen.p50_ns /. 1e3)
        (stats.Svc_loadgen.p99_ns /. 1e3)
        stats.Svc_loadgen.ok stats.Svc_loadgen.busy stats.Svc_loadgen.failed;
      (name, stats, exchanges)
    in
    let cold = pass (Printf.sprintf "service/tcp-c%d" conns) in
    let passes =
      if warm then [ cold; pass (Printf.sprintf "service/tcp-c%d-warm" conns) ]
      else [ cold ]
    in
    (* stop the server and join its domains before the oracle replay:
       the join publishes every worker-side write *)
    Atomic.set stop true;
    Domain.join server;
    let bad = ref 0 in
    List.iter
      (fun (name, stats, exchanges) ->
        bad := !bad + stats.Svc_loadgen.failed + stats.Svc_loadgen.busy;
        if not no_verify then begin
          let mism = Svc_loadgen.verify_exchanges exchanges in
          if mism > 0 then begin
            Printf.printf "%s: %d responses differ from the oracle\n%!" name
              mism;
            bad := !bad + mism
          end
          else Printf.printf "%s: all responses match the oracle\n%!" name
        end)
      passes;
    (match json_out with
    | Some path ->
        merge_bench_rows path
          (List.map
             (fun (name, stats, _) -> (name, stats.Svc_loadgen.p50_ns))
             passes);
        Printf.printf "merged %d row(s) into %s\n%!" (List.length passes) path
    | None -> ());
    if !bad > 0 then
      `Error (false, Printf.sprintf "%d bad/mismatched responses" !bad)
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Load-test the TCP decision service in-process: N closed-loop \
          connections drive a deterministic mixed workload \
          (eval/holds/mondet-test over grid and diamond sessions), every \
          response is verified byte-identical against a sequential \
          in-process oracle, and throughput plus p50/p99 latency are \
          reported (optionally merged into a bench JSON for the \
          regression gate).")
    Term.(
      ret
        (const run $ conns_arg $ per_conn_arg $ workers_arg $ warm_flag
       $ json_out_arg $ no_verify_flag))

let main =
  Cmd.group
    (Cmd.info "mondet" ~version:"1.0"
       ~doc:
         "Monotonic determinacy and rewritability for recursive queries and \
          views (PODS 2020 reproduction).")
    [
      eval_cmd; md_cmd; rewrite_cmd; image_cmd; pebble_cmd; tiling_cmd;
      rpq_cmd; serve_cmd; batch_cmd; client_cmd; bench_serve_cmd;
    ]

let () = exit (Cmd.eval main)
