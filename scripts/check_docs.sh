#!/bin/sh
# Docs drift gate: the protocol and CLI surface documented in README.md
# and lib/service/svc_proto.mli must match what the code actually
# implements.  Greps, not builds — cheap enough to run on every CI push.
#
#   1. every wire verb printed by Svc_proto.print_request must be
#      documented in README.md and in the svc_proto.mli grammar block;
#   2. every verb named in the svc_proto.mli grammar block must still
#      exist in the implementation (catches docs outliving code);
#   3. every `--flag` README.md mentions must still be a flag defined in
#      bin/mondet.ml (catches docs of removed/renamed options);
#   4. every mondet subcommand must appear in README.md;
#   5. every wire verb must appear in the docs/GUIDE.md walkthroughs.
#
# Run from the repository root: scripts/check_docs.sh

set -eu

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

proto_ml=lib/service/svc_proto.ml
proto_mli=lib/service/svc_proto.mli
main_ml=bin/mondet.ml

[ -f "$proto_ml" ] && [ -f "$proto_mli" ] && [ -f "$main_ml" ] || {
  echo "check_docs: run from the repository root" >&2
  exit 2
}

# 1. verbs implemented (the printer is the canonical list: every verb
#    constructor has exactly one `[ r.id; "verb" ]` arm)
verbs=$(grep -o 'r\.id; "[a-z-]*"' "$proto_ml" | sed 's/.*"\(.*\)"/\1/' | sort -u)
[ -n "$verbs" ] || err "no verbs extracted from $proto_ml (pattern drift?)"
for v in $verbs; do
  grep -q "$v" README.md || err "verb '$v' not documented in README.md"
  grep -q "^ID $v\( \|\$\)" "$proto_mli" ||
    err "verb '$v' not in the $proto_mli grammar block"
done

# 2. verbs the grammar block documents (`ID verb ...` lines in the mli
#    header comment) still implemented
doc_verbs=$(sed -n 's/^ID \([a-z][a-z-]*\).*/\1/p' "$proto_mli" | sort -u)
[ -n "$doc_verbs" ] || err "no verbs extracted from $proto_mli (pattern drift?)"
for v in $doc_verbs; do
  echo "$verbs" | grep -qx "$v" ||
    err "grammar block in $proto_mli documents unimplemented verb '$v'"
done

# 3. README flags still defined (a cmdliner flag named f appears in
#    bin/mondet.ml as a string literal "f" inside an info [ ... ] list)
flags=$(grep -o -- '`--[a-z-]*' README.md | sed 's/`--//' | sort -u)
for f in $flags; do
  grep -q "\"$f\"" "$main_ml" ||
    err "README.md documents flag --$f, not defined in $main_ml"
done

# 5. verbs walked through in the guide
for v in $verbs; do
  grep -q "$v" docs/GUIDE.md || err "verb '$v' not shown in docs/GUIDE.md"
done

# 4. subcommands reachable from README
subs=$(grep -o 'Cmd\.info "[a-z-]*"' "$main_ml" | sed 's/.*"\(.*\)"/\1/' |
  grep -v '^mondet$' | sort -u)
for s in $subs; do
  grep -q "$s" README.md || err "subcommand '$s' not mentioned in README.md"
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: ok ($(echo "$verbs" | wc -w | tr -d ' ') verbs, $(echo "$flags" | wc -w | tr -d ' ') flags, $(echo "$subs" | wc -w | tr -d ' ') subcommands)"
fi
exit "$fail"
