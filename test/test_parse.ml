(* Parser tests. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rule () =
  let r = Parse.rule "W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w)." in
  check_int "four body atoms" 4 (List.length r.Datalog.body);
  check_bool "head" true (r.Datalog.head.Cq.rel = "W1");
  (* ':-' is accepted too *)
  let r2 = Parse.rule "W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w)" in
  check_bool "same" true (r = r2)

let test_nullary () =
  let r = Parse.rule "Goal <- U1(x), W1(x)." in
  check_int "nullary head" 0 (List.length r.Datalog.head.Cq.args);
  let r2 = Parse.rule "Goal() <- U1(x), W1(x)." in
  check_bool "parens optional" true (r = r2)

let test_constants () =
  let r = Parse.rule "P(x) <- E(x,'b')" in
  (match List.hd r.Datalog.body with
  | { Cq.args = [ Cq.Var "x"; Cq.Cst c ]; _ } ->
      check_bool "const b" true (Const.equal c (Const.named "b"))
  | _ -> Alcotest.fail "bad parse")

let test_instance () =
  let i = Parse.instance "E(a,b). E(b,c). U(a). Zero." in
  check_int "four facts" 4 (Instance.size i);
  check_bool "nullary fact" true (Instance.mem (Fact.make "Zero" []) i)

let test_comments () =
  let i = Parse.instance "E(a,b). % an edge\nU(a)." in
  check_int "comment skipped" 2 (Instance.size i)

let test_program () =
  let p = Parse.program "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)." in
  check_int "two rules" 2 (List.length p)

let test_cq_ucq () =
  let q = Parse.cq "q(x,y) <- E(x,z), E(z,y)" in
  check_int "arity" 2 (Cq.arity q);
  let u = Parse.ucq "q(x) <- U(x). q(x) <- V(x)." in
  check_int "disjuncts" 2 (List.length u.Ucq.disjuncts)

let test_errors () =
  let raises s f =
    match f () with
    | exception Parse.Error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected error: " ^ s)
  in
  raises "unterminated quote" (fun () -> Parse.rule "P(x) <- E(x,'b");
  raises "head var not in body" (fun () -> Parse.rule "P(x) <- E(y,z)");
  raises "garbage" (fun () -> Parse.program "P(x) <- @");
  raises "ucq mixed heads" (fun () -> Parse.ucq "q(x) <- U(x). r(x) <- V(x).")

(* error messages carry the 1-based line/column of the offending token *)
let test_error_positions () =
  let msg f =
    match f () with
    | exception Parse.Error m -> m
    | _ -> Alcotest.fail "expected Parse.Error"
  in
  let starts_with prefix m =
    check_bool
      (Printf.sprintf "%S starts with %S" m prefix)
      true
      (String.length m >= String.length prefix
      && String.sub m 0 (String.length prefix) = prefix)
  in
  starts_with "line 2, column 3: unexpected character"
    (msg (fun () -> Parse.program "P(x) <-\n  @"));
  starts_with "line 1, column 13: unterminated quote"
    (msg (fun () -> Parse.rule "P(x) <- E(x,'b"));
  starts_with "line 1, column 13: expected term, found ')'"
    (msg (fun () -> Parse.rule "P(x) <- E(x,)"));
  starts_with "line 1, column 16: trailing input at ')'"
    (msg (fun () -> Parse.rule "P(x) <- E(x,y) )"));
  starts_with "line 2, column 8: expected ',' or ')'"
    (msg (fun () -> Parse.instance "E(a,b).\nE(a, b c)."))

let test_views () =
  let vs = Parse.views "V(x) <- U(x). W(x,y) <- E(x,y). W(x,y) <- E(y,x)." in
  check_int "two views" 2 (List.length vs);
  let names = List.map (fun v -> v.View.name) vs in
  check_bool "names" true (List.sort compare names = [ "V"; "W" ]);
  let w = List.find (fun v -> v.View.name = "W") vs in
  (match w.View.def with
  | View.Ucq_def u -> check_int "W is a 2-disjunct UCQ" 2 (List.length u.Ucq.disjuncts)
  | _ -> Alcotest.fail "W should be a UCQ view");
  (* a constant in a view head is a Parse.Error naming the view now (the
     surface syntax can't produce one — Datalog.rule rejects head
     constants — so exercise views_of_program on a hand-built rule) *)
  let bad_rule =
    {
      Datalog.head = Cq.atom "V" [ Cq.Var "x"; Cq.Cst (Const.named "a") ];
      body = [ Cq.atom "E" [ Cq.Var "x"; Cq.Var "y" ] ];
    }
  in
  match Parse.views_of_program [ bad_rule ] with
  | exception Parse.Error m ->
      check_bool
        (Printf.sprintf "%S names the view" m)
        true
        (String.length m >= 6 && String.sub m 0 6 = "view V")
  | _ -> Alcotest.fail "expected Parse.Error for constant in view head"

let suite =
  [
    Alcotest.test_case "rule" `Quick test_rule;
    Alcotest.test_case "nullary" `Quick test_nullary;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "instance" `Quick test_instance;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "program" `Quick test_program;
    Alcotest.test_case "cq/ucq" `Quick test_cq_ucq;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "views" `Quick test_views;
  ]
