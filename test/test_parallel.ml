(* Tests for the domain-sharded evaluator (Dl_parallel) and its strategy
   routing (Dl_engine.Parallel): unit checks of the pool configuration and
   early stop, differential agreement with the naive oracle on random
   program/instance pairs under a multi-domain pool, and the determinism
   property — the fixpoint instance is identical across domain counts. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let tc =
  Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [ c (Printf.sprintf "a%d" i); c (Printf.sprintf "a%d" (i + 1)) ]))

(* every property below pins its own domain count, so suite order cannot
   change what is tested; [with_domains] restores a 1-sized pool after *)
let with_domains n f =
  Dl_parallel.set_domains n;
  Fun.protect ~finally:(fun () -> Dl_parallel.set_domains 1) f

let test_config () =
  Dl_parallel.set_domains 3;
  check_int "set_domains wins" 3 (Dl_parallel.domains ());
  Dl_parallel.set_domains 0;
  check_int "clamped below at 1" 1 (Dl_parallel.domains ());
  Dl_parallel.set_domains 9999;
  check_int "clamped above at 64" 64 (Dl_parallel.domains ());
  Dl_parallel.set_domains 1

let test_tc_chain () =
  with_domains 4 @@ fun () ->
  let i = chain 24 in
  check_int "full closure" (24 * 25 / 2)
    (List.length (Dl_parallel.eval tc i));
  check_bool "holds" true (Dl_parallel.holds tc i [| c "a0"; c "a24" |]);
  check_bool "rejects" false (Dl_parallel.holds tc i [| c "a24"; c "a0" |]);
  check_bool "boolean" true (Dl_parallel.holds_boolean tc i);
  check_bool "boolean on empty" false
    (Dl_parallel.holds_boolean tc Instance.empty)

let test_early_stop_under_sharding () =
  (* the goal is derivable in round 1; whichever worker finds it first
     sets the flag, and the barrier must still report it *)
  with_domains 4 @@ fun () ->
  let i = chain 64 in
  check_bool "adjacent pair found in first round" true
    (Dl_parallel.holds tc i [| c "a3"; c "a4" |]);
  let q0 = Parse.query ~goal:"G" "G <- E(x,y)." in
  check_bool "boolean goal, wide first round" true
    (Dl_parallel.holds_boolean q0 i)

let test_pool_resize () =
  (* exercise shrink and regrow of the persistent pool *)
  let i = chain 12 in
  let expect = List.length (Dl_eval.eval tc i) in
  List.iter
    (fun d ->
      Dl_parallel.set_domains d;
      check_int
        (Printf.sprintf "pool of %d" d)
        expect
        (List.length (Dl_parallel.eval tc i)))
    [ 4; 2; 5; 1; 3 ];
  Dl_parallel.set_domains 1

let test_engine_facade () =
  with_domains 2 @@ fun () ->
  let i = chain 4 in
  check_bool "facade holds" true
    (Dl_engine.holds ~strategy:Dl_engine.Parallel tc i [| c "a0"; c "a4" |]);
  check_int "facade eval" 10
    (List.length (Dl_engine.eval ~strategy:Dl_engine.Parallel tc i));
  check_bool "parallel is listed" true
    (List.mem Dl_engine.Parallel Dl_engine.all);
  check_bool "of_string" true
    (Dl_engine.of_string "parallel" = Some Dl_engine.Parallel)

(* differential properties against the naive scan-based oracle, on the
   same random program/instance generator as the indexed and magic
   suites, with a 3-domain pool so the sharded path really runs *)

let norm ts = List.sort compare (List.map Array.to_list ts)

let prop_parallel_eval_differential =
  QCheck.Test.make ~name:"parallel eval = naive eval" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      with_domains 3 @@ fun () ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          norm (Dl_engine.eval ~strategy:Dl_engine.Parallel q i)
          = norm (Dl_engine.eval ~strategy:Dl_engine.Naive q i))
        Test_datalog.dg_idbs)

let prop_parallel_boolean_differential =
  QCheck.Test.make ~name:"parallel holds_boolean = naive" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      with_domains 3 @@ fun () ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          Dl_engine.holds_boolean ~strategy:Dl_engine.Parallel q i
          = Dl_engine.holds_boolean ~strategy:Dl_engine.Naive q i)
        Test_datalog.dg_idbs)

let prop_parallel_holds_differential =
  QCheck.Test.make ~name:"parallel holds = naive membership" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      with_domains 3 @@ fun () ->
      let consts = [ c "e0"; c "e1"; c "e2"; c "e3" ] in
      List.for_all
        (fun (goal, arity) ->
          let q = Datalog.make p goal in
          let tuples =
            if arity = 1 then List.map (fun x -> [| x |]) consts
            else
              List.concat_map
                (fun x -> List.map (fun y -> [| x; y |]) consts)
                consts
          in
          List.for_all
            (fun tup ->
              Dl_engine.holds ~strategy:Dl_engine.Parallel q i tup
              = Dl_engine.holds ~strategy:Dl_engine.Naive q i tup)
            tuples)
        Test_datalog.dg_idbs)

let prop_parallel_deterministic =
  (* two parallel runs with different domain counts produce the same
     fixpoint instance (not just the same goal tuples) *)
  QCheck.Test.make ~name:"parallel fixpoint deterministic across domains"
    ~count:120 Test_datalog.dg_pair_arb (fun (p, i) ->
      let fp d =
        Dl_parallel.set_domains d;
        Dl_parallel.fixpoint p i
      in
      let f2 = fp 2 and f4 = fp 4 in
      Dl_parallel.set_domains 1;
      Instance.equal f2 f4 && Instance.equal f2 (Dl_eval.fixpoint p i))

let suite =
  [
    Alcotest.test_case "domain-count config" `Quick test_config;
    Alcotest.test_case "transitive closure, 4 domains" `Quick test_tc_chain;
    Alcotest.test_case "early stop under sharding" `Quick
      test_early_stop_under_sharding;
    Alcotest.test_case "pool resize" `Quick test_pool_resize;
    Alcotest.test_case "engine facade routing" `Quick test_engine_facade;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_parallel_eval_differential;
        prop_parallel_boolean_differential;
        prop_parallel_holds_differential;
        prop_parallel_deterministic;
      ]
  @ [
      (* runs last: join the pool so the remaining suites don't pay
         multi-domain GC synchronization for idle workers *)
      Alcotest.test_case "pool shutdown" `Quick (fun () ->
          Dl_parallel.set_domains 1;
          Dl_parallel.shutdown ();
          Alcotest.(check int) "back to one domain" 1 (Dl_parallel.domains ()));
    ]
