(* Tests for the relational substrate: constants, facts, instances,
   homomorphisms, Gaifman graphs. *)

let c = Const.named
let f rel args = Fact.make rel (List.map c args)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let i_of = Instance.of_list

(* ---------------------------------------------------------------- *)
(* Instances                                                         *)

let test_instance_basic () =
  let i = i_of [ f "R" [ "a"; "b" ]; f "R" [ "b"; "c" ]; f "U" [ "a" ] ] in
  check_int "size" 3 (Instance.size i);
  check_bool "mem" true (Instance.mem (f "R" [ "a"; "b" ]) i);
  check_bool "not mem" false (Instance.mem (f "R" [ "a"; "a" ]) i);
  let i' = Instance.add (f "R" [ "a"; "b" ]) i in
  check_int "idempotent add" 3 (Instance.size i');
  check_int "adom" 3 (Const.Set.cardinal (Instance.adom i));
  check_bool "relations" true (Instance.relations i = [ "R"; "U" ])

let test_instance_set_ops () =
  let a = i_of [ f "R" [ "a"; "b" ]; f "U" [ "a" ] ] in
  let b = i_of [ f "R" [ "a"; "b" ]; f "U" [ "b" ] ] in
  check_int "union" 3 (Instance.size (Instance.union a b));
  check_int "inter" 1 (Instance.size (Instance.inter a b));
  check_int "diff" 1 (Instance.size (Instance.diff a b));
  check_bool "subset" true (Instance.subset (Instance.inter a b) a);
  check_bool "not subset" false (Instance.subset a b);
  check_bool "equal" true (Instance.equal a (i_of [ f "U" [ "a" ]; f "R" [ "a"; "b" ] ]))

let test_instance_restrict_map () =
  let a = i_of [ f "R" [ "a"; "b" ]; f "U" [ "a" ] ] in
  let r = Instance.restrict (String.equal "R") a in
  check_int "restrict" 1 (Instance.size r);
  let m = Instance.map (fun _ -> c "z") a in
  check_bool "map collapses" true
    (Instance.equal m (i_of [ f "R" [ "z"; "z" ]; f "U" [ "z" ] ]));
  let ra = Instance.rename_apart a in
  check_int "rename_apart same size" 2 (Instance.size ra);
  check_bool "rename_apart disjoint adom" true
    (Const.Set.is_empty (Const.Set.inter (Instance.adom a) (Instance.adom ra)))

let test_tuples_with () =
  let i = i_of [ f "R" [ "a"; "b" ]; f "R" [ "a"; "c" ]; f "R" [ "b"; "c" ] ] in
  check_int "bound first" 2 (List.length (Instance.tuples_with i "R" [ (0, c "a") ]));
  check_int "bound both" 1
    (List.length (Instance.tuples_with i "R" [ (0, c "a"); (1, c "c") ]));
  check_int "bound none" 3 (List.length (Instance.tuples_with i "R" []));
  check_int "missing rel" 0 (List.length (Instance.tuples_with i "S" []))

(* ---------------------------------------------------------------- *)
(* Homomorphisms                                                     *)

(* a directed path a->b->c and a triangle x->y->z->x *)
let path3 = i_of [ f "E" [ "a"; "b" ]; f "E" [ "b"; "c" ] ]
let triangle = i_of [ f "E" [ "x"; "y" ]; f "E" [ "y"; "z" ]; f "E" [ "z"; "x" ] ]
let loop1 = i_of [ f "E" [ "o"; "o" ] ]

let test_hom_exists () =
  check_bool "path -> triangle" true (Hom.exists path3 triangle);
  check_bool "triangle -/-> path" false (Hom.exists triangle path3);
  check_bool "triangle -> loop" true (Hom.exists triangle loop1);
  check_bool "path -> loop" true (Hom.exists path3 loop1);
  check_bool "loop -/-> path" false (Hom.exists loop1 path3);
  check_bool "loop -/-> triangle" false (Hom.exists loop1 triangle)

let test_hom_is_hom () =
  match Hom.find path3 triangle with
  | None -> Alcotest.fail "expected hom"
  | Some h -> check_bool "is_hom" true (Hom.is_hom h path3 triangle)

let test_hom_init () =
  (* with init fixing a↦x, a hom must send b↦y, c↦z *)
  let init = Const.Map.singleton (c "a") (c "x") in
  (match Hom.find ~init path3 triangle with
  | None -> Alcotest.fail "expected hom with init"
  | Some h ->
      check_bool "b↦y" true (Const.equal (Const.Map.find (c "b") h) (c "y")));
  (* init mapping both endpoints of an edge to non-edge: no hom *)
  let bad =
    Const.Map.add (c "a") (c "x") (Const.Map.singleton (c "b") (c "x"))
  in
  check_bool "no hom with bad init" false (Hom.exists ~init:bad path3 triangle)

let test_hom_count () =
  (* homs from a single edge into a triangle: 3 *)
  let edge = i_of [ f "E" [ "u"; "v" ] ] in
  check_int "edge into triangle" 3 (Hom.count edge triangle);
  (* homs from path3 into triangle: each start vertex determines the rest *)
  check_int "path3 into triangle" 3 (Hom.count path3 triangle);
  check_int "limit" 2 (Hom.count ~limit:2 path3 triangle)

let test_hom_nullary () =
  let src = i_of [ Fact.make "G" [] ] in
  let dst = i_of [ Fact.make "G" []; f "E" [ "a"; "b" ] ] in
  check_bool "nullary hom" true (Hom.exists src dst);
  check_bool "nullary no hom" false (Hom.exists src path3)

let test_core () =
  (* the core of a path with a pendant copy: E(a,b), E(a,b') folds to one edge *)
  let i = i_of [ f "E" [ "a"; "b" ]; f "E" [ "a"; "b2" ] ] in
  let core = Hom.endo_core i in
  check_int "folded" 1 (Instance.size core);
  (* triangle is a core *)
  let core_t = Hom.endo_core triangle in
  check_int "triangle is core" 3 (Instance.size core_t);
  (* homomorphic equivalence preserved *)
  check_bool "core <-> original" true
    (Hom.exists core i && Hom.exists i core)

(* ---------------------------------------------------------------- *)
(* Gaifman graphs                                                    *)

let test_gaifman () =
  let g = Gaifman.of_instance path3 in
  check_int "nodes" 3 (List.length (Gaifman.nodes g));
  check_bool "dist a-c" true (Gaifman.distance g (c "a") (c "c") = Some 2);
  check_bool "radius path3" true (Gaifman.radius g = Some 1);
  check_bool "connected" true (Gaifman.connected g);
  let disc = i_of [ f "U" [ "a" ]; f "U" [ "b" ] ] in
  let gd = Gaifman.of_instance disc in
  check_bool "disconnected" false (Gaifman.connected gd);
  check_int "components" 2 (List.length (Gaifman.components gd));
  check_bool "radius disconnected" true (Gaifman.radius gd = None)

let test_gaifman_ternary () =
  (* a ternary fact makes a clique of its elements *)
  let i = i_of [ f "T" [ "a"; "b"; "c" ] ] in
  let g = Gaifman.of_instance i in
  check_bool "a-b adjacent" true (Gaifman.distance g (c "a") (c "b") = Some 1);
  check_bool "radius 1" true (Gaifman.radius g = Some 1);
  check_int "ball" 3 (Const.Set.cardinal (Gaifman.ball g (c "a") 1))

(* ---------------------------------------------------------------- *)
(* Properties                                                        *)

let const_gen =
  QCheck.Gen.(map (fun i -> Const.named ("e" ^ string_of_int i)) (int_bound 5))

let fact_gen =
  QCheck.Gen.(
    let* rel = map (fun i -> [| "R"; "S"; "U" |].(i)) (int_bound 2) in
    let arity = if rel = "U" then 1 else 2 in
    let* args = list_repeat arity const_gen in
    return (Fact.make rel args))

let instance_gen = QCheck.Gen.(map Instance.of_list (list_size (int_bound 12) fact_gen))

let instance_arb =
  QCheck.make ~print:(fun i -> Fmt.str "%a" Instance.pp i) instance_gen

let prop_union_monotone =
  QCheck.Test.make ~name:"hom into superset still a hom" ~count:60
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      match Hom.find a (Instance.union a b) with
      | None -> false
      | Some h -> Hom.is_hom h a (Instance.union a b))

let prop_identity_hom =
  QCheck.Test.make ~name:"identity is a hom" ~count:60 instance_arb (fun a ->
      Hom.exists a a)

let prop_hom_compose =
  QCheck.Test.make ~name:"hom composition" ~count:40
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      let ab = Instance.union a b in
      match Hom.find a ab with
      | None -> false
      | Some h ->
          (* compose with a collapsing endomorphism of ab *)
          let z = Const.named "z" in
          let g =
            Const.Set.fold
              (fun x m -> Const.Map.add x z m)
              (Instance.adom ab) Const.Map.empty
          in
          let collapsed = Instance.map (fun _ -> z) ab in
          Hom.is_hom (Hom.compose g h) a collapsed)

let prop_core_equivalent =
  QCheck.Test.make ~name:"core is hom-equivalent" ~count:30 instance_arb
    (fun a ->
      let core = Hom.endo_core a in
      (Instance.is_empty a && Instance.is_empty core)
      || (Hom.exists a core && Hom.exists core a))

let qcheck = List.map QCheck_alcotest.to_alcotest
  [ prop_union_monotone; prop_identity_hom; prop_hom_compose; prop_core_equivalent ]

let suite =
  [
    Alcotest.test_case "instance basic" `Quick test_instance_basic;
    Alcotest.test_case "instance set ops" `Quick test_instance_set_ops;
    Alcotest.test_case "instance restrict/map" `Quick test_instance_restrict_map;
    Alcotest.test_case "tuples_with" `Quick test_tuples_with;
    Alcotest.test_case "hom exists" `Quick test_hom_exists;
    Alcotest.test_case "hom is_hom" `Quick test_hom_is_hom;
    Alcotest.test_case "hom init" `Quick test_hom_init;
    Alcotest.test_case "hom count" `Quick test_hom_count;
    Alcotest.test_case "hom nullary" `Quick test_hom_nullary;
    Alcotest.test_case "core" `Quick test_core;
    Alcotest.test_case "gaifman" `Quick test_gaifman;
    Alcotest.test_case "gaifman ternary" `Quick test_gaifman_ternary;
  ]
  @ qcheck

(* ---------------------------------------------------------------- *)
(* Index-backed access paths, checked against scan oracles           *)

let scan_tuples_with i rel cs =
  List.filter
    (fun tup ->
      List.for_all
        (fun (p, cc) -> p < Array.length tup && Const.equal tup.(p) cc)
        cs)
    (Instance.tuples i rel)

let constraint_gen =
  QCheck.Gen.(
    list_size (int_bound 3) (pair (int_bound 2) const_gen))

let tw_arb =
  QCheck.make
    ~print:(fun (i, cs) ->
      Fmt.str "%a with %a" Instance.pp i
        Fmt.(list ~sep:comma (pair int Const.pp))
        cs)
    QCheck.Gen.(pair instance_gen constraint_gen)

let prop_tuples_with_oracle =
  QCheck.Test.make ~name:"tuples_with = scan filter" ~count:120 tw_arb
    (fun (i, cs) ->
      let norm ts = List.sort compare (List.map Array.to_list ts) in
      List.for_all
        (fun rel ->
          norm (Instance.tuples_with i rel cs) = norm (scan_tuples_with i rel cs))
        ("missing" :: Instance.relations i))

let prop_estimate_upper_bound =
  QCheck.Test.make ~name:"estimate_with bounds tuples_with" ~count:120 tw_arb
    (fun (i, cs) ->
      List.for_all
        (fun rel ->
          List.length (Instance.tuples_with i rel cs)
          <= Instance.estimate_with i rel cs)
        (Instance.relations i))

let prop_no_empty_relations =
  (* the no-empty-relation invariant behind O(1) [is_empty]: set operations
     never leave a relation with zero tuples in the map *)
  QCheck.Test.make ~name:"relations lists only non-empty ones" ~count:120
    (QCheck.pair instance_arb instance_arb)
    (fun (a, b) ->
      let ok i =
        List.for_all (fun r -> Instance.cardinal i r > 0) (Instance.relations i)
        && Instance.is_empty i = (Instance.size i = 0)
      in
      let removed =
        Instance.fold (fun fct acc -> Instance.remove fct acc) b (Instance.union a b)
      in
      ok (Instance.union a b) && ok (Instance.diff a b) && ok (Instance.inter a b)
      && ok removed
      && Instance.is_empty (Instance.diff a a))

let constraint_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Fmt.(list ~sep:comma (pair int Const.pp)))
    constraint_gen

let prop_warm_union_index =
  (* unioning extends the larger operand's cached index incrementally;
     the extended buckets must agree with a scan of the unioned instance *)
  QCheck.Test.make ~name:"warm incremental union index = scan filter" ~count:120
    (QCheck.triple instance_arb instance_arb constraint_arb)
    (fun (a, b, cs) ->
      (* force a's caches so the union takes the extend path *)
      List.iter (fun r -> ignore (Instance.tuples_with a r [ (0, c "e0") ]))
        (Instance.relations a);
      let u = Instance.union a b in
      let norm ts = List.sort compare (List.map Array.to_list ts) in
      List.for_all
        (fun rel ->
          norm (Instance.tuples_with u rel cs) = norm (scan_tuples_with u rel cs)
          && List.length (Instance.tuples_with u rel cs)
             <= Instance.estimate_with u rel cs)
        (Instance.relations u))

(* ---------------------------------------------------------------- *)
(* Structural fingerprints and the interning layer                    *)

let prop_fp_structural =
  (* the cache-key contract: fingerprint equality ⇔ structural equality
     (the ⇐ direction is the maintained invariant; ⇒ would only fail on
     a 126-bit collision, which these instances cannot produce) *)
  QCheck.Test.make ~name:"fingerprint equality = structural equality"
    ~count:200
    (QCheck.pair instance_arb instance_arb)
    (fun (a, b) ->
      Instance.equal a b = (Instance.fingerprint a = Instance.fingerprint b))

let prop_fp_union_order =
  (* incrementally maintained fingerprints are history-independent:
     either union order, and a cold rebuild from the fact list, all
     yield the same pair *)
  QCheck.Test.make ~name:"fingerprint independent of union order" ~count:120
    (QCheck.pair instance_arb instance_arb)
    (fun (a, b) ->
      let u = Instance.union a b in
      Instance.fingerprint u = Instance.fingerprint (Instance.union b a)
      && Instance.fingerprint u
         = Instance.fingerprint (Instance.of_list (Instance.facts u)))

let prop_fp_warm_union =
  (* the index-extending union path maintains the same fingerprint as
     the cold path *)
  QCheck.Test.make ~name:"fingerprint survives warm union" ~count:120
    (QCheck.pair instance_arb instance_arb)
    (fun (a, b) ->
      List.iter (fun r -> ignore (Instance.index a r)) (Instance.relations a);
      Instance.fingerprint (Instance.union a b)
      = Instance.fingerprint (Instance.of_list (Instance.facts a @ Instance.facts b)))

let prop_fp_add_remove =
  (* add/remove round-trips restore the fingerprint exactly *)
  QCheck.Test.make ~name:"fingerprint add/remove round-trip" ~count:120
    (QCheck.pair instance_arb (QCheck.make fact_gen))
    (fun (a, fct) ->
      let fp = Instance.fingerprint a in
      let added = Instance.add fct a in
      let back =
        if Instance.mem fct a then added else Instance.remove fct added
      in
      Instance.fingerprint back = fp
      && (Instance.mem fct a
         || Instance.fingerprint added <> fp))

let test_fingerprint_hex () =
  let a = i_of [ f "R" [ "a"; "b" ]; f "U" [ "a" ] ] in
  Alcotest.(check int) "hex width" 32 (String.length (Instance.fingerprint_hex a));
  Alcotest.(check int)
    "empty hex width" 32
    (String.length (Instance.fingerprint_hex Instance.empty));
  check_bool "hex ≠ for ≠ instances" true
    (Instance.fingerprint_hex a <> Instance.fingerprint_hex Instance.empty)

let test_query_fingerprint () =
  let q () =
    Datalog.make
      [
        Datalog.rule
          (Cq.atom "T" [ Cq.Var "x"; Cq.Var "y" ])
          [ Cq.atom "E" [ Cq.Var "x"; Cq.Var "y" ] ];
        Datalog.rule
          (Cq.atom "T" [ Cq.Var "x"; Cq.Var "z" ])
          [
            Cq.atom "E" [ Cq.Var "x"; Cq.Var "y" ];
            Cq.atom "T" [ Cq.Var "y"; Cq.Var "z" ];
          ];
      ]
      "T"
  in
  let q1 = q () and q2 = q () in
  check_bool "equal queries fingerprint equal" true
    (Datalog.fingerprint q1 = Datalog.fingerprint q2);
  check_bool "memoized call stable" true
    (Datalog.fingerprint q1 = Datalog.fingerprint q1);
  let q3 = Datalog.make (List.tl q1.Datalog.program) "T" in
  check_bool "different program, different fingerprint" true
    (Datalog.fingerprint q1 <> Datalog.fingerprint q3);
  Alcotest.(check int) "hex width" 32 (String.length (Datalog.fingerprint_hex q1))

(* [Const.fresh] must hand out globally distinct nulls even when several
   domains allocate concurrently (chase steps on the pool do). *)
let test_fresh_atomic_domains () =
  let per_domain = 2000 and ndomains = 4 in
  let gen () = Array.init per_domain (fun _ -> Const.fresh ()) in
  let handles = List.init (ndomains - 1) (fun _ -> Domain.spawn gen) in
  let mine = gen () in
  let all = mine :: List.map Domain.join handles in
  let tbl = Hashtbl.create (per_domain * ndomains) in
  List.iter (Array.iter (fun c -> Hashtbl.replace tbl c ())) all;
  check_int "all nulls distinct" (per_domain * ndomains) (Hashtbl.length tbl);
  List.iter
    (Array.iter (fun c -> check_bool "fresh is fresh" true (Const.is_fresh c)))
    all

let suite =
  suite
  @ [
      Alcotest.test_case "fingerprint hex" `Quick test_fingerprint_hex;
      Alcotest.test_case "query fingerprint" `Quick test_query_fingerprint;
      Alcotest.test_case "fresh nulls across domains" `Quick
        test_fresh_atomic_domains;
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_tuples_with_oracle;
        prop_estimate_upper_bound;
        prop_no_empty_relations;
        prop_warm_union_index;
        prop_fp_structural;
        prop_fp_union_order;
        prop_fp_warm_union;
        prop_fp_add_remove;
      ]
