(* Tests for incremental view maintenance (Dl_incr): stratification
   units, hand-picked mutation edge cases (retract-never-asserted,
   retract-base-fact-also-derivable, assert-already-derived), per-engine
   create coverage, cancellation poisoning, and the differential
   property the module exists to uphold — after EVERY mutation in a
   random assert/retract interleaving, the maintained fixpoint equals a
   cold re-evaluation from the edited base, across three workload
   families (recursive closure, non-recursive joins, random stratified
   programs). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let tc =
  Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

let e a b = Fact.make "E" [ c a; c b ]
let t' a b = Fact.make "T" [ c a; c b ]

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         e (Printf.sprintf "a%d" i) (Printf.sprintf "a%d" (i + 1))))

(* join tower: two non-recursive strata over E *)
let joins =
  Parse.query ~goal:"Q" "P(x,y) <- E(x,z), E(z,y). Q(x) <- P(x,x)."

(* three levels: non-recursive base, recursive middle, non-recursive top *)
let tower =
  Parse.query ~goal:"Top"
    "B(x,y) <- E(x,y). T(x,y) <- B(x,y). T(x,y) <- B(x,z), T(z,y). Top(x) <- T(x,x)."

let cold p i = Dl_eval.fixpoint p i

let agrees m =
  Instance.equal (Dl_incr.full m) (cold (Dl_incr.program m) (Dl_incr.base m))

(* --- stratification ------------------------------------------------- *)

let test_stratify () =
  check_bool "tc: one recursive stratum" true
    (Dl_incr.strata (Dl_incr.create tc.Datalog.program (chain 3))
    = [ ([ "T" ], true) ]);
  let m = Dl_incr.create joins.Datalog.program (chain 3) in
  check_bool "joins: two counting strata in order" true
    (Dl_incr.strata m = [ ([ "P" ], false); ([ "Q" ], false) ]);
  let m = Dl_incr.create tower.Datalog.program (chain 3) in
  check_bool "tower: counting, DRed, counting" true
    (Dl_incr.strata m
    = [ ([ "B" ], false); ([ "T" ], true); ([ "Top" ], false) ]);
  (* mutually recursive predicates end up in one stratum *)
  let mutual =
    Parse.query ~goal:"A" "A(x) <- U(x). A(x) <- B(x). B(x) <- A(x)."
  in
  let m = Dl_incr.create mutual.Datalog.program Instance.empty in
  check_bool "mutual recursion: one SCC" true
    (Dl_incr.strata m = [ ([ "A"; "B" ], true) ])

(* --- unit mutation semantics ---------------------------------------- *)

let test_assert_retract_tc () =
  let m = Dl_incr.create tc.Datalog.program (chain 4) in
  check_bool "create = cold" true (agrees m);
  check_int "closure size" (4 + (4 * 5 / 2)) (Instance.size (Dl_incr.full m));
  (* bridge the chain end back to the start: closure becomes total *)
  Dl_incr.assert_facts m [ e "a4" "a0" ];
  check_bool "assert maintains" true (agrees m);
  check_int "cyclic closure" (5 + (5 * 5)) (Instance.size (Dl_incr.full m));
  Dl_incr.retract_facts m [ e "a4" "a0" ];
  check_bool "retract maintains" true (agrees m);
  check_int "back to the chain" (4 + (4 * 5 / 2))
    (Instance.size (Dl_incr.full m));
  (* cut the chain in the middle: downstream closure facts disappear *)
  Dl_incr.retract_facts m [ e "a1" "a2" ];
  check_bool "cut maintains" true (agrees m);
  check_bool "severed" false (Instance.mem (t' "a0" "a4") (Dl_incr.full m));
  check_bool "left half survives" true
    (Instance.mem (t' "a0" "a1") (Dl_incr.full m))

let test_retract_never_asserted () =
  let m = Dl_incr.create tc.Datalog.program (chain 3) in
  let before = Dl_incr.full m in
  Dl_incr.retract_facts m [ e "z0" "z1"; t' "a0" "a2" ];
  check_bool "no-op retract keeps base" true
    (Instance.equal (Dl_incr.base m) (chain 3));
  check_bool "no-op retract keeps full" true
    (Instance.equal (Dl_incr.full m) before);
  check_bool "still valid" true (Dl_incr.valid m)

let test_retract_base_also_derivable () =
  (* T(a0,a2) holds both as an asserted base fact and via the chain;
     retracting the base fact must keep it derived, and retracting the
     chain support afterwards must finally remove it. *)
  let i = Instance.add (t' "a0" "a2") (chain 2) in
  let m = Dl_incr.create tc.Datalog.program i in
  Dl_incr.retract_facts m [ t' "a0" "a2" ];
  check_bool "retract maintains" true (agrees m);
  check_bool "still derived" true (Instance.mem (t' "a0" "a2") (Dl_incr.full m));
  check_bool "gone from base" false (Instance.mem (t' "a0" "a2") (Dl_incr.base m));
  Dl_incr.retract_facts m [ e "a1" "a2" ];
  check_bool "support cut maintains" true (agrees m);
  check_bool "now gone" false (Instance.mem (t' "a0" "a2") (Dl_incr.full m))

let test_assert_already_derived () =
  (* asserting a derived fact pins it into the base: it must survive
     losing its derivation support *)
  let m = Dl_incr.create tc.Datalog.program (chain 2) in
  Dl_incr.assert_facts m [ t' "a0" "a2" ];
  check_bool "assert maintains" true (agrees m);
  Dl_incr.retract_facts m [ e "a1" "a2" ];
  check_bool "support cut maintains" true (agrees m);
  check_bool "asserted fact survives" true
    (Instance.mem (t' "a0" "a2") (Dl_incr.full m))

let test_counting_strata () =
  (* diamond: P(x,y) has two derivations via the two middle nodes, so
     retracting one leg must keep P alive (count 2 -> 1), the second
     retraction kills it *)
  let i = Instance.of_list [ e "s" "l"; e "s" "r"; e "l" "t"; e "r" "t" ] in
  let m = Dl_incr.create joins.Datalog.program i in
  let p = Fact.make "P" [ c "s"; c "t" ] in
  check_bool "both legs derive" true (Instance.mem p (Dl_incr.full m));
  Dl_incr.retract_facts m [ e "l" "t" ];
  check_bool "one leg left maintains" true (agrees m);
  check_bool "one leg still derives" true (Instance.mem p (Dl_incr.full m));
  Dl_incr.retract_facts m [ e "s" "r" ];
  check_bool "no legs maintains" true (agrees m);
  check_bool "no legs: gone" false (Instance.mem p (Dl_incr.full m))

let test_engines () =
  (* every strategy must serve create and maintenance fixpoints *)
  List.iter
    (fun strategy ->
      let m = Dl_incr.create ~strategy tower.Datalog.program (chain 5) in
      check_bool
        (Printf.sprintf "create under %s" (Dl_engine.to_string strategy))
        true (agrees m);
      Dl_incr.assert_facts m [ e "a5" "a0" ];
      Dl_incr.retract_facts m [ e "a2" "a3" ];
      check_bool
        (Printf.sprintf "maintenance under %s" (Dl_engine.to_string strategy))
        true (agrees m))
    Dl_engine.all

let test_cancellation () =
  let expired = Dl_cancel.with_deadline_ms 0 in
  check_bool "cancelled create raises" true
    (try
       ignore (Dl_incr.create ~cancel:expired tc.Datalog.program (chain 3));
       false
     with Dl_cancel.Cancelled -> true);
  let m = Dl_incr.create tc.Datalog.program (chain 3) in
  let base_before = Dl_incr.base m in
  check_bool "cancelled mutation raises" true
    (try
       Dl_incr.retract_facts ~cancel:expired m [ e "a0" "a1" ];
       false
     with Dl_cancel.Cancelled -> true);
  check_bool "base untouched" true (Instance.equal (Dl_incr.base m) base_before);
  check_bool "poisoned" false (Dl_incr.valid m);
  check_bool "further mutation rejected" true
    (try
       Dl_incr.assert_facts m [ e "b0" "b1" ];
       false
     with Invalid_argument _ -> true);
  (* a cancelled no-op mutation is harmless: nothing to repair *)
  let m2 = Dl_incr.create tc.Datalog.program (chain 3) in
  Dl_incr.retract_facts ~cancel:expired m2 [ e "z0" "z1" ];
  check_bool "no-op under deadline stays valid" true (Dl_incr.valid m2)

(* --- differential property: maintained = cold after every mutation --- *)

(* same fixed schema as test_datalog's generators *)
let dg_rels = [ ("E", 2); ("U", 1); ("P", 1); ("T", 2) ]

let dg_var =
  QCheck.Gen.(map (fun i -> [| "x"; "y"; "z"; "w" |].(i)) (int_bound 3))

let dg_atom rels =
  QCheck.Gen.(
    let* rel, arity = oneofl rels in
    let* vs = list_repeat arity dg_var in
    return (Cq.atom rel (List.map (fun v -> Cq.Var v) vs)))

let dg_rule =
  QCheck.Gen.(
    let* body = list_size (int_range 1 3) (dg_atom dg_rels) in
    let bvars =
      List.concat_map
        (fun (a : Cq.atom) ->
          List.filter_map
            (function Cq.Var v -> Some v | Cq.Cst _ -> None)
            a.args)
        body
    in
    let* hrel, harity = oneofl [ ("P", 1); ("T", 2) ] in
    let* hvs = list_repeat harity (oneofl bvars) in
    return (Datalog.rule (Cq.atom hrel (List.map (fun v -> Cq.Var v) hvs)) body))

let dg_const = QCheck.Gen.(map (fun i -> c ("e" ^ string_of_int i)) (int_bound 3))

let dg_fact rels =
  QCheck.Gen.(
    let* rel, arity = oneofl rels in
    let* args = list_repeat arity dg_const in
    return (Fact.make rel args))

(* a mutation: assert or retract a small batch of random facts (IDB
   facts included, so base-edit seeding of every stratum is exercised) *)
let dg_op rels =
  QCheck.Gen.(
    pair bool (list_size (int_range 1 3) (dg_fact rels)))

let dg_script rels =
  QCheck.Gen.(
    pair
      (map Instance.of_list (list_size (int_bound 10) (dg_fact rels)))
      (list_size (int_range 1 6) (dg_op rels)))

let pp_script (i, ops) =
  Fmt.str "start %a@.%a" Instance.pp i
    (Fmt.list (fun ppf (add, fs) ->
         Fmt.pf ppf "%s %a" (if add then "assert" else "retract")
           (Fmt.list Fact.pp) fs))
    ops

let run_script p (start, ops) =
  let m = Dl_incr.create p start in
  agrees m
  && List.for_all
       (fun (add, fs) ->
         if add then Dl_incr.assert_facts m fs else Dl_incr.retract_facts m fs;
         agrees m)
       ops

let script_arb rels = QCheck.make ~print:pp_script (dg_script rels)

let prop_family name p rels =
  QCheck.Test.make
    ~name:(Printf.sprintf "maintained = cold re-eval (%s)" name)
    ~count:120 (script_arb rels)
    (fun script -> run_script p script)

let prop_tc =
  prop_family "recursive closure" tc.Datalog.program [ ("E", 2); ("T", 2) ]

let prop_joins =
  prop_family "non-recursive joins" joins.Datalog.program
    [ ("E", 2); ("P", 2); ("Q", 1) ]

let prop_random =
  (* random stratified/recursive programs, random scripts *)
  QCheck.Test.make ~name:"maintained = cold re-eval (random programs)"
    ~count:120
    (QCheck.make
       ~print:(fun (p, s) ->
         Fmt.str "%a@.%s" Datalog.pp_program p (pp_script s))
       QCheck.Gen.(
         pair (list_size (int_range 1 5) dg_rule) (dg_script dg_rels)))
    (fun (p, script) -> run_script p script)

let suite =
  [
    Alcotest.test_case "stratification" `Quick test_stratify;
    Alcotest.test_case "assert/retract on closure" `Quick test_assert_retract_tc;
    Alcotest.test_case "retract never-asserted" `Quick
      test_retract_never_asserted;
    Alcotest.test_case "retract base fact also derivable" `Quick
      test_retract_base_also_derivable;
    Alcotest.test_case "assert already-derived" `Quick
      test_assert_already_derived;
    Alcotest.test_case "counting strata" `Quick test_counting_strata;
    Alcotest.test_case "all engines" `Quick test_engines;
    Alcotest.test_case "cancellation poisons" `Quick test_cancellation;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_tc; prop_joins; prop_random ]
