(* RPQ subsystem tests: parser/printer round-trips and reversal, word
   NFA membership and complementation, the Datalog translation on small
   graphs, the view-rewriting constructions (lossless and lossy cases),
   and qcheck differentials — the Datalog translation against a naive
   product-construction reachability oracle under the indexed, vm and
   parallel strategies, plus rewriting soundness/lossless-equality on
   random view sets. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let n = Rpq_graph.node

(* ---------- surface syntax ---------- *)

let test_parse_print () =
  let rt s = Rpq.to_string (Rpq.parse s) in
  check_string "plain" "a.b" (rt "a.b");
  check_string "implicit concat" "a.b" (rt "a b");
  check_string "star binds tight" "a.b*" (rt "a.b*");
  check_string "group survives" "(a.b)*" (rt "(a.b)*");
  check_string "alt under concat" "a.(b|c)" (rt "a.(b|c)");
  check_string "inverse symbol" "a^" (rt "a^");
  check_string "eps" "eps" (rt "eps");
  check_string "plus opt" "a+.b?" (rt "a+ b?");
  (* print → parse is the identity on structure *)
  let e = Rpq.parse "((a|b^)*.c)+.eps?" in
  check_bool "round trip" true (Rpq.equal e (Rpq.parse (Rpq.to_string e)));
  (* reversal is normalized away and involutive *)
  check_string "composite inverse" "b^.a^" (rt "(a.b)^");
  check_string "inverse of inverse" "a.b" (rt "(a.b)^^");
  let e = Rpq.parse "(a|b^)*.c+" in
  check_bool "rev involutive" true (Rpq.equal e (Rpq.rev (Rpq.rev e)));
  check_bool "nullable star" true (Rpq.nullable (Rpq.parse "a*"));
  check_bool "not nullable" false (Rpq.nullable (Rpq.parse "a*.b"));
  check_bool "rels" true (Rpq.rels (Rpq.parse "b^.a.b") = [ "a"; "b" ]);
  (* errors carry positions *)
  let fails s =
    match Rpq.parse s with
    | _ -> false
    | exception Rpq.Error _ -> true
  in
  check_bool "dangling bar" true (fails "a|");
  check_bool "unclosed paren" true (fails "(a.b");
  check_bool "bad char" true (fails "a-b");
  check_bool "empty" true (fails "");
  (* definition lists *)
  let defs = Rpq.parse_defs "vk = a|a^ ; vf = b ;" in
  check_int "two defs" 2 (List.length defs);
  check_string "def order" "vk" (fst (List.hd defs));
  check_bool "duplicate name" true
    (match Rpq.parse_defs "v = a; v = b" with
    | _ -> false
    | exception Rpq.Error _ -> true);
  (* fingerprints separate direction and structure *)
  check_bool "fp equal" true
    (Rpq.fingerprint (Rpq.parse "a.b*") = Rpq.fingerprint (Rpq.parse "a b*"));
  check_bool "fp direction" true
    (Rpq.fingerprint (Rpq.parse "a") <> Rpq.fingerprint (Rpq.parse "a^"));
  check_bool "fp shape" true
    (Rpq.fingerprint (Rpq.parse "a.(b.c)")
    <> Rpq.fingerprint (Rpq.parse "(a.b).c")
    || Rpq.equal (Rpq.parse "a.(b.c)") (Rpq.parse "(a.b).c"))

(* ---------- word NFAs ---------- *)

let w s =
  (* a word as a letter list, via the parser: "a.b^" → [a; b^] *)
  let rec flat = function
    | Rpq.Sym (r, d) -> [ { Rpq_nfa.rel = r; back = d = Rpq.Bwd } ]
    | Rpq.Seq (x, y) -> flat x @ flat y
    | Rpq.Eps -> []
    | _ -> invalid_arg "not a word"
  in
  if s = "eps" then [] else flat (Rpq.parse s)

let test_nfa () =
  let a = Rpq_nfa.of_regex (Rpq.parse "a.(b|c^)*") in
  check_bool "accepts a" true (Rpq_nfa.accepts a (w "a"));
  check_bool "accepts a.b.c^" true (Rpq_nfa.accepts a (w "a.b.c^"));
  check_bool "rejects eps" false (Rpq_nfa.accepts a (w "eps"));
  check_bool "rejects c^" false (Rpq_nfa.accepts a (w "c^"));
  check_bool "rejects a.c" false (Rpq_nfa.accepts a (w "a.c"));
  check_bool "nullable star" true
    (Rpq_nfa.nullable (Rpq_nfa.of_regex (Rpq.parse "(a.b)*")));
  (* determinization and complement preserve/flip membership *)
  let alphabet = Rpq_nfa.letters a in
  let d = Rpq_nfa.determinize ~alphabet a in
  let c = Rpq_nfa.complement ~alphabet a in
  List.iter
    (fun word ->
      let word = w word in
      check_bool "det agrees" (Rpq_nfa.accepts a word) (Rpq_nfa.accepts d word);
      check_bool "complement flips" (not (Rpq_nfa.accepts a word))
        (Rpq_nfa.accepts c word))
    [ "eps"; "a"; "b"; "c^"; "a.b"; "a.c^"; "a.b.b.c^" ];
  (* emptiness and witnesses ride the tree-automaton encoding *)
  check_bool "nonempty" false (Rpq_nfa.is_empty a);
  (match Rpq_nfa.witness a with
  | Some word -> check_bool "witness accepted" true (Rpq_nfa.accepts a word)
  | None -> Alcotest.fail "expected a witness");
  let b = Rpq_nfa.of_regex (Rpq.parse "a.b.b") in
  (match Rpq_nfa.inter_witness a b with
  | Some word ->
      check_bool "inter witness in both" true
        (Rpq_nfa.accepts a word && Rpq_nfa.accepts b word)
  | None -> Alcotest.fail "expected an intersection witness");
  check_bool "disjoint" true
    (Rpq_nfa.inter_witness a (Rpq_nfa.of_regex (Rpq.parse "b.a")) = None);
  (* containment: a.b* ⊆ a.(b|c^)* but not conversely *)
  let small = Rpq_nfa.of_regex (Rpq.parse "a.b*") in
  check_bool "subset holds" true
    (Rpq_nfa.subseteq ~alphabet small a = None);
  (match Rpq_nfa.subseteq ~alphabet a small with
  | Some word ->
      check_bool "gap word separates" true
        (Rpq_nfa.accepts a word && not (Rpq_nfa.accepts small word))
  | None -> Alcotest.fail "expected a containment gap");
  check_string "word printing" "a.b^" (Rpq_nfa.word_to_string (w "a.b^"));
  check_string "empty word prints" "eps" (Rpq_nfa.word_to_string [])

(* ---------- Datalog translation ---------- *)

let test_translate () =
  let g = Rpq_graph.chain ~label:"e" 5 in
  (* e* on a 4-edge chain: all ordered pairs i ≤ j *)
  let pairs = Rpq_translate.eval (Rpq.parse "e*") g in
  check_int "chain closure" 15 (List.length pairs);
  check_bool "includes diagonal" true (List.mem (n 0, n 0) pairs);
  check_bool "includes span" true (List.mem (n 0, n 4) pairs);
  check_bool "directed" false (List.mem (n 4, n 0) pairs);
  (* inverse edges walk the chain backwards *)
  let back = Rpq_translate.eval (Rpq.parse "e^.e^") g in
  check_bool "two steps back" true (List.mem (n 3, n 1) back);
  check_int "back pairs" 3 (List.length back);
  (* anchored evaluation *)
  let reach = Rpq_translate.eval_from (Rpq.parse "e.e*") g (n 1) in
  check_bool "from n1" true (reach = [ n 2; n 3; n 4 ]);
  let reach0 = Rpq_translate.eval_from (Rpq.parse "e*") g (n 1) in
  check_bool "nullable anchors include source" true (List.mem (n 1) reach0);
  check_bool "holds" true (Rpq_translate.holds (Rpq.parse "e.e") g (n 0) (n 2));
  check_bool "holds rejects" false
    (Rpq_translate.holds (Rpq.parse "e.e") g (n 2) (n 0));
  (* ε-semantics: diagonal only over the sub-instance of the alphabet *)
  let g2 = Instance.add (Fact.make "f" [ n 7; n 8 ]) g in
  let opt = Rpq_translate.eval (Rpq.parse "e?") g2 in
  check_bool "alphabet node on diagonal" true (List.mem (n 3, n 3) opt);
  check_bool "foreign node off diagonal" false (List.mem (n 7, n 7) opt);
  check_int "eps alone is empty" 0
    (List.length (Rpq_translate.eval Rpq.Eps g2));
  (* reserved prefix is rejected *)
  check_bool "prefix collision" true
    (match Rpq_translate.pairs (Rpq.parse "rpq_x") with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* every strategy agrees on a mixed-direction query *)
  let q = Rpq.parse "(e|e^)*.e" in
  let expect = Rpq_translate.eval ~strategy:Dl_engine.Naive q g in
  List.iter
    (fun s ->
      check_bool
        ("strategy " ^ Dl_engine.to_string s)
        true
        (Rpq_translate.eval ~strategy:s q g = expect))
    Dl_engine.all

(* ---------- view rewriting ---------- *)

let test_rewrite_lossless () =
  let views = [ ("vk", Rpq.parse "k|k^"); ("vf", Rpq.parse "f") ] in
  let r = Rpq_views.rewrite ~views (Rpq.parse "(k|k^)*.f") in
  check_bool "lossless" true r.Rpq_views.lossless;
  check_bool "no gap" true (r.Rpq_views.gap = None);
  (* a small social graph: knows-chain with a follows edge off the end *)
  let g =
    Instance.of_list
      [
        Fact.make "k" [ n 0; n 1 ];
        Fact.make "k" [ n 2; n 1 ];
        Fact.make "f" [ n 2; n 3 ];
        Fact.make "f" [ n 4; n 5 ];
      ]
  in
  let direct = Rpq_translate.eval (Rpq.parse "(k|k^)*.f") g in
  let certain = Rpq_views.certain r g in
  check_bool "lossless certain = direct" true (certain = direct);
  check_bool "crosses the undirected chain" true (List.mem (n 0, n 3) direct);
  let from0 = Rpq_views.certain_from r g (n 0) in
  check_bool "anchored matches" true
    (from0 = Rpq_translate.eval_from (Rpq.parse "(k|k^)*.f") g (n 0));
  check_bool "certain_holds" true (Rpq_views.certain_holds r g (n 0) (n 3));
  check_bool "certain_holds rejects" false
    (Rpq_views.certain_holds r g (n 3) (n 0))

let test_rewrite_lossy () =
  (* the view exposes only the two-step composition: a* cannot be
     rebuilt — odd-length words are lost *)
  let views = [ ("v2", Rpq.parse "a.a") ] in
  let r = Rpq_views.rewrite ~views (Rpq.parse "a*") in
  check_bool "lossy" false r.Rpq_views.lossless;
  (match r.Rpq_views.gap with
  | Some word ->
      check_bool "gap word is odd" true (List.length word mod 2 = 1);
      check_bool "gap word in Q" true
        (Rpq_nfa.accepts (Rpq_nfa.of_regex (Rpq.parse "a*")) word)
  | None -> Alcotest.fail "expected a gap witness");
  (* soundness still holds: certain answers are a subset of direct *)
  let g = Rpq_graph.chain ~label:"a" 6 in
  let direct = Rpq_translate.eval (Rpq.parse "a*") g in
  let certain = Rpq_views.certain r g in
  check_bool "sound" true
    (List.for_all (fun p -> List.mem p direct) certain);
  (* even-length spans survive the rewriting, odd ones don't *)
  check_bool "even span kept" true (List.mem (n 0, n 4) certain);
  check_bool "odd span lost" false (List.mem (n 0, n 3) certain);
  (* a query the views cannot touch at all *)
  let r0 = Rpq_views.rewrite ~views:[ ("v", Rpq.parse "b") ] (Rpq.parse "a") in
  check_bool "empty rewriting" false r0.Rpq_views.lossless;
  check_bool "nothing certain" true (Rpq_views.certain r0 g = []);
  check_bool "duplicate views rejected" true
    (match Rpq_views.rewrite ~views:[ ("v", Rpq.Eps); ("v", Rpq.Eps) ] Rpq.Eps with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- differential oracle ---------- *)

(* naive product-construction reachability: BFS the (graph × NFA)
   product from every alphabet node — no Datalog anywhere *)
let oracle_pairs e inst =
  let nfa = Rpq_nfa.of_regex e in
  let rels = Rpq.rels e in
  let sub = Instance.restrict (fun r -> List.mem r rels) inst in
  let nodes = Const.Set.elements (Instance.adom sub) in
  let succ (l : Rpq_nfa.letter) x =
    if l.back then
      List.map (fun t -> t.(0)) (Instance.tuples_with inst l.rel [ (1, x) ])
    else List.map (fun t -> t.(1)) (Instance.tuples_with inst l.rel [ (0, x) ])
  in
  let from x =
    let seen = Hashtbl.create 16 in
    let frontier = ref [] in
    let push v q =
      if not (Hashtbl.mem seen (v, q)) then begin
        Hashtbl.add seen (v, q) ();
        frontier := (v, q) :: !frontier
      end
    in
    List.iter (fun q -> push x q) nfa.Rpq_nfa.starts;
    while !frontier <> [] do
      let batch = !frontier in
      frontier := [];
      List.iter
        (fun (v, q) ->
          List.iter
            (fun (p, l, p') -> if p = q then List.iter (fun v' -> push v' p') (succ l v))
            nfa.Rpq_nfa.delta)
        batch
    done;
    (* (v, q) with q final witnesses a path x →* v in the language; the
       0-edge pair (x, start) counts only when start is final, i.e. only
       when ε ∈ L — exactly the intended diagonal *)
    Hashtbl.fold
      (fun (v, q) () acc ->
        if List.mem q nfa.Rpq_nfa.finals then (x, v) :: acc else acc)
      seen []
  in
  List.sort_uniq compare (List.concat_map from nodes)

let gen_rpq =
  let open QCheck.Gen in
  let sym =
    map2
      (fun r b -> Rpq.Sym (r, if b then Rpq.Bwd else Rpq.Fwd))
      (oneofl [ "a"; "b"; "c" ])
      bool
  in
  let rec go fuel =
    if fuel <= 0 then frequency [ (4, sym); (1, return Rpq.Eps) ]
    else
      frequency
        [
          (3, sym);
          (1, return Rpq.Eps);
          (3, map2 (fun a b -> Rpq.Seq (a, b)) (go (fuel / 2)) (go (fuel / 2)));
          (3, map2 (fun a b -> Rpq.Alt (a, b)) (go (fuel / 2)) (go (fuel / 2)));
          (2, map (fun a -> Rpq.Star a) (go (fuel - 1)));
          (1, map (fun a -> Rpq.Plus a) (go (fuel - 1)));
          (1, map (fun a -> Rpq.Opt a) (go (fuel - 1)));
        ]
  in
  (go, int_bound 6 >>= go)

let gen_rpq_go = fst gen_rpq
let gen_rpq = snd gen_rpq

(* the rewriting construction determinizes twice — keep its inputs a
   notch smaller than the evaluation differentials' *)
let gen_rpq_small = QCheck.Gen.(int_bound 4 >>= gen_rpq_go)

let gen_graph =
  let open QCheck.Gen in
  map
    (fun edges ->
      Instance.of_list
        (List.map
           (fun (r, i, j) -> Fact.make r [ n i; n j ])
           edges))
    (list_size (int_bound 20)
       (triple (oneofl [ "a"; "b"; "c" ]) (int_bound 5) (int_bound 5)))

let pair_print (e, g) =
  Fmt.str "%s on %a" (Rpq.to_string e) Instance.pp g

let rpq_pair_arb = QCheck.make ~print:pair_print QCheck.Gen.(pair gen_rpq gen_graph)

let prop_strategy name strategy =
  QCheck.Test.make ~name ~count:120 rpq_pair_arb (fun (e, g) ->
      Rpq_translate.eval ~strategy e g = oracle_pairs e g)

let prop_indexed = prop_strategy "rpq indexed = oracle" Dl_engine.Indexed
let prop_vm = prop_strategy "rpq vm = oracle" Dl_engine.Vm

let prop_parallel =
  QCheck.Test.make ~name:"rpq parallel = oracle" ~count:120 rpq_pair_arb
    (fun (e, g) ->
      Dl_parallel.set_domains 3;
      Fun.protect
        ~finally:(fun () -> Dl_parallel.set_domains 1)
        (fun () ->
          Rpq_translate.eval ~strategy:Dl_engine.Parallel e g = oracle_pairs e g))

let prop_anchored =
  QCheck.Test.make ~name:"rpq anchored = oracle slice" ~count:120 rpq_pair_arb
    (fun (e, g) ->
      let all = oracle_pairs e g in
      List.for_all
        (fun src ->
          let got = Rpq_translate.eval_from e g src in
          let expect =
            List.sort_uniq Const.compare
              ((if Rpq.nullable e then [ src ] else [])
              @ List.filter_map
                  (fun (x, y) -> if Const.equal x src then Some y else None)
                  all)
          in
          got = expect)
        [ n 0; n 3 ])

let prop_rewrite_sound =
  QCheck.Test.make ~name:"rewriting sound, lossless exact" ~count:60
    (QCheck.make
       ~print:(fun ((v1, v2, q), g) ->
         Fmt.str "v1=%s v2=%s q=%s on %a" (Rpq.to_string v1) (Rpq.to_string v2)
           (Rpq.to_string q) Instance.pp g)
       QCheck.Gen.(pair (triple gen_rpq_small gen_rpq_small gen_rpq_small) gen_graph))
    (fun ((v1, v2, q), g) ->
      let r = Rpq_views.rewrite ~views:[ ("v1", v1); ("v2", v2) ] q in
      let direct = Rpq_translate.eval q g in
      let certain = Rpq_views.certain r g in
      List.for_all (fun p -> List.mem p direct) certain
      && ((not r.Rpq_views.lossless) || certain = direct))

let suite =
  [
    Alcotest.test_case "parse and print" `Quick test_parse_print;
    Alcotest.test_case "word nfa" `Quick test_nfa;
    Alcotest.test_case "datalog translation" `Quick test_translate;
    Alcotest.test_case "lossless rewriting" `Quick test_rewrite_lossless;
    Alcotest.test_case "lossy rewriting" `Quick test_rewrite_lossy;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_indexed;
        prop_vm;
        prop_parallel;
        prop_anchored;
        prop_rewrite_sound;
      ]
