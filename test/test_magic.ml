(* Tests for the magic-sets transformation (Dl_magic) and the strategy
   facade (Dl_engine): adornment generation on the paper's example
   programs, demand pruning, and differential agreement of the magic
   engine with the indexed and naive evaluators on random
   program/instance/goal triples. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let c = Const.named

let tc =
  Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

(* the paper's §2 start query: x reaches an element of U along R-edges *)
let qstart =
  Parse.query ~goal:"Goal"
    "P(x) <- U(x). P(x) <- R(x,y), P(y). Goal(x) <- P(x)."

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [ c (Printf.sprintf "a%d" i); c (Printf.sprintf "a%d" (i + 1)) ]))

let test_names () =
  check_string "pattern" "bf" (Dl_magic.pattern_string [| true; false |]);
  check_string "adorned" "T#bf" (Dl_magic.adorned_name "T" [| true; false |]);
  check_string "magic" "m#T#bf" (Dl_magic.magic_name "T" [| true; false |])

let test_tc_adornments () =
  let m = Dl_magic.transform tc [| true; false |] in
  Alcotest.(check (list (pair string string)))
    "only T#bf is demanded" [ ("T", "bf") ] (Dl_magic.adornments m);
  check_string "goal" "T#bf" m.Dl_magic.query.Datalog.goal;
  check_string "magic goal" "m#T#bf" m.Dl_magic.magic_goal;
  (* copy rule + base rule + (magic rule + adorned rule) for the
     recursive rule *)
  check_int "rule count" 4 (List.length m.Dl_magic.query.Datalog.program)

let test_qstart_adornments () =
  let m = Dl_magic.transform qstart [| true |] in
  Alcotest.(check (list (pair string string)))
    "goal and subgoal, both bound"
    [ ("Goal", "b"); ("P", "b") ]
    (Dl_magic.adornments m);
  (* the free-goal variant still binds the recursive subgoal: in
     P(x) <- R(x,y), P(y) the SIP has bound [y] once R is evaluated *)
  let mf = Dl_magic.transform qstart [| false |] in
  Alcotest.(check (list (pair string string)))
    "free goal, bound recursive call"
    [ ("Goal", "f"); ("P", "b"); ("P", "f") ]
    (Dl_magic.adornments mf)

let test_diamond_adornments () =
  let q = Diamonds.query in
  check_bool "diamond goal is intensional" true (Dl_magic.applicable q);
  let m = Dl_magic.transform q (Dl_magic.all_free (Datalog.goal_arity q)) in
  check_bool "walk predicate adorned" true
    (List.exists (fun (r, _) -> r = "W") (Dl_magic.adornments m))

let test_seed () =
  let m = Dl_magic.transform tc [| true; false |] in
  let f = Dl_magic.seed m [| c "a0"; c "a4" |] in
  check_string "seed relation" "m#T#bf" f.Fact.rel;
  check_int "seed keeps bound positions only" 1 (Fact.arity f);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument
       "Dl_magic.seed: tuple arity does not match the goal pattern")
    (fun () -> ignore (Dl_magic.seed m [| c "a0" |]))

let test_demand_pruning () =
  (* on a 12-chain with demand seeded at a8, only the 10 closure facts
     reachable from a8 are derived — not the 78 of the full closure *)
  let m = Dl_magic.transform tc [| true; false |] in
  let i = Instance.add (Dl_magic.seed m [| c "a8"; c "a12" |]) (chain 12) in
  let fp = Dl_eval.fixpoint m.Dl_magic.query.Datalog.program i in
  check_int "only demanded T#bf facts" 10
    (List.length (Instance.tuples fp "T#bf"));
  check_bool "goal tuple derived" true
    (Dl_eval.holds m.Dl_magic.query i [| c "a8"; c "a12" |])

let test_idb_facts_survive () =
  (* instance facts of intensional predicates flow through the copy rule *)
  let i = Instance.of_list [ Fact.make "T" [ c "u"; c "v" ] ] in
  check_bool "T fact visible through magic" true
    (Dl_engine.holds ~strategy:Dl_engine.Magic tc i [| c "u"; c "v" |]);
  check_bool "and composes with rules" true
    (Dl_engine.holds ~strategy:Dl_engine.Magic tc
       (Instance.add (Fact.make "E" [ c "t"; c "u" ]) i)
       [| c "t"; c "v" |])

let test_engine_strategies () =
  let i = chain 4 in
  List.iter
    (fun s ->
      let name = Dl_engine.to_string s in
      check_bool (name ^ " holds") true
        (Dl_engine.holds ~strategy:s tc i [| c "a0"; c "a4" |]);
      check_bool (name ^ " rejects") false
        (Dl_engine.holds ~strategy:s tc i [| c "a4"; c "a0" |]);
      check_int (name ^ " eval") 10
        (List.length (Dl_engine.eval ~strategy:s tc i));
      check_bool (name ^ " boolean") true
        (Dl_engine.holds_boolean ~strategy:s tc i))
    Dl_engine.all;
  (* extensional goal: magic falls back to the indexed engine *)
  let edb = Datalog.make tc.Datalog.program "E" in
  check_bool "edb fallback" true
    (Dl_engine.holds ~strategy:Dl_engine.Magic edb i [| c "a0"; c "a1" |]);
  check_bool "of_string/to_string roundtrip" true
    (List.for_all
       (fun s -> Dl_engine.of_string (Dl_engine.to_string s) = Some s)
       Dl_engine.all);
  check_bool "of_string rejects junk" true (Dl_engine.of_string "fast" = None)

(* differential properties: the magic engine agrees with the naive
   scan-based evaluator (and hence with the indexed one, which has its own
   differential suite in Test_datalog) on random program/instance/goal
   triples *)

let norm ts = List.sort compare (List.map Array.to_list ts)

let prop_magic_eval_differential =
  QCheck.Test.make ~name:"magic eval = naive eval" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          norm (Dl_engine.eval ~strategy:Dl_engine.Magic q i)
          = norm (Dl_engine.eval ~strategy:Dl_engine.Naive q i))
        Test_datalog.dg_idbs)

let prop_magic_boolean_differential =
  QCheck.Test.make ~name:"magic holds_boolean = naive" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          Dl_engine.holds_boolean ~strategy:Dl_engine.Magic q i
          = Dl_engine.holds_boolean ~strategy:Dl_engine.Naive q i)
        Test_datalog.dg_idbs)

let prop_magic_holds_differential =
  (* bound-goal demand: membership of concrete tuples over the generator's
     constant pool agrees with naive fixpoint membership *)
  QCheck.Test.make ~name:"magic holds = naive membership" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      let consts = [ c "e0"; c "e1"; c "e2"; c "e3" ] in
      List.for_all
        (fun (goal, arity) ->
          let q = Datalog.make p goal in
          let tuples =
            if arity = 1 then List.map (fun x -> [| x |]) consts
            else
              List.concat_map
                (fun x -> List.map (fun y -> [| x; y |]) consts)
                consts
          in
          List.for_all
            (fun tup ->
              Dl_engine.holds ~strategy:Dl_engine.Magic q i tup
              = Dl_engine.holds ~strategy:Dl_engine.Naive q i tup)
            tuples)
        Test_datalog.dg_idbs)

let suite =
  [
    Alcotest.test_case "name mangling" `Quick test_names;
    Alcotest.test_case "tc adornments" `Quick test_tc_adornments;
    Alcotest.test_case "qstart adornments" `Quick test_qstart_adornments;
    Alcotest.test_case "diamond adornments" `Quick test_diamond_adornments;
    Alcotest.test_case "magic seeds" `Quick test_seed;
    Alcotest.test_case "demand pruning" `Quick test_demand_pruning;
    Alcotest.test_case "idb instance facts survive" `Quick
      test_idb_facts_survive;
    Alcotest.test_case "engine strategies agree on tc" `Quick
      test_engine_strategies;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_magic_eval_differential;
        prop_magic_boolean_differential;
        prop_magic_holds_differential;
      ]
