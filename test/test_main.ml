let () =
  Alcotest.run "mondet"
    [
      ("relational", Test_relational.suite);
      ("cq", Test_cq.suite);
      ("datalog", Test_datalog.suite);
      ("magic", Test_magic.suite);
      ("parallel", Test_parallel.suite);
      ("vm", Test_vm.suite);
      ("incr", Test_incr.suite);
      ("parse", Test_parse.suite);
      ("views", Test_views.suite);
      ("treewidth", Test_treewidth.suite);
      ("automata", Test_automata.suite);
      ("rpq", Test_rpq.suite);
      ("games", Test_games.suite);
      ("tiling", Test_tiling.suite);
      ("machine", Test_machine.suite);
      ("core", Test_core.suite);
      ("service", Test_service.suite);
      ("tcp", Test_tcp.suite);
    ]
