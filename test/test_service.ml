(* Decision-service tests: protocol round-trips, the LRU cache,
   cancellation tokens, golden request/response transcripts for every
   verb, deadline behaviour, and a large mixed two-session workload
   cross-checked against direct evaluation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Golden transcripts: one fresh service, every verb, malformed lines,
   an instantly-expired deadline — and the server answering after it. *)

let golden =
  [
    ( "1 load s1 program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
       T(z,y).",
      "1 ok loaded program tc" );
    ( "2 load s1 program reach goal Goal : Goal() <- T(x,y). T(x,y) <- \
       E(x,y). T(x,y) <- E(x,z), T(z,y).",
      "2 ok loaded program reach" );
    ("3 load s1 views v : V(x,y) <- E(x,y).", "3 ok loaded views v");
    ("4 load s1 instance i : E(a,b). E(b,c).", "4 ok loaded instance i");
    ("5 load s1 instance vi : V(a,b). V(b,c).", "5 ok loaded instance vi");
    ("6 eval s1 tc i", "6 ok a,b;a,c;b,c");
    ("7 eval s1 reach i", "7 ok true");
    ("8 holds s1 tc i (a,c)", "8 ok true");
    ("9 holds s1 tc i (c,a)", "9 ok false");
    ("10 eval s1 tc i", "10 ok a,b;a,c;b,c");
    ("11 mondet-test s1 reach v", "11 ok no-failure-up-to 3");
    ("12 mondet-test s1 reach v depth=2", "12 ok no-failure-up-to 1");
    ("13 certain-answers s1 reach v vi", "13 ok true");
    ("14 rewrite-check s1 reach v samples=5", "14 ok verified samples=5");
    ( "15 stats",
      "15 ok hits=1 misses=8 entries=8 evictions=0 sessions=1 requests=15 \
       timeouts=0" );
    (* malformed lines still get addressed error responses *)
    ("16 bogus s1 x y", "16 error unknown verb \"bogus\"");
    ("17 eval s1 tc", "17 error unknown verb \"eval\"");
    ( "18 holds s1 tc i a,c",
      "18 error malformed tuple \"a,c\" (expected (c1,...,cn))" );
    ( "19 eval s1 tc i deadline=xx",
      "19 error option deadline needs a non-negative integer, got \"xx\"" );
    ("20 eval s1 nosuch i", "20 error no program \"nosuch\" in session \"s1\"");
    ("21 eval nosession tc i", "21 error unknown session \"nosession\"");
    ("22 holds s1 tc i (a)", "22 error tuple has 1 constants, goal arity is 2");
    (* a zero deadline expires before any work, deterministically *)
    ("23 eval s1 tc i deadline=0", "23 timeout");
    (* ... and the server keeps answering, cache unpoisoned *)
    ("24 eval s1 tc i", "24 ok a,b;a,c;b,c");
    ( "25 stats",
      "25 ok hits=2 misses=9 entries=8 evictions=0 sessions=1 requests=25 \
       timeouts=1" );
  ]

let test_golden () =
  let svc = Svc_service.create () in
  List.iter
    (fun (req, expected) ->
      let resp = Svc_service.handle_line svc req in
      check_string req expected (Svc_proto.print_response resp))
    golden

(* ------------------------------------------------------------------ *)
(* Protocol round-trip: printable requests parse back to themselves. *)

let word_gen =
  QCheck.Gen.(
    let c = oneofl [ 'a'; 'b'; 'c'; 'x'; 'y'; 'Z'; '0'; '_'; '-' ] in
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 6) c))

let text_gen =
  QCheck.Gen.oneofl
    [
      "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).";
      "E(a,b). E(b,c).";
      "V(x) <- U(x). V(x) <- W(x).";
      "Goal() <- T(x,y).";
    ]

let rpq_text_gen =
  QCheck.Gen.oneofl
    [
      "q = (k|k^)*.f ;";
      "vk = k|k^ ; vf = f ;";
      "astar = a* ;";
    ]

(* the RPQ verbs' optional trailing tuple, empty tuples included — the
   printer emits [()] and the parser takes it back *)
let opt_tuple_gen =
  QCheck.Gen.(opt (list_size (int_bound 3) word_gen))

let verb_gen =
  QCheck.Gen.(
    let opt_small = opt (int_bound 9) in
    frequency
      [
        ( 2,
          map3
            (fun kind name text -> Svc_proto.Load { kind; name; text })
            (oneof
               [
                 map (fun g -> Svc_proto.Kprogram g) word_gen;
                 return Svc_proto.Kviews;
                 return Svc_proto.Kinstance;
               ])
            word_gen text_gen );
        ( 2,
          map2
            (fun instance text -> Svc_proto.Assert { instance; text })
            word_gen text_gen );
        ( 2,
          map2
            (fun instance text -> Svc_proto.Retract { instance; text })
            word_gen text_gen );
        ( 3,
          map2
            (fun program instance -> Svc_proto.Eval { program; instance })
            word_gen word_gen );
        ( 3,
          map3
            (fun program instance tuple ->
              Svc_proto.Holds { program; instance; tuple })
            word_gen word_gen
            (list_size (int_bound 3) word_gen) );
        ( 2,
          map3
            (fun program views depth ->
              Svc_proto.Mondet_test { program; views; depth })
            word_gen word_gen opt_small );
        ( 2,
          map3
            (fun program views instance ->
              Svc_proto.Certain_answers { program; views; instance })
            word_gen word_gen word_gen );
        ( 2,
          map3
            (fun program views samples ->
              Svc_proto.Rewrite_check { program; views; samples })
            word_gen word_gen opt_small );
        ( 2,
          map2
            (fun name text -> Svc_proto.Rpq_load { name; text })
            word_gen rpq_text_gen );
        ( 2,
          map3
            (fun rpq instance tuple ->
              Svc_proto.Rpq_eval { rpq; instance; tuple })
            word_gen word_gen opt_tuple_gen );
        ( 2,
          map3
            (fun (rpq, views) instance tuple ->
              Svc_proto.Rpq_rewrite { rpq; views; instance; tuple })
            (pair word_gen word_gen)
            word_gen opt_tuple_gen );
        (1, return Svc_proto.Stats);
      ])

let request_gen =
  QCheck.Gen.(
    verb_gen >>= fun verb ->
    word_gen >>= fun id ->
    word_gen >>= fun sess ->
    opt (int_bound 999) >>= fun deadline_ms ->
    let session =
      match verb with Svc_proto.Stats -> None | _ -> Some sess
    in
    return { Svc_proto.id; session; deadline_ms; verb })

let request_arb =
  QCheck.make ~print:Svc_proto.print_request request_gen

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"protocol request print/parse round-trip" ~count:500
    request_arb (fun req ->
      match Svc_proto.parse_request (Svc_proto.print_request req) with
      | Ok req' -> req' = req
      | Error (_, m) -> QCheck.Test.fail_reportf "parse failed: %s" m)

let response_gen =
  QCheck.Gen.(
    word_gen >>= fun rid ->
    let body = map (String.concat " ") (list_size (int_bound 4) word_gen) in
    oneof
      [
        map (fun b -> { Svc_proto.rid; result = Svc_proto.Ok_ b }) body;
        map (fun b -> { Svc_proto.rid; result = Svc_proto.Error_ b }) body;
        return { Svc_proto.rid; result = Svc_proto.Timeout };
        return { Svc_proto.rid; result = Svc_proto.Busy };
      ])

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"protocol response print/parse round-trip" ~count:300
    (QCheck.make ~print:Svc_proto.print_response response_gen) (fun resp ->
      match Svc_proto.parse_response (Svc_proto.print_response resp) with
      | Ok resp' -> resp' = resp
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

(* ------------------------------------------------------------------ *)
(* LRU cache unit tests. *)

let test_cache_lru () =
  let c = Svc_cache.create 2 in
  Svc_cache.add c "a" "1";
  Svc_cache.add c "b" "2";
  check_bool "a miss before hit" true (Svc_cache.find c "zz" = None);
  check_bool "a hits" true (Svc_cache.find c "a" = Some "1");
  (* adding c evicts b (least recently used; a was refreshed) *)
  Svc_cache.add c "c" "3";
  check_int "entries at capacity" 2 (Svc_cache.entries c);
  check_int "one eviction" 1 (Svc_cache.evictions c);
  check_bool "b evicted" false (Svc_cache.mem c "b");
  check_bool "a kept" true (Svc_cache.mem c "a");
  check_bool "c kept" true (Svc_cache.mem c "c");
  check_int "hits" 1 (Svc_cache.hits c);
  (* find counted the zz miss *)
  check_int "misses" 1 (Svc_cache.misses c);
  (* re-adding an existing key refreshes without eviction *)
  Svc_cache.add c "a" "1'";
  check_int "still two entries" 2 (Svc_cache.entries c);
  check_bool "updated" true (Svc_cache.find c "a" = Some "1'")

(* ------------------------------------------------------------------ *)
(* Cancellation tokens. *)

let test_cancel () =
  check_bool "none never cancelled" false (Dl_cancel.cancelled Dl_cancel.none);
  Dl_cancel.cancel Dl_cancel.none;
  check_bool "none immune to cancel" false
    (Dl_cancel.cancelled Dl_cancel.none);
  let t = Dl_cancel.token () in
  check_bool "fresh token live" false (Dl_cancel.cancelled t);
  Dl_cancel.cancel t;
  check_bool "cancelled after cancel" true (Dl_cancel.cancelled t);
  let d = Dl_cancel.with_deadline_ms 0 in
  check_bool "zero deadline expired" true (Dl_cancel.cancelled d);
  (match Dl_cancel.protect d (fun () -> Dl_cancel.check d) with
  | Error `Cancelled -> ()
  | Ok () -> Alcotest.fail "expected cancellation");
  let far = Dl_cancel.with_deadline_ms 1_000_000 in
  check_bool "far deadline live" false (Dl_cancel.cancelled far)

(* a 1 ms deadline on a genuinely large fixpoint times out at a round
   boundary, and the service keeps answering afterwards *)
let test_deadline_large_fixpoint () =
  let svc = Svc_service.create () in
  let n = 400 in
  let edges =
    String.concat " "
      (List.init (n - 1) (fun i -> Printf.sprintf "E(n%d,n%d)." i (i + 1)))
  in
  let feed line = Svc_proto.print_response (Svc_service.handle_line svc line) in
  ignore
    (feed
       "1 load s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
        T(z,y).");
  ignore (feed ("2 load s instance big : " ^ edges));
  check_string "1ms deadline times out" "3 timeout"
    (feed "3 eval s tc big deadline=1");
  check_string "still answering" "4 ok true"
    (feed "4 holds s tc big (n0,n3)");
  check_int "timeout counted" 1 (Svc_service.timeouts svc)

(* ------------------------------------------------------------------ *)
(* Mutation verbs: assert/retract against a maintained materialization,
   covering the edge cases — retract of a never-asserted fact, retract
   of a base fact that is also derivable, an asserted derived fact
   surviving the loss of its support, and deterministic deadline=0. *)

let test_mutations () =
  let svc = Svc_service.create () in
  let h l = Svc_proto.print_response (Svc_service.handle_line svc l) in
  ignore
    (h
       "1 load m1 program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
        T(z,y).");
  ignore (h "2 load m1 instance i : E(a,b). E(b,c).");
  (* the cold eval registers the materialization the mutations maintain *)
  check_string "cold eval" "3 ok a,b;a,c;b,c" (h "3 eval m1 tc i");
  check_string "assert" "4 ok added=1 size=3 maintained=1"
    (h "4 assert m1 i : E(c,d).");
  check_string "eval after assert" "5 ok a,b;a,c;a,d;b,c;b,d;c,d"
    (h "5 eval m1 tc i");
  check_string "retract absent is a no-op" "6 ok removed=0 size=3 maintained=1"
    (h "6 retract m1 i : E(q,q).");
  (* pin a derived fact into the base, then cut its derivation support *)
  check_string "assert derived" "7 ok added=1 size=4 maintained=1"
    (h "7 assert m1 i : T(a,c).");
  check_string "cut support" "8 ok removed=1 size=3 maintained=1"
    (h "8 retract m1 i : E(b,c).");
  check_string "pinned fact survives" "9 ok true" (h "9 holds m1 tc i (a,c)");
  check_string "severed closure gone" "10 ok false"
    (h "10 holds m1 tc i (b,c)");
  (* retract a base fact that is also derivable: membership persists *)
  check_string "re-add support" "11 ok added=1 size=4 maintained=1"
    (h "11 assert m1 i : E(b,c).");
  check_string "retract derivable base" "12 ok removed=1 size=3 maintained=1"
    (h "12 retract m1 i : T(a,c).");
  check_string "still derived" "13 ok true" (h "13 holds m1 tc i (a,c)");
  (* errors: mutations need existing objects, and parse errors surface *)
  check_string "unknown instance"
    "14 error no instance \"zz\" in session \"m1\""
    (h "14 assert m1 zz : E(a,b).");
  check_string "unknown session" "15 error unknown session \"zz\""
    (h "15 assert zz i : E(a,b).");
  check_string "missing payload"
    "16 error assert needs a ' : ' payload of facts" (h "16 assert m1 i");
  (* deadline=0 is decided before any work: timeout, nothing mutated *)
  check_string "deadline 0" "17 timeout"
    (h "17 assert m1 i deadline=0 : E(x,y).");
  check_string "instance untouched" "18 ok false"
    (h "18 holds m1 tc i (x,y)")

(* A tiny deadline racing a genuinely large maintenance fixpoint: either
   the repair finishes in time (ok) or it is cancelled (timeout) — both
   are legal — but the session must stay consistent either way: the
   mutation is all-or-nothing and follow-up answers match whichever
   outcome was reported. *)
let test_mutation_deadline_race () =
  let svc = Svc_service.create () in
  let h l = Svc_service.handle_line svc l in
  let p l = Svc_proto.print_response (h l) in
  let n = 400 in
  let edges =
    String.concat " "
      (List.init (n - 1) (fun i -> Printf.sprintf "E(n%d,n%d)." i (i + 1)))
  in
  ignore
    (p
       "1 load s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
        T(z,y).");
  ignore (p ("2 load s instance big : " ^ edges));
  check_string "seed fact absent" "3 ok false" (p "3 holds s tc big (n5,n0)");
  (* closing the cycle makes the closure quadratic: plenty of rounds for
     the 1 ms deadline to expire at — but it may also just finish *)
  let r = h (Printf.sprintf "4 assert s big deadline=1 : E(n%d,n0)." (n - 1)) in
  (match r.Svc_proto.result with
  | Svc_proto.Ok_ _ ->
      check_string "mutation landed: edge closed the cycle" "5 ok true"
        (p "5 holds s tc big (n5,n0)")
  | Svc_proto.Timeout ->
      check_string "mutation cancelled: instance untouched" "5 ok false"
        (p "5 holds s tc big (n5,n0)")
  | _ -> Alcotest.fail "expected ok or timeout");
  (* whatever happened, the service keeps answering coherently *)
  check_string "still consistent" "6 ok true" (p "6 holds s tc big (n0,n5)")

(* ------------------------------------------------------------------ *)
(* Mixed two-session workload, batched through the domain-pool path,
   cross-checked request by request against direct evaluation. *)

let chain n =
  String.concat " "
    (List.init (n - 1) (fun i -> Printf.sprintf "E(m%d,m%d)." i (i + 1)))

let cycle n =
  String.concat " "
    (List.init n (fun i -> Printf.sprintf "E(c%d,c%d)." i ((i + 1) mod n)))

let tc_text = "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
let hop_text = "H(x,y) <- E(x,z), E(z,y)."

let format_tuples q i =
  let q_tuples = Dl_engine.eval ~strategy:Dl_engine.Indexed q i in
  if Datalog.goal_arity q = 0 then if q_tuples <> [] then "true" else "false"
  else
    match q_tuples with
    | [] -> "none"
    | tuples ->
        tuples
        |> List.map (fun t ->
               String.concat "," (List.map Const.to_string (Array.to_list t)))
        |> List.sort_uniq compare
        |> String.concat ";"

let test_mixed_workload () =
  let svc = Svc_service.create ~cache_capacity:256 ~parallel:true () in
  let sessions = [ "s1"; "s2" ] in
  let progs = [ ("tc", "T", tc_text); ("hop", "H", hop_text) ] in
  let insts =
    [
      ("ch4", chain 4); ("ch6", chain 6); ("cy5", cycle 5); ("cy7", cycle 7);
    ]
  in
  (* oracle objects, via the library directly (what the one-shot CLI
     runs) *)
  let oracle_q =
    List.map (fun (pn, goal, text) -> (pn, Parse.query ~goal text)) progs
  in
  let oracle_i = List.map (fun (iname, text) -> (iname, Parse.instance text)) insts in
  let expected_eval pn iname =
    format_tuples (List.assoc pn oracle_q) (List.assoc iname oracle_i)
  in
  let expected_holds pn iname tuple =
    let q = List.assoc pn oracle_q and i = List.assoc iname oracle_i in
    if
      Dl_engine.holds ~strategy:Dl_engine.Indexed q i
        (Array.of_list (List.map Const.named tuple))
    then "true"
    else "false"
  in
  (* load everything into both sessions *)
  let loads =
    List.concat_map
      (fun s ->
        List.map
          (fun (pn, goal, text) ->
            Printf.sprintf "l-%s-%s load %s program %s goal %s : %s" s pn s pn
              goal text)
          progs
        @ List.map
            (fun (iname, text) ->
              Printf.sprintf "l-%s-%s load %s instance %s : %s" s iname s
                iname text)
            insts)
      sessions
  in
  List.iter
    (fun line ->
      match (Svc_service.handle_line svc line).Svc_proto.result with
      | Svc_proto.Ok_ _ -> ()
      | r ->
          Alcotest.failf "load failed: %s -> %s" line
            (Svc_proto.print_response { Svc_proto.rid = "x"; result = r }))
    loads;
  (* the mixed request stream: eval + holds per (session, program,
     instance), interleaved across both sessions, repeated; every round
     after the first hits the cache *)
  let tuples_for iname =
    if String.length iname >= 2 && iname.[0] = 'c' && iname.[1] = 'h' then
      [ [ "m0"; "m1" ]; [ "m1"; "m0" ] ]
    else [ [ "c0"; "c0" ]; [ "c0"; "missing" ] ]
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "q%d" !counter
  in
  let round_lines () =
    List.concat_map
      (fun (pn, _, _) ->
        List.concat_map
          (fun (iname, _) ->
            List.concat_map
              (fun s ->
                ( Printf.sprintf "%s eval %s %s %s" (fresh ()) s pn iname,
                  "ok " ^ expected_eval pn iname )
                :: List.map
                     (fun tuple ->
                       ( Printf.sprintf "%s holds %s %s %s (%s)" (fresh ()) s
                           pn iname
                           (String.concat "," tuple),
                         "ok " ^ expected_holds pn iname tuple ))
                     (tuples_for iname))
              sessions)
          insts)
      progs
  in
  let rounds = 25 in
  let total = ref (List.length loads) in
  for _ = 1 to rounds do
    let batch = round_lines () in
    total := !total + List.length batch;
    let responses = Svc_service.handle_lines svc (List.map fst batch) in
    List.iter2
      (fun (line, expected_body) resp ->
        let got =
          match resp.Svc_proto.result with
          | Svc_proto.Ok_ b -> "ok " ^ b
          | Svc_proto.Error_ m -> "error " ^ m
          | Svc_proto.Timeout -> "timeout"
          | Svc_proto.Busy -> "busy"
        in
        check_string line expected_body got)
      batch responses
  done;
  check_bool "at least 1000 requests" true (!total >= 1000);
  check_int "requests counted" !total (Svc_service.requests svc);
  check_int "no timeouts" 0 (Svc_service.timeouts svc);
  let cache = Svc_service.cache svc in
  check_bool "nonzero cache hit rate" true (Svc_cache.hits cache > 0);
  check_bool "hits dominate after warmup" true
    (Svc_cache.hits cache > Svc_cache.misses cache)

(* ------------------------------------------------------------------ *)
(* Differential keying: a fingerprint-keyed service must behave
   byte-for-byte like the legacy printed-key service — identical
   responses and an identical hit/miss/entry/eviction trace — over the
   same 1200-request mixed workload the pool test drives. *)

let test_key_mode_differential () =
  let mk key_mode =
    Svc_service.create ~cache_capacity:256 ~parallel:true ~key_mode ()
  in
  let fp = mk Svc_service.Fingerprint and pr = mk Svc_service.Printed in
  let sessions = [ "s1"; "s2" ] in
  let progs = [ ("tc", "T", tc_text); ("hop", "H", hop_text) ] in
  let insts =
    [
      ("ch4", chain 4); ("ch6", chain 6); ("cy5", cycle 5); ("cy7", cycle 7);
    ]
  in
  let loads =
    List.concat_map
      (fun s ->
        List.map
          (fun (pn, goal, text) ->
            Printf.sprintf "l-%s-%s load %s program %s goal %s : %s" s pn s pn
              goal text)
          progs
        @ List.map
            (fun (iname, text) ->
              Printf.sprintf "l-%s-%s load %s instance %s : %s" s iname s
                iname text)
            insts)
      sessions
  in
  List.iter
    (fun line ->
      let a = Svc_proto.print_response (Svc_service.handle_line fp line)
      and b = Svc_proto.print_response (Svc_service.handle_line pr line) in
      check_string ("load " ^ line) b a)
    loads;
  let tuples_for iname =
    if String.length iname >= 2 && iname.[0] = 'c' && iname.[1] = 'h' then
      [ [ "m0"; "m1" ]; [ "m1"; "m0" ] ]
    else [ [ "c0"; "c0" ]; [ "c0"; "missing" ] ]
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "q%d" !counter
  in
  let round_lines () =
    List.concat_map
      (fun (pn, _, _) ->
        List.concat_map
          (fun (iname, _) ->
            List.concat_map
              (fun s ->
                Printf.sprintf "%s eval %s %s %s" (fresh ()) s pn iname
                :: List.map
                     (fun tuple ->
                       Printf.sprintf "%s holds %s %s %s (%s)" (fresh ()) s pn
                         iname
                         (String.concat "," tuple))
                     (tuples_for iname))
              sessions)
          insts)
      progs
  in
  let trace svc =
    let c = Svc_service.cache svc in
    Printf.sprintf "hits=%d misses=%d entries=%d evictions=%d"
      (Svc_cache.hits c) (Svc_cache.misses c) (Svc_cache.entries c)
      (Svc_cache.evictions c)
  in
  let total = ref (List.length loads) in
  for round = 1 to 25 do
    let lines = round_lines () in
    total := !total + List.length lines;
    let ra =
      List.map Svc_proto.print_response (Svc_service.handle_lines fp lines)
    and rb =
      List.map Svc_proto.print_response (Svc_service.handle_lines pr lines)
    in
    List.iter2 (check_string "same response") rb ra;
    check_string
      (Printf.sprintf "same cache trace after round %d" round)
      (trace pr) (trace fp)
  done;
  check_bool "1200-request workload" true (!total >= 1200);
  check_bool "hits dominate in both" true
    (Svc_cache.hits (Svc_service.cache fp)
     > Svc_cache.misses (Svc_service.cache fp))

(* malformed lines keep their position in handle_lines output *)
let test_handle_lines_order () =
  let svc = Svc_service.create ~parallel:false () in
  let lines =
    [
      "1 load s program tc goal T : T(x,y) <- E(x,y).";
      "2 load s instance i : E(a,b).";
      "oops";
      "3 eval s tc i";
    ]
  in
  let out =
    List.map Svc_proto.print_response (Svc_service.handle_lines svc lines)
  in
  check_bool "four responses" true (List.length out = 4);
  check_string "malformed kept in place" "oops error missing verb"
    (List.nth out 2);
  check_string "eval after it" "3 ok a,b" (List.nth out 3)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ qcheck_request_roundtrip; qcheck_response_roundtrip ]

let suite =
  [
    Alcotest.test_case "golden transcript" `Quick test_golden;
    Alcotest.test_case "cache lru" `Quick test_cache_lru;
    Alcotest.test_case "cancel tokens" `Quick test_cancel;
    Alcotest.test_case "deadline on large fixpoint" `Quick
      test_deadline_large_fixpoint;
    Alcotest.test_case "handle_lines order" `Quick test_handle_lines_order;
    Alcotest.test_case "mutation verbs" `Quick test_mutations;
    Alcotest.test_case "mutation deadline race" `Quick
      test_mutation_deadline_race;
    Alcotest.test_case "mixed workload (2 sessions, pool)" `Slow
      test_mixed_workload;
    Alcotest.test_case "key modes agree (fingerprint vs printed)" `Slow
      test_key_mode_differential;
  ]
  @ qcheck
