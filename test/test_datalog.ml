(* Tests for the Datalog engine: evaluation, fragments, normalization,
   approximations. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

(* transitive closure *)
let tc =
  Parse.query ~goal:"T"
    "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

(* the paper's §2 example: x reaches an element of U along R-edges *)
let conn =
  Parse.query ~goal:"Goal"
    "P(x) <- U(x). P(x) <- R(x,y), P(y). Goal(x) <- P(x)."

let chain n =
  (* E(a0,a1), ..., E(a_{n-1},a_n) *)
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [ c (Printf.sprintf "a%d" i); c (Printf.sprintf "a%d" (i + 1)) ]))

let test_tc_chain () =
  let i = chain 4 in
  let out = Dl_eval.eval tc i in
  (* all pairs i<j: 5*4/2 = 10 *)
  check_int "pairs" 10 (List.length out);
  check_bool "a0->a4" true (Dl_eval.holds tc i [| c "a0"; c "a4" |]);
  check_bool "no back edge" false (Dl_eval.holds tc i [| c "a4"; c "a0" |])

let test_tc_cycle () =
  let i =
    Parse.instance "E(a,b). E(b,c). E(c,a)."
  in
  check_int "all 9 pairs" 9 (List.length (Dl_eval.eval tc i))

let test_conn () =
  let i = Parse.instance "R(a,b). R(b,d). U(d). R(z,z)." in
  check_bool "a connects" true (Dl_eval.holds conn i [| c "a" |]);
  check_bool "d connects" true (Dl_eval.holds conn i [| c "d" |]);
  check_bool "z does not" false (Dl_eval.holds conn i [| c "z" |]);
  check_int "three answers" 3 (List.length (Dl_eval.eval conn i))

let test_fixpoint_idbs () =
  let i = chain 2 in
  let fp = Dl_eval.fixpoint tc.Datalog.program i in
  check_bool "contains edb" true (Instance.subset i fp);
  check_int "T facts" 3 (List.length (Instance.tuples fp "T"))

let test_nullary_goal () =
  let q =
    Parse.query ~goal:"Goal" "Goal <- E(x,y), E(y,x)."
  in
  check_bool "no 2-cycle" false (Dl_eval.holds_boolean q (chain 3));
  check_bool "2-cycle" true
    (Dl_eval.holds_boolean q (Parse.instance "E(a,b). E(b,a)."))

let test_example1 () =
  (* Example 1 of the paper: ternary T, binary B, unary U1, U2. *)
  let q =
    Parse.query ~goal:"GoalQ"
      "GoalQ <- U1(x), W1(x).
       W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
       W1(x) <- U2(x)."
  in
  (* witnessing instance: one diamond step from x0 to w0, U2(w0), U1(x0) *)
  let yes =
    Parse.instance
      "U1(x0). T(x0,y0,z0). B(z0,w0). B(y0,w0). U2(w0)."
  in
  check_bool "Q holds" true (Dl_eval.holds_boolean q yes);
  (* remove U1: fails *)
  let no = Parse.instance "T(x0,y0,z0). B(z0,w0). B(y0,w0). U2(w0)." in
  check_bool "Q fails without U1" false (Dl_eval.holds_boolean q no);
  (* two-step chain *)
  let yes2 =
    Parse.instance
      "U1(x0). T(x0,y0,z0). B(z0,w0). B(y0,w0).
       T(w0,y1,z1). B(z1,w1). B(y1,w1). U2(w1)."
  in
  check_bool "Q holds (2 steps)" true (Dl_eval.holds_boolean q yes2)

let test_monotone_under_delta () =
  (* semi-naive gives same result as evaluating on the union directly *)
  let i1 = chain 3 in
  let i2 = Parse.instance "E(a3,a0)." in
  let all = Instance.union i1 i2 in
  let fp = Dl_eval.fixpoint tc.Datalog.program all in
  check_int "cycle closure" 16 (List.length (Instance.tuples fp "T"))

(* --- static analysis ---------------------------------------------- *)

let test_idb_edb () =
  check_bool "idbs" true (Datalog.idbs conn.Datalog.program = [ "Goal"; "P" ]);
  check_bool "edbs" true (Datalog.edbs conn.Datalog.program = [ "R"; "U" ]);
  check_int "goal arity" 1 (Datalog.goal_arity conn);
  check_int "max body vars" 2 (Datalog.max_body_vars conn.Datalog.program)

let test_depends_recursive () =
  check_bool "P self-dep" true (Datalog.depends_on conn.Datalog.program "P" "P");
  check_bool "Goal deps P" true (Datalog.depends_on conn.Datalog.program "Goal" "P");
  check_bool "P not on Goal" false (Datalog.depends_on conn.Datalog.program "P" "Goal");
  let r = List.nth conn.Datalog.program 1 in
  check_bool "recursive rule" true (Datalog.is_recursive_rule conn.Datalog.program r);
  let r0 = List.nth conn.Datalog.program 0 in
  check_bool "base rule" false (Datalog.is_recursive_rule conn.Datalog.program r0)

let test_fragments () =
  check_bool "conn is monadic" true (Dl_fragment.is_monadic conn.Datalog.program);
  check_bool "tc not monadic" false (Dl_fragment.is_monadic tc.Datalog.program);
  check_bool "tc frontier-guarded" false
    (Dl_fragment.is_syntactically_frontier_guarded tc.Datalog.program);
  (* tc is not FG: head vars x,y of the recursive rule do not co-occur in
     an extensional atom *)
  check_bool "conn FGDL by convention" true
    (Dl_fragment.is_frontier_guarded conn.Datalog.program);
  let fg =
    Parse.query ~goal:"G" "G(x,y) <- E(x,y). G(x,y) <- E(x,y), G(y,z)."
  in
  check_bool "fg guarded" true
    (Dl_fragment.is_syntactically_frontier_guarded fg.Datalog.program);
  check_bool "linear" true (Dl_fragment.is_linear conn.Datalog.program);
  check_bool "nonrec" false (Dl_fragment.is_nonrecursive conn.Datalog.program)

let test_classify () =
  let cq_q = Parse.query ~goal:"Q" "Q(x) <- E(x,y)." in
  check_bool "cq" true (Dl_fragment.classify cq_q = Dl_fragment.CQ);
  let ucq_q = Parse.query ~goal:"Q" "Q(x) <- E(x,y). Q(x) <- U(x)." in
  check_bool "ucq" true (Dl_fragment.classify ucq_q = Dl_fragment.UCQ);
  check_bool "mdl" true (Dl_fragment.classify conn = Dl_fragment.MDL);
  check_bool "datalog" true (Dl_fragment.classify tc = Dl_fragment.DATALOG)

let test_to_ucq () =
  let q =
    Parse.query ~goal:"Q"
      "Q(x) <- A(x,y), H(y). H(y) <- U(y). H(y) <- V(y)."
  in
  match Dl_fragment.to_ucq q with
  | None -> Alcotest.fail "expected UCQ"
  | Some u ->
      check_int "two disjuncts" 2 (List.length u.Ucq.disjuncts);
      let i = Parse.instance "A(a,b). V(b)." in
      check_bool "agree" true
        (Ucq.holds u i [| c "a" |] = Dl_eval.holds q i [| c "a" |])

(* --- normalization ------------------------------------------------ *)

let test_normalize () =
  (* P(x) ← E(x,y), P(x) is recursive with head var in an IDB atom *)
  let q =
    Parse.query ~goal:"P" "P(x) <- U(x). P(x) <- E(x,y), P(x)."
  in
  check_bool "not normalized" false (Dl_normalize.is_normalized q.Datalog.program);
  let nq = Dl_normalize.normalize q in
  check_bool "normalized" true (Dl_normalize.is_normalized nq.Datalog.program);
  (* semantics preserved on samples *)
  let insts =
    [
      Parse.instance "U(a). E(a,b).";
      Parse.instance "E(a,b). E(b,a).";
      Parse.instance "U(a). U(b). E(b,c).";
      chain 3;
    ]
  in
  check_bool "equivalent" true (Dl_eval.equivalent_on q nq insts)

let test_normalize_already () =
  check_bool "conn normalized" true (Dl_normalize.is_normalized conn.Datalog.program);
  let nq = Dl_normalize.normalize conn in
  check_bool "unchanged size" true
    (List.length nq.Datalog.program = List.length conn.Datalog.program)

let test_rule_subsumes () =
  let r1 = Parse.rule "P(x) <- E(x,y)" in
  let r2 = Parse.rule "P(x) <- E(x,y), U(y)" in
  check_bool "r1 subsumes r2" true (Dl_normalize.rule_subsumes r1 r2);
  check_bool "r2 not subsumes r1" false (Dl_normalize.rule_subsumes r2 r1)

(* --- approximations ------------------------------------------------ *)

let test_approx_conn () =
  let approxs = Dl_approx.approximations ~max_depth:4 conn in
  (* Goal consumes one level; P at depth ≤ 3 gives U(x) plus 1 or 2 R-steps *)
  check_int "three approximations" 3 (List.length approxs);
  List.iter
    (fun q ->
      check_bool "approx sound: canondb satisfies conn" true
        (Dl_eval.contained_cq_in q conn))
    approxs

let test_approx_tc () =
  let approxs = Dl_approx.approximations ~max_depth:3 tc in
  (* paths of length 1,2,3 *)
  check_int "three approximations" 3 (List.length approxs);
  List.iter
    (fun q -> check_bool "sound" true (Dl_eval.contained_cq_in q tc))
    approxs

let test_approx_prop1 () =
  (* Proposition 1: if I ⊨ Q(c) then some approximation witnesses it *)
  let i = chain 3 in
  let out = Dl_eval.eval tc i in
  let approxs = Dl_approx.approximations ~max_depth:4 tc in
  List.iter
    (fun t ->
      check_bool "witnessed" true
        (List.exists (fun q -> Cq.holds q i t) approxs))
    out

let test_complete_unfolding () =
  let q =
    Parse.query ~goal:"Q" "Q(x) <- A(x,y), H(y). H(y) <- U(y). H(y) <- V(y)."
  in
  (match Dl_approx.complete_unfolding q with
  | None -> Alcotest.fail "nonrecursive"
  | Some l -> check_int "two" 2 (List.length l));
  check_bool "recursive gives None" true (Dl_approx.complete_unfolding tc = None)

(* --- properties ----------------------------------------------------- *)

let instance_gen =
  QCheck.Gen.(
    let cg = map (fun i -> Const.named ("e" ^ string_of_int i)) (int_bound 4) in
    let fg =
      let* r = int_bound 2 in
      match r with
      | 0 ->
          let* a = cg and* b = cg in
          return (Fact.make "E" [ a; b ])
      | 1 ->
          let* a = cg and* b = cg in
          return (Fact.make "R" [ a; b ])
      | _ ->
          let* a = cg in
          return (Fact.make "U" [ a ])
    in
    map Instance.of_list (list_size (int_bound 10) fg))

let instance_arb = QCheck.make ~print:(Fmt.str "%a" Instance.pp) instance_gen

let prop_datalog_monotone =
  QCheck.Test.make ~name:"Datalog evaluation is monotone" ~count:60
    (QCheck.pair instance_arb instance_arb) (fun (a, b) ->
      let big = Instance.union a b in
      List.for_all (fun t -> Dl_eval.holds conn big t) (Dl_eval.eval conn a))

let prop_approx_sound_complete =
  QCheck.Test.make ~name:"approximations bound the query from below" ~count:40
    instance_arb (fun i ->
      let approxs = Dl_approx.approximations ~max_depth:3 conn in
      List.for_all
        (fun q ->
          List.for_all (fun t -> Dl_eval.holds conn i t) (Cq.eval q i))
        approxs)

let prop_normalize_semantics =
  QCheck.Test.make ~name:"normalization preserves semantics" ~count:40
    instance_arb (fun i ->
      let q = Parse.query ~goal:"P" "P(x) <- U(x). P(x) <- E(x,y), P(x)." in
      let nq = Dl_normalize.normalize q in
      Dl_eval.equivalent_on q nq [ i ])

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_datalog_monotone; prop_approx_sound_complete; prop_normalize_semantics ]

let suite =
  [
    Alcotest.test_case "tc on a chain" `Quick test_tc_chain;
    Alcotest.test_case "tc on a cycle" `Quick test_tc_cycle;
    Alcotest.test_case "conn" `Quick test_conn;
    Alcotest.test_case "fixpoint keeps edbs" `Quick test_fixpoint_idbs;
    Alcotest.test_case "nullary goal" `Quick test_nullary_goal;
    Alcotest.test_case "paper example 1" `Quick test_example1;
    Alcotest.test_case "cycle closure" `Quick test_monotone_under_delta;
    Alcotest.test_case "idb/edb split" `Quick test_idb_edb;
    Alcotest.test_case "dependencies" `Quick test_depends_recursive;
    Alcotest.test_case "fragments" `Quick test_fragments;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "to_ucq" `Quick test_to_ucq;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "normalize noop" `Quick test_normalize_already;
    Alcotest.test_case "rule subsumption" `Quick test_rule_subsumes;
    Alcotest.test_case "approximations of conn" `Quick test_approx_conn;
    Alcotest.test_case "approximations of tc" `Quick test_approx_tc;
    Alcotest.test_case "proposition 1" `Quick test_approx_prop1;
    Alcotest.test_case "complete unfolding" `Quick test_complete_unfolding;
  ]
  @ qcheck

(* specialization of repeated intensional arguments *)
let test_specialize () =
  let q =
    Parse.query ~goal:"G" "G <- P(x,x). P(x,y) <- E(x,y). P(x,y) <- E(x,z), P(z,y)."
  in
  let sq = Dl_specialize.transform q in
  (* no intensional body atom with repeated vars remains *)
  let idb = Datalog.is_idb sq.Datalog.program in
  let ok =
    List.for_all
      (fun (r : Datalog.rule) ->
        List.for_all
          (fun (a : Cq.atom) ->
            (not (idb a.Cq.rel))
            ||
            match Dl_specialize.repeat_pattern a.Cq.args with
            | Some p -> List.mapi (fun i _ -> i) p = p
            | None -> false)
          r.Datalog.body)
      sq.Datalog.program
  in
  Alcotest.(check bool) "no repeats left" true ok;
  (* semantics preserved *)
  let insts =
    [
      Parse.instance "E(a,a).";
      Parse.instance "E(a,b). E(b,a).";
      Parse.instance "E(a,b). E(b,c).";
      Parse.instance "E(a,b). E(b,c). E(c,a).";
    ]
  in
  Alcotest.(check bool) "equivalent" true (Dl_eval.equivalent_on q sq insts)

let suite = suite @ [ Alcotest.test_case "specialize repeats" `Quick test_specialize ]

(* binarization of wide rules *)
let test_binarize () =
  let q =
    Parse.query ~goal:"G"
      "G <- P(a,b), P(b,c), P(c,d), P(d,e).
       P(x,y) <- E(x,y)."
  in
  let bq = Dl_binarize.transform q in
  check_int "bounded" 2 (Dl_binarize.max_idb_atoms_per_rule bq.Datalog.program);
  let insts =
    [
      Parse.instance "E(a,b). E(b,c). E(c,d). E(d,e).";
      Parse.instance "E(a,b). E(b,c).";
      Parse.instance "E(a,a).";
    ]
  in
  check_bool "equivalent" true (Dl_eval.equivalent_on q bq insts)

let test_binarize_noop () =
  let q = Parse.query ~goal:"G" "G <- P(x), R(x). P(x) <- U(x). R(x) <- W(x)." in
  let bq = Dl_binarize.transform q in
  check_int "unchanged" (List.length q.Datalog.program) (List.length bq.Datalog.program)

let suite =
  suite
  @ [
      Alcotest.test_case "binarize wide rule" `Quick test_binarize;
      Alcotest.test_case "binarize noop" `Quick test_binarize_noop;
    ]

(* ---------------------------------------------------------------- *)
(* Differential tests: the indexed semi-naive engine against the
   scan-based naive reference, and against Hom-based CQ evaluation on
   the nonrecursive fragment, on random program/instance pairs. *)

(* fixed global arities so every generated program validates *)
let dg_rels = [ ("E", 2); ("U", 1); ("P", 1); ("T", 2) ]
let dg_idbs = [ ("P", 1); ("T", 2) ]

let dg_var =
  QCheck.Gen.(map (fun i -> [| "x"; "y"; "z"; "w" |].(i)) (int_bound 3))

let dg_atom rels =
  QCheck.Gen.(
    let* rel, arity = oneofl rels in
    let* vs = list_repeat arity dg_var in
    return (Cq.atom rel (List.map (fun v -> Cq.Var v) vs)))

let atom_var_list atoms =
  List.concat_map
    (fun (a : Cq.atom) ->
      List.filter_map (function Cq.Var v -> Some v | Cq.Cst _ -> None) a.args)
    atoms

let dg_rule =
  QCheck.Gen.(
    let* body = list_size (int_range 1 3) (dg_atom dg_rels) in
    let bvars = atom_var_list body in
    let* hrel, harity = oneofl dg_idbs in
    let* hvs = list_repeat harity (oneofl bvars) in
    return (Datalog.rule (Cq.atom hrel (List.map (fun v -> Cq.Var v) hvs)) body))

let dg_program = QCheck.Gen.(list_size (int_range 1 5) dg_rule)

let dg_const =
  QCheck.Gen.(map (fun i -> c ("e" ^ string_of_int i)) (int_bound 3))

let dg_fact =
  QCheck.Gen.(
    let* rel, arity = oneofl dg_rels in
    let* args = list_repeat arity dg_const in
    return (Fact.make rel args))

let dg_instance =
  QCheck.Gen.(map Instance.of_list (list_size (int_bound 10) dg_fact))

let dg_pair_arb =
  QCheck.make
    ~print:(fun (p, i) ->
      Fmt.str "%a@.on %a" Datalog.pp_program p Instance.pp i)
    QCheck.Gen.(pair dg_program dg_instance)

let prop_fixpoint_differential =
  QCheck.Test.make ~name:"indexed semi-naive = scan-based naive" ~count:120
    dg_pair_arb (fun (p, i) ->
      Instance.equal (Dl_eval.fixpoint p i) (Dl_eval.fixpoint_naive p i))

let prop_holds_differential =
  (* holds_boolean takes the early-stop path; it must agree with the full
     naive fixpoint *)
  QCheck.Test.make ~name:"early-stop holds = naive fixpoint" ~count:120
    dg_pair_arb (fun (p, i) ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          Dl_eval.holds_boolean q i
          = (Instance.tuples (Dl_eval.fixpoint_naive p i) goal <> []))
        dg_idbs)

let dg_cq =
  QCheck.Gen.(
    let* body = list_size (int_range 1 3) (dg_atom [ ("E", 2); ("U", 1) ]) in
    let bvars = List.sort_uniq String.compare (atom_var_list body) in
    let* n_head = int_bound (List.length bvars) in
    return (Cq.make ~head:(List.filteri (fun i _ -> i < n_head) bvars) body))

let dg_cq_pair_arb =
  QCheck.make
    ~print:(fun (q, i) -> Fmt.str "%a@.on %a" Cq.pp q Instance.pp i)
    QCheck.Gen.(pair dg_cq dg_instance)

let prop_cq_differential =
  QCheck.Test.make ~name:"datalog engine = hom-based CQ evaluation" ~count:120
    dg_cq_pair_arb (fun (cq, i) ->
      let q = Datalog.of_cq ~goal:"DGGoal" cq in
      let norm ts = List.sort compare (List.map Array.to_list ts) in
      norm (Dl_eval.eval q i) = norm (Cq.eval cq i))

let test_arity_validation () =
  Alcotest.check_raises "rule-local clash"
    (Invalid_argument "Datalog: relation E used with arities 2 and 1")
    (fun () ->
      ignore
        (Datalog.rule
           (Cq.atom "P" [ Cq.Var "x" ])
           [ Cq.atom "E" [ Cq.Var "x"; Cq.Var "y" ]; Cq.atom "E" [ Cq.Var "x" ] ]));
  let r1 =
    Datalog.rule (Cq.atom "P" [ Cq.Var "x" ]) [ Cq.atom "E" [ Cq.Var "x"; Cq.Var "y" ] ]
  in
  let r2 = Datalog.rule (Cq.atom "P" [ Cq.Var "x" ]) [ Cq.atom "E" [ Cq.Var "x" ] ] in
  Alcotest.check_raises "cross-rule clash"
    (Invalid_argument "Datalog: relation E used with arities 2 and 1")
    (fun () -> ignore (Datalog.make [ r1; r2 ] "P"));
  (* a fact whose arity disagrees with the program is a loud error *)
  let q = Parse.query ~goal:"P" "P(x) <- E(x,y)." in
  let bad = Instance.of_list [ Fact.make "E" [ c "a" ] ] in
  check_bool "mismatch raises" true
    (try
       ignore (Dl_eval.eval q bad);
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [ Alcotest.test_case "arity validation" `Quick test_arity_validation ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_fixpoint_differential;
        prop_holds_differential;
        prop_cq_differential;
      ]
