(* TCP front-end tests: length-capped framing under arbitrary write
   splits, stale-socket reclaim, admission control and per-session
   quotas shedding with [busy], the concurrent server cross-checked
   against the sequential oracle, and cache snapshot round-trips. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Svc_reader: qcheck round-trips through arbitrary chunkings. *)

let reader_cap = 16

let reader_gen =
  QCheck.Gen.(
    let line =
      map
        (fun l -> String.concat "" (List.map (String.make 1) l))
        (list_size (int_bound 24)
           (oneofl [ 'a'; 'b'; ' '; 'x'; '('; ')'; ','; '9' ]))
    in
    triple (list_size (int_bound 8) line) bool
      (list_size (int_range 1 12) (int_range 1 7)))

let reader_print (lines, crlf, chunks) =
  Printf.sprintf "lines=[%s] crlf=%b chunks=[%s]"
    (String.concat ";" (List.map (Printf.sprintf "%S") lines))
    crlf
    (String.concat ";" (List.map string_of_int chunks))

(* feed [data] in the cyclic chunk sizes given, collecting items *)
let feed_chunked reader data chunks =
  let items = ref [] in
  let n = String.length data in
  let pos = ref 0 in
  let rec go = function
    | [] -> go chunks
    | c :: rest ->
        if !pos < n then begin
          let len = min c (n - !pos) in
          items :=
            !items
            @ Svc_reader.feed reader (Bytes.of_string data) ~off:!pos ~len;
          pos := !pos + len;
          go rest
        end
  in
  if n > 0 then go chunks;
  !items

let qcheck_reader_roundtrip =
  QCheck.Test.make ~name:"capped reader reassembles arbitrary splits"
    ~count:300
    (QCheck.make ~print:reader_print reader_gen)
    (fun (lines, crlf, chunks) ->
      let terminator = if crlf then "\r\n" else "\n" in
      let data = String.concat "" (List.map (fun l -> l ^ terminator) lines) in
      let reader = Svc_reader.create ~max_line:reader_cap in
      let items = feed_chunked reader data chunks in
      let expected =
        List.map
          (fun l ->
            if String.length l > reader_cap then Svc_reader.Overlong
            else Svc_reader.Line l)
          lines
      in
      items = expected)

let test_reader_edges () =
  let r = Svc_reader.create ~max_line:5 in
  let feed s = Svc_reader.feed r (Bytes.of_string s) ~off:0 ~len:(String.length s) in
  (* exactly at the cap, with a CRLF: the CR must not count *)
  check_bool "at-cap CRLF line accepted" true
    (feed "abcde\r\n" = [ Svc_reader.Line "abcde" ]);
  (* one over the cap *)
  check_bool "cap+1 rejected" true (feed "abcdef\n" = [ Svc_reader.Overlong ]);
  (* a long line is dropped as it streams, then framing recovers *)
  check_bool "streamed overlong" true (feed (String.make 100 'z') = []);
  check_bool "overlong surfaces at terminator, next line clean" true
    (feed "zz\nok\n" = [ Svc_reader.Overlong; Svc_reader.Line "ok" ]);
  check_bool "bounded while discarding" true (Svc_reader.pending r <= 6)

(* ------------------------------------------------------------------ *)
(* Stale Unix-socket reclaim (bind_unix). *)

let test_stale_socket_reclaim () =
  let path = Filename.temp_file "mondet-stale" ".sock" in
  Sys.remove path;
  (* a listener that dies without unlinking leaves a stale file *)
  let dead = Svc_server.bind_unix ~path in
  Unix.listen dead 1;
  Unix.close dead;
  check_bool "stale socket file left behind" true (Sys.file_exists path);
  (* rebinding must reclaim it *)
  let fresh = Svc_server.bind_unix ~path in
  Unix.listen fresh 1;
  (* ... but a *live* listener must not be stolen *)
  (match Svc_server.bind_unix ~path with
  | exception Failure _ -> ()
  | fd ->
      Unix.close fd;
      Alcotest.fail "bind_unix stole a live listener's address");
  Unix.close fresh;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* In-process TCP server scaffolding. *)

let with_server ?(config = Svc_tcp.default_config) service f =
  let stop = Atomic.make false in
  let bound = ref None in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let d =
    Domain.spawn (fun () ->
        Svc_tcp.serve
          ~stop:(fun () -> Atomic.get stop)
          ~on_listen:(fun a ->
            Mutex.lock mu;
            bound := Some a;
            Condition.signal cv;
            Mutex.unlock mu)
          config service
          (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)))
  in
  Mutex.lock mu;
  while !bound = None do
    Condition.wait cv mu
  done;
  let addr = Option.get !bound in
  Mutex.unlock mu;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join d)
    (fun () -> f addr)

let connect addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let roundtrip ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

(* ------------------------------------------------------------------ *)

let load_lines =
  [
    "l1 load s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
     T(z,y).";
    "l2 load s instance i : E(a,b). E(b,c).";
  ]

let test_tcp_basic () =
  let service = Svc_service.create ~parallel:false () in
  with_server service (fun addr ->
      let fd, ic, oc = connect addr in
      List.iter (fun l -> ignore (roundtrip ic oc l)) load_lines;
      check_string "eval over tcp" "q1 ok a,b;a,c;b,c"
        (roundtrip ic oc "q1 eval s tc i");
      check_string "holds over tcp" "q2 ok true"
        (roundtrip ic oc "q2 holds s tc i (a,c)");
      let stats = roundtrip ic oc "q3 stats" in
      check_bool "stats line answered" true
        (String.length stats > 0 && String.sub stats 0 2 = "q3");
      Unix.close fd)

let test_tcp_oversized_line () =
  let service = Svc_service.create ~parallel:false () in
  let config = { Svc_tcp.default_config with Svc_tcp.max_line = 100 } in
  with_server ~config service (fun addr ->
      let fd, ic, oc = connect addr in
      List.iter (fun l -> ignore (roundtrip ic oc l)) load_lines;
      let resp = roundtrip ic oc ("qq eval s tc " ^ String.make 200 'x') in
      check_string "oversized line rejected" "- error line exceeds 100 bytes"
        resp;
      (* the connection survives and keeps its framing *)
      check_string "next request clean" "q2 ok a,b;a,c;b,c"
        (roundtrip ic oc "q2 eval s tc i");
      Unix.close fd)

let test_tcp_admission_shed () =
  let service = Svc_service.create ~parallel:false () in
  let config = { Svc_tcp.default_config with Svc_tcp.max_conns = 1 } in
  with_server ~config service (fun addr ->
      let fd1, ic1, oc1 = connect addr in
      (* a round-trip proves conn 1 was accepted and counted *)
      ignore (roundtrip ic1 oc1 (List.hd load_lines));
      let fd2, ic2, _ = connect addr in
      check_string "second connection shed with busy" "- busy"
        (input_line ic2);
      check_bool "and closed" true
        (match input_line ic2 with
        | exception End_of_file -> true
        | _ -> false);
      Unix.close fd2;
      (* the first connection is unaffected *)
      ignore (roundtrip ic1 oc1 (List.nth load_lines 1));
      check_string "first connection still served" "q1 ok a,b;a,c;b,c"
        (roundtrip ic1 oc1 "q1 eval s tc i");
      Unix.close fd1)

let test_tcp_quota_busy () =
  (* window far longer than the test: deterministically, the first
     [limit] requests pass and every later one sheds *)
  let service =
    Svc_service.create ~parallel:false ~quota:4 ~quota_window:3600.0 ()
  in
  with_server service (fun addr ->
      let fd, ic, oc = connect addr in
      List.iter (fun l -> ignore (roundtrip ic oc l)) load_lines;
      check_string "third request passes" "q1 ok a,b;a,c;b,c"
        (roundtrip ic oc "q1 eval s tc i");
      check_string "fourth request passes" "q2 ok true"
        (roundtrip ic oc "q2 holds s tc i (a,c)");
      check_string "fifth request sheds" "q3 busy"
        (roundtrip ic oc "q3 eval s tc i");
      check_string "and stays shed inside the window" "q4 busy"
        (roundtrip ic oc "q4 holds s tc i (a,b)");
      (* stats is quota-exempt (no session) and still answers *)
      let stats = roundtrip ic oc "q5 stats" in
      check_bool "stats exempt from quota" true
        (String.sub stats 0 5 = "q5 ok");
      Unix.close fd)

let test_tcp_stress_oracle () =
  let service = Svc_service.create ~parallel:false () in
  let config = { Svc_tcp.default_config with Svc_tcp.max_conns = 40 } in
  let stats, exchanges =
    with_server ~config service (fun addr ->
        Svc_loadgen.run ~addr ~conns:8 ~per_conn:12 ~verify:false ())
  in
  (* the server's domains are joined: every write is published *)
  check_int "all responses received" (8 * 12) stats.Svc_loadgen.total;
  check_int "no failures" 0 stats.Svc_loadgen.failed;
  check_int "no sheds" 0 stats.Svc_loadgen.busy;
  check_int "every response byte-identical to the oracle" 0
    (Svc_loadgen.verify_exchanges exchanges)

(* Concurrent clients mutating *distinct* sessions.  Each client owns a
   session (and its own constants, so evaluation really differs across
   clients) and drives load -> eval -> assert -> eval -> retract -> eval
   -> holds over its own connection, from its own domain.  Sessions
   serialize internally but not across each other, so the mutations run
   in parallel; every response must still be byte-identical to a
   single-threaded oracle replaying the same per-client script. *)
let mutation_script k =
  let s = Printf.sprintf "s%d" k in
  let e i j = Printf.sprintf "E(c%d_%d,c%d_%d)." k i k j in
  let c i = Printf.sprintf "c%d_%d" k i in
  List.mapi
    (fun n line -> Printf.sprintf "%s_%d %s" s n line)
    [
      Printf.sprintf
        "load %s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
         T(z,y)."
        s;
      Printf.sprintf "load %s instance i : %s %s %s" s (e 0 1) (e 1 2) (e 2 3);
      Printf.sprintf "eval %s tc i" s;
      Printf.sprintf "assert %s i : %s" s (e 3 4);
      Printf.sprintf "eval %s tc i" s;
      Printf.sprintf "holds %s tc i (%s,%s)" s (c 0) (c 4);
      Printf.sprintf "retract %s i : %s" s (e 1 2);
      Printf.sprintf "eval %s tc i" s;
      Printf.sprintf "holds %s tc i (%s,%s)" s (c 0) (c 3);
      Printf.sprintf "retract %s i : E(zz,zz)." s;
      Printf.sprintf "eval %s tc i" s;
    ]

let test_tcp_concurrent_mutations () =
  let service = Svc_service.create ~parallel:false () in
  let nclients = 4 in
  let transcripts =
    with_server service (fun addr ->
        let clients =
          List.init nclients (fun k ->
              Domain.spawn (fun () ->
                  let fd, ic, oc = connect addr in
                  let rs = List.map (roundtrip ic oc) (mutation_script k) in
                  Unix.close fd;
                  rs))
        in
        List.map Domain.join clients)
  in
  let oracle = Svc_service.create ~parallel:false () in
  List.iteri
    (fun k got ->
      List.iter2
        (fun line resp ->
          check_string line
            (Svc_proto.print_response (Svc_service.handle_line oracle line))
            resp)
        (mutation_script k) got)
    transcripts;
  (* spot-check the mutations actually took effect end to end *)
  let last = List.nth (List.hd transcripts) 10 in
  check_string "client 0 final closure reflects both mutations"
    "s0_10 ok c0_0,c0_1;c0_2,c0_3;c0_2,c0_4;c0_3,c0_4" last

(* ------------------------------------------------------------------ *)
(* Cache snapshots. *)

let test_snapshot_roundtrip () =
  let path = Filename.temp_file "mondet-cache" ".snap" in
  let feed svc l = Svc_proto.print_response (Svc_service.handle_line svc l) in
  let queries =
    [ "q1 eval s tc i"; "q2 holds s tc i (a,c)"; "q3 holds s tc i (c,a)" ]
  in
  let svc1 = Svc_service.create ~parallel:false () in
  List.iter (fun l -> ignore (feed svc1 l)) load_lines;
  let cold = List.map (feed svc1) queries in
  Svc_persist.save path svc1;
  (* a warm service: same loads, snapshot reloaded — every query must
     hit and answer byte-identically *)
  let svc2 = Svc_service.create ~parallel:false () in
  (match Svc_persist.load path svc2 with
  | Ok n -> check_int "all entries reloaded" 3 n
  | Error m -> Alcotest.fail ("snapshot load failed: " ^ m));
  List.iter (fun l -> ignore (feed svc2 l)) load_lines;
  let warm = List.map (feed svc2) queries in
  List.iter2 (fun c w -> check_string "warm answers byte-identical" c w) cold
    warm;
  check_int "all warm answers were cache hits" 3
    (Svc_cache.hits (Svc_service.cache svc2));
  check_int "no warm misses" 0 (Svc_cache.misses (Svc_service.cache svc2));
  Sys.remove path

let test_snapshot_lru_order () =
  (* replaying a snapshot must reproduce recency, so the same entry is
     evicted next on both sides of a restart *)
  let c1 = Svc_cache.create 3 in
  Svc_cache.add c1 "a" "1";
  Svc_cache.add c1 "b" "2";
  Svc_cache.add c1 "c" "3";
  ignore (Svc_cache.find c1 "a");
  (* LRU order now: b, c, a *)
  let dump = Svc_cache.fold_lru c1 (fun k v acc -> (k, v) :: acc) [] in
  check_bool "fold is least-recent first" true
    (List.rev_map fst dump = [ "b"; "c"; "a" ]);
  let c2 = Svc_cache.create 3 in
  List.iter (fun (k, v) -> Svc_cache.add c2 k v) (List.rev dump);
  Svc_cache.add c2 "d" "4";
  check_bool "replay preserved recency: b evicted first" true
    (Svc_cache.mem c2 "a" && Svc_cache.mem c2 "c" && Svc_cache.mem c2 "d"
    && not (Svc_cache.mem c2 "b"))

let test_snapshot_mode_mismatch () =
  let path = Filename.temp_file "mondet-cache" ".snap" in
  let svc1 =
    Svc_service.create ~parallel:false ~key_mode:Svc_service.Printed ()
  in
  List.iter
    (fun l -> ignore (Svc_service.handle_line svc1 l))
    (load_lines @ [ "q1 eval s tc i" ]);
  Svc_persist.save path svc1;
  let svc2 =
    Svc_service.create ~parallel:false ~key_mode:Svc_service.Fingerprint ()
  in
  (match Svc_persist.load path svc2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "snapshot accepted under the wrong key mode");
  check_int "nothing leaked into the cache" 0
    (Svc_cache.entries (Svc_service.cache svc2));
  Sys.remove path

let qcheck = List.map QCheck_alcotest.to_alcotest [ qcheck_reader_roundtrip ]

let suite =
  [
    Alcotest.test_case "reader edge cases" `Quick test_reader_edges;
    Alcotest.test_case "stale unix socket reclaim" `Quick
      test_stale_socket_reclaim;
    Alcotest.test_case "tcp basic verbs" `Quick test_tcp_basic;
    Alcotest.test_case "tcp oversized line" `Quick test_tcp_oversized_line;
    Alcotest.test_case "tcp admission shed" `Quick test_tcp_admission_shed;
    Alcotest.test_case "tcp per-session quota" `Quick test_tcp_quota_busy;
    Alcotest.test_case "tcp stress vs oracle" `Slow test_tcp_stress_oracle;
    Alcotest.test_case "tcp concurrent mutations" `Quick
      test_tcp_concurrent_mutations;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot lru order" `Quick test_snapshot_lru_order;
    Alcotest.test_case "snapshot mode mismatch" `Quick
      test_snapshot_mode_mismatch;
  ]
  @ qcheck
