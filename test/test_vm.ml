(* Tests for the bytecode VM (Dl_vm) and its strategy routing
   (Dl_engine.Vm): unit checks on closure workloads and edge-shaped rules
   (empty bodies, constants, repeated variables), golden disassemblies
   pinning the compiled opcode layout, mid-round cancellation, concurrent
   compilation from several domains, differential agreement with the
   naive oracle on random program/instance pairs, and the parallel pool's
   bytecode matcher. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Const.named

let tc =
  Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         Fact.make "E"
           [ c (Printf.sprintf "a%d" i); c (Printf.sprintf "a%d" (i + 1)) ]))

(* all pairs over [n] constants: dense joins with quadratic fan-out *)
let dense n =
  Instance.of_list
    (List.concat
       (List.init n (fun i ->
            List.init n (fun j ->
                Fact.make "E"
                  [ c (Printf.sprintf "d%d" i); c (Printf.sprintf "d%d" j) ]))))

let test_tc_chain () =
  let i = chain 24 in
  check_int "full closure" (24 * 25 / 2) (List.length (Dl_vm.eval tc i));
  check_bool "holds" true (Dl_vm.holds tc i [| c "a0"; c "a24" |]);
  check_bool "rejects" false (Dl_vm.holds tc i [| c "a24"; c "a0" |]);
  check_bool "boolean" true (Dl_vm.holds_boolean tc i);
  check_bool "boolean on empty" false (Dl_vm.holds_boolean tc Instance.empty);
  check_bool "fixpoint = indexed fixpoint" true
    (Instance.equal (Dl_vm.fixpoint tc.program i) (Dl_eval.fixpoint tc.program i))

let test_rule_shapes () =
  (* empty body: the zero-step program emits its head once and halts *)
  let p0 = [ Datalog.rule (Cq.atom "G" []) [] ] in
  check_bool "empty body derives" true
    (Dl_vm.holds_boolean (Datalog.make p0 "G") Instance.empty);
  (* constants in the body: check-const and constant-keyed probes *)
  let qc = Parse.query ~goal:"P" "P(x) <- E(x,'a2')." in
  let i = chain 5 in
  check_int "constant probe" 1 (List.length (Dl_vm.eval qc i));
  check_bool "constant probe tuple" true (Dl_vm.holds qc i [| c "a1" |]);
  (* repeated variable inside one atom: bind-then-check in the same step *)
  let ql = Parse.query ~goal:"L" "L(x) <- E(x,x)." in
  check_int "no loops in a chain" 0 (List.length (Dl_vm.eval ql i));
  check_int "loops in dense" 3 (List.length (Dl_vm.eval ql (dense 3)))

let test_engine_facade () =
  let i = chain 4 in
  check_bool "facade holds" true
    (Dl_engine.holds ~strategy:Dl_engine.Vm tc i [| c "a0"; c "a4" |]);
  check_int "facade eval" 10
    (List.length (Dl_engine.eval ~strategy:Dl_engine.Vm tc i));
  check_bool "vm is listed" true (List.mem Dl_engine.Vm Dl_engine.all);
  check_bool "of_string" true (Dl_engine.of_string "vm" = Some Dl_engine.Vm);
  check_bool "to_string" true
    (String.equal (Dl_engine.to_string Dl_engine.Vm) "vm");
  (* pool-safe demotion: only strategies with guarded caches survive *)
  check_bool "parallel demotes" true
    (Dl_engine.pool_safe Dl_engine.Parallel = Dl_engine.Indexed);
  check_bool "magic demotes" true
    (Dl_engine.pool_safe Dl_engine.Magic = Dl_engine.Indexed);
  check_bool "vm passes" true (Dl_engine.pool_safe Dl_engine.Vm = Dl_engine.Vm);
  check_bool "naive passes" true
    (Dl_engine.pool_safe Dl_engine.Naive = Dl_engine.Naive);
  (* pool preference: worker domains run vm unless the default is an
     explicit naive/vm *)
  let saved = Dl_engine.default () in
  Fun.protect
    ~finally:(fun () -> Dl_engine.set_default saved)
    (fun () ->
      List.iter
        (fun (d, want) ->
          Dl_engine.set_default d;
          check_bool
            ("pool strategy for " ^ Dl_engine.to_string d)
            true
            (Dl_engine.pool_strategy () = want))
        [
          (Dl_engine.Indexed, Dl_engine.Vm);
          (Dl_engine.Parallel, Dl_engine.Vm);
          (Dl_engine.Magic, Dl_engine.Vm);
          (Dl_engine.Vm, Dl_engine.Vm);
          (Dl_engine.Naive, Dl_engine.Naive);
        ]);
  check_bool "bytecode is the pool matcher default" true
    (Dl_parallel.matcher () = Dl_parallel.Bytecode)

(* --- golden disassemblies ------------------------------------------- *)
(* One grid-shaped and one diamond-shaped rule, pinning the plan (atom
   order, probe positions) and the opcode layout (offsets, fail targets).
   A deliberate compiler change updates these strings; an accidental one
   fails here before it can perturb every benchmark. *)

let disasm p = Fmt.str "%a" Dl_vm.pp_program p

let grid_rule = [ Parse.rule "D(x,y) <- H(x,z), V(z,w), D(w,y)" ]

let grid_naive_golden =
  "program D/2: 3 steps, 4 regs\n\
  \  head D(r0,r3)\n\
  \  0000  scan           step=0 rel=H src=full\n\
  \  0003  cancel-probe\n\
  \  0004  next           step=0 arity=2 fail=@0060\n\
  \  0008  bind-slot      step=0 pos=0 r0\n\
  \  0012  bind-slot      step=0 pos=1 r1\n\
  \  0016  index-probe    step=1 rel=V src=full bound=[0=r1]\n\
  \  0023  cancel-probe\n\
  \  0024  next           step=1 arity=2 fail=@0003\n\
  \  0028  check-slot-eq  step=1 pos=0 r1 fail=@0023\n\
  \  0033  bind-slot      step=1 pos=1 r2\n\
  \  0037  index-probe    step=2 rel=D src=full bound=[0=r2]\n\
  \  0044  cancel-probe\n\
  \  0045  next           step=2 arity=2 fail=@0023\n\
  \  0049  check-slot-eq  step=2 pos=0 r2 fail=@0044\n\
  \  0054  bind-slot      step=2 pos=1 r3\n\
  \  0058  emit-head      resume=@0044\n\
  \  0060  halt\n"

let grid_semi2_golden =
  "program D/2: 3 steps, 4 regs\n\
  \  head D(r0,r3)\n\
  \  0000  scan           step=0 rel=D src=delta\n\
  \  0003  cancel-probe\n\
  \  0004  next           step=0 arity=2 fail=@0060\n\
  \  0008  bind-slot      step=0 pos=0 r2\n\
  \  0012  bind-slot      step=0 pos=1 r3\n\
  \  0016  index-probe    step=1 rel=V src=old bound=[1=r2]\n\
  \  0023  cancel-probe\n\
  \  0024  next           step=1 arity=2 fail=@0003\n\
  \  0028  bind-slot      step=1 pos=0 r1\n\
  \  0032  check-slot-eq  step=1 pos=1 r2 fail=@0023\n\
  \  0037  index-probe    step=2 rel=H src=old bound=[1=r1]\n\
  \  0044  cancel-probe\n\
  \  0045  next           step=2 arity=2 fail=@0023\n\
  \  0049  bind-slot      step=2 pos=0 r0\n\
  \  0053  check-slot-eq  step=2 pos=1 r1 fail=@0044\n\
  \  0058  emit-head      resume=@0044\n\
  \  0060  halt\n"

let diamond_rule =
  [ Parse.rule "W(x) <- A(x,y), B(y,v), C(x,z), D(z,v), W(v)" ]

let diamond_naive_golden =
  "program W/1: 5 steps, 4 regs\n\
  \  head W(r0)\n\
  \  0000  scan           step=0 rel=A src=full\n\
  \  0003  cancel-probe\n\
  \  0004  next           step=0 arity=2 fail=@0102\n\
  \  0008  bind-slot      step=0 pos=0 r0\n\
  \  0012  bind-slot      step=0 pos=1 r1\n\
  \  0016  index-probe    step=1 rel=B src=full bound=[0=r1]\n\
  \  0023  cancel-probe\n\
  \  0024  next           step=1 arity=2 fail=@0003\n\
  \  0028  check-slot-eq  step=1 pos=0 r1 fail=@0023\n\
  \  0033  bind-slot      step=1 pos=1 r2\n\
  \  0037  index-probe    step=2 rel=C src=full bound=[0=r0]\n\
  \  0044  cancel-probe\n\
  \  0045  next           step=2 arity=2 fail=@0023\n\
  \  0049  check-slot-eq  step=2 pos=0 r0 fail=@0044\n\
  \  0054  bind-slot      step=2 pos=1 r3\n\
  \  0058  index-probe    step=3 rel=D src=full bound=[0=r3; 1=r2]\n\
  \  0068  cancel-probe\n\
  \  0069  next           step=3 arity=2 fail=@0044\n\
  \  0073  check-slot-eq  step=3 pos=0 r3 fail=@0068\n\
  \  0078  check-slot-eq  step=3 pos=1 r2 fail=@0068\n\
  \  0083  index-probe    step=4 rel=W src=full bound=[0=r2]\n\
  \  0090  cancel-probe\n\
  \  0091  next           step=4 arity=1 fail=@0068\n\
  \  0095  check-slot-eq  step=4 pos=0 r2 fail=@0090\n\
  \  0100  emit-head      resume=@0090\n\
  \  0102  halt\n"

let test_golden_disassembly () =
  let gp = List.hd (Dl_vm.compile grid_rule) in
  let dp = List.hd (Dl_vm.compile diamond_rule) in
  Alcotest.(check string)
    "grid naive" grid_naive_golden
    (disasm gp.Dl_vm.naive);
  Alcotest.(check string)
    "grid delta on D" grid_semi2_golden
    (disasm gp.Dl_vm.semi.(2));
  Alcotest.(check string)
    "diamond naive" diamond_naive_golden
    (disasm dp.Dl_vm.naive)

(* --- cancellation ---------------------------------------------------- *)

let join3 =
  Parse.query ~goal:"J" "J(x,y) <- E(x,u), E(u,v), E(v,y)."

let test_cancel_mid_enumeration () =
  (* an already-expired deadline must stop [exec] after the fuel window —
     a strict prefix of the enumeration — proving the probe sits inside
     the cursor loops, not at the boundaries *)
  let i = dense 20 in
  let prog = (List.hd (Dl_vm.compile join3.program)).Dl_vm.naive in
  List.iter (fun r -> ignore (Instance.index_id i r)) [ Symtab.intern "E" ];
  let total = ref 0 in
  Dl_vm.exec prog ~full:i (fun _ ->
      incr total;
      true);
  check_bool "enumeration is long" true (!total > 1000);
  let cancel = Dl_cancel.with_deadline_ms 1 in
  Unix.sleepf 0.003;
  let emitted = ref 0 in
  let raised =
    try
      Dl_vm.exec prog ~full:i ~cancel (fun _ ->
          incr emitted;
          true);
      false
    with Dl_cancel.Cancelled -> true
  in
  check_bool "cancelled" true raised;
  check_bool "stopped mid-enumeration" true (!emitted < !total)

let test_cancel_fixpoint_deadline () =
  (* a 1 ms deadline interrupts a fixpoint whose first round alone is far
     longer than the deadline *)
  let i = dense 28 in
  let cancel = Dl_cancel.with_deadline_ms 1 in
  let raised =
    try
      ignore (Dl_vm.fixpoint ~cancel join3.program i);
      false
    with Dl_cancel.Cancelled -> true
  in
  check_bool "deadline fired" true raised

(* --- concurrent compilation ------------------------------------------ *)

let test_concurrent_compile () =
  (* several domains re-entering the mutex-guarded compile caches on the
     same (structurally equal) program must all succeed and agree *)
  let mk () =
    Parse.program "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
  in
  let i = chain 8 in
  let expect = List.length (Dl_vm.eval tc i) in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let p = mk () in
            let nprogs = List.length (Dl_vm.compile p) in
            let nslots = List.length (Dl_eval.compile p) in
            let nans = List.length (Dl_vm.eval (Datalog.make p "T") i) in
            (nprogs, nslots, nans)))
  in
  List.iter
    (fun d ->
      let nprogs, nslots, nans = Domain.join d in
      check_int "bytecode programs" 2 nprogs;
      check_int "slot rules" 2 nslots;
      check_int "answers agree" expect nans)
    doms

(* --- differential properties ----------------------------------------- *)
(* vm = naive on the shared random program/instance generator, one suite
   per facade entry point, mirroring the indexed/magic/parallel suites *)

let norm ts = List.sort compare (List.map Array.to_list ts)

let prop_vm_eval_differential =
  QCheck.Test.make ~name:"vm eval = naive eval" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          norm (Dl_engine.eval ~strategy:Dl_engine.Vm q i)
          = norm (Dl_engine.eval ~strategy:Dl_engine.Naive q i))
        Test_datalog.dg_idbs)

let prop_vm_boolean_differential =
  QCheck.Test.make ~name:"vm holds_boolean = naive" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      List.for_all
        (fun (goal, _) ->
          let q = Datalog.make p goal in
          Dl_engine.holds_boolean ~strategy:Dl_engine.Vm q i
          = Dl_engine.holds_boolean ~strategy:Dl_engine.Naive q i)
        Test_datalog.dg_idbs)

let prop_vm_holds_differential =
  QCheck.Test.make ~name:"vm holds = naive membership" ~count:120
    Test_datalog.dg_pair_arb (fun (p, i) ->
      let consts = [ c "e0"; c "e1"; c "e2"; c "e3" ] in
      List.for_all
        (fun (goal, arity) ->
          let q = Datalog.make p goal in
          let tuples =
            if arity = 1 then List.map (fun x -> [| x |]) consts
            else
              List.concat_map
                (fun x -> List.map (fun y -> [| x; y |]) consts)
                consts
          in
          List.for_all
            (fun tup ->
              Dl_engine.holds ~strategy:Dl_engine.Vm q i tup
              = Dl_engine.holds ~strategy:Dl_engine.Naive q i tup)
            tuples)
        Test_datalog.dg_idbs)

(* both pool matchers against the naive oracle: bytecode is the default
   (workers run Dl_vm programs over their units), slots is the
   interpreted fallback kept selectable via MONDET_PAR_MATCHER *)
let prop_parallel_matcher m name =
  QCheck.Test.make ~name ~count:120 Test_datalog.dg_pair_arb (fun (p, i) ->
      Dl_parallel.set_domains 3;
      Dl_parallel.set_matcher m;
      Fun.protect
        ~finally:(fun () ->
          Dl_parallel.set_matcher Dl_parallel.Bytecode;
          Dl_parallel.set_domains 1)
        (fun () ->
          List.for_all
            (fun (goal, _) ->
              let q = Datalog.make p goal in
              norm (Dl_engine.eval ~strategy:Dl_engine.Parallel q i)
              = norm (Dl_engine.eval ~strategy:Dl_engine.Naive q i))
            Test_datalog.dg_idbs))

let prop_parallel_bytecode_differential =
  prop_parallel_matcher Dl_parallel.Bytecode "parallel bytecode matcher = naive"

let prop_parallel_slots_differential =
  prop_parallel_matcher Dl_parallel.Slots "parallel slots matcher = naive"

let suite =
  [
    Alcotest.test_case "transitive closure" `Quick test_tc_chain;
    Alcotest.test_case "rule shapes" `Quick test_rule_shapes;
    Alcotest.test_case "engine facade routing" `Quick test_engine_facade;
    Alcotest.test_case "golden disassembly" `Quick test_golden_disassembly;
    Alcotest.test_case "cancel mid-enumeration" `Quick
      test_cancel_mid_enumeration;
    Alcotest.test_case "cancel fixpoint deadline" `Quick
      test_cancel_fixpoint_deadline;
    Alcotest.test_case "concurrent compile" `Quick test_concurrent_compile;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_vm_eval_differential;
        prop_vm_boolean_differential;
        prop_vm_holds_differential;
        prop_parallel_bytecode_differential;
        prop_parallel_slots_differential;
      ]
  @ [
      Alcotest.test_case "pool shutdown" `Quick (fun () ->
          Dl_parallel.set_domains 1;
          Dl_parallel.shutdown ());
    ]
