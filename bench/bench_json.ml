(* Machine-readable benchmark trajectory.

   [micro_tests] is one Bechamel benchmark per paper table/figure;
   [scale_tests] adds scaling series (grid size, diamond chain length) and
   raw engine throughput probes (join, homomorphism search, transitive
   closure) so that engine changes show up even when the paper workloads
   are too small to move.

     dune exec bench/main.exe -- micro   # pretty table of the paper suite
     dune exec bench/main.exe -- json    # full suite -> BENCH_eval.json

   The JSON file is the benchmark record kept under version control: one
   [{name; ns_per_run}] entry per benchmark, OLS ns/run estimates. *)

(* [open Toolkit] below shadows the relational [Instance] with Bechamel's *)
module Db = Instance

open Bechamel
open Toolkit

let tc_view =
  View.datalog "VT"
    (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")

(* ------------------------------------------------------------------ *)
(* One benchmark per table / figure of the paper.                      *)

let micro_tests =
  let t1 =
    (* Table 1 workload: Prop 8 rewriting construction + one verification *)
    Test.make ~name:"table1/prop8-rewriting"
      (Staged.stage (fun () ->
           let q = Parse.cq "q() <- E(x,y), E(y,z)" in
           let rw = Md_rewrite.prop8_cq q [ tc_view ] in
           ignore
             (Cq.holds_boolean rw
                (View.image [ tc_view ] (Parse.instance "E(a,b). E(b,c).")))))
  in
  let t2 =
    (* Table 2 workload: the Theorem 5 decision on a small case *)
    Test.make ~name:"table2/thm5-decision"
      (Staged.stage (fun () ->
           ignore (Md_decide.cq_query (Parse.cq "q() <- E(x,y), E(y,z)") [ tc_view ])))
  in
  let f1 =
    Test.make ~name:"figure1/grid-test-3x3"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_solvable in
           let t = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 3 3 in
           ignore (Dl_eval.holds_boolean (Reduction.query tp) t)))
  in
  let f2 =
    Test.make ~name:"figure2/axes-image"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_solvable in
           ignore (View.image (Reduction.views tp) (Reduction.axes 3))))
  in
  let f3 =
    Test.make ~name:"figure3/diamond-game"
      (Staged.stage (fun () ->
           let v_i = View.image Diamonds.views (Diamonds.chain 2) in
           ignore (Pebble.one_k_consistent ~k:2 v_i v_i)))
  in
  let f4 =
    Test.make ~name:"figure4/rectangle-row"
      (Staged.stage
         (let v_i = View.image Diamonds.views (Diamonds.chain 2) in
          let row =
            Cq.make ~head:[]
              [
                Cq.atom "R" [ Cq.Var "y0"; Cq.Var "z0"; Cq.Var "y1"; Cq.Var "z1" ];
                Cq.atom "R" [ Cq.Var "y1"; Cq.Var "z1"; Cq.Var "y2"; Cq.Var "z2" ];
              ]
          in
          fun () -> ignore (Cq.holds_boolean row v_i)))
  in
  let e6 =
    Test.make ~name:"e6/canonical-tests"
      (Staged.stage (fun () ->
           let tp = Tiling.simple_unsolvable in
           ignore
             (Md_tests.decide_bounded ~max_depth:3 (Reduction.query tp)
                (Reduction.views tp))))
  in
  let e8 =
    Test.make ~name:"e8/tp-star-2-consistency"
      (Staged.stage
         (let g = Tiling.grid 3 3 and s = Tiling.structure Parity.tp_star in
          fun () -> ignore (Pebble.duplicator_wins ~k:2 g s)))
  in
  let e9 =
    Test.make ~name:"e9/separator-2^10"
      (Staged.stage (fun () -> ignore (Tm.steps Tm.binary_counter "0000000000")))
  in
  let e11 =
    Test.make ~name:"e11/fwd-bwd-pipeline"
      (Staged.stage
         (let q =
            Parse.query ~goal:"G"
              "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x)."
          in
          let views =
            [ View.atomic "VR" "R" 2; View.atomic "VU" "U" 1; View.atomic "VS" "S" 1 ]
          in
          fun () -> ignore (Md_rewrite.forward_backward_atomic q views)))
  in
  Test.make_grouped ~name:"mondet"
    [ t1; t2; f1; f2; f3; f4; e6; e8; e9; e11 ]

(* ------------------------------------------------------------------ *)
(* Scaling series and raw engine throughput.                           *)

let node i = Const.named (Printf.sprintf "n%d" i)

(* a chain 0 -> 1 -> ... -> n with a shortcut edge every fifth node, so
   joins have both long paths and branching *)
let chain_graph n =
  let edges = List.init n (fun i -> Fact.make "E" [ node i; node (i + 1) ]) in
  let shortcuts =
    List.filteri (fun i _ -> i mod 5 = 0) (List.init (n - 5) (fun i -> i))
    |> List.map (fun i -> Fact.make "E" [ node i; node (i + 5) ])
  in
  Db.of_list (edges @ shortcuts)

let scale_tests =
  let grid n =
    Test.make ~name:(Printf.sprintf "grid-test-%dx%d" n n)
      (Staged.stage (fun () ->
           let tp = Tiling.simple_solvable in
           let t = Reduction.grid_test tp ~tau:(fun _ _ -> "w") n n in
           ignore (Dl_eval.holds_boolean (Reduction.query tp) t)))
  in
  let diamond n =
    Test.make ~name:(Printf.sprintf "diamond-chain-%d" n)
      (Staged.stage (fun () ->
           ignore (Dl_eval.holds_boolean Diamonds.query (Diamonds.chain n))))
  in
  let join =
    (* one three-way join, no recursion: isolates planner + index lookup *)
    Test.make ~name:"raw/join-path3"
      (Staged.stage
         (let g = chain_graph 256 in
          let q =
            Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w)."
          in
          fun () -> ignore (Dl_eval.eval q g)))
  in
  let hom =
    (* homomorphism search of a 5-edge path pattern into the graph *)
    Test.make ~name:"raw/hom-path5"
      (Staged.stage
         (let g = chain_graph 256 in
          let pat =
            Cq.make ~head:[]
              (List.init 5 (fun i ->
                   Cq.atom "E"
                     [
                       Cq.Var (Printf.sprintf "v%d" i);
                       Cq.Var (Printf.sprintf "v%d" (i + 1));
                     ]))
          in
          fun () -> ignore (Cq.holds_boolean pat g)))
  in
  let tc =
    (* recursive fixpoint: transitive closure of a 64-chain, ~2k derived
       facts, exercises the semi-naive delta rounds *)
    Test.make ~name:"raw/tc-chain-64"
      (Staged.stage
         (let g = chain_graph 64 in
          let q =
            Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
          in
          fun () -> ignore (Dl_eval.eval q g)))
  in
  (* the same raw probes through the bytecode VM, paired with the rows
     above: the vm row beating its interpreted counterpart is what the
     static-plan lowering buys on these workloads *)
  let join_vm =
    Test.make ~name:"raw/join-path3-vm"
      (Staged.stage
         (let g = chain_graph 256 in
          let q =
            Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w)."
          in
          fun () -> ignore (Dl_vm.eval q g)))
  in
  let tc_vm =
    Test.make ~name:"raw/tc-chain-64-vm"
      (Staged.stage
         (let g = chain_graph 64 in
          let q =
            Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
          in
          fun () -> ignore (Dl_vm.eval q g)))
  in
  Test.make_grouped ~name:"scale"
    (List.map grid [ 3; 4; 5; 6; 7; 8 ]
    @ List.map diamond [ 2; 3; 4; 5; 6 ]
    @ [ join; hom; tc; join_vm; tc_vm ])

(* ------------------------------------------------------------------ *)
(* Engine ablation probes: the same workload under the indexed, the
   magic-sets, and the bytecode-VM strategy, so the trajectory records
   what goal-directed evaluation and static-plan lowering each buy (or
   cost) on the paper pipelines.                                       *)

let engine_tests =
  let strategies =
    [
      ("indexed", Dl_engine.Indexed);
      ("magic", Dl_engine.Magic);
      ("vm", Dl_engine.Vm);
    ]
  in
  let per_strategy name mk =
    List.map
      (fun (sname, s) ->
        Test.make ~name:(name ^ "-" ^ sname) (Staged.stage (mk s)))
      strategies
  in
  let e6 =
    (* the Theorem 6 canonical-test search: every test is a Boolean
       holds_boolean, the magic engine's best case *)
    let tp = Tiling.simple_unsolvable in
    let q = Reduction.query tp and views = Reduction.views tp in
    per_strategy "e6-decide" (fun s () ->
        ignore (Md_tests.decide_bounded ~max_depth:3 ~engine:s q views))
  in
  let grid =
    let tp = Tiling.simple_solvable in
    let q = Reduction.query tp in
    let t = Reduction.grid_test tp ~tau:(fun _ _ -> "w") 3 3 in
    per_strategy "grid3x3" (fun s () ->
        ignore (Dl_engine.holds_boolean ~strategy:s q t))
  in
  let diamond =
    let i = Diamonds.chain 5 in
    per_strategy "diamond5" (fun s () ->
        ignore (Dl_engine.holds_boolean ~strategy:s Diamonds.query i))
  in
  let tc_point =
    (* point query on a 256-node graph: demand from the bound goal tuple
       keeps the magic fixpoint to a suffix of the chain, where the
       undirected engines compute the full closure *)
    let g = chain_graph 256 in
    let q = Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)." in
    per_strategy "tc256-point" (fun s () ->
        ignore (Dl_engine.holds ~strategy:s q g [| node 250; node 255 |]))
  in
  let thm9 =
    (* the Theorem 9 query on a full run encoding: separator work is
       query evaluation over the run string *)
    let m = Tm.binary_counter_parity in
    let q = Th9.query m in
    let i = Encode.encode_run m "000" in
    per_strategy "thm9-separator" (fun s () ->
        ignore (Dl_engine.holds_boolean ~strategy:s q i))
  in
  let chase_replay =
    (* Any + All on the same image: the second traversal must hit the
       memoized chase prefix in Md_separator *)
    Test.make ~name:"chase-replay"
      (Staged.stage
         (let views = Diamonds.views in
          let j = View.image views (Diamonds.chain 2) in
          fun () ->
            ignore
              (Md_separator.chase_separator ~mode:Md_separator.Any
                 ~max_chases:32 Diamonds.query views j);
            ignore
              (Md_separator.chase_separator ~mode:Md_separator.All
                 ~max_chases:32 Diamonds.query views j)))
  in
  Test.make_grouped ~name:"engine"
    (e6 @ grid @ diamond @ tc_point @ thm9 @ [ chase_replay ])

(* ------------------------------------------------------------------ *)
(* Decision-service probes: the request path through Svc_service with a
   cold cache (service construction + load + one full evaluation per
   run) vs a warm cache (the steady state: line parse + canonical-form
   digest + LRU hit), plus a mixed batch through the sequential
   dispatcher.  All single-threaded — the pool-dispatch path is
   exercised by the test suite, not timed here.                        *)

let service_tests =
  let load_prog =
    "l1 load s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
  in
  let load_inst =
    "l2 load s instance i : "
    ^ String.concat " "
        (List.init 31 (fun i -> Printf.sprintf "E(n%d,n%d)." i (i + 1)))
  in
  let feed svc line = ignore (Svc_service.handle_line svc line) in
  let cold =
    Test.make ~name:"eval-cold"
      (Staged.stage (fun () ->
           let svc = Svc_service.create ~parallel:false () in
           feed svc load_prog;
           feed svc load_inst;
           feed svc "q1 eval s tc i"))
  in
  let warm =
    Test.make ~name:"eval-warm"
      (Staged.stage
         (let svc = Svc_service.create ~parallel:false () in
          feed svc load_prog;
          feed svc load_inst;
          feed svc "q1 eval s tc i";
          fun () -> feed svc "q1 eval s tc i"))
  in
  let batch =
    (* a warm 8-request mixed batch through handle_lines: per-request
       dispatch overhead with every answer cached *)
    Test.make ~name:"batch8-warm"
      (Staged.stage
         (let svc = Svc_service.create ~parallel:false () in
          feed svc load_prog;
          feed svc load_inst;
          let lines =
            List.init 8 (fun k ->
                if k mod 2 = 0 then Printf.sprintf "q%d eval s tc i" k
                else Printf.sprintf "q%d holds s tc i (n0,n%d)" k (k * 3))
          in
          ignore (Svc_service.handle_lines svc lines);
          fun () -> ignore (Svc_service.handle_lines svc lines)))
  in
  let key_digest n =
    (* cache-key construction alone, at two instance sizes: fingerprint
       keys are O(1) in the instance, so the two rows must coincide
       (the legacy printed keys scaled linearly here) *)
    Test.make ~name:(Printf.sprintf "key-digest-%d" n)
      (Staged.stage
         (let q =
            Parse.query ~goal:"T"
              "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
          in
          let i =
            Db.of_list
              (List.init n (fun k -> Fact.make "E" [ node k; node (k + 1) ]))
          in
          fun () ->
            ignore
              (String.concat ":"
                 [ "eval"; Datalog.fingerprint_hex q; Db.fingerprint_hex i ])))
  in
  Test.make_grouped ~name:"service"
    [ cold; warm; batch; key_digest 32; key_digest 2048 ]

(* ------------------------------------------------------------------ *)
(* Incremental-maintenance probes (Dl_incr): a cold materialization
   build on the tc 128-chain vs repairing an existing one after
   single-fact and batch-32 mutations.  Every run mutates and then
   undoes, so the materialization re-enters each run in its start
   state; the reported time is the mutate+undo PAIR (two repairs).
   The headline comparison is incr/tc-128-assert-1 (two repairs)
   against incr/tc-128-cold (one full fixpoint + counting build).     *)

let incr_tests =
  let q =
    Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
  in
  let g = chain_graph 128 in
  let xnode i = Const.named (Printf.sprintf "x%d" i) in
  (* a 32-edge side chain hanging off node 0 *)
  let side =
    List.init 32 (fun i ->
        Fact.make "E" [ (if i = 0 then node 0 else xnode (i - 1)); xnode i ])
  in
  (* pendant edge off the chain's end: a light assert (~129 new paths) *)
  let pendant = [ Fact.make "E" [ node 128; xnode 0 ] ] in
  (* mid-chain edge: a real DRed workload — the shortcut edges keep the
     chain connected, so most over-deleted paths rederive *)
  let mid = [ Fact.make "E" [ node 63; node 64 ] ] in
  let cold =
    Test.make ~name:"tc-128-cold"
      (Staged.stage (fun () ->
           ignore (Dl_incr.create q.Datalog.program g)))
  in
  let pair name start ops =
    Test.make ~name
      (Staged.stage
         (let m = Dl_incr.create q.Datalog.program start in
          fun () ->
            List.iter
              (fun (add, fs) ->
                if add then Dl_incr.assert_facts m fs
                else Dl_incr.retract_facts m fs)
              ops))
  in
  Test.make_grouped ~name:"incr"
    [
      cold;
      pair "tc-128-assert-1" g [ (true, pendant); (false, pendant) ];
      pair "tc-128-retract-1" g [ (false, mid); (true, mid) ];
      pair "tc-128-assert-32" g [ (true, side); (false, side) ];
      pair "tc-128-retract-32"
        (Db.union g (Db.of_list side))
        [ (false, side); (true, side) ];
    ]

(* ------------------------------------------------------------------ *)
(* RPQ probes: all-pairs and source-anchored evaluation of the Datalog
   translation on chain/grid/scale-free graphs, the view-rewriting
   automaton construction alone (pure automata work, no evaluation),
   and certain answers through a lossless rewriting — the direct vs
   rewritten trajectory at graph scale lives in E21.                   *)

let rpq_tests =
  let star = Rpq.parse "e*" in
  let grid_q = Rpq.parse "(r|d)*" in
  let sf_q = Rpq.parse "(a|b)+" in
  let ksf_q = Rpq.parse "(k|k^)*.f" in
  let views = [ ("vk", Rpq.parse "k|k^"); ("vf", Rpq.parse "f") ] in
  let chain = Rpq_graph.chain 256 in
  let grid = Rpq_graph.grid 16 16 in
  let sf =
    Rpq_graph.scale_free ~labels:[ "a"; "b" ] ~nodes:512 ~edges:2048 ()
  in
  let kf =
    Db.union
      (Rpq_graph.scale_free ~labels:[ "k" ] ~nodes:128 ~edges:256 ())
      (Db.of_list
         (List.init 32 (fun i ->
              Fact.make "f" [ Rpq_graph.node i; Rpq_graph.node (i + 128) ])))
  in
  Test.make_grouped ~name:"rpq"
    [
      Test.make ~name:"chain-256-star"
        (Staged.stage (fun () -> ignore (Rpq_translate.eval star chain)));
      Test.make ~name:"grid-16-anchored"
        (Staged.stage (fun () ->
             ignore
               (Rpq_translate.eval_from grid_q grid (Rpq_graph.grid_node 0 0))));
      Test.make ~name:"scale-free-2k-anchored"
        (Staged.stage (fun () ->
             ignore (Rpq_translate.eval_from sf_q sf (Rpq_graph.node 0))));
      Test.make ~name:"rewrite-construct"
        (Staged.stage (fun () ->
             ignore (Rpq_views.rewrite ~views ksf_q)));
      Test.make ~name:"certain-kf-128"
        (Staged.stage
           (let rw = Rpq_views.rewrite ~views ksf_q in
            fun () -> ignore (Rpq_views.certain rw kf)));
    ]

(* ------------------------------------------------------------------ *)
(* Bytecode-VM probes on the recursive workloads the parallel block
   also times, paired with the indexed engine run in the same process:
   the engine/vm-*-vm vs engine/vm-*-indexed deltas are the headline
   numbers for the static-plan lowering (single-threaded, so they are
   comparable across container shapes, unlike the par-* rows).         *)

let vm_tests =
  let strategies = [ ("indexed", Dl_engine.Indexed); ("vm", Dl_engine.Vm) ] in
  let per_strategy name mk =
    List.map
      (fun (sname, s) ->
        Test.make
          ~name:(Printf.sprintf "vm-%s-%s" name sname)
          (Staged.stage (mk s)))
      strategies
  in
  let join =
    (* one wide round: a three-way join over 614 edges, no recursion *)
    let g = chain_graph 512 in
    let q = Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w)." in
    per_strategy "join3-512" (fun s () ->
        ignore (Dl_engine.eval ~strategy:s q g))
  in
  let tc =
    (* many narrow-to-medium semi-naive rounds over a 128-chain *)
    let g = chain_graph 128 in
    let q =
      Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
    in
    per_strategy "tc-128" (fun s () -> ignore (Dl_engine.eval ~strategy:s q g))
  in
  let sg =
    (* same-generation: wide rounds with a fat three-way join each *)
    let g = chain_graph 192 in
    let q =
      Parse.query ~goal:"S"
        "S(x,y) <- E(p,x), E(p,y). S(x,y) <- E(p,x), S(p,q), E(q,y)."
    in
    per_strategy "sg-192" (fun s () -> ignore (Dl_engine.eval ~strategy:s q g))
  in
  Test.make_grouped ~name:"engine" (join @ tc @ sg)

(* ------------------------------------------------------------------ *)
(* Parallel-engine probes: wide workloads (one fat join round, a long
   semi-naive run, a full grid-query fixpoint) under the indexed engine
   and the domain-sharded engine at several pool sizes.  The sequential
   vs parallel trajectory lives in the engine/par-* rows; note the
   committed numbers come from a single-core container (see E15 in
   EXPERIMENTS.md), where the d>1 rows measure sharding + barrier
   overhead rather than speedup.                                       *)

let par_tests =
  let variants =
    [
      ("indexed", fun () -> Dl_engine.Indexed);
      ("par-d1",
       fun () -> Dl_parallel.set_domains 1; Dl_engine.Parallel);
      ("par-d4",
       fun () -> Dl_parallel.set_domains 4; Dl_engine.Parallel);
    ]
  in
  let per_variant name mk =
    List.map
      (fun (vname, set) ->
        Test.make
          ~name:(Printf.sprintf "par-%s-%s" name vname)
          (Staged.stage (fun () -> mk (set ()))))
      variants
  in
  let join =
    (* one wide round: a three-way join over 614 edges, no recursion —
       the whole firing set is chunked and the barrier is paid once *)
    let g = chain_graph 512 in
    let q = Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w)." in
    per_variant "join3-512" (fun s -> ignore (Dl_engine.eval ~strategy:s q g))
  in
  let tc =
    (* many narrow-to-medium rounds: transitive closure of a 128-chain,
       ~8k derived facts, the barrier is paid every round *)
    let g = chain_graph 128 in
    let q =
      Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
    in
    per_variant "tc-128" (fun s -> ignore (Dl_engine.eval ~strategy:s q g))
  in
  let sg =
    (* same-generation: wide rounds with a fat three-way join each — the
       per-round work dwarfs the barrier, the parallel engine's best
       recursive case *)
    let g = chain_graph 192 in
    let q =
      Parse.query ~goal:"S"
        "S(x,y) <- E(p,x), E(p,y). S(x,y) <- E(p,x), S(p,q), E(q,y)."
    in
    per_variant "sg-192" (fun s -> ignore (Dl_engine.eval ~strategy:s q g))
  in
  Test.make_grouped ~name:"engine" (join @ tc @ sg)

(* ------------------------------------------------------------------ *)
(* Running and reporting.                                              *)

let run tests =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> (name, t) :: acc
      | _ -> acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pretty t =
  if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
  else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t > 1e3 then Printf.sprintf "%.2f µs" (t /. 1e3)
  else Printf.sprintf "%.0f ns" t

let print_rows rows =
  Format.printf "  %-34s %16s@." "benchmark" "time/run";
  List.iter
    (fun (name, t) -> Format.printf "  %-34s %16s@." name (pretty t))
    rows

let micro () =
  Format.printf "@.### Bechamel micro-benchmarks (one per table/figure) ###@.";
  print_rows (run micro_tests)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json ?(path = "BENCH_eval.json") () =
  Format.printf "@.### Bechamel benchmarks -> %s ###@." path;
  (* explicit sequencing: the parallel block must run LAST — once its
     pool has spawned, every remaining single-threaded benchmark would
     pay multi-domain GC synchronization (OCaml evaluates [@] operands
     right-to-left, so a bare [a @ run par_tests] runs the pool first) *)
  let base_rows = run micro_tests in
  let scale_rows = run scale_tests in
  let engine_rows = run engine_tests in
  let service_rows = run service_tests in
  let incr_rows = run incr_tests in
  let rpq_rows = run rpq_tests in
  let vm_rows = run vm_tests in
  let par_rows = run par_tests in
  Dl_parallel.set_domains 1;
  Dl_parallel.shutdown ();
  let rows =
    base_rows @ scale_rows @ engine_rows @ service_rows @ incr_rows
    @ rpq_rows @ vm_rows @ par_rows
  in
  print_rows rows;
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"mondet-bench/1\",\n";
  output_string oc "  \"unit\": \"ns_per_run\",\n";
  output_string oc "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, t) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %.2f}%s\n"
        (json_escape name) t
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote %s (%d benchmarks).@." path (List.length rows)
