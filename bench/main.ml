(* The experiment harness: regenerates every table and figure of the
   paper (printed reports, one section per artifact) and then runs a
   Bechamel micro-benchmark per table/figure on a representative
   workload.

     dune exec bench/main.exe            # reports + micro-benchmarks
     dune exec bench/main.exe -- report  # reports only
     dune exec bench/main.exe -- micro   # micro-benchmarks only
     dune exec bench/main.exe -- json    # full suite -> BENCH_eval.json

   The benchmark definitions and the JSON emitter live in {!Bench_json}. *)

let report () =
  Format.printf "==============================================================@.";
  Format.printf " mondet experiment report — every table & figure of the paper@.";
  Format.printf "==============================================================@.";
  Tables.table1 ();
  Tables.table2 ();
  Figures.figure1 ();
  Figures.figure2 ();
  Figures.figure3 ();
  Figures.figure4 ();
  Experiments.e5 ();
  Experiments.e6 ();
  Experiments.e7 ();
  Experiments.e8 ();
  Experiments.e9 ();
  Experiments.e10 ();
  Experiments.e11 ();
  Experiments.e12 ();
  Experiments.e13 ();
  Experiments.e14 ();
  Experiments.e15 ();
  Experiments.e16 ();
  Experiments.e19 ();
  Experiments.e20 ();
  Experiments.e21 ();
  Format.printf "@.report complete.@."

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "report" -> report ()
  | "micro" -> Bench_json.micro ()
  | "json" ->
      let path = if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None in
      Bench_json.json ?path ()
  | _ ->
      report ();
      Bench_json.micro ());
  Format.printf "@.done.@."
