(* Per-theorem experiments E5–E11 (see DESIGN.md §3). *)

let pf = Format.printf

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* E5 — Theorem 5: exact decisions for CQ/UCQ queries over Datalog views *)
let e5 () =
  pf "@.### E5 — Theorem 5: CQ/UCQ queries over Datalog views (exact) ###@.";
  let tc_view =
    View.datalog "VT"
      (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")
  in
  let even_view =
    (* pairs at even distance *)
    View.datalog "VEven"
      (Parse.query ~goal:"Ev"
         "Ev(x,y) <- E(x,z), E(z,y). Ev(x,y) <- E(x,z), E(z,w), Ev(w,y).")
  in
  let cases =
    [
      ("∃ edge / {TC}", Parse.cq "q() <- E(x,y)", [ tc_view ]);
      ("∃ 2-path / {TC}", Parse.cq "q() <- E(x,y), E(y,z)", [ tc_view ]);
      ("∃ loop / {TC}", Parse.cq "q() <- E(x,x)", [ tc_view ]);
      ("∃ 2-cycle / {TC}", Parse.cq "q() <- E(x,y), E(y,x)", [ tc_view ]);
      ("∃ 2-path / {Even}", Parse.cq "q() <- E(x,y), E(y,z)", [ even_view ]);
      ("∃ edge / {Even}", Parse.cq "q() <- E(x,y)", [ even_view ]);
    ]
  in
  pf "  %-22s %-12s %s@." "case" "determined" "time";
  List.iter
    (fun (name, q, views) ->
      let r, t = time (fun () -> Md_decide.cq_query q views) in
      pf "  %-22s %-12b %.3fs@." name r t)
    cases

(* E6 — Theorem 6 / Prop. 10: failing canonical tests ↔ tiling solutions *)
let e6 () =
  pf "@.### E6 — Theorem 6: the tiling reduction (Prop 10) ###@.";
  let run name tp =
    let q = Reduction.query tp and v = Reduction.views tp in
    let verdict, t =
      time (fun () ->
          Md_tests.decide_bounded ~max_depth:4 ~max_choices_per_fact:6
            ~max_tests_per_approx:4096 q v)
    in
    (match verdict with
    | Md_tests.Not_determined test ->
        pf "  %-12s failing canonical test found (chased %d facts) %.2fs@."
          name
          (Instance.size test.Md_tests.chased)
          t;
        pf "               (⇒ NOT monotonically determined ⇔ TP solvable)@."
    | Md_tests.No_failure_up_to n ->
        pf "  %-12s no failing test among %d (%.2fs)@." name n t);
    pf "               TP has a ≤3×3 solution: %b@."
      (Tiling.has_solution ~max:3 tp <> None)
  in
  run "solvable" Tiling.simple_solvable;
  run "unsolvable" Tiling.simple_unsolvable

(* E7 — Theorem 7: Datalog-rewritable, not MDL-rewritable *)
let e7 () =
  pf "@.### E7 — Theorem 7: diamonds (Datalog yes, MDL no) ###@.";
  let rw, t = time (fun () -> Md_rewrite.inverse_rules Diamonds.query Diamonds.views) in
  let insts =
    Diamonds.chain 0 :: Diamonds.chain 2
    :: Md_rewrite.random_instances ~n:30 ~size:12 ~seed:77 Diamonds.schema
  in
  let ok = Md_rewrite.verify_boolean Diamonds.query rw Diamonds.views insts in
  pf "  Datalog rewriting: %d rules, built in %.3fs, verified on %d instances: %b@."
    (List.length rw.Datalog.program) t (List.length insts) ok;
  let k = 2 in
  let i' = Diamonds.unravelled_counterexample ~k ~depth:2 in
  let win, t =
    time (fun () ->
        Pebble.one_k_consistent ~k
          (View.image Diamonds.views (Diamonds.chain k))
          (View.image Diamonds.views i'))
  in
  pf "  MDL obstruction: Q(I)≠Q(I') across a (1,%d)-equivalent pair: %b (%.2fs)@."
    k win t

(* E8 — Theorem 8 / Lemma 6: untilable yet k-consistent grids *)
let e8 () =
  pf "@.### E8 — Theorem 8: the TP* separation ###@.";
  let tps = Parity.tp_star in
  pf "  %-8s %-10s %-16s %-12s %s@." "grid" "tilable" "t(hom)" "→2 I_TP*" "t(2-cons)";
  List.iter
    (fun (n, m) ->
      let g = Tiling.grid n m in
      let til, t1 = time (fun () -> Tiling.can_tile g tps) in
      let win, t2 =
        time (fun () -> Pebble.duplicator_wins ~k:2 g (Tiling.structure tps))
      in
      pf "  %-8s %-10b %-16.3f %-12b %.3f@."
        (Printf.sprintf "%dx%d" n m)
        til t1 win t2)
    [ (3, 3); (4, 3); (4, 4); (5, 4) ];
  pf "  shape: hom always fails, 2-consistency always passes (k < min(n,m)).@."

(* E9 — Theorem 9: separator cost tracks machine time *)
let e9 () =
  pf "@.### E9 — Theorem 9: separator cost vs view-image size ###@.";
  let m = Tm.binary_counter_parity in
  let views = Th9.views m in
  let image_of w =
    Instance.add
      (Fact.make "Vprerun" [ Const.named "ie" ])
      (View.image views (Encode.encode_input w))
  in
  pf "  %-6s %-12s %-12s %-10s %s@." "|w|" "image facts" "TM steps" "accept" "separator time";
  List.iter
    (fun n ->
      let w = String.make n '0' in
      let img = image_of w in
      let verdict, t = time (fun () -> Th9.simulating_separator m img) in
      pf "  %-6d %-12d %-12d %-10b %.4fs@." n (Instance.size img)
        (Tm.steps m w) verdict t)
    [ 2; 4; 6; 8; 10; 12; 14; 16 ];
  (* determinacy identity on full encodings *)
  let q = Th9.query m in
  let ok =
    List.for_all
      (fun w ->
        let i = Encode.encode_run m w in
        Dl_eval.holds_boolean q i
        = Th9.simulating_separator m (View.image views i))
      [ "0"; "00"; "000" ]
  in
  pf "  Q(I) = separator(V(I)) on full run encodings: %b@." ok

(* E10 — Lemma 3: view images of bounded-treewidth instances *)
let e10 () =
  pf "@.### E10 — Lemma 3: treewidth of view images ###@.";
  let views =
    [
      View.cq "P2" (Parse.cq "v(x,y) <- E(x,z), E(z,y)");
      View.cq "P3" (Parse.cq "v(x,y) <- E(x,a), E(a,b), E(b,y)");
    ]
  in
  let r = Option.get (View.max_radius views) in
  let path n =
    Instance.of_list
      (List.init n (fun i ->
           Fact.make "E"
             [
               Const.named (Printf.sprintf "v%d" i);
               Const.named (Printf.sprintf "v%d" (i + 1));
             ]))
  in
  let cycle n =
    Instance.union (path (n - 1))
      (Instance.of_list
         [ Fact.make "E" [ Const.named (Printf.sprintf "v%d" (n - 1)); Const.named "v0" ] ])
  in
  pf "  view radius r = %d@." r;
  pf "  %-14s %-8s %-14s %-14s %s@." "instance" "k(TD)" "width(ext)" "Lemma3 bound" "valid for V(I)";
  List.iter
    (fun (name, i) ->
      let td = Decomp.heuristic i in
      let k = Decomp.width td in
      let ext = Decomp.extend td r in
      let img = View.image views i in
      let bound =
        float_of_int k
        *. (((float_of_int k ** float_of_int (r + 1)) -. 1.) /. float_of_int (k - 1))
      in
      pf "  %-14s %-8d %-14d %-14.0f %b@." name k (Decomp.width ext) bound
        (Decomp.is_valid ext (Instance.union i img)))
    [
      ("path-8", path 8);
      ("path-16", path 16);
      ("cycle-8", cycle 8);
      ("cycle-12", cycle 12);
    ]

(* E11 — forward/backward round trip *)
let e11 () =
  pf "@.### E11 — §3 pipeline: forward ∘ backward round trip ###@.";
  let cases =
    [
      ( "conn",
        Parse.query ~goal:"G"
          "P(x) <- U(x). P(x) <- R(x,y), P(y). G <- P(x), S(x).",
        Schema.of_list [ ("R", 2); ("U", 1); ("S", 1) ] );
      ( "two-chain",
        Parse.query ~goal:"G"
          "A(x) <- U(x). A(x) <- R(x,y), A(y). B(x) <- W(x). B(x) <- R(x,y), B(y). G <- A(x), B(x).",
        Schema.of_list [ ("R", 2); ("U", 1); ("W", 1) ] );
    ]
  in
  List.iter
    (fun (name, q, schema) ->
      let views =
        List.map (fun (r, n) -> View.atomic ("V" ^ r) r n) (Schema.relations schema)
      in
      let rw, t = time (fun () -> Md_rewrite.forward_backward_atomic q views) in
      let insts = Md_rewrite.random_instances ~n:40 ~size:10 ~seed:101 schema in
      let ok = Md_rewrite.verify_boolean q rw views insts in
      pf "  %-10s %d rules in %.3fs, verified on %d instances: %b@." name
        (List.length rw.Datalog.program)
        t (List.length insts) ok)
    cases

(* E12 — the appendix's stratified rewriting of Q_TP *)
let e12 () =
  pf "@.### E12 — stratified rewriting of Q_TP (appendix) ###@.";
  let run name tp =
    let q = Reduction.query tp and views = Reduction.views tp in
    let r = Reduction.stratified_rewriting tp in
    let insts =
      Reduction.axes 1 :: Reduction.axes 3
      :: Reduction.grid_test tp ~tau:(fun _ _ -> List.hd tp.Tiling.tiles) 2 2
      :: Md_rewrite.random_instances ~n:60 ~size:14 ~seed:123
           (Reduction.schema_sigma tp)
    in
    let agree =
      List.for_all
        (fun i -> Dl_eval.holds_boolean q i = r (View.image views i))
        insts
    in
    pf "  %-12s R = VhC ∨ VhD ∨ Q*verify ∨ (Q*start ∧ ProductTest) on %d instances: %b@."
      name (List.length insts) agree
  in
  run "unsolvable" Tiling.simple_unsolvable;
  run "TP*" Parity.tp_star;
  pf "  (so the Theorem 8 example, though not Datalog-rewritable, is@.";
  pf "   rewritable in stratified Datalog — the paper's closing remark)@."

(* E13 — ablations of the decision-procedure design choices *)
let e13 () =
  pf "@.### E13 — ablations: Theorem 5 pipeline design choices ###@.";
  let tc_view =
    View.datalog "VT"
      (Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).")
  in
  let path n =
    Cq.make ~head:[]
      (List.init n (fun i ->
           Cq.atom "E"
             [ Cq.Var (Printf.sprintf "x%d" i); Cq.Var (Printf.sprintf "x%d" (i + 1)) ]))
  in
  let decide ~binarize ~prune n =
    let q = path n in
    let q'' = Md_decide.compose_with_views (Datalog.of_cq ~goal:"G0" q) [ tc_view ] in
    let nta, _ = Forward.approximations_nta ~binarize q'' in
    Run.check_empty nta (Cq_dta.make ~negate:true ~prune q)
  in
  pf "  %-28s %-10s %-10s %s@." "configuration" "3-path" "4-path" "5-path";
  List.iter
    (fun (name, binarize, prune, sizes) ->
      let cell n =
        if List.mem n sizes then begin
          let r, t = time (fun () -> decide ~binarize ~prune n) in
          assert r;
          Printf.sprintf "%.3fs" t
        end
        else "(skipped)"
      in
      pf "  %-28s %-10s %-10s %s@." name (cell 3) (cell 4) (cell 5))
    [
      ("full pipeline", true, true, [ 3; 4; 5 ]);
      ("no domination pruning", true, false, [ 3; 4 ]);
      ("no rule binarization", false, true, [ 3 ]);
      ("neither", false, false, [ 3 ]);
    ];
  pf "  (binarization bounds transition arity — without it the Goal rule@.";
  pf "   for an n-path has n(n+1)/2 children and the product explodes)@."

(* E14 — ablation: magic-sets demand transformation on/off *)
let e14 () =
  pf "@.### E14 — ablation: magic-sets on the Thm 6 and Thm 9 pipelines ###@.";
  let strategies = [ ("indexed", Dl_engine.Indexed); ("magic", Dl_engine.Magic) ] in
  (* Theorem 6 pipeline: bounded canonical-test search — every test is one
     Boolean evaluation of the reduction query on a chased instance *)
  let tp = Tiling.simple_unsolvable in
  let q6 = Reduction.query tp and v6 = Reduction.views tp in
  pf "  %-26s %-10s %-12s %s@." "pipeline" "engine" "verdict" "time";
  let verdicts6 =
    List.map
      (fun (name, s) ->
        let r, t =
          time (fun () -> Md_tests.decide_bounded ~max_depth:3 ~engine:s q6 v6)
        in
        pf "  %-26s %-10s %-12s %.3fs@." "thm6 canonical tests" name
          (match r with
          | Md_tests.Not_determined _ -> "not-det"
          | Md_tests.No_failure_up_to n -> Printf.sprintf "ok@%d" n)
          t;
        r)
      strategies
  in
  (* Theorem 9 pipeline: the run-encoding query — acceptance is a single
     goal fact at the end of the run string, the demand-driven case *)
  let m = Tm.binary_counter_parity in
  let q9 = Th9.query m in
  let verdicts9 =
    List.map
      (fun (name, s) ->
        let r, t =
          time (fun () ->
              List.map
                (fun w ->
                  Dl_engine.holds_boolean ~strategy:s q9 (Encode.encode_run m w))
                [ "0"; "00"; "000" ])
        in
        pf "  %-26s %-10s %-12s %.3fs@." "thm9 run-encoding query" name
          (String.concat ""
             (List.map (fun b -> if b then "t" else "f") r))
          t;
        r)
      strategies
  in
  let agree l = List.for_all (fun x -> x = List.hd l) l in
  pf "  verdicts agree across engines: %b@." (agree verdicts6 && agree verdicts9)

(* E15 — ablation: the domain-sharded parallel fixpoint.

   Methodology: two full-fixpoint workloads whose rounds are wide enough
   to shard — same-generation on a 256-node graph (each round a fat
   three-way join) and a three-way join over a 614-edge graph (one fat
   round, the barrier paid exactly once) — each evaluated under the
   indexed engine and under the parallel engine across a sweep of domain
   counts.  The barrier cost is measured separately by timing a
   two-round fixpoint whose rounds derive almost nothing (a single-edge
   transitive closure): the parallel-vs-indexed difference divided by the
   round count is the per-round dispatch + merge overhead.  Answers are
   asserted equal across all engines and domain counts. *)
let e15 () =
  pf "@.### E15 — ablation: parallel fixpoint across domain counts ###@.";
  let node i = Const.named (Printf.sprintf "n%d" i) in
  let graph n =
    Instance.of_list
      (List.init n (fun i -> Fact.make "E" [ node i; node (i + 1) ])
      @ (List.init (max 0 (n - 5)) (fun i -> i)
        |> List.filter (fun i -> i mod 5 = 0)
        |> List.map (fun i -> Fact.make "E" [ node i; node (i + 5) ])))
  in
  let workloads =
    [
      ("same-gen on 256 nodes",
       let q =
         Parse.query ~goal:"S"
           "S(x,y) <- E(p,x), E(p,y). S(x,y) <- E(p,x), S(p,q), E(q,y)."
       in
       let g = graph 256 in
       fun s -> List.length (Dl_engine.eval ~strategy:s q g));
      ("join3 over 614 edges",
       let q = Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w)." in
       let g = graph 512 in
       fun s -> List.length (Dl_engine.eval ~strategy:s q g));
    ]
  in
  let sweep = [ 1; 2; 4; 8 ] in
  pf "  %-24s %-12s %-10s %s@." "workload" "engine" "answers" "time";
  List.iter
    (fun (name, evalw) ->
      (* sequential baselines must run with no pool alive: idle domains
         still join every minor-GC stop-the-world *)
      Dl_parallel.shutdown ();
      let expected, t0 = time (fun () -> evalw Dl_engine.Indexed) in
      pf "  %-24s %-12s %-10d %.3fs@." name "indexed" expected t0;
      List.iter
        (fun d ->
          Dl_parallel.set_domains d;
          let got, t = time (fun () -> evalw Dl_engine.Parallel) in
          assert (got = expected);
          pf "  %-24s %-12s %-10d %.3fs@." name
            (Printf.sprintf "par-d%d" d) got t)
        sweep)
    workloads;
  (* barrier cost: a fixpoint with two near-empty rounds, repeated *)
  let tiny_q =
    Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
  in
  let tiny = Instance.of_list [ Fact.make "E" [ node 0; node 1 ] ] in
  let reps = 2000 in
  let time_reps s =
    snd
      (time (fun () ->
           for _ = 1 to reps do
             ignore (Dl_engine.eval ~strategy:s tiny_q tiny)
           done))
  in
  Dl_parallel.shutdown ();
  let seq_t = time_reps Dl_engine.Indexed in
  Dl_parallel.set_domains 4;
  let par_t = time_reps Dl_engine.Parallel in
  Dl_parallel.set_domains 1;
  Dl_parallel.shutdown ();
  pf "  barrier overhead (d=4): %.1f µs/round (two-round tiny fixpoint:@."
    ((par_t -. seq_t) /. float_of_int (2 * reps) *. 1e6);
  pf "   indexed %.2f µs/eval, parallel %.2f µs/eval)@."
    (seq_t /. float_of_int reps *. 1e6)
    (par_t /. float_of_int reps *. 1e6);
  pf "  (committed numbers are from a single-core container — the sweep@.";
  pf "   there measures sharding overhead; on k cores the wide rounds@.";
  pf "   scale with min(k, units per round), see EXPERIMENTS.md E15)@."

(* E16 — the decision service's result cache on a repeated workload.

   Methodology: a service session loads one recursive program and a set
   of instances, then the same mixed eval/holds/mondet-test request
   stream is replayed through Svc_service.handle_line.  The first pass
   is all cache misses (every request pays a full evaluation); every
   later pass is all hits (a request pays parse + canonical-form digest
   + LRU lookup).  Reported: per-pass wall time, hit/miss counters from
   the server's own stats verb, and the cold/warm speedup.  Caveats as
   in E15: single-core container numbers; the warm path's cost is
   dominated by re-printing the canonical forms for the digest, so it
   grows with instance size even on hits. *)
let e16 () =
  pf "@.### E16 — service result cache: cold vs warm replay ###@.";
  let svc = Svc_service.create ~parallel:false () in
  let feed line =
    match (Svc_service.handle_line svc line).Svc_proto.result with
    | Svc_proto.Ok_ b -> b
    | Svc_proto.Error_ m -> failwith ("e16 setup: " ^ m)
    | Svc_proto.Timeout -> failwith "e16 setup: unexpected timeout"
    | Svc_proto.Busy -> failwith "e16 setup: unexpected busy"
  in
  ignore
    (feed
       "l1 load s program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
        T(z,y).");
  ignore
    (feed
       "l2 load s program reach goal Goal : Goal() <- T(x,y). T(x,y) <- \
        E(x,y). T(x,y) <- E(x,z), T(z,y).");
  ignore (feed "l3 load s views v : V(x,y) <- E(x,y).");
  let sizes = [ 16; 32; 64 ] in
  List.iter
    (fun n ->
      let edges =
        String.concat " "
          (List.init (n - 1) (fun i -> Printf.sprintf "E(n%d,n%d)." i (i + 1)))
      in
      ignore (feed (Printf.sprintf "l-i%d load s instance i%d : %s" n n edges)))
    sizes;
  let stream =
    List.concat_map
      (fun n ->
        [
          Printf.sprintf "q-e%d eval s tc i%d" n n;
          Printf.sprintf "q-h%d holds s tc i%d (n0,n%d)" n n (n - 1);
          Printf.sprintf "q-b%d eval s reach i%d" n n;
        ])
      sizes
    @ [ "q-md mondet-test s reach v" ]
  in
  let replay () = List.iter (fun l -> ignore (feed l)) stream in
  let passes = 5 in
  let times =
    List.init passes (fun _ -> snd (time replay))
  in
  let cold = List.hd times in
  let warm =
    List.fold_left ( +. ) 0. (List.tl times) /. float_of_int (passes - 1)
  in
  List.iteri
    (fun i t ->
      pf "  pass %d (%s): %.4fs (%d requests)@." (i + 1)
        (if i = 0 then "cold" else "warm")
        t (List.length stream))
    times;
  pf "  %s@." (feed "q-stats stats");
  pf "  cold/warm speedup: %.1fx@." (cold /. warm);
  pf "  (warm requests pay parse + canonical-form digest + LRU lookup;@.";
  pf "   single-core container numbers, caveats as in E15)@."

(* E17 and E18 are measured by dedicated harnesses (the cache-key
   differential suite and [mondet bench-serve] respectively); see
   EXPERIMENTS.md.  The next in-process experiment is E19. *)

(* E19 — ablation: the register-bytecode VM vs the interpreted matcher.

   Methodology: the three recursive/join workloads also timed by the
   engine/vm-* bench rows — a non-recursive three-way join over 614
   edges, transitive closure of a 128-chain (~8k derived facts, many
   narrow delta rounds), and same-generation on a 192-node graph (wide
   rounds, each a fat three-way join) — evaluated under the indexed
   engine (interpreted slot matcher, per-round index selection) and
   under the VM (static plans lowered once to flat bytecode).  Answers
   are asserted identical as sorted tuple sets, not just counts.  The
   one-time lowering cost is reported separately: bytecode size and a
   cold [Dl_vm.compile] timing per program (warm compiles are
   fingerprint-cache hits). *)
let e19 () =
  pf "@.### E19 — ablation: bytecode VM vs interpreted slot matcher ###@.";
  let node i = Const.named (Printf.sprintf "n%d" i) in
  let graph n =
    Instance.of_list
      (List.init n (fun i -> Fact.make "E" [ node i; node (i + 1) ])
      @ (List.init (max 0 (n - 5)) (fun i -> i)
        |> List.filter (fun i -> i mod 5 = 0)
        |> List.map (fun i -> Fact.make "E" [ node i; node (i + 5) ])))
  in
  let workloads =
    [
      ("join3 over 614 edges",
       Parse.query ~goal:"Q" "Q(x,w) <- E(x,y), E(y,z), E(z,w).",
       graph 512);
      ("tc of a 128-chain",
       Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y).",
       graph 128);
      ("same-gen on 192 nodes",
       Parse.query ~goal:"S"
         "S(x,y) <- E(p,x), E(p,y). S(x,y) <- E(p,x), S(p,q), E(q,y).",
       graph 192);
    ]
  in
  let norm ts = List.sort compare (List.map Array.to_list ts) in
  (* one-time lowering cost, per program: bytecode volume and the cold
     compile time — measured before any evaluation, since the
     fingerprint cache makes every later compile a mutex-guarded assoc
     hit *)
  List.iter
    (fun (name, q, _) ->
      let rps, t = time (fun () -> Dl_vm.compile q.Datalog.program) in
      let words =
        List.fold_left
          (fun acc rp ->
            Array.fold_left
              (fun acc (p : Dl_vm.program) -> acc + Array.length p.code)
              (acc + Array.length rp.Dl_vm.naive.code)
              rp.Dl_vm.semi)
          0 rps
      in
      pf "  lowering %-24s %d rule(s), %d bytecode words, %.4fs@." name
        (List.length rps) words t)
    workloads;
  pf "  %-24s %-10s %-10s %s@." "workload" "engine" "answers" "time";
  List.iter
    (fun (name, q, g) ->
      let a0, t0 =
        time (fun () -> Dl_engine.eval ~strategy:Dl_engine.Indexed q g)
      in
      pf "  %-24s %-10s %-10d %.3fs@." name "indexed" (List.length a0) t0;
      let a1, t1 =
        time (fun () -> Dl_engine.eval ~strategy:Dl_engine.Vm q g)
      in
      pf "  %-24s %-10s %-10d %.3fs  (%.2fx)@." name "vm" (List.length a1) t1
        (t0 /. t1);
      assert (norm a0 = norm a1))
    workloads;
  pf "  (vm and indexed share plan selection; the vm rows replace the@.";
  pf "   per-tuple environment interpretation with a register dispatch@.";
  pf "   loop — single-core container numbers, caveats as in E15)@."

(* E20 — incremental maintenance vs cold re-evaluation.

   Methodology: three transitive-closure workloads with different
   rederivation profiles — a 128-chain with shortcut edges (as in the
   engine rows), a 12x12 grid (right/down edges: wide fixpoint, every
   internal cut genuinely loses paths), and a 32-diamond chain (every
   deleted arm rederives through the other arm, DRed's best case).
   For each: a cold materialization build ([Dl_incr.create], the price
   a cache-missed eval pays), then averaged single-fact and batch-32
   mutations in both directions — asserting fresh edges / retracting
   them again, and retracting an existing internal edge / re-asserting
   it.  After all mutations the maintained fixpoint is asserted equal
   to a cold [Dl_eval.fixpoint] of the final base (the same oracle the
   qcheck differential suite uses).  Reported speedups are cold-build
   time over per-mutation repair time. *)
let e20 () =
  pf "@.### E20 — incremental maintenance vs cold re-evaluation ###@.";
  let tc =
    Parse.query ~goal:"T" "T(x,y) <- E(x,y). T(x,y) <- E(x,z), T(z,y)."
  in
  let e a b = Fact.make "E" [ a; b ] in
  let node i = Const.named (Printf.sprintf "n%d" i) in
  let xnode i = Const.named (Printf.sprintf "x%d" i) in
  let chain n =
    Instance.of_list
      (List.init n (fun i -> e (node i) (node (i + 1)))
      @ (List.init (max 0 (n - 5)) (fun i -> i)
        |> List.filter (fun i -> i mod 5 = 0)
        |> List.map (fun i -> e (node i) (node (i + 5)))))
  in
  let grid n =
    let g i j = Const.named (Printf.sprintf "g%d_%d" i j) in
    Instance.of_list
      (List.concat
         (List.init n (fun i ->
              List.concat
                (List.init n (fun j ->
                     (if i < n - 1 then [ e (g i j) (g (i + 1) j) ] else [])
                     @ if j < n - 1 then [ e (g i j) (g i (j + 1)) ] else [])))))
  in
  let diamond k =
    let a i = Const.named (Printf.sprintf "a%d" i)
    and b i = Const.named (Printf.sprintf "b%d" i) in
    Instance.of_list
      (List.concat
         (List.init k (fun i ->
              [
                e (node i) (a i); e (node i) (b i);
                e (a i) (node (i + 1)); e (b i) (node (i + 1));
              ])))
  in
  let side anchor =
    List.init 32 (fun i ->
        e (if i = 0 then anchor else xnode (i - 1)) (xnode i))
  in
  let g12 = Const.named "g11_11" and a5 = Const.named "a5" in
  let workloads =
    [
      ("tc-chain-128", chain 128,
       [ e (node 128) (xnode 0) ], side (node 128), [ e (node 63) (node 64) ]);
      ("grid-12x12", grid 12,
       [ e g12 (xnode 0) ], side g12, [ e (Const.named "g5_5") (Const.named "g6_5") ]);
      ("diamond-32", diamond 32,
       [ e (node 32) (xnode 0) ], side (node 32), [ e (node 5) a5 ]);
    ]
  in
  let reps = 5 in
  let avg_pair f g =
    let ta = ref 0. and tb = ref 0. in
    for _ = 1 to reps do
      let (), a = time f in
      ta := !ta +. a;
      let (), b = time g in
      tb := !tb +. b
    done;
    (!ta /. float_of_int reps, !tb /. float_of_int reps)
  in
  pf "  %-14s %-18s %10s %10s %s@." "workload" "mutation" "repair" "cold"
    "speedup";
  List.iter
    (fun (name, g, fresh1, fresh32, mid1) ->
      let m, tcold = time (fun () -> Dl_incr.create tc.Datalog.program g) in
      pf "  %-14s %-18s %10s %8.4fs %s@." name "(cold build)" "-" tcold "-";
      let row what ta =
        pf "  %-14s %-18s %8.5fs %8.4fs %7.1fx@." name what ta tcold
          (tcold /. ta)
      in
      let ta, tr =
        avg_pair
          (fun () -> Dl_incr.assert_facts m fresh1)
          (fun () -> Dl_incr.retract_facts m fresh1)
      in
      row "assert-1-fresh" ta;
      row "retract-1-fresh" tr;
      let td, tb =
        avg_pair
          (fun () -> Dl_incr.retract_facts m mid1)
          (fun () -> Dl_incr.assert_facts m mid1)
      in
      row "retract-1-internal" td;
      row "assert-1-internal" tb;
      let ta32, tr32 =
        avg_pair
          (fun () -> Dl_incr.assert_facts m fresh32)
          (fun () -> Dl_incr.retract_facts m fresh32)
      in
      row "assert-32" ta32;
      row "retract-32" tr32;
      assert (
        Instance.equal (Dl_incr.full m)
          (Dl_eval.fixpoint (Dl_incr.program m) (Dl_incr.base m))))
    workloads;
  pf "  (repair = one maintenance pass over an existing materialization;@.";
  pf "   cold = Dl_incr.create, a full fixpoint + derivation counting —@.";
  pf "   what a cache-missed eval pays.  Single-core container numbers,@.";
  pf "   caveats as in E15)@."

(* E21 — RPQs over views at graph scale (Francis–Segoufin–Sirangelo,
   arXiv:1511.00938): direct Datalog evaluation of an RPQ against
   certain answers through the maximal contained rewriting over RPQ
   views, with a product-BFS reachability oracle as referee.  The
   rewriting here is lossless, so all three must agree exactly. *)
let e21 () =
  pf "@.### E21 — RPQ evaluation vs view rewriting at graph scale ###@.";
  let q = Rpq.parse "(knows|knows^)*.follows" in
  let views =
    [ ("vk", Rpq.parse "knows|knows^"); ("vf", Rpq.parse "follows") ]
  in
  let rw, t_rw = time (fun () -> Rpq_views.rewrite ~views q) in
  pf "  rewriting over {vk, vf}: lossless=%b, %d rewriting states (%.4fs)@."
    rw.Rpq_views.lossless rw.Rpq_views.rauto.Rpq_nfa.n t_rw;
  (* source-anchored product-BFS oracle: frontier over (node, state) *)
  let oracle_from e g src =
    let nfa = Rpq_nfa.of_regex e in
    let succ (l : Rpq_nfa.letter) x =
      if l.back then
        List.map (fun t -> t.(0)) (Instance.tuples_with g l.rel [ (1, x) ])
      else List.map (fun t -> t.(1)) (Instance.tuples_with g l.rel [ (0, x) ])
    in
    let seen = Hashtbl.create 1024 in
    let frontier = ref [] in
    let push v st =
      if not (Hashtbl.mem seen (v, st)) then begin
        Hashtbl.add seen (v, st) ();
        frontier := (v, st) :: !frontier
      end
    in
    List.iter (fun st -> push src st) nfa.Rpq_nfa.starts;
    while !frontier <> [] do
      let batch = !frontier in
      frontier := [];
      List.iter
        (fun (v, st) ->
          List.iter
            (fun (p, l, p') ->
              if p = st then List.iter (fun v' -> push v' p') (succ l v))
            nfa.Rpq_nfa.delta)
        batch
    done;
    (* the 0-edge pair (src, start) is final exactly when ε ∈ L, which
       matches eval_from's source-inclusion convention *)
    List.sort_uniq compare
      (Hashtbl.fold
         (fun (v, st) () acc ->
           if List.mem st nfa.Rpq_nfa.finals then v :: acc else acc)
         seen [])
  in
  let g =
    Rpq_graph.scale_free ~seed:20260807 ~labels:[ "knows"; "follows" ]
      ~nodes:2048 ~edges:11000 ()
  in
  pf "  graph: scale-free, 2048 nodes, %d edges@." (Instance.size g);
  let src = Rpq_graph.node 0 in
  let d_ind, t_ind =
    time (fun () ->
        Rpq_translate.eval_from ~strategy:Dl_engine.Indexed q g src)
  in
  let d_vm, t_vm =
    time (fun () -> Rpq_translate.eval_from ~strategy:Dl_engine.Vm q g src)
  in
  let cert, t_cert = time (fun () -> Rpq_views.certain_from rw g src) in
  let orac, t_or = time (fun () -> oracle_from q g src) in
  let agree =
    List.sort compare d_ind = orac
    && List.sort compare d_vm = orac
    && List.sort compare cert = orac
  in
  pf "  anchored from n0: %d answers@." (List.length orac);
  pf "  %-28s %10s@." "path" "time";
  pf "  %-28s %9.4fs@." "direct (indexed)" t_ind;
  pf "  %-28s %9.4fs@." "direct (vm)" t_vm;
  pf "  %-28s %9.4fs@." "rewriting (image + certain)" t_cert;
  pf "  %-28s %9.4fs@." "naive product BFS" t_or;
  pf "  all four answer sets equal: %b@." agree;
  assert agree;
  (* all-pairs cross-check on a smaller graph: every node of the
     alphabet-restricted active domain is a BFS source *)
  let g2 =
    Rpq_graph.scale_free ~seed:11 ~labels:[ "knows"; "follows" ] ~nodes:256
      ~edges:1024 ()
  in
  let rels = Rpq.rels q in
  let sub = Instance.restrict (fun r -> List.mem r rels) g2 in
  let nodes = Const.Set.elements (Instance.adom sub) in
  let d2, t_d2 = time (fun () -> Rpq_translate.eval q g2) in
  let c2, t_c2 = time (fun () -> Rpq_views.certain rw g2) in
  let o2, t_o2 =
    time (fun () ->
        List.sort_uniq compare
          (List.concat_map
             (fun x -> List.map (fun y -> (x, y)) (oracle_from q g2 x))
             nodes))
  in
  let agree2 = List.sort compare d2 = o2 && List.sort compare c2 = o2 in
  pf "  all-pairs on 256 nodes / %d edges: %d answers;  direct %.4fs  \
     rewriting %.4fs  oracle %.4fs;  equal: %b@."
    (Instance.size g2) (List.length o2) t_d2 t_c2 t_o2 agree2;
  assert agree2;
  pf "  (lossless rewriting ⇒ certain answers = direct evaluation; the@.";
  pf "   oracle explores the (graph × NFA) product breadth-first)@."
