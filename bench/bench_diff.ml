(* bench_diff — compare two benchmark trajectory files.

     dune exec bench/bench_diff.exe -- BENCH_eval.json fresh.json
     dune exec bench/bench_diff.exe -- BENCH_eval.json fresh.json --threshold 40

   Both files use the mondet-bench/1 schema written by [Bench_json.json]
   (one {name; ns_per_run} object per line).  The tool prints a per-
   benchmark delta and exits nonzero when any benchmark common to both
   files regressed by more than the threshold (percent, default 25).
   Benchmarks present on only one side are reported but never fail the
   run — the trajectory is expected to grow. *)

let parse_file path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "bench_diff: %s\n" msg;
      exit 2
  in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match
         Scanf.sscanf line " {\"name\": %S, \"ns_per_run\": %f" (fun n t ->
             (n, t))
       with
       | row -> rows := row :: !rows
       | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let usage () =
  prerr_endline
    "usage: bench_diff BASELINE.json FRESH.json [--threshold PERCENT]";
  exit 2

let () =
  let baseline_path, fresh_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 25.0)
    | [ _; b; f; "--threshold"; t ] -> (
        match float_of_string_opt t with Some t -> (b, f, t) | None -> usage ())
    | _ -> usage ()
  in
  let baseline = parse_file baseline_path in
  let fresh = parse_file fresh_path in
  if baseline = [] then (
    Printf.eprintf "bench_diff: no benchmarks parsed from %s\n" baseline_path;
    exit 2);
  if fresh = [] then (
    Printf.eprintf "bench_diff: no benchmarks parsed from %s\n" fresh_path;
    exit 2);
  let regressions = ref [] in
  Printf.printf "  %-34s %14s %14s %9s\n" "benchmark" "baseline" "fresh"
    "delta";
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name fresh with
      | None -> Printf.printf "  %-34s %14.0f %14s %9s\n" name base "-" "gone"
      | Some now ->
          let pct = (now -. base) /. base *. 100.0 in
          let flag =
            if pct > threshold then (
              regressions := (name, pct) :: !regressions;
              "  << REGRESSION")
            else ""
          in
          Printf.printf "  %-34s %14.0f %14.0f %+8.1f%%%s\n" name base now pct
            flag)
    baseline;
  List.iter
    (fun (name, now) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "  %-34s %14s %14.0f %9s\n" name "-" now "new")
    fresh;
  match List.rev !regressions with
  | [] ->
      Printf.printf "\nno regression above %.0f%% (%d benchmarks compared).\n"
        threshold
        (List.length (List.filter (fun (n, _) -> List.mem_assoc n fresh) baseline))
  | rs ->
      Printf.printf "\n%d benchmark(s) regressed beyond %.0f%%:\n"
        (List.length rs) threshold;
      List.iter (fun (n, pct) -> Printf.printf "  %s: %+.1f%%\n" n pct) rs;
      exit 1
