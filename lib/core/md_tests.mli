(** Canonical tests for monotonic determinacy (paper §5, Lemma 5).

    A test is a pair [(Qi, D')]: a CQ approximation [Qi] of the query and
    an instance [D'] obtained from the view image [V(Qi)] by replacing
    every view fact with a freshly-instantiated CQ approximation of its
    view definition (the "inverse of the view definition").  [Q] is
    monotonically determined over [V] iff every test satisfies [Q].

    Tests are infinitely many for recursive queries/views; this module
    enumerates them fairly up to depth and count bounds, so a failing test
    is a {e certificate of non-determinacy} (checked by evaluation), while
    exhausting the bounds only certifies determinacy up to those bounds.
    Exact procedures for the decidable fragments live in {!Md_decide}. *)

type test = {
  approx : Cq.t;  (** the approximation [Qi] *)
  image : Instance.t;  (** [V(Canondb(Qi))] over the view schema *)
  chased : Instance.t;  (** the instance [D'] over the base schema *)
}

val chases :
  ?view_depth:int ->
  ?max_choices_per_fact:int ->
  View.collection ->
  Instance.t ->
  Instance.t Seq.t
(** All instances obtained from a view-schema instance by replacing every
    fact with a freshly-instantiated CQ approximation of its view
    definition — the "inverses of view definitions" chase of §5.  The
    sequence is empty when some fact cannot be inverted within the depth
    bound (for CQ/UCQ views every fact can). *)

val tests :
  ?max_depth:int ->
  ?view_depth:int ->
  ?max_choices_per_fact:int ->
  ?max_tests_per_approx:int ->
  Datalog.query ->
  View.collection ->
  test Seq.t
(** All bounded tests.  Defaults: query depth 4, view-definition depth 3,
    4 inverse choices per view fact, 256 choice combinations per
    approximation. *)

val succeeds :
  ?engine:Dl_engine.strategy -> ?cancel:Dl_cancel.t -> Datalog.query -> test -> bool
(** Does [D' ⊨ Q] (the query is Boolean: goal non-emptiness)?  [engine]
    overrides the process-wide {!Dl_engine} default for this check. *)

type verdict =
  | Not_determined of test  (** a checked counterexample *)
  | No_failure_up_to of int  (** all [n] generated tests succeed *)

val decide_bounded :
  ?max_depth:int ->
  ?view_depth:int ->
  ?max_choices_per_fact:int ->
  ?max_tests_per_approx:int ->
  ?engine:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  View.collection ->
  verdict
(** [cancel] is probed once per generated test and at every evaluation
    round inside each test; {!Dl_cancel.Cancelled} escapes to the
    caller. *)

val pp_test : test Fmt.t
