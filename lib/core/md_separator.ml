let of_rewriting ?engine ?cancel r j =
  Dl_engine.holds_boolean ?strategy:engine ?cancel r j

let certain_answers_cq_views ?engine ?cancel q views j =
  Dl_engine.holds_boolean ?strategy:engine ?cancel (Inverse_rules.rewrite q views) j

type chase_mode = Any | All

(* One-slot memo of the taken chase prefix.  The Any and All modes, and
   repeated separator calls on the same view image (the bench replays and
   the Any/All coincidence checks in the test suite do both), otherwise
   redo the inverse-view chase from scratch: the chase Seq re-instantiates
   view-definition approximations with fresh nulls on every traversal.
   [Seq.memoize] pins the prefix actually consumed, so a second traversal
   — and a longer one under a larger [max_chases] with the same bounds —
   reuses the instantiated chases.  Keyed on the chase bounds, the views
   (physical equality: collections are built once upstream) and the image
   (structural equality: images are recomputed per call). *)
type chase_key = {
  k_view_depth : int option;
  k_max_choices : int option;
  k_views : View.collection;
  k_image : Instance.t;
}

let chase_memo : (chase_key * Instance.t Seq.t) option ref = ref None

let memoized_chases ?view_depth ?max_choices_per_fact views j =
  let key =
    {
      k_view_depth = view_depth;
      k_max_choices = max_choices_per_fact;
      k_views = views;
      k_image = j;
    }
  in
  match !chase_memo with
  | Some (k, seq)
    when k.k_view_depth = key.k_view_depth
         && k.k_max_choices = key.k_max_choices
         && k.k_views == key.k_views
         && Instance.equal k.k_image key.k_image ->
      seq
  | _ ->
      let seq =
        Seq.memoize (Md_tests.chases ?view_depth ?max_choices_per_fact views j)
      in
      chase_memo := Some (key, seq);
      seq

let chase_separator ?(mode = All) ?view_depth ?max_choices_per_fact
    ?(max_chases = 512) ?engine ?(cancel = Dl_cancel.none) (q : Datalog.query)
    views j =
  let chases =
    Seq.take max_chases (memoized_chases ?view_depth ?max_choices_per_fact views j)
  in
  (* one probe per chase step: aborting between chases leaves the
     memoized prefix fully instantiated, so a retry resumes it intact *)
  let sat d =
    Dl_cancel.check cancel;
    Dl_engine.holds_boolean ?strategy:engine ~cancel q d
  in
  match mode with
  | Any -> Seq.exists sat chases
  | All ->
      (* the universal (co-NP) variant; on an empty chase set it is
         vacuously true, matching certain answers over no preimages *)
      Seq.for_all sat chases

let brute_force_certain ?(max_preimages = 50) ?engine (q : Datalog.query) views
    ~candidates j =
  let matching =
    List.filter (fun i -> Instance.subset j (View.image views i)) candidates
  in
  let rec first_n n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: first_n (n - 1) r
  in
  match first_n max_preimages matching with
  | [] -> None
  | ms ->
      Some
        (List.for_all (fun i -> Dl_engine.holds_boolean ?strategy:engine q i) ms)
