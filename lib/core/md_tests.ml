type test = { approx : Cq.t; image : Instance.t; chased : Instance.t }

type verdict = Not_determined of test | No_failure_up_to of int

(* instantiate a CQ approximation [q] of a view definition so that its head
   maps onto the arguments of the view fact [f]; existential variables get
   fresh nulls.  None if the head pattern conflicts with the fact. *)
let instantiate (q : Cq.t) (f : Fact.t) : Instance.t option =
  let ok = ref true in
  let sub = Hashtbl.create 8 in
  List.iteri
    (fun i h ->
      match Hashtbl.find_opt sub h with
      | Some c -> if not (Const.equal c f.args.(i)) then ok := false
      | None -> Hashtbl.add sub h f.args.(i))
    q.Cq.head;
  if not !ok then None
  else begin
    let elem = function
      | Cq.Cst c -> c
      | Cq.Var v -> (
          match Hashtbl.find_opt sub v with
          | Some c -> c
          | None ->
              let c = Const.fresh () in
              Hashtbl.add sub v c;
              c)
    in
    let facts =
      List.map
        (fun (a : Cq.atom) -> Fact.make a.Cq.rel (List.map elem a.Cq.args))
        q.Cq.body
    in
    Some (Instance.of_list facts)
  end

let take n seq = Seq.take n seq

(* cartesian product of a list of non-empty lists, as a sequence *)
let rec product = function
  | [] -> Seq.return []
  | xs :: rest ->
      Seq.concat_map
        (fun tail -> Seq.map (fun x -> x :: tail) (List.to_seq xs))
        (product rest)

let chases ?(view_depth = 3) ?(max_choices_per_fact = 4)
    (views : View.collection) (image : Instance.t) : Instance.t Seq.t =
  let view_approxs =
    List.map
      (fun (v : View.t) ->
        ( v.View.name,
          View.def_approximations ~max_depth:view_depth ~max_count:64 v ))
      views
  in
  let facts = Instance.facts image in
  let choices =
    List.map
      (fun (f : Fact.t) ->
        let defs =
          match List.assoc_opt f.Fact.rel view_approxs with
          | Some l -> l
          | None -> []
        in
        let insts = List.filter_map (fun d -> instantiate d f) defs in
        let rec first_n n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: r -> x :: first_n (n - 1) r
        in
        first_n max_choices_per_fact insts)
      facts
  in
  if List.exists (fun c -> c = []) choices then Seq.empty
  else
    product choices
    |> Seq.map (fun parts -> List.fold_left Instance.union Instance.empty parts)

let tests ?(max_depth = 4) ?(view_depth = 3) ?(max_choices_per_fact = 4)
    ?(max_tests_per_approx = 256) (q : Datalog.query) (views : View.collection)
    =
  if Datalog.goal_arity q <> 0 then
    invalid_arg "Md_tests: the query must be Boolean";
  let approxs = Dl_approx.approximations ~max_depth q in
  Seq.concat_map
    (fun (qi : Cq.t) ->
      let db = Cq.canonical_db qi in
      let image = View.image views db in
      chases ~view_depth ~max_choices_per_fact views image
      |> take max_tests_per_approx
      |> Seq.map (fun chased -> { approx = qi; image; chased }))
    (List.to_seq approxs)

let succeeds ?engine ?cancel q t =
  Dl_engine.holds_boolean ?strategy:engine ?cancel q t.chased

let decide_bounded ?max_depth ?view_depth ?max_choices_per_fact
    ?max_tests_per_approx ?engine ?(cancel = Dl_cancel.none) q views =
  let n = ref 0 in
  let failing =
    Seq.find
      (fun t ->
        (* one probe per generated test, besides the per-round probes
           inside each test's evaluation *)
        Dl_cancel.check cancel;
        incr n;
        not (succeeds ?engine ~cancel q t))
      (tests ?max_depth ?view_depth ?max_choices_per_fact
         ?max_tests_per_approx q views)
  in
  match failing with
  | Some t -> Not_determined t
  | None -> No_failure_up_to !n

let pp_test ppf t =
  Fmt.pf ppf "@[<v>approx: %a@,image: %a@,chased: %a@]" Cq.pp t.approx
    Instance.pp t.image Instance.pp t.chased
