exception Unsupported of string

let prop8_cq (q : Cq.t) (views : View.collection) =
  if Cq.arity q <> 0 then raise (Unsupported "prop8_cq: Boolean queries only");
  let image = View.image views (Cq.canonical_db q) in
  Cq.of_instance ~head:[] image

let prop8_ucq (u : Ucq.t) views =
  Ucq.make (List.map (fun d -> prop8_cq d views) u.Ucq.disjuncts)

let inverse_rules q views = Inverse_rules.rewrite q views

let forward_backward_atomic (q : Datalog.query) (views : View.collection) =
  (* every base relation must be copied by exactly one atomic view *)
  let base = Datalog.edb_schema q.Datalog.program in
  let mapping =
    List.filter_map
      (fun (v : View.t) ->
        match v.View.def with
        | View.Cq_def { Cq.head; body = [ { Cq.rel; args } ]; _ }
          when List.map (fun h -> Cq.Var h) head = args ->
            Some (rel, v.View.name)
        | _ -> None)
      views
  in
  List.iter
    (fun (rel, _) ->
      if List.length (List.filter (fun (r, _) -> String.equal r rel) mapping) > 1
      then raise (Unsupported "forward_backward_atomic: duplicated atomic view"))
    mapping;
  let rename rel =
    match List.assoc_opt rel mapping with
    | Some v -> v
    | None ->
        raise
          (Unsupported
             (Printf.sprintf
                "forward_backward_atomic: base relation %s has no atomic view"
                rel))
  in
  let nta, k = Forward.approximations_nta q in
  (* Proposition 5: project the codes onto the view signature *)
  let projected =
    Nta.relabel (List.map (fun (rel, ps) -> (rename rel, ps))) nta
  in
  let view_schema =
    Schema.of_list
      (List.map (fun (rel, v) -> (v, Schema.arity_exn base rel)) mapping)
  in
  Backward.backward ~schema:view_schema ~k projected

let verify_boolean (q : Datalog.query) (r : Datalog.query) views insts =
  List.for_all
    (fun i ->
      let lhs = Dl_engine.holds_boolean q i in
      let rhs = Dl_engine.holds_boolean r (View.image views i) in
      lhs = rhs)
    insts

let random_instances ?(n = 20) ?(size = 12) ~seed schema =
  let st = Random.State.make [| seed |] in
  let rels = Schema.relations schema in
  if rels = [] then []
  else
    List.init n (fun run ->
        let n_elems = 2 + Random.State.int st 5 in
        let elems =
          Array.init n_elems (fun i ->
              Const.named (Printf.sprintf "r%d_%d" run i))
        in
        let n_facts = 1 + Random.State.int st size in
        let facts =
          List.init n_facts (fun _ ->
              let rel, arity = List.nth rels (Random.State.int st (List.length rels)) in
              Fact.make rel
                (List.init arity (fun _ ->
                     elems.(Random.State.int st n_elems))))
        in
        Instance.of_list facts)
