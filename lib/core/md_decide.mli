(** Decision procedures for monotonic determinacy (paper §5).

    The exact procedures implement Theorem 5 (and its UCQ extension): for a
    Boolean CQ/UCQ query [Q] over arbitrary Datalog views, monotonic
    determinacy is equivalent to the containment [Q'' ⊆ Q], where [Q''] is
    the Datalog query obtained by evaluating the simple forward-backward
    rewriting [V(Q)] over the view programs.  The containment is decided by
    automata: the NTA capturing the expansions of [Q''] (Prop. 3)
    intersected with the complement of the CQ-satisfaction automaton of
    [Q], then emptiness (the Chaudhuri–Vardi recipe run on tree codes).

    For query/view pairs outside the exactly-decidable fragments we fall
    back on the bounded canonical-test search of {!Md_tests} (sound for
    refutation; bounded-complete for confirmation). *)

exception Unsupported of string

val compose_with_views : Datalog.query -> View.collection -> Datalog.query
(** [Q'' = (Π_V ∪ {Goal'' ← V(Q)}, Goal'')]; requires the query to be a
    single CQ or UCQ goal over the base schema (the paper's [V(Q)]
    construction, Prop. 8). *)

val datalog_contained_in_cq : Datalog.query -> Cq.t -> bool
(** [P ⊆ Q] for Boolean [Q]: every expansion of [P] satisfies [Q]. *)

val datalog_contained_in_ucq : Datalog.query -> Ucq.t -> bool

val cq_query : Cq.t -> View.collection -> bool
(** Theorem 5: monotonic determinacy of a Boolean CQ over Datalog views.
    Exact. *)

val ucq_query : Ucq.t -> View.collection -> bool
(** The UCQ extension of Theorem 5.  Exact. *)

type verdict =
  | Determined  (** exact: monotonically determined *)
  | Not_determined_cert of Md_tests.test option
      (** not determined; with a canonical-test certificate if produced by
          the bounded search *)
  | Bounded_no_failure of int
      (** inexact fragment: no failing test among the [n] generated *)

val decide :
  ?max_depth:int ->
  ?view_depth:int ->
  ?engine:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  View.collection ->
  verdict
(** Dispatcher: uses the exact procedure when the query is a CQ/UCQ
    (classified by {!Dl_fragment.classify}); otherwise the bounded test
    search, whose per-test evaluation uses [engine] (default: the
    process-wide {!Dl_engine} strategy).  [cancel] reaches the bounded
    search only — the exact automata path is short and not
    cancellation-aware. *)

val pp_verdict : verdict Fmt.t
