exception Unsupported of string

(* [Goal'' ← V(Q)] over the union of the view programs.  The query must be
   Boolean. *)
let compose_with_views (q : Datalog.query) (views : View.collection) =
  if Datalog.goal_arity q <> 0 then
    raise (Unsupported "compose_with_views: Boolean queries only");
  let view_programs =
    List.concat_map (fun v -> (View.def_as_datalog v).Datalog.program) views
  in
  let goal_rules =
    (* one rule per CQ approximation at the goal — for a CQ/UCQ query the
       complete unfolding is finite *)
    match Dl_approx.complete_unfolding q with
    | None ->
        raise (Unsupported "compose_with_views: the query must be a CQ or UCQ")
    | Some disjuncts ->
        List.map
          (fun (qi : Cq.t) ->
            (* an empty image gives the empty-body rule: V(Qi) is the
               trivially-true query, and determinacy can only hold if Q is
               trivial too — the containment check sorts it out *)
            let image = View.image views (Cq.canonical_db qi) in
            let vq = Cq.of_instance ~head:[] image in
            Datalog.rule (Cq.atom "Goal''" []) vq.Cq.body)
          disjuncts
  in
  Datalog.query (view_programs @ goal_rules) "Goal''"

let datalog_contained_in_cq (p : Datalog.query) (q : Cq.t) =
  let nta, _k = Forward.approximations_nta p in
  Run.check_empty nta (Cq_dta.make ~negate:true q)

let datalog_contained_in_ucq (p : Datalog.query) (u : Ucq.t) =
  let nta, _k = Forward.approximations_nta p in
  (* a counterexample expansion must avoid every disjunct *)
  let all_fail =
    Dta.conj_list
      (List.map (fun d -> Cq_dta.make ~negate:true d) u.Ucq.disjuncts)
  in
  Run.check_empty nta all_fail

let cq_query (q : Cq.t) views =
  if Cq.arity q <> 0 then raise (Unsupported "cq_query: Boolean queries only");
  let q'' = compose_with_views (Datalog.of_cq ~goal:"G0" q) views in
  datalog_contained_in_cq q'' q

let ucq_query (u : Ucq.t) views =
  if Ucq.arity u <> 0 then raise (Unsupported "ucq_query: Boolean queries only");
  let q'' = compose_with_views (Datalog.of_ucq ~goal:"G0" u) views in
  datalog_contained_in_ucq q'' u

type verdict =
  | Determined
  | Not_determined_cert of Md_tests.test option
  | Bounded_no_failure of int

let decide ?max_depth ?view_depth ?engine ?cancel (q : Datalog.query) views =
  match Dl_fragment.classify q with
  | Dl_fragment.CQ | Dl_fragment.UCQ -> (
      match Dl_fragment.to_ucq q with
      | Some u ->
          if ucq_query u views then Determined else Not_determined_cert None
      | None -> raise (Unsupported "decide: could not unfold the query"))
  | _ -> (
      match
        Md_tests.decide_bounded ?max_depth ?view_depth ?engine ?cancel q views
      with
      | Md_tests.Not_determined t -> Not_determined_cert (Some t)
      | Md_tests.No_failure_up_to n -> Bounded_no_failure n)

let pp_verdict ppf = function
  | Determined -> Fmt.string ppf "monotonically determined (exact)"
  | Not_determined_cert None -> Fmt.string ppf "NOT monotonically determined"
  | Not_determined_cert (Some t) ->
      Fmt.pf ppf "NOT monotonically determined; failing test:@ %a"
        Md_tests.pp_test t
  | Bounded_no_failure n ->
      Fmt.pf ppf "no failing canonical test among %d (bounded search)" n
