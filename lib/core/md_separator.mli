(** Separators (paper §2 and §7).

    A separator of [Q] w.r.t. [V] is any function on view-schema instances
    agreeing with [Q] through [V] — not necessarily expressible in a logic.
    Datalog rewritings give PTime separators; Theorem 10 (appendix) shows
    the inverse-rules certain-answer program is a separator whenever [Q]
    is monotonically determined; Theorem 9 shows no computable time bound
    covers all Datalog query/view pairs. *)

val of_rewriting :
  ?engine:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  Instance.t ->
  bool
(** The separator induced by a Boolean Datalog rewriting.  [engine]
    overrides the process-wide {!Dl_engine} default; [cancel] is the
    cooperative cancellation token threaded into evaluation (likewise
    below). *)

val certain_answers_cq_views :
  ?engine:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  View.collection ->
  Instance.t ->
  bool
(** The inverse-rules separator for CQ views (Theorem 10): certain answers
    of the Boolean query over an arbitrary view-schema instance. *)

type chase_mode = Any | All

val chase_separator :
  ?mode:chase_mode ->
  ?view_depth:int ->
  ?max_choices_per_fact:int ->
  ?max_chases:int ->
  ?engine:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  View.collection ->
  Instance.t ->
  bool
(** The §7 observation: for Datalog queries over UCQ (or CQ) views there
    is a separator in NP and one in co-NP, because every view image is the
    image of a small instance — namely a chase of the image through the
    inverses of the view definitions.  Under monotonic determinacy the
    existential ([Any], the NP one) and universal ([All], the co-NP one)
    chase separators coincide and equal the query through the views:
    the witness chase maps homomorphically into any preimage, and any
    chase's image contains the input.  For recursive Datalog views the
    chase set is bounded by [view_depth] and the result is approximate;
    for CQ/UCQ views it is exact.

    The taken chase prefix is memoized (one slot, keyed on the bounds,
    the view collection and the image), so checking [Any] and [All] on
    the same image — or replaying the separator — does not redo the
    inverse-view chase.

    [cancel] is probed before every chase step (and at round boundaries
    inside each chase's evaluation); an abort leaves the memoized prefix
    fully instantiated, so a retry resumes where the abort struck. *)

val brute_force_certain :
  ?max_preimages:int ->
  ?engine:Dl_engine.strategy ->
  Datalog.query ->
  View.collection ->
  candidates:Instance.t list ->
  Instance.t ->
  bool option
(** A reference implementation of certain answers by explicit preimage
    search among the given candidate base instances: [Some b] if some
    candidate's view image contains the given instance ([b] the conjunction
    of [Q] over the first [max_preimages] such candidates), [None] if no
    candidate matches.  Used only for cross-checking on small cases. *)
