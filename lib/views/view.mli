(** Views and view images (paper §2).

    A view is a pair [(V, Q_V)] of a view relation name and a defining
    query over the base schema; a collection of views maps instances of
    the base schema to instances of the view schema. *)

type def =
  | Cq_def of Cq.t
  | Ucq_def of Ucq.t
  | Datalog_def of Datalog.query

type t = { name : string; def : def }

type collection = t list

val cq : string -> Cq.t -> t
val ucq : string -> Ucq.t -> t
val datalog : string -> Datalog.query -> t

val atomic : string -> string -> int -> t
(** [atomic v r n]: the view [V(x̄) ← R(x̄)] copying the arity-[n] base
    relation [r]. *)

val arity : t -> int

val def_as_datalog : t -> Datalog.query
(** Any definition as a Datalog query whose goal is the view name.
    IDBs are renamed apart per view (prefixed with the view name). *)

val fingerprint_hex : collection -> string
(** 32-hex-digit structural fingerprint of the collection (names and
    definitions, order-sensitive), with the same contract as
    {!Datalog.fingerprint}: equal collections fingerprint equal,
    process-local values, memoized under physical equality of the
    list. *)

val def_approximations :
  ?max_depth:int -> ?max_count:int -> t -> Cq.t list
(** CQ approximations of the view definition (a single CQ for CQ views,
    the disjuncts for UCQ views, unfoldings for Datalog views). *)

val view_schema : collection -> Schema.t
val base_schema : collection -> Schema.t

val eval : t -> Instance.t -> Fact.t list
(** Output facts [V(t̄)] of one view on a base instance. *)

val image : collection -> Instance.t -> Instance.t
(** The view image [V(I)]. *)

val is_cq_collection : collection -> bool
val is_fgdl_collection : collection -> bool
(** Every definition is a CQ or a frontier-guarded / monadic program. *)

val max_radius : collection -> int option
(** Greatest radius of a CQ definition (Lemma 3's [r]); [None] if some CQ
    definition is disconnected or some definition is not a CQ. *)

val all_connected_cqs : collection -> bool

val split_disconnected : t -> collection
(** Replace a disconnected CQ view by connected views in the sense of the
    proof of Theorem 2: each output component keeps its own variables and
    existentially guards the other components.  Views whose definition is
    already connected (or not a CQ) are returned unchanged.  Note the
    resulting collection carries the same information as the original
    view: the original can be reconstructed as the product of the parts. *)

val pp : t Fmt.t
val pp_collection : collection Fmt.t
