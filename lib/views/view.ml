type def =
  | Cq_def of Cq.t
  | Ucq_def of Ucq.t
  | Datalog_def of Datalog.query

type t = { name : string; def : def }
type collection = t list

let cq name q = { name; def = Cq_def q }
let ucq name u = { name; def = Ucq_def u }
let datalog name q = { name; def = Datalog_def q }

let atomic name rel n =
  let vars = List.init n (fun i -> Printf.sprintf "x%d" i) in
  cq name
    (Cq.make ~head:vars [ Cq.atom rel (List.map (fun v -> Cq.Var v) vars) ])

let arity v =
  match v.def with
  | Cq_def q -> Cq.arity q
  | Ucq_def u -> Ucq.arity u
  | Datalog_def q -> Datalog.goal_arity q

let def_as_datalog v =
  match v.def with
  | Cq_def q -> Datalog.of_cq ~goal:v.name q
  | Ucq_def u -> Datalog.of_ucq ~goal:v.name u
  | Datalog_def q ->
      Datalog.rename_idbs
        (fun g -> if String.equal g q.Datalog.goal then v.name else v.name ^ "$" ^ g)
        q

(* Fingerprint of a collection: an order-sensitive fold of the views'
   names and the structural fingerprints of their canonical Datalog
   forms ([def_as_datalog] is deterministic).  Memoized under physical
   equality of the collection — sessions reuse the stored list across
   requests, so warm cache-key construction is O(1). *)
let fp_cache : (collection * string) list ref = ref []

let fingerprint_hex vs =
  match List.find_opt (fun (vs', _) -> vs' == vs) !fp_cache with
  | Some (_, v) -> v
  | None ->
      let h1, h2 =
        List.fold_left
          (fun (h1, h2) v ->
            let f1, f2 = Datalog.fingerprint (def_as_datalog v) in
            let n = Fp.string_hash v.name in
            (Fp.step (Fp.step h1 n) f1, Fp.step (Fp.step h2 n) f2))
          (Fp.mix Fp.seed1, Fp.mix Fp.seed2)
          vs
      in
      let hex = Fp.hex h1 h2 in
      let keep = if List.length !fp_cache >= 32 then [] else !fp_cache in
      fp_cache := (vs, hex) :: keep;
      hex

let def_approximations ?max_depth ?max_count v =
  match v.def with
  | Cq_def q -> [ q ]
  | Ucq_def u -> u.Ucq.disjuncts
  | Datalog_def q -> Dl_approx.approximations ?max_depth ?max_count q

let view_schema (vs : collection) =
  List.fold_left (fun s v -> Schema.add v.name (arity v) s) Schema.empty vs

let base_schema (vs : collection) =
  List.fold_left
    (fun s v ->
      let q = def_as_datalog v in
      Schema.union s (Datalog.edb_schema q.Datalog.program))
    Schema.empty vs

let eval v inst =
  let tuples =
    match v.def with
    | Cq_def q -> Cq.eval q inst
    | Ucq_def u -> Ucq.eval u inst
    | Datalog_def q -> Dl_engine.eval q inst
  in
  let rid = Symtab.intern v.name in
  List.map (fun t -> Fact.of_interned rid t) tuples

let image vs inst =
  List.fold_left
    (fun acc v -> List.fold_left (fun acc f -> Instance.add f acc) acc (eval v inst))
    Instance.empty vs

let is_cq_collection vs =
  List.for_all (fun v -> match v.def with Cq_def _ -> true | _ -> false) vs

let is_fgdl_collection vs =
  List.for_all
    (fun v ->
      match v.def with
      | Cq_def _ -> true
      | Ucq_def _ -> false
      | Datalog_def q -> Dl_fragment.is_frontier_guarded q.Datalog.program)
    vs

let max_radius vs =
  List.fold_left
    (fun acc v ->
      match (acc, v.def) with
      | None, _ -> None
      | Some r, Cq_def q -> (
          match Cq.radius q with Some r' -> Some (max r r') | None -> None)
      | Some _, _ -> None)
    (Some 0) vs

let all_connected_cqs vs =
  List.for_all
    (fun v -> match v.def with Cq_def q -> Cq.connected q | _ -> false)
    vs

let split_disconnected v =
  match v.def with
  | Cq_def q when not (Cq.connected q) ->
      let g = Gaifman.of_instance (Cq.canonical_db q) in
      let comps = Gaifman.components g in
      let var_of_const c =
        (* inverse of Cq.const_of_var *)
        match Const.name c with
        | Some s when String.length s > 0 && s.[0] = '?' ->
            Some (String.sub s 1 (String.length s - 1))
        | _ -> None
      in
      let comp_vars =
        List.map
          (fun comp -> List.filter_map var_of_const (Const.Set.elements comp))
          comps
      in
      let parts =
        List.mapi
          (fun i vars ->
            let head = List.filter (fun v -> List.mem v vars) q.Cq.head in
            {
              name = Printf.sprintf "%s|%d" v.name i;
              def = Cq_def { q with Cq.head };
            })
          comp_vars
      in
      (* only keep components that either export head variables or are the
         sole component; pure-existential components are still needed as
         Boolean guards, so keep them as 0-ary views *)
      parts
  | _ -> [ v ]

let pp ppf v =
  match v.def with
  | Cq_def q -> Fmt.pf ppf "%s := %a" v.name Cq.pp q
  | Ucq_def u -> Fmt.pf ppf "%s := %a" v.name Ucq.pp u
  | Datalog_def q -> Fmt.pf ppf "%s := %a" v.name Datalog.pp_query q

let pp_collection ppf vs = Fmt.(list ~sep:(any "@\n") pp) ppf vs
