exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type annotation = Plain | Sk of string * int

let skolem_name ~view ~var = Printf.sprintf "f$%s$%s" view var

let ann_equal a b =
  match (a, b) with
  | Plain, Plain -> true
  | Sk (f, n), Sk (g, m) -> String.equal f g && n = m
  | _ -> false

let ann_string = function Plain -> "_" | Sk (f, _) -> f


(* An inverse rule provenance: view [view], atom number [atom_idx] of its
   definition, producing base relation [base] with per-position annotation
   [ann].  [coord_slots] records, for every coordinate of the expanded
   (defunctionalized) predicate, which view-head slot it displays. *)
type provenance = {
  base : string;
  ann : annotation list;
  view : string;
  atom_idx : int;
  coord_slots : int list;
  view_arity : int;
}

let apred_name_of_prov p =
  Printf.sprintf "%s@%s@%s%d" p.base
    (String.concat "," (List.map ann_string p.ann))
    p.view p.atom_idx

let idb_apred_name pred ann =
  Printf.sprintf "%s@%s" pred (String.concat "," (List.map ann_string ann))

let var_only = function
  | Cq.Var v -> v
  | Cq.Cst _ -> unsupported "constants are not supported by inverse rules"

(* ------------------------------------------------------------------ *)
(* Inverse rules of the view definitions                               *)

let provenances (views : View.collection) =
  List.concat_map
    (fun (v : View.t) ->
      let q =
        match v.View.def with
        | View.Cq_def q -> q
        | _ -> unsupported "inverse rules require CQ views (%s)" v.View.name
      in
      let head = q.Cq.head in
      let k = List.length head in
      let slot_of x =
        let rec idx i = function
          | [] -> None
          | h :: t -> if String.equal h x then Some i else idx (i + 1) t
        in
        idx 0 head
      in
      List.mapi
        (fun atom_idx (a : Cq.atom) ->
          let anns, coords =
            List.fold_left
              (fun (anns, coords) t ->
                let x = var_only t in
                match slot_of x with
                | Some j -> (Plain :: anns, [ j ] :: coords)
                | None ->
                    let f = skolem_name ~view:v.View.name ~var:x in
                    (Sk (f, k) :: anns, List.init k (fun i -> i) :: coords))
              ([], []) a.Cq.args
          in
          {
            base = a.Cq.rel;
            ann = List.rev anns;
            view = v.View.name;
            atom_idx;
            coord_slots = List.concat (List.rev coords);
            view_arity = k;
          })
        q.Cq.body)
    views

let slot_var view slot = Printf.sprintf "s%d$%s" slot view

(* The single defining rule of a provenance's annotated predicate:
     R@ann@Vj(…slot vars…) ← V(s0,…,sk-1). *)
let inverse_rule p =
  let head_args = List.map (fun s -> Cq.Var (slot_var p.view s)) p.coord_slots in
  let view_args = List.init p.view_arity (fun i -> Cq.Var (slot_var p.view i)) in
  Datalog.rule
    (Cq.atom (apred_name_of_prov p) head_args)
    [ Cq.atom p.view view_args ]

(* ------------------------------------------------------------------ *)
(* Annotation dataflow                                                 *)

module SM = Smap

(* possible annotations per (predicate, position) *)
let annotation_flow (q : Datalog.query) (provs : provenance list) =
  let table : annotation list array SM.t ref = ref SM.empty in
  let get pred pos =
    match SM.find_opt pred !table with
    | Some arr when pos < Array.length arr -> arr.(pos)
    | _ -> []
  in
  let add pred arity pos a =
    let arr =
      match SM.find_opt pred !table with
      | Some arr -> arr
      | None ->
          let arr = Array.make arity [] in
          table := SM.add pred arr !table;
          arr
    in
    if not (List.exists (ann_equal a) arr.(pos)) then (
      arr.(pos) <- a :: arr.(pos);
      true)
    else false
  in
  (* seed: base relation positions from inverse-rule heads *)
  List.iter
    (fun p ->
      List.iteri (fun i a -> ignore (add p.base (List.length p.ann) i a)) p.ann)
    provs;
  (* iterate over the query rules *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Datalog.rule) ->
        (* candidate annotations per variable: intersection over body
           occurrences *)
        let cands : annotation list SM.t ref = ref SM.empty in
        List.iter
          (fun (a : Cq.atom) ->
            List.iteri
              (fun i t ->
                let v = var_only t in
                let here = get a.Cq.rel i in
                let now =
                  match SM.find_opt v !cands with
                  | None -> here
                  | Some prev ->
                      List.filter (fun x -> List.exists (ann_equal x) here) prev
                in
                cands := SM.add v now !cands)
              a.Cq.args)
          r.Datalog.body;
        let head = r.Datalog.head in
        let arity = List.length head.Cq.args in
        List.iteri
          (fun i t ->
            let v = var_only t in
            List.iter
              (fun a -> if add head.Cq.rel arity i a then changed := true)
              (Option.value ~default:[] (SM.find_opt v !cands)))
          head.Cq.args)
      q.Datalog.program
  done;
  fun pred pos -> get pred pos

(* ------------------------------------------------------------------ *)
(* Defunctionalized rule generation                                    *)

let expand_var v = function
  | Plain -> [ Cq.Var v ]
  | Sk (_, m) -> List.init m (fun i -> Cq.Var (Printf.sprintf "%s*%d" v i))

let check_distinct_head (r : Datalog.rule) =
  let hv = List.map var_only r.Datalog.head.Cq.args in
  if List.length hv <> List.length (List.sort_uniq String.compare hv) then
    unsupported "repeated variables in a rule head"

(* all ways to choose one element from each list *)
let rec choices = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = choices rest in
      List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

let rewrite ?(guard = true) (q : Datalog.query) (views : View.collection) =
  List.iter check_distinct_head q.Datalog.program;
  let provs = provenances views in
  let flow = annotation_flow q provs in
  let idb = Datalog.is_idb q.Datalog.program in
  let goal_arity = Datalog.goal_arity q in
  let goal_ann = List.init goal_arity (fun _ -> Plain) in
  let generated : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let out_rules = ref (List.map inverse_rule provs) in
  let worklist = Queue.create () in
  Queue.add (q.Datalog.goal, goal_ann) worklist;
  let enqueue pred ann =
    let name = idb_apred_name pred ann in
    if not (Hashtbl.mem generated name) then (
      Hashtbl.add generated name ();
      Queue.add (pred, ann) worklist)
  in
  (* provenances grouped by base predicate *)
  let provs_for base = List.filter (fun p -> String.equal p.base base) provs in
  while not (Queue.is_empty worklist) do
    let pred, ann = Queue.pop worklist in
    Hashtbl.replace generated (idb_apred_name pred ann) ();
    List.iter
      (fun (r : Datalog.rule) ->
        if String.equal r.Datalog.head.Cq.rel pred then (
          let hv = List.map var_only r.Datalog.head.Cq.args in
          (* assignment of annotations: head vars fixed by [ann], others
             range over flow candidates *)
          let fixed =
            List.fold_left2 (fun m v a -> SM.add v a m) SM.empty hv ann
          in
          let other_vars =
            List.concat_map
              (fun (a : Cq.atom) -> List.map var_only a.Cq.args)
              r.Datalog.body
            |> List.sort_uniq String.compare
            |> List.filter (fun v -> not (SM.mem v fixed))
          in
          let cand v =
            (* intersection of flow sets over occurrences *)
            List.fold_left
              (fun acc (a : Cq.atom) ->
                List.fold_left
                  (fun acc (i, t) ->
                    if String.equal (var_only t) v then
                      match acc with
                      | None -> Some (flow a.Cq.rel i)
                      | Some prev ->
                          Some
                            (List.filter
                               (fun x -> List.exists (ann_equal x) (flow a.Cq.rel i))
                               prev)
                    else acc)
                  acc
                  (List.mapi (fun i t -> (i, t)) a.Cq.args))
              None r.Datalog.body
            |> Option.value ~default:[]
          in
          let assignments =
            choices (List.map (fun v -> List.map (fun a -> (v, a)) (cand v)) other_vars)
          in
          List.iter
            (fun choice ->
              let a_of =
                List.fold_left (fun m (v, a) -> SM.add v a m) fixed choice
              in
              let ann_of v =
                match SM.find_opt v a_of with Some a -> a | None -> Plain
              in
              (* head atom *)
              let head_args =
                List.concat_map (fun v -> expand_var v (ann_of v)) hv
              in
              let head = Cq.atom (idb_apred_name pred ann) head_args in
              (* body: for each atom, IDB → annotated IDB; EDB → one rule
                 per matching provenance *)
              let body_atom_options =
                List.map
                  (fun (a : Cq.atom) ->
                    let vs = List.map var_only a.Cq.args in
                    let anns = List.map ann_of vs in
                    if idb a.Cq.rel then (
                      enqueue a.Cq.rel anns;
                      [ (Cq.atom (idb_apred_name a.Cq.rel anns)
                           (List.concat_map (fun v -> expand_var v (ann_of v)) vs),
                         None) ])
                    else
                      List.filter_map
                        (fun p ->
                          if List.for_all2 ann_equal p.ann anns then
                            Some
                              ( Cq.atom (apred_name_of_prov p)
                                  (List.concat_map
                                     (fun v -> expand_var v (ann_of v))
                                     vs),
                                Some p )
                          else None)
                        (provs_for a.Cq.rel))
                  r.Datalog.body
              in
              if List.for_all (fun opts -> opts <> []) body_atom_options then
                List.iter
                  (fun combo ->
                    let body = List.map fst combo in
                    let body =
                      if not guard then body
                      else
                        (* conjoin the guarding view atom of the first
                           provenance-backed atom covering all head vars *)
                        let head_coords =
                          List.concat_map
                            (fun v ->
                              List.map
                                (function Cq.Var w -> w | Cq.Cst _ -> assert false)
                                (expand_var v (ann_of v)))
                            hv
                        in
                        let covering =
                          List.find_opt
                            (fun (atom, prov) ->
                              Option.is_some prov
                              && List.for_all
                                   (fun w -> List.mem (Cq.Var w) atom.Cq.args)
                                   head_coords)
                            combo
                        in
                        match covering with
                        | Some (atom, Some p) ->
                            (* reconstruct the view atom: slot j's value is
                               the coordinate of [atom] displaying slot j *)
                            let coords = Array.of_list atom.Cq.args in
                            let slots = Array.of_list p.coord_slots in
                            let view_arg j =
                              let rec find i =
                                if i >= Array.length slots then
                                  Cq.Var (Printf.sprintf "g$%s$%d" p.view j)
                                else if slots.(i) = j then coords.(i)
                                else find (i + 1)
                              in
                              find 0
                            in
                            Cq.atom p.view (List.init p.view_arity view_arg) :: body
                        | _ -> body
                    in
                    out_rules := Datalog.rule head body :: !out_rules)
                  (choices body_atom_options))
            assignments))
      q.Datalog.program
  done;
  Datalog.query (List.rev !out_rules) (idb_apred_name q.Datalog.goal goal_ann)

let certain_answers q views inst = Dl_engine.eval (rewrite q views) inst
