(* Length-capped incremental line framing for socket connections.

   Bytes arrive in arbitrary splits; the reader accumulates the current
   line and emits complete items in arrival order.  A line longer than
   the cap flips the reader into discard mode — the oversized prefix is
   dropped immediately (memory stays bounded by the cap, whatever the
   peer sends) and the eventual newline emits [Overlong] so the server
   can answer with an error instead of silently swallowing the request.
   Lines are terminated by ['\n']; a trailing ['\r'] is stripped, so
   CRLF peers work, and the CR does not count against the cap. *)

type item = Line of string | Overlong

type t = {
  max_line : int;
  buf : Buffer.t;
  mutable discarding : bool;
}

let create ~max_line =
  if max_line < 1 then invalid_arg "Svc_reader.create: max_line < 1";
  { max_line; buf = Buffer.create 256; discarding = false }

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed t bytes ~off ~len =
  let items = ref [] in
  for i = off to off + len - 1 do
    match Bytes.get bytes i with
    | '\n' ->
        (if t.discarding then begin
           t.discarding <- false;
           items := Overlong :: !items
         end
         else
           let s = strip_cr (Buffer.contents t.buf) in
           if String.length s > t.max_line then items := Overlong :: !items
           else items := Line s :: !items);
        Buffer.clear t.buf
    | c ->
        if not t.discarding then
          (* allow one byte of slack for the CR of a CRLF terminator;
             the completion check above still enforces the cap on the
             stripped line *)
          if Buffer.length t.buf > t.max_line then begin
            t.discarding <- true;
            Buffer.clear t.buf
          end
          else Buffer.add_char t.buf c
  done;
  List.rev !items

let pending t = if t.discarding then t.max_line + 1 else Buffer.length t.buf
