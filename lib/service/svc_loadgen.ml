(* Load generator for the TCP front-end: N closed-loop connections
   driven from one single-threaded select loop, a deterministic mixed
   workload over two sessions, and an in-process oracle that re-answers
   every request sequentially so the harness can prove the concurrent
   server returned byte-identical responses.

   Closed loop means one outstanding request per connection: a
   connection sends, waits for the full response line, records the
   latency, sends the next.  Throughput therefore reflects the server's
   capacity to interleave [conns] independent request streams, and the
   per-request latencies are honest (no client-side queueing delay
   hidden inside them).  The driver itself is single-threaded on
   purpose — domains are the server's resource; spending client domains
   would perturb the very scheduler being measured. *)

(* ------------------------------------------------------------------ *)
(* Deterministic workload: a grid session (transitive closure over a
   31-edge chain) and a diamond session (the Figure-3 query/view pair),
   mixed so the stream exercises cheap cached hits, distinct-key eval
   and holds misses, and the heavy decision verbs. *)

let setup_lines =
  [
    "s1 load grid program tc goal T : T(x,y) <- E(x,y). T(x,y) <- E(x,z), \
     T(z,y).";
    "s2 load grid instance chain : "
    ^ String.concat " "
        (List.init 31 (fun i -> Printf.sprintf "E(n%d,n%d)." i (i + 1)));
    "s3 load diamond program tc goal T : T(x,y) <- E(x,y). T(x,y) <- \
     E(x,z), T(z,y).";
    "s4 load diamond program reach goal Goal : Goal() <- T(x,y). T(x,y) <- \
     E(x,y). T(x,y) <- E(x,z), T(z,y).";
    "s5 load diamond views v : V(x,y) <- E(x,y).";
    "s6 load diamond instance i : E(a,b). E(b,c).";
    "s7 load diamond instance vi : V(a,b). V(b,c).";
  ]

(* Request [seq] of connection [conn].  Ids are globally unique, so a
   cross-wired response (wrong connection, wrong slot) is detected as
   corruption.  The holds tuples vary with both indices: distinct cache
   keys keep arriving throughout the run, so the stream never collapses
   to pure cache hits. *)
let request_line ~conn ~seq =
  let id = Printf.sprintf "c%dn%d" conn seq in
  match seq mod 8 with
  | 0 -> id ^ " eval grid tc chain"
  | 1 ->
      Printf.sprintf "%s holds grid tc chain (n0,n%d)" id
        (1 + ((conn * 7) + seq) mod 31)
  | 2 ->
      Printf.sprintf "%s holds grid tc chain (n%d,n0)" id
        (1 + ((conn + (seq * 5)) mod 31))
  | 3 -> id ^ " eval diamond tc i"
  | 4 -> id ^ " mondet-test diamond reach v"
  | 5 -> id ^ " certain-answers diamond reach v vi"
  | 6 -> id ^ " holds diamond tc i (a,c)"
  | _ -> id ^ " eval diamond reach i"

(* ------------------------------------------------------------------ *)

type stats = {
  conns : int;
  total : int;  (** responses received *)
  ok : int;
  busy : int;
  failed : int;  (** error/timeout responses, or connections cut short *)
  mismatched : int;  (** responses that differ from the oracle's *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ns : float;
  p99_ns : float;
}

type cstate = {
  fd : Unix.file_descr;
  cix : int;
  reader : Svc_reader.t;
  mutable seq : int;  (** next request to send *)
  mutable outstanding : string option;  (** the request line in flight *)
  mutable sent_at : float;
  mutable closed : bool;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd s off len =
  if len > 0 then
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

(* Oracle replay: a fresh sequential service answers every exchanged
   request; any byte difference is a correctness failure of the
   concurrent path, not noise.  Callers that ran the server in-process
   should join its domains first so every published write is visible. *)
let verify_exchanges exchanges =
  let oracle = Svc_service.create ~parallel:false () in
  List.iter (fun l -> ignore (Svc_service.handle_line oracle l)) setup_lines;
  List.fold_left
    (fun bad (req, resp) ->
      let expected =
        Svc_proto.print_response (Svc_service.handle_line oracle req)
      in
      if String.equal expected resp then bad else bad + 1)
    0 exchanges

let run ~addr ~conns ~per_conn ?(verify = true) () =
  Svc_server.ignore_sigpipe ();
  (* session setup over a throwaway lockstep connection *)
  let devnull = open_out "/dev/null" in
  let setup_bad = Svc_server.client ~addr setup_lines devnull in
  close_out_noerr devnull;
  if setup_bad > 0 then failwith "loadgen: session setup failed";
  let states =
    Array.init conns (fun cix ->
        let fd =
          Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
        in
        Unix.connect fd addr;
        {
          fd;
          cix;
          reader = Svc_reader.create ~max_line:(1 lsl 20);
          seq = 0;
          outstanding = None;
          sent_at = 0.0;
          closed = false;
        })
  in
  let total = ref 0 and ok = ref 0 and busy = ref 0 and failed = ref 0 in
  let latencies = ref [] in
  let exchanges = ref [] in
  (* (request, response) pairs for the oracle *)
  let live = ref conns in
  let finish c =
    if not c.closed then begin
      c.closed <- true;
      close_quietly c.fd;
      decr live;
      (* an open request or an unsent tail means the server cut us off *)
      match c.outstanding with
      | Some _ ->
          incr failed;
          c.outstanding <- None
      | None -> if c.seq < per_conn then incr failed
    end
  in
  let send c =
    if c.seq >= per_conn then finish c
    else begin
      let line = request_line ~conn:c.cix ~seq:c.seq in
      c.seq <- c.seq + 1;
      c.outstanding <- Some line;
      c.sent_at <- Unix.gettimeofday ();
      try write_all c.fd (line ^ "\n") 0 (String.length line + 1)
      with Unix.Unix_error _ -> finish c
    end
  in
  let on_response c resp =
    let now = Unix.gettimeofday () in
    match c.outstanding with
    | None ->
        (* a response nobody asked for: corruption *)
        incr total;
        incr failed
    | Some req ->
        c.outstanding <- None;
        incr total;
        latencies := (now -. c.sent_at) *. 1e9 :: !latencies;
        exchanges := (req, resp) :: !exchanges;
        let req_rid =
          match String.index_opt req ' ' with
          | Some i -> String.sub req 0 i
          | None -> req
        in
        (match Svc_proto.parse_response resp with
        | Ok { Svc_proto.result = Svc_proto.Ok_ _; rid } when rid = req_rid ->
            incr ok
        | Ok { Svc_proto.result = Svc_proto.Ok_ _; _ } ->
            (* ok body under the wrong id: cross-wired *)
            incr failed
        | Ok { Svc_proto.result = Svc_proto.Busy; _ } -> incr busy
        | Ok _ | Error _ -> incr failed);
        send c
  in
  let scratch = Bytes.create 65536 in
  let started = Unix.gettimeofday () in
  Array.iter send states;
  while !live > 0 do
    let fds =
      Array.to_list states
      |> List.filter_map (fun c -> if c.closed then None else Some c.fd)
    in
    if fds <> [] then begin
      let ready, _, _ =
        try Unix.select fds [] [] 1.0
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match
            Array.find_opt (fun c -> (not c.closed) && c.fd == fd) states
          with
          | None -> ()
          | Some c -> (
              let n =
                try Unix.read c.fd scratch 0 (Bytes.length scratch)
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then finish c
              else
                Svc_reader.feed c.reader scratch ~off:0 ~len:n
                |> List.iter (function
                     | Svc_reader.Line l -> on_response c l
                     | Svc_reader.Overlong ->
                         incr total;
                         incr failed)))
        ready
    end
  done;
  let elapsed = Unix.gettimeofday () -. started in
  let exchanges = List.rev !exchanges in
  let mismatched = if verify then verify_exchanges exchanges else 0 in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  ( {
      conns;
      total = !total;
      ok = !ok;
      busy = !busy;
      failed = !failed;
      mismatched;
      elapsed_s = elapsed;
      throughput_rps =
        (if elapsed > 0.0 then float_of_int !total /. elapsed else 0.0);
      p50_ns = percentile sorted 0.50;
      p99_ns = percentile sorted 0.99;
    },
    exchanges )
