(** Concurrent TCP front-end over {!Svc_service}.

    An accept loop on the calling thread hands connections round-robin
    to a fixed pool of worker domains; each worker multiplexes its
    share of the connections with its own select loop, framing requests
    through the length-capped {!Svc_reader} and answering them with
    {!Svc_service.handle_concurrent} (which enforces the cross-domain
    safety discipline: per-session serialization, the heavy-verb mutex,
    the locked cache, the [Indexed] evaluation strategy).

    {2 Admission contract}

    Load is shed, never queued:

    - a connection arriving while [max_conns] are active is answered
      with a single [- busy] line and closed;
    - a request arriving while its session is over quota (see
      {!Svc_service.create}) is answered [ID busy];
    - a request line longer than [max_line] bytes is dropped as it
      streams in (memory stays bounded) and answered with an error.

    [busy] is retryable by contract: nothing was evaluated, nothing was
    cached. *)

type config = {
  workers : int;  (** connection worker domains, clamped to [1, 64] *)
  max_conns : int;  (** active-connection cap; excess sheds with [busy] *)
  max_line : int;  (** per-request line byte cap *)
}

val default_config : config
(** 4 workers, 64 connections, 1 MiB lines. *)

val serve :
  ?stop:(unit -> bool) ->
  ?on_listen:(Unix.sockaddr -> unit) ->
  config ->
  Svc_service.t ->
  Unix.sockaddr ->
  unit
(** [serve config service addr] binds [addr] (with [SO_REUSEADDR]),
    spawns the workers, and runs the accept loop on the calling thread.
    [on_listen] fires once with the actual bound address — how callers
    binding port [0] learn the ephemeral port.  [stop] is polled a few
    times a second; a [true] stops accepting, closes every connection,
    joins the workers and returns.  Without [stop], never returns.

    The [service] must be dedicated to this server and not driven
    through the single-coordinator entry points concurrently (see
    {!Svc_service}). *)
