(* Server front-ends: a stdio loop and a Unix-domain-socket select
   loop, plus the lockstep client used by the CLI and the CI smoke
   test.  Both loops are single-threaded coordinators — concurrency
   comes from Svc_service.handle_batch dispatching onto the domain
   pool, not from threads per connection. *)

let serve_channels service ic oc =
  try
    while true do
      let line = input_line ic in
      if String.trim line <> "" then (
        let resp = Svc_service.handle_line service line in
        output_string oc (Svc_proto.print_response resp);
        output_char oc '\n';
        flush oc)
    done
  with End_of_file -> ()

let serve_stdio service = serve_channels service stdin stdout

(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

let rec write_all fd s off len =
  if len > 0 then
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* complete lines (sans terminator) and the unterminated remainder *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub data (last + 1) (String.length data - last - 1));
      String.split_on_char '\n' (String.sub data 0 last)
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")

let serve_socket ?(max_clients = 64) ~path service =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock max_clients;
  let clients = ref [] in
  let scratch = Bytes.create 65536 in
  let drop fd =
    close_quietly fd;
    clients := List.filter (fun c -> c.fd != fd) !clients
  in
  while true do
    let fds = sock :: List.map (fun c -> c.fd) !clients in
    let ready, _, _ =
      try Unix.select fds [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd == sock then (
          let cfd, _ = Unix.accept sock in
          clients := { fd = cfd; buf = Buffer.create 256 } :: !clients)
        else
          match List.find_opt (fun c -> c.fd == fd) !clients with
          | None -> ()
          | Some c -> (
              let n =
                try Unix.read fd scratch 0 (Bytes.length scratch)
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then drop fd
              else (
                Buffer.add_subbytes c.buf scratch 0 n;
                (* all lines a client delivered in one wakeup form one
                   batch: responses come back in order, misses overlap
                   on the pool *)
                match take_lines c.buf with
                | [] -> ()
                | lines -> (
                    let resps = Svc_service.handle_lines service lines in
                    let out =
                      String.concat ""
                        (List.map
                           (fun r -> Svc_proto.print_response r ^ "\n")
                           resps)
                    in
                    try write_all fd out 0 (String.length out)
                    with Unix.Unix_error _ -> drop fd))))
      ready
  done

(* ------------------------------------------------------------------ *)

(* Lockstep client: send one line, await one response line, repeat.
   Echoes responses to [oc]; returns the number of [error]/[timeout]
   responses so scripted callers can exit nonzero. *)
let client_socket ~path lines oc =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let sic = Unix.in_channel_of_descr sock in
  let soc = Unix.out_channel_of_descr sock in
  let bad = ref 0 in
  (try
     List.iter
       (fun line ->
         if String.trim line <> "" then (
           output_string soc line;
           output_char soc '\n';
           flush soc;
           let resp = input_line sic in
           (match Svc_proto.parse_response resp with
           | Ok { result = Svc_proto.Ok_ _; _ } -> ()
           | Ok _ | Error _ -> incr bad);
           output_string oc resp;
           output_char oc '\n';
           flush oc))
       lines
   with End_of_file ->
     prerr_endline "client: server closed the connection";
     incr bad);
  close_quietly sock;
  !bad
