(* Server front-ends: a stdio loop and a Unix-domain-socket select
   loop, plus the lockstep client used by the CLI and the CI smoke
   test.  Both loops are single-threaded coordinators — concurrency
   comes from Svc_service.handle_batch dispatching onto the domain
   pool, not from threads per connection.  (The concurrent TCP
   front-end lives in Svc_tcp.) *)

(* A peer that disconnects mid-write must surface as EPIPE on the write
   call — where the per-client drop logic handles it — not as a fatal
   SIGPIPE to the whole process.  Every entry point that writes to a
   socket or a pipe calls this first; harmless to repeat, and a no-op on
   systems without the signal. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let serve_channels service ic oc =
  ignore_sigpipe ();
  try
    while true do
      let line = input_line ic in
      if String.trim line <> "" then (
        let resp = Svc_service.handle_line service line in
        output_string oc (Svc_proto.print_response resp);
        output_char oc '\n';
        flush oc)
    done
  with End_of_file -> ()

let serve_stdio service = serve_channels service stdin stdout

(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

let rec write_all fd s off len =
  if len > 0 then
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* complete lines (sans terminator) and the unterminated remainder *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub data (last + 1) (String.length data - last - 1));
      String.split_on_char '\n' (String.sub data 0 last)
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")

(* Bind a Unix-domain listener at [path].  A leftover socket file from a
   crashed server makes bind fail with EADDRINUSE even though nobody is
   listening; blindly unlinking would instead steal the address out from
   under a *live* server (its clients would silently land on us).  So on
   EADDRINUSE, probe with a connect: refused (or otherwise dead) means
   stale — remove and rebind; accepted means a live server — fail. *)
let bind_unix ~path =
  let addr = Unix.ADDR_UNIX path in
  let listener () =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.bind sock addr;
      sock
    with e ->
      close_quietly sock;
      raise e
  in
  try listener ()
  with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe addr;
        true
      with Unix.Unix_error _ -> false
    in
    close_quietly probe;
    if live then
      failwith (Printf.sprintf "%s: a server is already listening" path)
    else begin
      (try Sys.remove path with Sys_error _ -> ());
      listener ()
    end

let serve_socket ?(max_clients = 64) ?stop ~path service =
  ignore_sigpipe ();
  let sock = bind_unix ~path in
  Unix.listen sock max_clients;
  let clients = ref [] in
  let scratch = Bytes.create 65536 in
  let drop fd =
    close_quietly fd;
    clients := List.filter (fun c -> c.fd != fd) !clients
  in
  (* with a stop predicate the select must wake periodically to poll it;
     without one it parks indefinitely, as before *)
  let tick = match stop with None -> -1.0 | Some _ -> 0.25 in
  let stopped () = match stop with None -> false | Some f -> f () in
  while not (stopped ()) do
    let fds = sock :: List.map (fun c -> c.fd) !clients in
    let ready, _, _ =
      try Unix.select fds [] [] tick
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd == sock then (
          match Unix.accept sock with
          | cfd, _ ->
              clients := { fd = cfd; buf = Buffer.create 256 } :: !clients
          | exception Unix.Unix_error _ -> ())
        else
          match List.find_opt (fun c -> c.fd == fd) !clients with
          | None -> ()
          | Some c -> (
              let n =
                try Unix.read fd scratch 0 (Bytes.length scratch)
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then drop fd
              else (
                Buffer.add_subbytes c.buf scratch 0 n;
                (* all lines a client delivered in one wakeup form one
                   batch: responses come back in order, misses overlap
                   on the pool *)
                match take_lines c.buf with
                | [] -> ()
                | lines -> (
                    let resps = Svc_service.handle_lines service lines in
                    let out =
                      String.concat ""
                        (List.map
                           (fun r -> Svc_proto.print_response r ^ "\n")
                           resps)
                    in
                    try write_all fd out 0 (String.length out)
                    with Unix.Unix_error _ -> drop fd))))
      ready
  done;
  List.iter (fun c -> close_quietly c.fd) !clients;
  close_quietly sock;
  try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)

(* Lockstep client: send one line, await one response line, repeat.
   Echoes responses to [oc]; returns the number of [error]/[timeout]/
   [busy] responses so scripted callers can exit nonzero. *)
let client ~addr lines oc =
  ignore_sigpipe ();
  let sock =
    Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  Unix.connect sock addr;
  let sic = Unix.in_channel_of_descr sock in
  let soc = Unix.out_channel_of_descr sock in
  let bad = ref 0 in
  (try
     List.iter
       (fun line ->
         if String.trim line <> "" then (
           output_string soc line;
           output_char soc '\n';
           flush soc;
           let resp = input_line sic in
           (match Svc_proto.parse_response resp with
           | Ok { result = Svc_proto.Ok_ _; _ } -> ()
           | Ok _ | Error _ -> incr bad);
           output_string oc resp;
           output_char oc '\n';
           flush oc))
       lines
   with
  | End_of_file ->
      prerr_endline "client: server closed the connection";
      incr bad
  | Sys_error m ->
      prerr_endline ("client: " ^ m);
      incr bad);
  close_quietly sock;
  !bad

let client_socket ~path lines oc = client ~addr:(Unix.ADDR_UNIX path) lines oc
