(** Request dispatch for the decision service.

    Owns the session store, the LRU result cache, and the per-request
    deadline machinery.  One [t] serves one server process.

    Two threading contracts coexist and must not be mixed on one [t]:

    - the {e single-coordinator} entry points ({!handle},
      {!handle_batch}, {!handle_line}, {!handle_lines}) must all be
      called from one coordinating thread ({!handle_batch} farms work
      out to the {!Dl_parallel} pool internally but never lets workers
      touch the cache or the session store);
    - the {e concurrent} entry points ({!handle_concurrent},
      {!handle_line_concurrent}) may be called from many domains at
      once — the TCP connection workers do.  They serialize per session
      (whole-request session lock), serialize the non-worker-safe verbs
      globally (their decision procedures share coordinator-only memo
      tables), force the [Indexed] evaluation strategy, and shed
      over-quota requests with [busy] before planning.

    {2 Deadlines}

    A request with [deadline=MS] gets a {!Dl_cancel} token expiring [MS]
    milliseconds after handling starts.  The token is probed once before
    any work (so [deadline=0] deterministically returns [timeout]), at
    every semi-naive round boundary inside evaluation, at every chase
    step inside the separator, and between rewrite-check samples.  A
    timeout aborts only that request: the response is [ID timeout], the
    cache is not written (only successes are cached), and the shared
    evaluator caches stay consistent (see DESIGN.md on the
    cancellation-token contract).

    {2 Caching}

    All query verbs ([eval], [holds], [mondet-test], [certain-answers],
    [rewrite-check]) are cached under the resolved objects — not their
    session names — so reloading the same program under another name, or
    in another session, still hits.  By default the key composes the
    objects' structural fingerprints ({!Instance.fingerprint_hex},
    {!Datalog.fingerprint_hex}, {!View.fingerprint_hex}), making key
    construction O(1) on the warm path, independent of instance size;
    [Printed] mode keeps the legacy digest of canonical pretty-printed
    forms as a differential oracle (both modes produce identical
    hit/miss traces).

    {2 Mutations and materialized fixpoints}

    [assert]/[retract] edit a session instance in place and are never
    cached (every execution changes state).  They require an existing
    session, run sequentially at their position on the batch path, and
    hold the session lock on the concurrent path like everything else.
    Each session keeps a handful of incrementally maintained fixpoints
    ({!Dl_incr.t}) per instance, keyed by program fingerprint: a
    cache-missed tuple-returning [eval] creates one (on the
    single-request and concurrent paths — batch pool workers never touch
    session state), mutations repair all of them (counting + DRed), and
    subsequent [eval]/[holds] answer from a repaired one instead of
    re-running the fixpoint.  Because cache keys include the instance
    fingerprint, a mutation changes every affected key — the cache can
    never serve a pre-mutation answer.  A deadline expiring mid-repair
    drops the instance's materializations wholesale and leaves the
    instance unedited, so [timeout] never publishes a half-applied
    mutation; the next eval simply rebuilds cold. *)

type t

type key_mode = Fingerprint | Printed
(** Cache-key scheme, see the caching section above. *)

val create :
  ?cache_capacity:int ->
  ?parallel:bool ->
  ?key_mode:key_mode ->
  ?quota:int ->
  ?quota_window:float ->
  unit ->
  t
(** [cache_capacity] defaults to 512 entries; [parallel] (default true)
    lets {!handle_batch} dispatch cache-missed [eval]/[holds] requests
    onto the {!Dl_parallel} domain pool.  [key_mode] defaults to
    [Fingerprint] unless the environment variable [MONDET_CACHE_KEY] is
    set to [printed].  [quota], when given, caps each session at that
    many requests per [quota_window] seconds (default window 1s) on the
    concurrent path; over-quota requests answer [busy].  The
    single-coordinator entry points ignore the quota. *)

val handle : t -> Svc_proto.request -> Svc_proto.response
(** Handle one request synchronously on the calling thread. *)

val handle_batch : t -> Svc_proto.request list -> Svc_proto.response list
(** Handle a batch, returning responses in request order.  Loads and
    stats execute sequentially at their position (so later requests in
    the batch see them); cache-missed [eval]/[holds] requests are
    deduplicated and run concurrently on the domain pool. *)

val handle_line : t -> string -> Svc_proto.response
(** Parse one request line and handle it; a malformed line yields an
    [error] response addressed to the line's first token. *)

val handle_lines : t -> string list -> Svc_proto.response list
(** {!handle_batch} at the line level, preserving malformed lines'
    positions in the output. *)

val handle_concurrent : t -> Svc_proto.request -> Svc_proto.response
(** Handle one request on the calling domain, safely concurrent with
    other calls on other domains (see the threading contracts above).
    Returns [busy] when the session is over quota. *)

val handle_line_concurrent : t -> string -> Svc_proto.response
(** {!handle_concurrent} at the line level. *)

val requests : t -> int
val timeouts : t -> int
val sessions : t -> int
val cache : t -> Svc_cache.t

val key_mode_name : t -> string
(** ["fingerprint"] or ["printed"] — recorded in cache snapshot headers
    so a snapshot is only reloaded under the key scheme that wrote it. *)
