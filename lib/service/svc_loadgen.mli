(** Load generator for the TCP front-end.

    Drives [conns] closed-loop connections (one outstanding request
    each) from a single-threaded select loop against a running server,
    using a deterministic mixed workload over a [grid] and a [diamond]
    session, and verifies — via an in-process sequential oracle that
    re-answers every exchanged request — that the concurrent server's
    responses are byte-identical to single-client answers.  Reports
    throughput and p50/p99 latency. *)

val setup_lines : string list
(** The session-setup loads; {!run} sends them over a throwaway
    lockstep connection first.  Exposed so warm-cache harnesses can
    pre-drive the same sessions. *)

val request_line : conn:int -> seq:int -> string
(** The deterministic workload: request [seq] of connection [conn].
    Ids are globally unique (so cross-wired responses are detected);
    verbs mix cached-hit [eval], distinct-key [holds], and the heavy
    decision verbs across both sessions. *)

type stats = {
  conns : int;
  total : int;  (** responses received *)
  ok : int;
  busy : int;
  failed : int;  (** error/timeout responses, or connections cut short *)
  mismatched : int;  (** responses that differ from the oracle's *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ns : float;
  p99_ns : float;
}

val run :
  addr:Unix.sockaddr ->
  conns:int ->
  per_conn:int ->
  ?verify:bool ->
  unit ->
  stats * (string * string) list
(** Run the workload: [per_conn] requests on each of [conns]
    connections.  Returns the stats and every (request, response)
    exchange in completion order.  [verify] (default true) replays the
    exchanges through {!verify_exchanges} inline; pass [false] and call
    it yourself after joining an in-process server's domains.  The
    server must allow at least [conns + 1] connections (one extra for
    setup) and have no session quota, or [busy] sheds will show up in
    the counts. *)

val verify_exchanges : (string * string) list -> int
(** Replay (request, response) pairs through a fresh sequential
    in-process service and return how many responses differ byte-wise
    from the oracle's. *)
