(** Named service sessions.

    A session holds the programs, view collections and instances that
    were [load]ed into it; query verbs refer to them by name.  Loads
    replace silently (reload-to-update is the intended workflow).

    Each session owns a mutex.  The concurrent TCP path wraps the whole
    handling of a request in {!with_lock}, serializing requests per
    session: that is the synchronization that makes the session-owned
    mutable structures — above all the instances' lazily built index
    caches — safe to touch from many domains.  The single-coordinator
    entry points ({!Svc_service.handle}, [handle_batch]) skip the lock;
    one process never mixes both modes on one service. *)

type t

exception Missing of string
(** Raised by the lookup functions; the message names the missing object
    and the session. *)

val create : string -> t
val name : t -> string

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] holding the session's mutex (released on exception).  Not
    reentrant. *)

val over_quota : t -> limit:int -> window:float -> now:float -> bool
(** Count one request against the session's fixed-window quota and
    report whether it overflowed: at most [limit] requests per [window]
    seconds, counted in windows anchored at the first request after the
    previous window lapsed.  Call with the session lock held. *)

val set_program : t -> string -> Datalog.query -> unit
val set_views : t -> string -> View.collection -> unit
val set_instance : t -> string -> Instance.t -> unit

val program : t -> string -> Datalog.query
val views : t -> string -> View.collection
val instance : t -> string -> Instance.t
