(** Named service sessions.

    A session holds the programs, view collections and instances that
    were [load]ed into it; query verbs refer to them by name.  Loads
    replace silently (reload-to-update is the intended workflow). *)

type t

exception Missing of string
(** Raised by the lookup functions; the message names the missing object
    and the session. *)

val create : string -> t
val name : t -> string

val set_program : t -> string -> Datalog.query -> unit
val set_views : t -> string -> View.collection -> unit
val set_instance : t -> string -> Instance.t -> unit

val program : t -> string -> Datalog.query
val views : t -> string -> View.collection
val instance : t -> string -> Instance.t
