(** Named service sessions.

    A session holds the programs, view collections and instances that
    were [load]ed into it; query verbs refer to them by name.  Loads
    replace silently (reload-to-update is the intended workflow).

    Each session owns a mutex.  The concurrent TCP path wraps the whole
    handling of a request in {!with_lock}, serializing requests per
    session: that is the synchronization that makes the session-owned
    mutable structures — above all the instances' lazily built index
    caches — safe to touch from many domains.  The single-coordinator
    entry points ({!Svc_service.handle}, [handle_batch]) skip the lock;
    one process never mixes both modes on one service. *)

type t

exception Missing of string
(** Raised by the lookup functions; the message names the missing object
    and the session. *)

val create : string -> t
val name : t -> string

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] holding the session's mutex (released on exception).  Not
    reentrant. *)

val over_quota : t -> limit:int -> window:float -> now:float -> bool
(** Count one request against the session's fixed-window quota and
    report whether it overflowed: at most [limit] requests per [window]
    seconds, counted in windows anchored at the first request after the
    previous window lapsed.  Call with the session lock held. *)

val set_program : t -> string -> Datalog.query -> unit
val set_views : t -> string -> View.collection -> unit

val set_instance : t -> string -> Instance.t -> unit
(** Store (or replace) an instance under the name.  Replacement is
    wholesale, so every materialization registered over the name is
    dropped; the mutation verbs use {!update_instance} instead. *)

val update_instance : t -> string -> Instance.t -> unit
(** Like {!set_instance} but keeps the name's materializations: the
    mutation path edits the instance {e through} them
    ({!Dl_incr.assert_facts} / [retract_facts]), so after a successful
    repair they are already consistent with the value published here. *)

val program : t -> string -> Datalog.query
val views : t -> string -> View.collection
val instance : t -> string -> Instance.t

val set_rpqs : t -> string -> (string * Rpq.t) list -> unit
(** Register an [rpq-load]'s parsed definitions: each definition
    individually (usable wherever a verb takes an RPQ name) and the
    ordered list as a whole under the load's own name (usable as the
    view set of [rpq-rewrite]). *)

val rpq : t -> string -> Rpq.t
val rpq_set : t -> string -> (string * Rpq.t) list

(** {2 Materialized fixpoints}

    Incrementally maintained fixpoints ({!Dl_incr.t}) over a named
    instance, keyed by a caller-chosen string (the service uses the
    program's structural fingerprint, so a reloaded program never hits a
    stale entry).  At most a small fixed number are kept per instance
    (oldest evicted): each one is repaired on every mutation of the
    instance.  Like all session state, access only under the entry
    point's session regime — the concurrent path's {!with_lock}, or the
    single-coordinator discipline. *)

val mat : t -> string -> string -> Dl_incr.t option
(** [mat t inst key]: the materialization registered for [inst] under
    [key], if any.  Callers must still check {!Dl_incr.valid} and that
    {!Dl_incr.base} matches the current instance. *)

val set_mat : t -> string -> string -> Dl_incr.t -> unit
(** Register a materialization (replacing any entry with the same key,
    evicting the oldest beyond the per-instance cap). *)

val mats : t -> string -> (string * Dl_incr.t) list
(** All materializations registered for the instance name, newest
    first. *)

val set_mats : t -> string -> (string * Dl_incr.t) list -> unit
(** Replace the instance's whole materialization list (the mutation path
    uses this to prune entries that went stale or were poisoned). *)

val drop_mats : t -> string -> unit
(** Forget every materialization for the instance name (the mutation
    path's response to a cancellation mid-repair). *)
