(** Structurally-hashed LRU result cache for the decision service.

    Maps digest keys (built with {!key} from canonical pretty-printed
    forms of programs, goals and instances) or fingerprint-composed keys
    to response bodies of successful requests.  Bounded capacity with
    least-recently-used eviction; O(1) lookup and insert.

    Domain-safe: every operation takes the cache's internal mutex, so
    the concurrent TCP connection workers share one cache.  The critical
    sections are pointer swaps only — no evaluation ever runs under the
    lock. *)

type t

val create : int -> t
(** [create capacity].  @raise Invalid_argument if [capacity < 1]. *)

val key : string list -> string
(** Digest of the canonical parts (verb tag, program text, instance
    text, ...), order-sensitive. *)

val find : t -> string -> string option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : t -> string -> string -> unit
(** Insert or refresh a binding, evicting the least-recently-used entry
    when over capacity.  Does not count a hit or a miss. *)

val mem : t -> string -> bool
(** Presence check without touching counters or recency. *)

val fold_lru : t -> (string -> string -> 'a -> 'a) -> 'a -> 'a
(** Fold over all bindings, least-recently-used first, holding the
    cache lock for the whole traversal — so replaying the folded
    sequence through {!add} reproduces contents and recency order
    exactly (this is what the {!Svc_persist} snapshot does).  [f] must
    not call back into the cache (the mutex is not reentrant). *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
