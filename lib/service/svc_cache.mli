(** Structurally-hashed LRU result cache for the decision service.

    Maps digest keys (built with {!key} from canonical pretty-printed
    forms of programs, goals and instances) to response bodies of
    successful requests.  Bounded capacity with least-recently-used
    eviction; O(1) lookup and insert.

    Not thread-safe — the service touches it from the coordinating
    thread only; pooled batch workers never see it. *)

type t

val create : int -> t
(** [create capacity].  @raise Invalid_argument if [capacity < 1]. *)

val key : string list -> string
(** Digest of the canonical parts (verb tag, program text, instance
    text, ...), order-sensitive. *)

val find : t -> string -> string option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : t -> string -> string -> unit
(** Insert or refresh a binding, evicting the least-recently-used entry
    when over capacity.  Does not count a hit or a miss. *)

val mem : t -> string -> bool
(** Presence check without touching counters or recency. *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
