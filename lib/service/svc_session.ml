(* A named service session: the server-side store of loaded programs,
   view collections and instances that requests refer to by name. *)

type t = {
  name : string;
  programs : (string, Datalog.query) Hashtbl.t;
  views : (string, View.collection) Hashtbl.t;
  instances : (string, Instance.t) Hashtbl.t;
}

exception Missing of string

let missing fmt = Printf.ksprintf (fun s -> raise (Missing s)) fmt

let create name =
  {
    name;
    programs = Hashtbl.create 8;
    views = Hashtbl.create 8;
    instances = Hashtbl.create 8;
  }

let name t = t.name

let set_program t n q = Hashtbl.replace t.programs n q
let set_views t n v = Hashtbl.replace t.views n v
let set_instance t n i = Hashtbl.replace t.instances n i

let program t n =
  match Hashtbl.find_opt t.programs n with
  | Some q -> q
  | None -> missing "no program %S in session %S" n t.name

let views t n =
  match Hashtbl.find_opt t.views n with
  | Some v -> v
  | None -> missing "no views %S in session %S" n t.name

let instance t n =
  match Hashtbl.find_opt t.instances n with
  | Some i -> i
  | None -> missing "no instance %S in session %S" n t.name
