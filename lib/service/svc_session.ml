(* A named service session: the server-side store of loaded programs,
   view collections and instances that requests refer to by name.

   Each session carries its own mutex.  The concurrent TCP workers hold
   it for the whole handling of a request against the session —
   planning, evaluation and stores — which serializes requests per
   session and thereby publishes every session-owned mutable structure
   (the instances' lazy index caches above all) between domains with a
   proper happens-before edge.  Requests on different sessions never
   share objects, so they run in parallel.  The single-coordinator
   entry points do not take the lock (nothing to race with). *)

type t = {
  name : string;
  mu : Mutex.t;
  programs : (string, Datalog.query) Hashtbl.t;
  views : (string, View.collection) Hashtbl.t;
  instances : (string, Instance.t) Hashtbl.t;
  rpqs : (string, Rpq.t) Hashtbl.t;
  (* the ordered definition lists as loaded, so a load's NAME doubles as
     a view set for [rpq-rewrite] *)
  rpq_sets : (string, (string * Rpq.t) list) Hashtbl.t;
  (* materialized fixpoints over an instance, keyed by instance name and
     then by program fingerprint; maintained incrementally by the
     mutation verbs and consulted by eval/holds.  Owned by the session
     like everything else here: touch only under the entry point's
     session regime (see the mutex comment above). *)
  mats : (string, (string * Dl_incr.t) list) Hashtbl.t;
  (* fixed-window request quota, guarded by [mu] *)
  mutable win_start : float;
  mutable win_count : int;
}

exception Missing of string

let missing fmt = Printf.ksprintf (fun s -> raise (Missing s)) fmt

let create name =
  {
    name;
    mu = Mutex.create ();
    programs = Hashtbl.create 8;
    views = Hashtbl.create 8;
    instances = Hashtbl.create 8;
    rpqs = Hashtbl.create 8;
    rpq_sets = Hashtbl.create 8;
    mats = Hashtbl.create 8;
    win_start = neg_infinity;
    win_count = 0;
  }

let name t = t.name

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Count one request against the fixed [window]-second quota window;
   [true] means the caller must shed this request with [busy].  Must be
   called with the session lock held (the concurrent path does). *)
let over_quota t ~limit ~window ~now =
  if now -. t.win_start >= window then begin
    t.win_start <- now;
    t.win_count <- 1;
    false
  end
  else begin
    t.win_count <- t.win_count + 1;
    t.win_count > limit
  end

let set_program t n q = Hashtbl.replace t.programs n q
let set_views t n v = Hashtbl.replace t.views n v

(* Reloading an instance replaces its contents wholesale, so every
   materialization over it is stale; the mutation path instead edits the
   instance *through* its materializations and publishes the result with
   [update_instance], which keeps them. *)
let set_instance t n i =
  Hashtbl.remove t.mats n;
  Hashtbl.replace t.instances n i

let update_instance t n i = Hashtbl.replace t.instances n i

(* Cap on materializations per instance: a mat is a full extra fixpoint
   plus counting tables, and every one is repaired on every mutation, so
   an unbounded set would make mutations arbitrarily slow.  Oldest out. *)
let max_mats = 8

let mats t n = Option.value (Hashtbl.find_opt t.mats n) ~default:[]

let set_mats t n = function
  | [] -> Hashtbl.remove t.mats n
  | l -> Hashtbl.replace t.mats n l

let set_mat t n key m =
  let l = (key, m) :: List.remove_assoc key (mats t n) in
  set_mats t n (List.filteri (fun i _ -> i < max_mats) l)

let mat t n key = List.assoc_opt key (mats t n)
let drop_mats t n = Hashtbl.remove t.mats n

let program t n =
  match Hashtbl.find_opt t.programs n with
  | Some q -> q
  | None -> missing "no program %S in session %S" n t.name

let views t n =
  match Hashtbl.find_opt t.views n with
  | Some v -> v
  | None -> missing "no views %S in session %S" n t.name

let instance t n =
  match Hashtbl.find_opt t.instances n with
  | Some i -> i
  | None -> missing "no instance %S in session %S" n t.name

(* One rpq-load registers every definition individually *and* the
   ordered list under the load's own name, so the same NAME serves as an
   RPQ (when the list is a singleton it shadows nothing) and as the view
   set of [rpq-rewrite]. *)
let set_rpqs t n defs =
  List.iter (fun (dn, e) -> Hashtbl.replace t.rpqs dn e) defs;
  Hashtbl.replace t.rpq_sets n defs

let rpq t n =
  match Hashtbl.find_opt t.rpqs n with
  | Some e -> e
  | None -> missing "no rpq %S in session %S" n t.name

let rpq_set t n =
  match Hashtbl.find_opt t.rpq_sets n with
  | Some l -> l
  | None -> missing "no rpq set %S in session %S" n t.name
