(** Server front-ends over {!Svc_service}.

    Both loops are single-threaded coordinators; concurrency comes from
    {!Svc_service.handle_batch} dispatching cache-missed [eval]/[holds]
    work onto the {!Dl_parallel} domain pool. *)

val serve_stdio : Svc_service.t -> unit
(** Read request lines from stdin, write one response line per request
    to stdout (flushed per line), until EOF. *)

val serve_channels : Svc_service.t -> in_channel -> out_channel -> unit
(** {!serve_stdio} over explicit channels (for tests). *)

val serve_socket : ?max_clients:int -> path:string -> Svc_service.t -> unit
(** Listen on a Unix-domain socket at [path] (an existing file at that
    path is removed first) and serve clients with a select loop.  All
    complete lines a client delivers in one wakeup are handled as one
    batch.  Never returns; the process is expected to be killed. *)

val client_socket : path:string -> string list -> out_channel -> int
(** Lockstep client: connect to [path], send each nonempty line and
    await its response, echoing responses to the channel.  Returns the
    number of non-[ok] responses (so scripted callers can exit
    nonzero). *)
