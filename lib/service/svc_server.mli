(** Server front-ends over {!Svc_service}.

    Both loops here are single-threaded coordinators; concurrency comes
    from {!Svc_service.handle_batch} dispatching cache-missed
    [eval]/[holds] work onto the {!Dl_parallel} domain pool.  The
    concurrent TCP front-end — worker domains multiplexing many
    connections — lives in {!Svc_tcp}. *)

val ignore_sigpipe : unit -> unit
(** Turn SIGPIPE off for the process so a peer disconnecting mid-write
    surfaces as an [EPIPE] error on the write — handled per client —
    instead of killing the server.  Called by every socket entry point
    here and in {!Svc_tcp}; idempotent. *)

val serve_stdio : Svc_service.t -> unit
(** Read request lines from stdin, write one response line per request
    to stdout (flushed per line), until EOF. *)

val serve_channels : Svc_service.t -> in_channel -> out_channel -> unit
(** {!serve_stdio} over explicit channels (for tests). *)

val bind_unix : path:string -> Unix.file_descr
(** Create and bind a Unix-domain stream listener at [path].  If the
    address is taken, probe it with a connect: a stale socket file left
    by a crashed server (nobody accepts the connect) is removed and the
    bind retried; a live listener makes this raise [Failure] rather
    than steal the address.
    @raise Failure if another server is listening at [path].
    @raise Unix.Unix_error on other bind failures. *)

val serve_socket :
  ?max_clients:int ->
  ?stop:(unit -> bool) ->
  path:string ->
  Svc_service.t ->
  unit
(** Listen on a Unix-domain socket at [path] (stale socket files are
    reclaimed, live servers are not — see {!bind_unix}) and serve
    clients with a select loop.  All complete lines a client delivers
    in one wakeup are handled as one batch.  Without [stop], never
    returns; with it, the predicate is polled a few times a second and
    a [true] closes every client, the listener and the socket file
    before returning. *)

val client : addr:Unix.sockaddr -> string list -> out_channel -> int
(** Lockstep client: connect to [addr] (Unix-domain or TCP), send each
    nonempty line and await its response, echoing responses to the
    channel.  Returns the number of non-[ok] responses (so scripted
    callers can exit nonzero). *)

val client_socket : path:string -> string list -> out_channel -> int
(** {!client} over [Unix.ADDR_UNIX path]. *)
