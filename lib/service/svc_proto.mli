(** The mondet service wire protocol.

    Line-oriented text: one request per line, exactly one response line
    per request, in request order.

    {v
ID load SESSION program NAME goal GOAL [deadline=MS] : RULES
ID load SESSION views NAME [deadline=MS] : RULES
ID load SESSION instance NAME [deadline=MS] : FACTS
ID assert SESSION INST [deadline=MS] : FACTS
ID retract SESSION INST [deadline=MS] : FACTS
ID eval SESSION PROG INST [deadline=MS]
ID holds SESSION PROG INST (C1,...,Cn) [deadline=MS]
ID mondet-test SESSION PROG VIEWS [depth=N] [deadline=MS]
ID certain-answers SESSION PROG VIEWS INST [deadline=MS]
ID rewrite-check SESSION PROG VIEWS [samples=N] [deadline=MS]
ID rpq-load SESSION NAME [deadline=MS] : DEFS
ID rpq-eval SESSION RPQ INST [(C1[,C2])] [deadline=MS]
ID rpq-rewrite SESSION RPQ VIEWSET INST [(C1[,C2])] [deadline=MS]
ID stats [deadline=MS]
    v}

    The [load], [assert] and [retract] payloads after [" : "] use the
    {!Parse} surface syntax ([assert]/[retract] payloads are fact lists,
    as for [load … instance]).  [assert] adds the facts to the named
    session instance, [retract] removes them; both answer
    [ID ok added=N size=M maintained=K] (resp. [removed=N]) where [N] is
    the number of facts that actually changed the instance, [M] its new
    size and [K] the number of materialized fixpoints incrementally
    maintained ({!Svc_service} registers one per cached evaluation over
    the instance).  Retracting an absent fact is a no-op, not an error.
    The [rpq-load] payload is a {!Rpq.parse_defs} definition list
    ([name = regex ; …]): each definition becomes a session RPQ usable
    as the RPQ argument of [rpq-eval]/[rpq-rewrite], and the ordered
    list as a whole becomes the set NAME usable as their VIEWSET
    argument.  The optional tuple selects the evaluation mode — absent:
    all pairs; [(c)]: nodes reachable from the source [c]; [(c1,c2)]:
    Boolean membership.  [rpq-rewrite] evaluates the maximal contained
    rewriting of the RPQ over the view set on the instance
    ({!Rpq_views}); its body leads with [lossless=BOOL]
    (and [gap=WORD] when lossy) before the answers.

    Responses are [ID ok BODY], [ID error MESSAGE], [ID timeout] or
    [ID busy].  [busy] is the load-shedding verdict — admission control
    refused the connection, or a per-session request quota was exceeded;
    the request itself may be perfectly fine and can be retried later. *)

type kind = Kprogram of string (** the goal predicate *) | Kviews | Kinstance

type verb =
  | Load of { kind : kind; name : string; text : string }
  | Assert of { instance : string; text : string }
  | Retract of { instance : string; text : string }
  | Eval of { program : string; instance : string }
  | Holds of { program : string; instance : string; tuple : string list }
  | Mondet_test of { program : string; views : string; depth : int option }
  | Certain_answers of { program : string; views : string; instance : string }
  | Rewrite_check of { program : string; views : string; samples : int option }
  | Rpq_load of { name : string; text : string }
  | Rpq_eval of { rpq : string; instance : string; tuple : string list option }
  | Rpq_rewrite of {
      rpq : string;
      views : string;
      instance : string;
      tuple : string list option;
    }
  | Stats

type request = {
  id : string;
  session : string option;  (** [None] exactly for [Stats] *)
  deadline_ms : int option;
  verb : verb;
}

type result = Ok_ of string | Error_ of string | Timeout | Busy

type response = { rid : string; result : result }

val is_word : string -> bool
(** Valid id / session / object name: nonempty, over the surface
    syntax's identifier characters plus ['-'], ['.']. *)

val print_request : request -> string
(** One line, no terminator.  [print_request] and [parse_request] are
    mutually inverse on well-formed requests (the qcheck round-trip
    property in [test/test_service.ml]). *)

val print_response : response -> string
(** One line; embedded newlines in bodies are flattened to spaces. *)

val parse_request : string -> (request, string * string) Stdlib.result
(** [Error (id, message)] on malformed input, where [id] is the line's
    first token (["-"] if unusable) so the server can still address its
    [error] response. *)

val parse_response : string -> (response, string) Stdlib.result
