(* Request dispatch: sessions + cache + deadlines + the domain pool.

   Every request is handled in three steps: plan (resolve the session
   objects and build a cache key and a compute thunk), look up the
   cache, compute on a miss.  Only successful bodies are cached, so a
   timeout or error never poisons the cache.

   [handle_batch] preserves per-line order semantics while extracting
   parallelism: a sequential planning pass executes loads and stats and
   resolves every query verb against the session state *at its position
   in the batch* (so a load followed by an eval of the loaded name works
   within one batch); cache-missed [eval]/[holds] requests — the only
   verbs whose evaluation allocates no fresh constants and is therefore
   safe off the coordinating thread — are deduplicated by cache key,
   grouped by instance (so no two domains race to build one instance's
   lazy indexes), and run on the {!Dl_parallel} pool under the [Indexed]
   strategy (workers must not re-enter the pool).  The remaining misses
   run sequentially after the barrier, and all cache stores and counter
   updates happen on the coordinating thread. *)

open Svc_proto

type key_mode = Fingerprint | Printed

type t = {
  sessions : (string, Svc_session.t) Hashtbl.t;
  mu : Mutex.t; (* guards [sessions]; held for table ops only *)
  heavy : Mutex.t;
      (* serializes non-worker-safe verbs across TCP workers: their
         decision procedures share coordinator-only memo caches *)
  cache : Svc_cache.t;
  parallel : bool; (* batch misses may use the domain pool *)
  key_mode : key_mode;
  quota : (int * float) option; (* per-session (limit, window seconds) *)
  requests : int Atomic.t;
  timeouts : int Atomic.t;
}

(* [MONDET_CACHE_KEY=printed] forces the legacy print-then-digest keys —
   the differential oracle for the fingerprint keys. *)
let default_key_mode () =
  match Sys.getenv_opt "MONDET_CACHE_KEY" with
  | Some s when String.lowercase_ascii (String.trim s) = "printed" -> Printed
  | _ -> Fingerprint

let create ?(cache_capacity = 512) ?(parallel = true) ?key_mode ?quota
    ?(quota_window = 1.0) () =
  {
    sessions = Hashtbl.create 8;
    mu = Mutex.create ();
    heavy = Mutex.create ();
    cache = Svc_cache.create cache_capacity;
    parallel;
    key_mode =
      (match key_mode with Some m -> m | None -> default_key_mode ());
    quota = Option.map (fun limit -> (limit, quota_window)) quota;
    requests = Atomic.make 0;
    timeouts = Atomic.make 0;
  }

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let session t n =
  match locked t (fun () -> Hashtbl.find_opt t.sessions n) with
  | Some s -> s
  | None -> reject "unknown session %S" n

let session_or_create t n =
  locked t (fun () ->
      match Hashtbl.find_opt t.sessions n with
      | Some s -> s
      | None ->
          let s = Svc_session.create n in
          Hashtbl.add t.sessions n s;
          s)

(* session of a request; the protocol parser guarantees [Some] except
   for [Stats] *)
let req_session req =
  match req.session with Some s -> s | None -> reject "missing session"

(* ------------------------------------------------------------------ *)
(* Canonical forms for cache keys.

   In the default [Fingerprint] mode a key is the verb joined with the
   resolved objects' structural fingerprints — O(1) per request on the
   warm path (instances carry theirs incrementally, programs and views
   memoize theirs), independent of instance size, and structurally equal
   objects still key equally across names and sessions.

   [Printed] mode keeps the legacy scheme — digest the canonical
   pretty-printed forms ([Datalog.pp_query] and [Instance.pp] are
   deterministic: rules in order, fact sets sorted) — as a differential
   oracle: both modes must produce the same hit/miss trace on any
   workload, which the test suite checks. *)

let query_repr q = Fmt.str "%a" Datalog.pp_query q
let instance_repr i = Fmt.str "%a" Instance.pp i
let views_repr vs = Fmt.str "%a" View.pp_collection vs
let opt_repr = function None -> "-" | Some n -> string_of_int n

let query_key t q =
  match t.key_mode with
  | Fingerprint -> Datalog.fingerprint_hex q
  | Printed -> query_repr q

let instance_key t i =
  match t.key_mode with
  | Fingerprint -> Instance.fingerprint_hex i
  | Printed -> instance_repr i

let views_key t vs =
  match t.key_mode with
  | Fingerprint -> View.fingerprint_hex vs
  | Printed -> views_repr vs

let rpq_key t e =
  match t.key_mode with
  | Fingerprint -> Rpq.fingerprint_hex e
  | Printed -> Rpq.to_string e

(* a view set keys as its named members in order: the name matters (it
   becomes the view relation) as much as the expression *)
let rpq_set_key t defs =
  String.concat ";" (List.map (fun (n, e) -> n ^ "=" ^ rpq_key t e) defs)

let tuple_repr = function
  | None -> "-"
  | Some l -> "(" ^ String.concat "," l ^ ")"

(* Fingerprint parts are fixed-width hex (only trailing parts vary in
   length), so plain concatenation is already injective and the digest
   step of the legacy scheme is dropped entirely. *)
let cache_key t parts =
  match t.key_mode with
  | Fingerprint -> String.concat ":" parts
  | Printed -> Svc_cache.key parts

(* ------------------------------------------------------------------ *)
(* Verb bodies.  Each takes the cancellation token and (where evaluation
   strategy matters) an optional engine override used by the batch pool. *)

let format_tuples = function
  | [] -> "none"
  | tuples ->
      tuples
      |> List.map (fun tup ->
             String.concat "," (List.map Const.to_string (Array.to_list tup)))
      |> List.sort_uniq compare
      |> String.concat ";"

let eval_body ?strategy ~cancel q i =
  if Datalog.goal_arity q = 0 then
    if Dl_engine.holds_boolean ?strategy ~cancel q i then "true" else "false"
  else format_tuples (Dl_engine.eval ?strategy ~cancel q i)

let holds_body ?strategy ~cancel q i tuple =
  let arity = Datalog.goal_arity q in
  if List.length tuple <> arity then
    reject "tuple has %d constants, goal arity is %d" (List.length tuple)
      arity;
  let tup = Array.of_list (List.map Const.named tuple) in
  if Dl_engine.holds ?strategy ~cancel q i tup then "true" else "false"

let format_pairs ps = format_tuples (List.map (fun (x, y) -> [| x; y |]) ps)
let format_nodes ns = format_tuples (List.map (fun c -> [| c |]) ns)

(* the optional tuple selects the mode: absent = all pairs, one constant
   = nodes reachable from that source, two = Boolean membership *)
let rpq_eval_body ?strategy ~cancel e i tuple =
  match tuple with
  | None -> format_pairs (Rpq_translate.eval ?strategy ~cancel e i)
  | Some [ x ] ->
      format_nodes
        (Rpq_translate.eval_from ?strategy ~cancel e i (Const.named x))
  | Some [ x; y ] ->
      if
        Rpq_translate.holds ?strategy ~cancel e i (Const.named x)
          (Const.named y)
      then "true"
      else "false"
  | Some l -> reject "rpq tuple has %d constants, expected 1 or 2"
                (List.length l)

let rpq_rewrite_body ?strategy ~cancel rw i tuple =
  let answers =
    match tuple with
    | None -> format_pairs (Rpq_views.certain ?strategy ~cancel rw i)
    | Some [ x ] ->
        format_nodes
          (Rpq_views.certain_from ?strategy ~cancel rw i (Const.named x))
    | Some [ x; y ] ->
        if
          Rpq_views.certain_holds ?strategy ~cancel rw i (Const.named x)
            (Const.named y)
        then "true"
        else "false"
    | Some l ->
        reject "rpq tuple has %d constants, expected 1 or 2" (List.length l)
  in
  match rw.Rpq_views.gap with
  | None -> "lossless=true " ^ answers
  | Some w ->
      Printf.sprintf "lossless=false gap=%s %s" (Rpq_nfa.word_to_string w)
        answers

let mondet_body ?strategy ~cancel q vs depth =
  match Md_decide.decide ?max_depth:depth ?engine:strategy ~cancel q vs with
  | Md_decide.Determined -> "determined"
  | Md_decide.Not_determined_cert _ -> "not-determined"
  | Md_decide.Bounded_no_failure n -> Printf.sprintf "no-failure-up-to %d" n

let certain_body ?strategy ~cancel q vs i =
  if Md_separator.certain_answers_cq_views ?engine:strategy ~cancel q vs i
  then "true"
  else "false"

(* fixed seed so rewrite-check is reproducible across runs and cache
   hits are honest *)
let rewrite_seed = 20260806

let rewrite_body ?strategy ~cancel q vs samples =
  if Datalog.goal_arity q <> 0 then
    reject "rewrite-check needs a Boolean goal";
  let n = Option.value samples ~default:8 in
  let r = Md_rewrite.inverse_rules q vs in
  let schema = Datalog.edb_schema q.Datalog.program in
  let insts = Md_rewrite.random_instances ~n ~size:10 ~seed:rewrite_seed schema in
  let rec go i = function
    | [] -> Printf.sprintf "verified samples=%d" n
    | inst :: rest ->
        Dl_cancel.check cancel;
        if
          Dl_engine.holds_boolean ?strategy ~cancel q inst
          = Dl_engine.holds_boolean ?strategy ~cancel r (View.image vs inst)
        then go (i + 1) rest
        else Printf.sprintf "failed sample=%d" i
  in
  go 0 insts

let stats_body t =
  Printf.sprintf
    "hits=%d misses=%d entries=%d evictions=%d sessions=%d requests=%d \
     timeouts=%d"
    (Svc_cache.hits t.cache) (Svc_cache.misses t.cache)
    (Svc_cache.entries t.cache)
    (Svc_cache.evictions t.cache)
    (locked t (fun () -> Hashtbl.length t.sessions))
    (Atomic.get t.requests) (Atomic.get t.timeouts)

(* ------------------------------------------------------------------ *)
(* Materialized fixpoints.

   A session may hold, per instance name, a few incrementally maintained
   fixpoints ({!Dl_incr.t}) keyed by the *program* fingerprint (the rule
   set alone — queries differing only in goal share one).  The mutation
   verbs repair them in place; eval answers from a matching one instead
   of recomputing the fixpoint.  A mat is trusted only if it is still
   [valid] (no cancelled repair) and its base fingerprints equal to the
   session's current instance, so a [load instance] replacing the
   contents — or any bug leaving the two out of step — degrades to a
   cold evaluation, never to a wrong answer. *)

let prog_mat_key (q : Datalog.query) =
  let a, b = Datalog.program_fingerprint q.Datalog.program in
  Printf.sprintf "%x:%x" a b

let valid_mat s inst_name (q : Datalog.query) i =
  match Svc_session.mat s inst_name (prog_mat_key q) with
  | Some m
    when Dl_incr.valid m
         && Instance.fingerprint (Dl_incr.base m) = Instance.fingerprint i ->
      Some m
  | _ -> None

(* The mutation body shared by all three entry points.  Callers must
   hold the session regime of their path (the concurrent path's session
   lock; the coordinator paths need nothing).  Semantics are atomic per
   request: either the instance and every live materialization reflect
   all the facts, or — on cancellation mid-repair — the instance is
   untouched and the materializations are dropped wholesale (the next
   eval rebuilds one cold), so a timeout can never publish a half-edited
   state. *)
let do_mutate s ~cancel ~asserted inst_name text =
  let i = Svc_session.instance s inst_name in
  let facts = Instance.facts (Parse.instance text) in
  let live =
    List.filter
      (fun (_, m) ->
        Dl_incr.valid m
        && Instance.fingerprint (Dl_incr.base m) = Instance.fingerprint i)
      (Svc_session.mats s inst_name)
  in
  (try
     List.iter
       (fun (_, m) ->
         if asserted then Dl_incr.assert_facts ~cancel m facts
         else Dl_incr.retract_facts ~cancel m facts)
       live
   with e ->
     Svc_session.drop_mats s inst_name;
     raise e);
  let i' =
    match live with
    | (_, m) :: _ -> Dl_incr.base m (* all live mats share the base *)
    | [] ->
        if asserted then
          List.fold_left (fun acc f -> Instance.add f acc) i facts
        else List.fold_left (fun acc f -> Instance.remove f acc) i facts
  in
  Svc_session.set_mats s inst_name live;
  Svc_session.update_instance s inst_name i';
  Printf.sprintf "%s=%d size=%d maintained=%d"
    (if asserted then "added" else "removed")
    (abs (Instance.size i' - Instance.size i))
    (Instance.size i') (List.length live)

(* ------------------------------------------------------------------ *)
(* Exception-to-result mapping.  Pure: no service state is touched, so
   it is safe to run on a pool worker; counters are updated by the
   coordinator from the returned result. *)

let exec ~cancel f =
  try
    Dl_cancel.check cancel;
    Ok_ (f ())
  with
  | Dl_cancel.Cancelled -> Timeout
  | Reject m -> Error_ m
  | Svc_session.Missing m -> Error_ m
  | Parse.Error m -> Error_ ("parse error: " ^ m)
  | Rpq.Error m -> Error_ ("rpq parse error: " ^ m)
  | Md_rewrite.Unsupported m | Md_decide.Unsupported m ->
      Error_ ("unsupported: " ^ m)
  | Invalid_argument m -> Error_ m
  | Failure m -> Error_ m

let cancel_of req =
  match req.deadline_ms with
  | None -> Dl_cancel.none
  | Some ms -> Dl_cancel.with_deadline_ms ms

(* ------------------------------------------------------------------ *)
(* Planning: resolve a query verb against the current session state and
   return the cache key, an instance-identity group tag, whether the
   computation is safe on a pool worker, and the compute thunk. *)

type plan = {
  pkey : string;
  pgroup : string;
      (* instance fingerprint: pool tasks sharing it stay serial *)
  pworker_safe : bool; (* eval/holds only: no fresh constants, no pool *)
  pcompute : Dl_engine.strategy option -> string;
}

let plan_in ?(use_mats = false) t s ~cancel req : plan =
  match req.verb with
  | Eval { program; instance } ->
      let q = Svc_session.program s program in
      let i = Svc_session.instance s instance in
      (* Mat-aware evaluation, on the entry points whose thunks run under
         the session regime ([use_mats]; the batch pool's workers must
         not touch session state, so batch evals stay mat-blind).  A
         cache-missed tuple-returning eval answers from a matching live
         materialization — O(goal) after a mutation instead of a cold
         fixpoint — and otherwise *creates* one, so the fixpoint it had
         to run anyway keeps paying off across future mutations.
         Boolean goals keep the early-stopping engine path and only read
         a mat when one already exists. *)
      let pcompute strategy =
        if not use_mats then eval_body ?strategy ~cancel q i
        else if Datalog.goal_arity q = 0 then
          match valid_mat s instance q i with
          | Some m ->
              if Instance.tuples (Dl_incr.full m) q.Datalog.goal <> [] then
                "true"
              else "false"
          | None -> eval_body ?strategy ~cancel q i
        else
          let m =
            match valid_mat s instance q i with
            | Some m -> m
            | None ->
                let m =
                  Dl_incr.create ?strategy ~cancel q.Datalog.program i
                in
                Svc_session.set_mat s instance (prog_mat_key q) m;
                m
          in
          format_tuples (Instance.tuples (Dl_incr.full m) q.Datalog.goal)
      in
      {
        pkey = cache_key t [ "eval"; query_key t q; instance_key t i ];
        pgroup = Instance.fingerprint_hex i;
        pworker_safe = true;
        pcompute;
      }
  | Holds { program; instance; tuple } ->
      let q = Svc_session.program s program in
      let i = Svc_session.instance s instance in
      let pcompute strategy =
        match if use_mats then valid_mat s instance q i else None with
        | Some m ->
            if List.length tuple <> Datalog.goal_arity q then
              reject "tuple has %d constants, goal arity is %d"
                (List.length tuple) (Datalog.goal_arity q);
            if
              Instance.mem
                (Fact.make q.Datalog.goal (List.map Const.named tuple))
                (Dl_incr.full m)
            then "true"
            else "false"
        | None -> holds_body ?strategy ~cancel q i tuple
      in
      {
        pkey =
          cache_key t
            [ "holds"; query_key t q; instance_key t i;
              String.concat "," tuple ];
        pgroup = Instance.fingerprint_hex i;
        pworker_safe = true;
        pcompute;
      }
  | Mondet_test { program; views; depth } ->
      let q = Svc_session.program s program in
      let vs = Svc_session.views s views in
      {
        pkey =
          cache_key t
            [ "mondet-test"; query_key t q; views_key t vs; opt_repr depth ];
        pgroup = "";
        pworker_safe = false;
        pcompute = (fun strategy -> mondet_body ?strategy ~cancel q vs depth);
      }
  | Certain_answers { program; views; instance } ->
      let q = Svc_session.program s program in
      let vs = Svc_session.views s views in
      let i = Svc_session.instance s instance in
      {
        pkey =
          cache_key t
            [ "certain-answers"; query_key t q; views_key t vs;
              instance_key t i ];
        pgroup = "";
        pworker_safe = false;
        pcompute = (fun strategy -> certain_body ?strategy ~cancel q vs i);
      }
  | Rewrite_check { program; views; samples } ->
      let q = Svc_session.program s program in
      let vs = Svc_session.views s views in
      {
        pkey =
          cache_key t
            [ "rewrite-check"; query_key t q; views_key t vs;
              opt_repr samples ];
        pgroup = "";
        pworker_safe = false;
        pcompute = (fun strategy -> rewrite_body ?strategy ~cancel q vs samples);
      }
  | Rpq_eval { rpq; instance; tuple } ->
      let e = Svc_session.rpq s rpq in
      let i = Svc_session.instance s instance in
      {
        pkey =
          cache_key t
            [ "rpq-eval"; rpq_key t e; instance_key t i; tuple_repr tuple ];
        pgroup = Instance.fingerprint_hex i;
        pworker_safe = true;
        pcompute = (fun strategy -> rpq_eval_body ?strategy ~cancel e i tuple);
      }
  | Rpq_rewrite { rpq; views; instance; tuple } ->
      let e = Svc_session.rpq s rpq in
      let vs = Svc_session.rpq_set s views in
      let i = Svc_session.instance s instance in
      {
        pkey =
          cache_key t
            [ "rpq-rewrite"; rpq_key t e; rpq_set_key t vs; instance_key t i;
              tuple_repr tuple ];
        pgroup = Instance.fingerprint_hex i;
        pworker_safe = true;
        (* the rewrite construction is pure automata work (Symtab is the
           only shared structure it touches, and that is domain-safe), so
           it rides the worker thunk with the evaluation *)
        pcompute =
          (fun strategy ->
            rpq_rewrite_body ?strategy ~cancel (Rpq_views.rewrite ~views:vs e)
              i tuple);
      }
  | Load _ | Rpq_load _ | Assert _ | Retract _ | Stats ->
      assert false (* handled before planning *)

let plan ?use_mats t ~cancel req : plan =
  plan_in ?use_mats t (session t (req_session req)) ~cancel req

let do_load_in s kind name text =
  match kind with
  | Kprogram goal ->
      Svc_session.set_program s name (Parse.query ~goal text);
      "loaded program " ^ name
  | Kviews ->
      Svc_session.set_views s name (Parse.views text);
      "loaded views " ^ name
  | Kinstance ->
      Svc_session.set_instance s name (Parse.instance text);
      "loaded instance " ^ name

let do_load t sess kind name text =
  do_load_in (session_or_create t sess) kind name text

let do_rpq_load_in s name text =
  let defs = Rpq.parse_defs text in
  Svc_session.set_rpqs s name defs;
  Printf.sprintf "loaded rpq %s defs=%d" name (List.length defs)

let do_rpq_load t sess name text =
  do_rpq_load_in (session_or_create t sess) name text

(* bookkeeping for one finished request; counters are atomic so both the
   coordinator and the TCP workers may call this *)
let record t result =
  (match result with Timeout -> Atomic.incr t.timeouts | _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* Single-request entry point (used by the stdio loop and the CLI's
   one-shot [batch] fallback path). *)

let handle t req : response =
  Atomic.incr t.requests;
  let cancel = cancel_of req in
  let result =
    match req.verb with
    | Load { kind; name; text } ->
        exec ~cancel (fun () -> do_load t (req_session req) kind name text)
    | Rpq_load { name; text } ->
        exec ~cancel (fun () -> do_rpq_load t (req_session req) name text)
    | Assert { instance; text } ->
        (* mutations are never cached (they change state, every execution
           matters) and require an existing session *)
        exec ~cancel (fun () ->
            do_mutate (session t (req_session req)) ~cancel ~asserted:true
              instance text)
    | Retract { instance; text } ->
        exec ~cancel (fun () ->
            do_mutate (session t (req_session req)) ~cancel ~asserted:false
              instance text)
    | Stats -> exec ~cancel (fun () -> stats_body t)
    | _ -> (
        (* plan under [exec] too: a missing object or an instantly
           expired deadline is decided before any evaluation *)
        let planned = ref None in
        match
          exec ~cancel (fun () ->
              planned := Some (plan ~use_mats:true t ~cancel req);
              "")
        with
        | (Error_ _ | Timeout | Busy) as r -> r
        | Ok_ _ -> (
            let p = Option.get !planned in
            match Svc_cache.find t.cache p.pkey with
            | Some v -> Ok_ v
            | None -> (
                match exec ~cancel (fun () -> p.pcompute None) with
                | Ok_ v ->
                    Svc_cache.add t.cache p.pkey v;
                    Ok_ v
                | r -> r)))
  in
  { rid = req.id; result = record t result }

(* ------------------------------------------------------------------ *)
(* Batched entry point. *)

type cell = {
  cplan : plan;
  ccancel : Dl_cancel.t;
  mutable cout : Svc_proto.result option;
}

type slot =
  | Done of Svc_proto.result
  | Wait of cell (* shared by every request in the batch with this key *)

let handle_batch t reqs : response list =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let slots = Array.make n (Done (Error_ "unhandled")) in
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  (* sequential planning pass, in request order *)
  for idx = 0 to n - 1 do
    let req = reqs.(idx) in
    Atomic.incr t.requests;
    let cancel = cancel_of req in
    match req.verb with
    | Load { kind; name; text } ->
        slots.(idx) <-
          Done
            (exec ~cancel (fun () -> do_load t (req_session req) kind name text))
    | Rpq_load { name; text } ->
        slots.(idx) <-
          Done
            (exec ~cancel (fun () -> do_rpq_load t (req_session req) name text))
    | Assert { instance; text } ->
        (* executed at its batch position like a load, so later verbs in
           the batch plan against the mutated instance *)
        slots.(idx) <-
          Done
            (exec ~cancel (fun () ->
                 do_mutate (session t (req_session req)) ~cancel
                   ~asserted:true instance text))
    | Retract { instance; text } ->
        slots.(idx) <-
          Done
            (exec ~cancel (fun () ->
                 do_mutate (session t (req_session req)) ~cancel
                   ~asserted:false instance text))
    | Stats -> slots.(idx) <- Done (exec ~cancel (fun () -> stats_body t))
    | _ -> (
        let planned = ref None in
        match
          exec ~cancel (fun () ->
              planned := Some (plan t ~cancel req);
              "")
        with
        | (Error_ _ | Timeout | Busy) as r -> slots.(idx) <- Done r
        | Ok_ _ -> (
            let p = Option.get !planned in
            match Svc_cache.find t.cache p.pkey with
            | Some v -> slots.(idx) <- Done (Ok_ v)
            | None -> (
                match Hashtbl.find_opt cells p.pkey with
                | Some c -> slots.(idx) <- Wait c
                | None ->
                    let c = { cplan = p; ccancel = cancel; cout = None } in
                    Hashtbl.add cells p.pkey c;
                    slots.(idx) <- Wait c)))
  done;
  (* split the deduplicated misses into pool-safe and sequential work *)
  let pooled, sequential =
    Hashtbl.fold
      (fun _ c (p, s) ->
        if t.parallel && c.cplan.pworker_safe then (c :: p, s) else (p, c :: s))
      cells ([], [])
  in
  (* group pool work by instance so one instance's lazy index caches are
     only ever touched from one domain at a time *)
  let groups : (string, cell list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt groups c.cplan.pgroup with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add groups c.cplan.pgroup (ref [ c ]))
    pooled;
  let tasks =
    Hashtbl.fold
      (fun _ l acc ->
        let cs = !l in
        (fun () ->
          List.iter
            (fun c ->
              (* workers run the pool preference: vm for the indexed
                 default and for the pool-unsafe strategies (Parallel
                 would re-enter the pool they themselves run on, Magic's
                 transform cache is unguarded); an explicit naive/vm
                 default passes through *)
              c.cout <-
                Some
                  (exec ~cancel:c.ccancel (fun () ->
                       c.cplan.pcompute (Some (Dl_engine.pool_strategy ())))))
            cs)
        :: acc)
      groups []
  in
  Dl_parallel.run_tasks tasks;
  (* remaining misses run on the coordinator with the default strategy *)
  List.iter
    (fun c ->
      c.cout <-
        Some (exec ~cancel:c.ccancel (fun () -> c.cplan.pcompute None)))
    sequential;
  (* store successes, count timeouts, emit responses in request order *)
  Hashtbl.iter
    (fun key c ->
      match c.cout with
      | Some (Ok_ v) -> Svc_cache.add t.cache key v
      | _ -> ())
    cells;
  Array.to_list
    (Array.mapi
       (fun idx req ->
         let result =
           match slots.(idx) with
           | Done r -> r
           | Wait c -> (
               match c.cout with
               | Some r -> r
               | None -> Error_ "internal: batch cell not computed")
         in
         { rid = req.id; result = record t result })
       reqs)

(* ------------------------------------------------------------------ *)
(* Line-level entry points. *)

(* ------------------------------------------------------------------ *)
(* Concurrent entry point: the TCP connection workers' request path.

   Safety discipline, in lock order:

   - [t.mu] guards the session table, held for table lookups only;
   - the session mutex is held for the whole of planning and evaluation,
     serializing requests per session — this is what makes the
     session-owned mutable structures (the instances' lazily built index
     caches foremost) safe to touch from many domains, with the mutex
     hand-off providing the publication edge;
   - non-worker-safe verbs (mondet-test, certain-answers, rewrite-check)
     additionally hold [t.heavy]: their decision procedures lean on
     process-global memo tables that are not domain-safe, so at most one
     such computation runs at a time, whatever the session;
   - the cache carries its own lock, and evaluation is forced to the
     [Indexed] strategy — the [Parallel] strategy would re-enter the
     single-coordinator domain pool, and [Magic] caches its demand
     transformations in a global table.

   Per-session quotas shed with [busy] before any planning work. *)

let handle_concurrent t req : response =
  Atomic.incr t.requests;
  let cancel = cancel_of req in
  let finish result = { rid = req.id; result = record t result } in
  match req.verb with
  | Stats -> finish (exec ~cancel (fun () -> stats_body t))
  | _ -> (
      let resolved =
        try
          Ok
            (match req.verb with
            | Load _ | Rpq_load _ -> session_or_create t (req_session req)
            | _ -> session t (req_session req))
        with Reject m -> Error m
      in
      match resolved with
      | Error m -> finish (Error_ m)
      | Ok s ->
          finish
          @@ Svc_session.with_lock s (fun () ->
                 let shed =
                   match t.quota with
                   | None -> false
                   | Some (limit, window) ->
                       Svc_session.over_quota s ~limit ~window
                         ~now:(Unix.gettimeofday ())
                 in
                 if shed then Busy
                 else
                   match req.verb with
                   | Load { kind; name; text } ->
                       exec ~cancel (fun () -> do_load_in s kind name text)
                   | Rpq_load { name; text } ->
                       exec ~cancel (fun () -> do_rpq_load_in s name text)
                   | Assert { instance; text } ->
                       (* under the session lock: serialized against every
                          other request touching this session *)
                       exec ~cancel (fun () ->
                           do_mutate s ~cancel ~asserted:true instance text)
                   | Retract { instance; text } ->
                       exec ~cancel (fun () ->
                           do_mutate s ~cancel ~asserted:false instance text)
                   | Stats -> assert false
                   | _ -> (
                       let planned = ref None in
                       match
                         exec ~cancel (fun () ->
                             planned := Some (plan_in ~use_mats:true t s ~cancel req);
                             "")
                       with
                       | (Error_ _ | Timeout | Busy) as r -> r
                       | Ok_ _ -> (
                           let p = Option.get !planned in
                           match Svc_cache.find t.cache p.pkey with
                           | Some v -> Ok_ v
                           | None ->
                               let compute () =
                                 (* concurrent connection workers: same
                                    pool preference as the batch path *)
                                 exec ~cancel (fun () ->
                                     p.pcompute
                                       (Some (Dl_engine.pool_strategy ())))
                               in
                               let r =
                                 if p.pworker_safe then compute ()
                                 else begin
                                   Mutex.lock t.heavy;
                                   Fun.protect
                                     ~finally:(fun () ->
                                       Mutex.unlock t.heavy)
                                     compute
                                 end
                               in
                               (match r with
                               | Ok_ v -> Svc_cache.add t.cache p.pkey v
                               | _ -> ());
                               r))))

let handle_line_concurrent t line : response =
  match parse_request line with
  | Error (id, msg) ->
      Atomic.incr t.requests;
      { rid = id; result = Error_ msg }
  | Ok req -> handle_concurrent t req

(* ------------------------------------------------------------------ *)

let handle_line t line : response =
  match parse_request line with
  | Error (id, msg) ->
      Atomic.incr t.requests;
      { rid = id; result = Error_ msg }
  | Ok req -> handle t req

(* Parse errors keep their position in the output; parsed requests go
   through [handle_batch] together. *)
let handle_lines t lines : response list =
  let parsed = List.map (fun l -> (l, parse_request l)) lines in
  let reqs =
    List.filter_map (function _, Ok r -> Some r | _ -> None) parsed
  in
  let handled = ref (handle_batch t reqs) in
  List.map
    (fun (_, p) ->
      match p with
      | Error (id, msg) ->
          Atomic.incr t.requests;
          { rid = id; result = Error_ msg }
      | Ok _ -> (
          match !handled with
          | r :: rest ->
              handled := rest;
              r
          | [] -> { rid = "-"; result = Error_ "internal: response underflow" }))
    parsed

let requests t = Atomic.get t.requests
let timeouts t = Atomic.get t.timeouts
let cache t = t.cache
let sessions t = locked t (fun () -> Hashtbl.length t.sessions)

let key_mode_name t =
  match t.key_mode with Fingerprint -> "fingerprint" | Printed -> "printed"
