(** Cache snapshots: persist the LRU result cache across restarts.

    Fingerprint cache keys hash process-local intern ids, so a snapshot
    records the writer's whole {!Symtab} (names in id order) ahead of
    the cache entries; {!load} re-interns those names first, and
    discards the snapshot entirely if any name lands on a different id
    than recorded — serving a stale key to a diverged table could
    return another request's body.  Loading into a freshly booted
    process always succeeds.

    The snapshot is a line-oriented text file with a
    [mondet-cache/1 mode=... syms=N entries=M] header; entries are
    stored least-recently-used first so replaying them through
    {!Svc_cache.add} reproduces recency order exactly.  See DESIGN.md
    for the full format.

    Only the cache is persisted.  Sessions — and with them the
    instances' materialized fixpoints ({!Dl_incr.t}) — die with the
    process and are rebuilt by the client reloading and re-evaluating;
    a mutation after a warm restart therefore reports [maintained=0]
    until an eval has rebuilt a materialization.  This cannot produce a
    stale answer: cache keys include the instance's structural
    fingerprint, so a snapshot entry only ever hits for the exact
    instance value it was computed on — mutate the instance and every
    subsequent query misses the old keys by construction. *)

val save : string -> Svc_service.t -> unit
(** [save path svc] snapshots [svc]'s cache to [path], atomically
    (write to [path ^ ".tmp"], then rename).  May raise [Sys_error] on
    I/O failure. *)

val load : string -> Svc_service.t -> (int, string) result
(** [load path svc] replays the snapshot at [path] into [svc]'s cache
    and returns the number of entries loaded; [Ok 0] if [path] does not
    exist.  [Error reason] — with the cache left as it was, possibly
    partially warmed — if the snapshot is malformed, was written under a
    different key mode, or its symbol ids no longer line up.  May raise
    [Sys_error] on I/O failure. *)
