(* Concurrent TCP front-end: an accept loop handing connections to a
   fixed pool of worker domains, each multiplexing its share of the
   connections with its own select loop.

   Shape and why:

   - a {e fixed} pool ({!Dl_parallel.spawn_workers}), not a domain per
     connection: domains are heavyweight (every one participates in
     every minor collection), so the domain count must track cores, not
     clients — 32 concurrent connections on 4 workers is the intended
     regime, with each worker multiplexing 8;
   - connections are assigned round-robin at accept time and never
     migrate, so a connection's reads, parses and writes all happen on
     one domain — the per-connection reader state needs no lock;
   - each worker owns a self-pipe; the accept loop hands a connection
     over by pushing the fd onto the worker's mutex-guarded inbox and
     writing one byte to the pipe, which wakes the worker's select;
   - requests go through {!Svc_service.handle_concurrent}, which
     carries the whole cross-domain safety discipline (per-session
     serialization, the heavy-verb mutex, the cache's own lock, the
     forced [Indexed] strategy);
   - admission control sheds, never queues: when [max_conns]
     connections are active the accept loop answers the newcomer with
     one [- busy] line and closes it.  The client knows immediately and
     can retry; an unbounded backlog would instead convert overload
     into unbounded latency and memory.

   A request that takes long stalls the other connections multiplexed
   on the same worker — that is the cost of the fixed pool, bounded by
   per-request deadlines and the per-session quota, and it never blocks
   accept or the other workers. *)

type config = {
  workers : int;  (** connection worker domains, clamped to [1, 64] *)
  max_conns : int;  (** active-connection cap; excess sheds with [busy] *)
  max_line : int;  (** per-request line byte cap *)
}

let default_config = { workers = 4; max_conns = 64; max_line = 1 lsl 20 }

type conn = { fd : Unix.file_descr; reader : Svc_reader.t }

type worker_slot = {
  inbox_mu : Mutex.t;
  mutable inbox : Unix.file_descr list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd s off len =
  if len > 0 then
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)

let response_line r = Svc_proto.print_response r ^ "\n"

let busy_line = response_line { Svc_proto.rid = "-"; result = Svc_proto.Busy }

(* Wake [slot]'s worker; the pipe only carries wakeups, so a full pipe
   (worker far behind) already guarantees a pending one. *)
let poke slot =
  try ignore (Unix.single_write_substring slot.wake_w "!" 0 1)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker: multiplex the connections assigned to this slot until the
   server closes.  All I/O errors on a connection just drop it. *)

let worker_loop ~closing ~active ~max_line service slot =
  let scratch = Bytes.create 65536 in
  let conns = ref [] in
  let drop c =
    close_quietly c.fd;
    Atomic.decr active;
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns
  in
  let adopt () =
    Mutex.lock slot.inbox_mu;
    let fds = List.rev slot.inbox in
    slot.inbox <- [];
    Mutex.unlock slot.inbox_mu;
    List.iter
      (fun fd ->
        conns := { fd; reader = Svc_reader.create ~max_line } :: !conns)
      fds
  in
  let answer c item =
    let line =
      match item with
      | Svc_reader.Overlong ->
          Some
            (response_line
               {
                 Svc_proto.rid = "-";
                 result =
                   Svc_proto.Error_
                     (Printf.sprintf "line exceeds %d bytes" max_line);
               })
      | Svc_reader.Line l when String.trim l = "" -> None
      | Svc_reader.Line l ->
          Some
            (response_line (Svc_service.handle_line_concurrent service l))
    in
    match line with
    | None -> true
    | Some out -> (
        try
          write_all c.fd out 0 (String.length out);
          true
        with Unix.Unix_error _ -> false)
  in
  let serve_conn c =
    let n =
      try Unix.read c.fd scratch 0 (Bytes.length scratch)
      with Unix.Unix_error _ -> 0
    in
    if n = 0 then drop c
    else
      let items = Svc_reader.feed c.reader scratch ~off:0 ~len:n in
      if not (List.for_all (answer c) items) then drop c
  in
  while not (Atomic.get closing) do
    let fds = slot.wake_r :: List.map (fun c -> c.fd) !conns in
    let ready, _, _ =
      try Unix.select fds [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd == slot.wake_r then begin
          (try ignore (Unix.read slot.wake_r scratch 0 64)
           with Unix.Unix_error _ -> ());
          adopt ()
        end
        else
          match List.find_opt (fun c -> c.fd == fd) !conns with
          | Some c -> serve_conn c
          | None -> ())
      ready;
    (* a handoff can race the select tick; adopt unconditionally so an
       inboxed connection never waits more than one tick *)
    adopt ()
  done;
  adopt ();
  List.iter (fun c -> drop c) !conns

(* ------------------------------------------------------------------ *)

let bind_listener addr =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock addr;
    sock
  with e ->
    close_quietly sock;
    raise e

let serve ?(stop = fun () -> false) ?on_listen config service addr =
  Svc_server.ignore_sigpipe ();
  let sock = bind_listener addr in
  Unix.listen sock 64;
  (match on_listen with
  | Some f -> f (Unix.getsockname sock)
  | None -> ());
  let closing = Atomic.make false in
  let active = Atomic.make 0 in
  (* mirror the spawn_workers clamp so the slots exist — fully
     initialized, published by Domain.spawn — before any worker runs *)
  let nworkers = max 1 (min config.workers 64) in
  let slots =
    Array.init nworkers (fun _ ->
        let r, w = Unix.pipe () in
        { inbox_mu = Mutex.create (); inbox = []; wake_r = r; wake_w = w })
  in
  let workers =
    Dl_parallel.spawn_workers nworkers (fun i ->
        worker_loop ~closing ~active ~max_line:config.max_line service
          slots.(i))
  in
  assert (Dl_parallel.worker_count workers = nworkers);
  let next = ref 0 in
  while not (stop ()) do
    let ready, _, _ =
      try Unix.select [ sock ] [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if ready <> [] then
      match Unix.accept sock with
      | exception Unix.Unix_error _ -> ()
      | cfd, _ ->
          if Atomic.get active >= config.max_conns then begin
            (* shed at the door: one busy line, then close — never an
               unbounded queue *)
            (try write_all cfd busy_line 0 (String.length busy_line)
             with Unix.Unix_error _ -> ());
            close_quietly cfd
          end
          else begin
            Atomic.incr active;
            let slot = slots.(!next mod nworkers) in
            incr next;
            Mutex.lock slot.inbox_mu;
            slot.inbox <- cfd :: slot.inbox;
            Mutex.unlock slot.inbox_mu;
            poke slot
          end
  done;
  Atomic.set closing true;
  Array.iter poke slots;
  Dl_parallel.join_workers workers;
  Array.iter
    (fun s ->
      close_quietly s.wake_r;
      close_quietly s.wake_w)
    slots;
  close_quietly sock
