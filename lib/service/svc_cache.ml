(* Structurally-hashed LRU result cache.

   Keys are digests of canonical pretty-printed forms (see
   {!Svc_cache.key}) or fingerprint compositions; values are the
   response bodies of successful requests.  A doubly-linked list over
   the hash table's nodes keeps recency order so both lookup and insert
   are O(1).

   Domain-safe: every operation holds the cache's own mutex, so the
   concurrent TCP workers can share one cache.  Critical sections are a
   handful of pointer swaps — nothing evaluates under the lock, so
   contention stays negligible next to request handling. *)

type node = {
  nkey : string;
  nvalue : string;
  mutable prev : node option; (* towards most-recent *)
  mutable next : node option; (* towards least-recent *)
}

type t = {
  capacity : int;
  mu : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Svc_cache.create: capacity < 1";
  {
    capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.nvalue
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k v =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl k with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.tbl k
      | None -> ());
      let n = { nkey = k; nvalue = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl > t.capacity then
        match t.tail with
        | Some last ->
            unlink t last;
            Hashtbl.remove t.tbl last.nkey;
            t.evictions <- t.evictions + 1
        | None -> ())

(* least-recent first, so replaying the fold through [add] reproduces
   both contents and recency order — the snapshot format relies on it *)
let fold_lru t f acc =
  locked t (fun () ->
      let rec go acc = function
        | None -> acc
        | Some n -> go (f n.nkey n.nvalue acc) n.prev
      in
      go acc t.tail)

let mem t k = locked t (fun () -> Hashtbl.mem t.tbl k)
let entries t = locked t (fun () -> Hashtbl.length t.tbl)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
