(* Cache snapshots: persist the fingerprint-keyed LRU across restarts.

   The subtlety is that fingerprint cache keys hash *intern ids*
   (symbols and named constants both live in the global {!Symtab}), and
   ids are assigned in first-intern order — they are process-local.  A
   key written by one process is meaningless to another unless both
   intern the same names to the same ids.  The snapshot therefore
   records the writer's full symbol table, in id order, ahead of the
   entries; [load] re-interns the names in that order before replaying a
   single entry.  At boot the table is (nearly) empty, so each name
   lands on its original id and every key stays valid.  If any name
   lands elsewhere — the snapshot is being loaded into a warm process
   whose table already diverged — the whole snapshot is discarded
   rather than risk serving another key's cached body.

   Format (text, one record per line):

   {v
   mondet-cache/1 mode=<fingerprint|printed> syms=<N> entries=<M>
   <N lines: "%S", symbol names in id order 0..N-1>
   <M lines: "%S %S", key then body, least-recently-used first>
   v}

   Entries are written least-recent first so that replaying them through
   {!Svc_cache.add} reproduces both contents and recency order.  [save]
   writes to a temporary sibling and renames, so a crash mid-write never
   clobbers a good snapshot. *)

let version_line mode ~syms ~entries =
  Printf.sprintf "mondet-cache/1 mode=%s syms=%d entries=%d" mode syms entries

let save path svc =
  let cache = Svc_service.cache svc in
  let mode = Svc_service.key_mode_name svc in
  (* snapshot the entries first: the symbol table only ever grows, so
     every id a key mentions is covered by a [size] read taken after *)
  let entries = List.rev (Svc_cache.fold_lru cache (fun k v acc -> (k, v) :: acc) []) in
  let syms = Symtab.size () in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (version_line mode ~syms ~entries:(List.length entries));
      output_char oc '\n';
      for id = 0 to syms - 1 do
        Printf.fprintf oc "%S\n" (Symtab.name id)
      done;
      List.iter (fun (k, v) -> Printf.fprintf oc "%S %S\n" k v) entries);
  Sys.rename tmp path

(* Re-intern the snapshot's names in id order; [Error] if any lands on a
   different id than the snapshot recorded (table already diverged). *)
let preload_symbols names =
  let rec go id = function
    | [] -> Ok ()
    | name :: rest ->
        if Symtab.intern name = id then go (id + 1) rest
        else
          Error
            (Printf.sprintf
               "symbol %S interned to a different id than the snapshot \
                recorded (expected %d)"
               name id)
  in
  go 0 names

let load path svc =
  if not (Sys.file_exists path) then Ok 0
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let header = input_line ic in
          match
            Scanf.sscanf header "mondet-cache/%d mode=%s@ syms=%d entries=%d"
              (fun v m s e -> (v, m, s, e))
          with
          | exception Scanf.Scan_failure m ->
              Error ("malformed snapshot header: " ^ m)
          | 1, mode, syms, entries ->
              if mode <> Svc_service.key_mode_name svc then
                Error
                  (Printf.sprintf
                     "snapshot was written under key mode %s, server runs %s"
                     mode
                     (Svc_service.key_mode_name svc))
              else begin
                let names = ref [] in
                for _ = 1 to syms do
                  names :=
                    Scanf.sscanf (input_line ic) "%S" (fun n -> n) :: !names
                done;
                match preload_symbols (List.rev !names) with
                | Error _ as e -> e
                | Ok () ->
                    let cache = Svc_service.cache svc in
                    for _ = 1 to entries do
                      let k, v =
                        Scanf.sscanf (input_line ic) "%S %S" (fun k v ->
                            (k, v))
                      in
                      Svc_cache.add cache k v
                    done;
                    Ok entries
              end
          | v, _, _, _ ->
              Error (Printf.sprintf "unsupported snapshot version %d" v)
        with
        | End_of_file -> Error "truncated snapshot"
        | Scanf.Scan_failure m -> Error ("malformed snapshot line: " ^ m))
