(* The mondet service wire protocol: line-oriented text, one request per
   line, exactly one response line per request, in request order.

   Request grammar (tokens are whitespace-separated words; [opts] are
   [key=value] words; the [load] payload is everything after " : " and is
   parsed with the {!Parse} surface syntax):

     ID load SESSION program NAME goal GOAL [opts] : RULES
     ID load SESSION views NAME [opts] : RULES
     ID load SESSION instance NAME [opts] : FACTS
     ID assert SESSION INST [opts] : FACTS
     ID retract SESSION INST [opts] : FACTS
     ID eval SESSION PROG INST [opts]
     ID holds SESSION PROG INST (C1,...,Cn) [opts]
     ID mondet-test SESSION PROG VIEWS [opts]
     ID certain-answers SESSION PROG VIEWS INST [opts]
     ID rewrite-check SESSION PROG VIEWS [opts]
     ID rpq-load SESSION NAME [opts] : DEFS
     ID rpq-eval SESSION RPQ INST [TUPLE] [opts]
     ID rpq-rewrite SESSION RPQ VIEWSET INST [TUPLE] [opts]
     ID stats

   Options: [deadline=MS] on any verb; [depth=N] on mondet-test;
   [samples=N] on rewrite-check.

   The [rpq-load] payload is a {!Rpq.parse_defs} definition list
   ([name = regex ; …]); it registers each definition as a session RPQ
   and the whole ordered list as the set NAME.  The optional TUPLE of
   the RPQ query verbs selects the evaluation mode: absent = all pairs,
   [(c)] = targets reachable from the source [c], [(c1,c2)] = Boolean
   membership.

   Responses:

     ID ok BODY
     ID error MESSAGE
     ID timeout
     ID busy

   [busy] is the load-shedding verdict: the server refused to do the
   work (admission control over the connection budget, or a per-session
   request quota), and the client may retry later.  Unlike [error] it
   says nothing about the request itself.  A server shedding a whole
   connection before reading any request addresses the response to the
   placeholder id [-].
*)

type kind = Kprogram of string (* goal *) | Kviews | Kinstance

type verb =
  | Load of { kind : kind; name : string; text : string }
  | Assert of { instance : string; text : string }
  | Retract of { instance : string; text : string }
  | Eval of { program : string; instance : string }
  | Holds of { program : string; instance : string; tuple : string list }
  | Mondet_test of { program : string; views : string; depth : int option }
  | Certain_answers of { program : string; views : string; instance : string }
  | Rewrite_check of { program : string; views : string; samples : int option }
  | Rpq_load of { name : string; text : string }
  | Rpq_eval of { rpq : string; instance : string; tuple : string list option }
  | Rpq_rewrite of {
      rpq : string;
      views : string;
      instance : string;
      tuple : string list option;
    }
  | Stats

type request = {
  id : string;
  session : string option; (* [None] exactly for [Stats] *)
  deadline_ms : int option;
  verb : verb;
}

type result = Ok_ of string | Error_ of string | Timeout | Busy

type response = { rid : string; result : result }

(* ------------------------------------------------------------------ *)
(* Words.  Ids, session and object names are restricted to the same
   character set as the surface syntax's identifiers plus [-]; this is
   what keeps the wire format unambiguous without quoting. *)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '#' || c = '~' || c = '!' || c = '?'
  || c = '$' || c = '*'

let is_word s = s <> "" && String.for_all is_word_char s

(* one-line sanitization for free-text response payloads *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* ------------------------------------------------------------------ *)
(* Printer. *)

let opt_kv k = function None -> [] | Some v -> [ Printf.sprintf "%s=%d" k v ]

let opt_tuple = function
  | None -> []
  | Some t -> [ "(" ^ String.concat "," t ^ ")" ]

let print_request (r : request) =
  let sess = match r.session with Some s -> [ s ] | None -> [] in
  let deadline = opt_kv "deadline" r.deadline_ms in
  let parts =
    match r.verb with
    | Load { kind; name; text } ->
        let kind_part =
          match kind with
          | Kprogram goal -> [ "program"; name; "goal"; goal ]
          | Kviews -> [ "views"; name ]
          | Kinstance -> [ "instance"; name ]
        in
        [ r.id; "load" ] @ sess @ kind_part @ deadline @ [ ":"; text ]
    | Assert { instance; text } ->
        [ r.id; "assert" ] @ sess @ [ instance ] @ deadline @ [ ":"; text ]
    | Retract { instance; text } ->
        [ r.id; "retract" ] @ sess @ [ instance ] @ deadline @ [ ":"; text ]
    | Eval { program; instance } ->
        [ r.id; "eval" ] @ sess @ [ program; instance ] @ deadline
    | Holds { program; instance; tuple } ->
        [ r.id; "holds" ] @ sess
        @ [ program; instance; "(" ^ String.concat "," tuple ^ ")" ]
        @ deadline
    | Mondet_test { program; views; depth } ->
        [ r.id; "mondet-test" ] @ sess @ [ program; views ]
        @ opt_kv "depth" depth @ deadline
    | Certain_answers { program; views; instance } ->
        [ r.id; "certain-answers" ] @ sess @ [ program; views; instance ]
        @ deadline
    | Rewrite_check { program; views; samples } ->
        [ r.id; "rewrite-check" ] @ sess @ [ program; views ]
        @ opt_kv "samples" samples @ deadline
    | Rpq_load { name; text } ->
        [ r.id; "rpq-load" ] @ sess @ [ name ] @ deadline @ [ ":"; text ]
    | Rpq_eval { rpq; instance; tuple } ->
        [ r.id; "rpq-eval" ] @ sess @ [ rpq; instance ]
        @ opt_tuple tuple @ deadline
    | Rpq_rewrite { rpq; views; instance; tuple } ->
        [ r.id; "rpq-rewrite" ] @ sess @ [ rpq; views; instance ]
        @ opt_tuple tuple @ deadline
    | Stats -> [ r.id; "stats" ] @ deadline
  in
  String.concat " " parts

let print_response (r : response) =
  match r.result with
  | Ok_ body ->
      if body = "" then r.rid ^ " ok" else r.rid ^ " ok " ^ one_line body
  | Error_ msg ->
      if msg = "" then r.rid ^ " error" else r.rid ^ " error " ^ one_line msg
  | Timeout -> r.rid ^ " timeout"
  | Busy -> r.rid ^ " busy"

(* ------------------------------------------------------------------ *)
(* Parser. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let word what w = if is_word w then w else bad "malformed %s %S" what w

let int_value k v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | _ -> bad "option %s needs a non-negative integer, got %S" k v

(* split trailing [key=value] options off a word list; unknown keys and
   option words in the middle of positional arguments are errors *)
let split_opts words =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | w :: rest when String.contains w '=' ->
        if List.exists (fun w' -> not (String.contains w' '=')) rest then
          bad "option %S must come after positional arguments" w
        else
          ( List.rev acc,
            List.map
              (fun w ->
                match String.index_opt w '=' with
                | Some i ->
                    (String.sub w 0 i,
                     String.sub w (i + 1) (String.length w - i - 1))
                | None -> assert false)
              (w :: rest) )
    | w :: rest -> go (w :: acc) rest
  in
  go [] words

let take_opt opts k =
  match List.assoc_opt k opts with
  | None -> (None, opts)
  | Some v -> (Some (int_value k v), List.remove_assoc k opts)

let no_more_opts = function
  | [] -> ()
  | (k, _) :: _ -> bad "unknown option %S" k

let parse_tuple w =
  let n = String.length w in
  if n < 2 || w.[0] <> '(' || w.[n - 1] <> ')' then
    bad "malformed tuple %S (expected (c1,...,cn))" w
  else
    let inner = String.sub w 1 (n - 2) in
    if inner = "" then []
    else
      List.map
        (fun c -> word "tuple constant" c)
        (String.split_on_char ',' inner)

(* the optional trailing tuple of the RPQ query verbs *)
let take_tuple = function
  | [] -> None
  | [ t ] -> Some (parse_tuple t)
  | _ :: w :: _ -> bad "unexpected argument %S" w

(* [parse_request line] either parses the line or reports (id, message)
   where [id] is the line's first token (["-"] if there is none), so the
   server can still address its error response. *)
let parse_request line : (request, string * string) Stdlib.result =
  let line = String.trim line in
  let head, payload =
    match
      (* the payload separator is the first " : " word *)
      let words = split_words line in
      let rec split pre = function
        | ":" :: rest -> Some (List.rev pre, String.concat " " rest)
        | w :: rest -> split (w :: pre) rest
        | [] -> None
      in
      split [] words
    with
    | Some (h, p) -> (h, Some p)
    | None -> (split_words line, None)
  in
  let fallback_id = match head with w :: _ when is_word w -> w | _ -> "-" in
  try
    match head with
    | [] -> Error ("-", "empty request")
    | id :: rest ->
        let id = word "request id" id in
        let req =
          match rest with
          | "load" :: sess :: rest ->
              let sess = word "session" sess in
              let kind, name, rest =
                match rest with
                | "program" :: name :: "goal" :: goal :: rest ->
                    (Kprogram (word "goal" goal), word "name" name, rest)
                | "program" :: _ ->
                    bad "load program needs: program NAME goal GOAL"
                | "views" :: name :: rest -> (Kviews, word "name" name, rest)
                | "instance" :: name :: rest ->
                    (Kinstance, word "name" name, rest)
                | k :: _ ->
                    bad "unknown load kind %S (program|views|instance)" k
                | [] -> bad "load needs a kind (program|views|instance)"
              in
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              let text =
                match payload with
                | Some p -> p
                | None -> bad "load needs a ' : ' payload"
              in
              { id; session = Some sess; deadline_ms;
                verb = Load { kind; name; text } }
          | (("assert" | "retract") as v) :: sess :: inst :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              let text =
                match payload with
                | Some p -> p
                | None -> bad "%s needs a ' : ' payload of facts" v
              in
              let instance = word "instance" inst in
              { id; session = Some (word "session" sess); deadline_ms;
                verb =
                  (if v = "assert" then Assert { instance; text }
                   else Retract { instance; text }) }
          | (("assert" | "retract") as v) :: _ ->
              bad "%s needs: SESSION INST : FACTS" v
          | "rpq-load" :: sess :: name :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              let text =
                match payload with
                | Some p -> p
                | None -> bad "rpq-load needs a ' : ' payload of definitions"
              in
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Rpq_load { name = word "name" name; text } }
          | "rpq-load" :: _ -> bad "rpq-load needs: SESSION NAME : DEFS"
          | verb :: _ when payload <> None ->
              bad "verb %S takes no ' : ' payload" verb
          | "eval" :: sess :: prog :: inst :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Eval { program = word "program" prog;
                              instance = word "instance" inst } }
          | "holds" :: sess :: prog :: inst :: tup :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Holds { program = word "program" prog;
                               instance = word "instance" inst;
                               tuple = parse_tuple tup } }
          | "mondet-test" :: sess :: prog :: views :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let depth, opts = take_opt opts "depth" in
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Mondet_test { program = word "program" prog;
                                     views = word "views" views; depth } }
          | "certain-answers" :: sess :: prog :: views :: inst :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Certain_answers { program = word "program" prog;
                                         views = word "views" views;
                                         instance = word "instance" inst } }
          | "rewrite-check" :: sess :: prog :: views :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let samples, opts = take_opt opts "samples" in
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Rewrite_check { program = word "program" prog;
                                       views = word "views" views; samples } }
          | "rpq-eval" :: sess :: rpq :: inst :: rest ->
              let pos, opts = split_opts rest in
              let tuple = take_tuple pos in
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Rpq_eval { rpq = word "rpq" rpq;
                                  instance = word "instance" inst; tuple } }
          | "rpq-rewrite" :: sess :: rpq :: views :: inst :: rest ->
              let pos, opts = split_opts rest in
              let tuple = take_tuple pos in
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = Some (word "session" sess); deadline_ms;
                verb = Rpq_rewrite { rpq = word "rpq" rpq;
                                     views = word "views" views;
                                     instance = word "instance" inst; tuple } }
          | "stats" :: rest ->
              let pos, opts = split_opts rest in
              if pos <> [] then bad "unexpected argument %S" (List.hd pos);
              let deadline_ms, opts = take_opt opts "deadline" in
              no_more_opts opts;
              { id; session = None; deadline_ms; verb = Stats }
          | v :: _ -> bad "unknown verb %S" v
          | [] -> bad "missing verb"
        in
        Ok req
  with Bad msg -> Error (fallback_id, msg)

let parse_response line : (response, string) Stdlib.result =
  match split_words (String.trim line) with
  | id :: "ok" :: body -> Ok { rid = id; result = Ok_ (String.concat " " body) }
  | id :: "error" :: msg ->
      Ok { rid = id; result = Error_ (String.concat " " msg) }
  | [ id; "timeout" ] -> Ok { rid = id; result = Timeout }
  | [ id; "busy" ] -> Ok { rid = id; result = Busy }
  | _ -> Error (Printf.sprintf "malformed response line %S" line)
