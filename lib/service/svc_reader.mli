(** Length-capped incremental line framing for socket connections.

    Feed raw received bytes in whatever splits the transport delivers;
    get back the newline-terminated lines they complete, in order.
    Memory is bounded by the line cap whatever the peer sends: an
    oversized line is discarded as it streams in and surfaces as one
    {!Overlong} item at its terminator, so the server can answer it
    with an error response rather than buffer or kill the connection.
    A trailing [CR] is stripped (CRLF peers) and does not count against
    the cap. *)

type item =
  | Line of string  (** a complete line, terminator (and any CR) stripped *)
  | Overlong  (** a line that exceeded the cap; its bytes were dropped *)

type t

val create : max_line:int -> t
(** A fresh reader accepting lines of at most [max_line] bytes
    (exclusive of the terminator).
    @raise Invalid_argument if [max_line < 1]. *)

val feed : t -> bytes -> off:int -> len:int -> item list
(** Consume [len] bytes of [bytes] at [off]; return the items those
    bytes completed, oldest first (possibly none — a partial line stays
    buffered for the next feed). *)

val pending : t -> int
(** Bytes currently buffered for the incomplete line ([max_line + 1]
    while discarding an oversized one) — for tests and introspection. *)
