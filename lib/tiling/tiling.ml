type t = {
  tiles : string list;
  hc : (string * string) list;
  vc : (string * string) list;
  init : string list;
  final : string list;
}

let tile_const t = Const.named ("tile:" ^ t)

let structure tp =
  let facts =
    List.map (fun (a, b) -> Fact.make "H" [ tile_const a; tile_const b ]) tp.hc
    @ List.map (fun (a, b) -> Fact.make "V" [ tile_const a; tile_const b ]) tp.vc
    @ List.map (fun a -> Fact.make "I" [ tile_const a ]) tp.init
    @ List.map (fun a -> Fact.make "F" [ tile_const a ]) tp.final
  in
  Instance.of_list facts

let grid_point i j = Const.named (Printf.sprintf "g%d_%d" i j)

let grid n m =
  let facts = ref [] in
  for i = 1 to n do
    for j = 1 to m do
      if i < n then
        facts := Fact.make "H" [ grid_point i j; grid_point (i + 1) j ] :: !facts;
      if j < m then
        facts := Fact.make "V" [ grid_point i j; grid_point i (j + 1) ] :: !facts
    done
  done;
  facts := Fact.make "I" [ grid_point 1 1 ] :: !facts;
  facts := Fact.make "F" [ grid_point n m ] :: !facts;
  Instance.of_list !facts

let can_tile inst tp = Hom.exists inst (structure tp)

let tiling_of inst tp =
  match Hom.find inst (structure tp) with
  | None -> None
  | Some h ->
      Some
        (List.map
           (fun (a, b) ->
             let name =
               match Const.name b with
               | Some s when String.length s > 5 -> String.sub s 5 (String.length s - 5)
               | _ -> Fmt.str "%a" Const.pp b
             in
             (a, name))
           (Const.Map.bindings h))

let has_solution ?(max = 6) tp =
  let found = ref None in
  (try
     for total = 2 to 2 * max do
       for n = 1 to min max (total - 1) do
         let m = total - n in
         if m >= 1 && m <= max && !found = None && can_tile (grid n m) tp then begin
           found := Some (n, m);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let horizontally_compatible tp a b = List.mem (a, b) tp.hc
let vertically_compatible tp a b = List.mem (a, b) tp.vc

(* one tile compatible with itself everywhere *)
let simple_solvable =
  {
    tiles = [ "w" ];
    hc = [ ("w", "w") ];
    vc = [ ("w", "w") ];
    init = [ "w" ];
    final = [ "w" ];
  }

(* two tiles: "a" initial-only, "b" final-only, never compatible: only the
   1×1 grid could work but it would need a tile both initial and final *)
let simple_unsolvable =
  {
    tiles = [ "a"; "b" ];
    hc = [];
    vc = [];
    init = [ "a" ];
    final = [ "b" ];
  }
