let tile_rel t = "T_" ^ t

(* The reduction's queries, views, and test instances are pure functions of
   the tiling problem (and grid size), and the harnesses request the same
   handful over and over: cache them.  Cached instances also keep their
   secondary indexes warm across requests. *)
let memoize (tbl : ('a, 'b) Hashtbl.t) k f =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None ->
      let v = f () in
      if Hashtbl.length tbl >= 128 then Hashtbl.reset tbl;
      Hashtbl.add tbl k v;
      v

let v = Cq.(fun s -> Var s)

let schema_sigma (tp : Tiling.t) =
  Schema.of_list
    ([
       ("XSucc", 2); ("YSucc", 2); ("C", 1); ("D", 1);
       ("XEnd", 1); ("YEnd", 1); ("XProj", 2); ("YProj", 2);
     ]
    @ List.map (fun t -> (tile_rel t, 1)) tp.Tiling.tiles)

let ha_cq =
  Cq.make
    ~head:[ "z1"; "z2"; "x1"; "x2"; "y" ]
    [
      Cq.atom "YProj" [ v "y"; v "z1" ];
      Cq.atom "YProj" [ v "y"; v "z2" ];
      Cq.atom "XProj" [ v "x1"; v "z1" ];
      Cq.atom "XProj" [ v "x2"; v "z2" ];
      Cq.atom "XSucc" [ v "x1"; v "x2" ];
    ]

let va_cq =
  Cq.make
    ~head:[ "z1"; "z2"; "x"; "y1"; "y2" ]
    [
      Cq.atom "YProj" [ v "y1"; v "z1" ];
      Cq.atom "YProj" [ v "y2"; v "z2" ];
      Cq.atom "XProj" [ v "x"; v "z1" ];
      Cq.atom "XProj" [ v "x"; v "z2" ];
      Cq.atom "YSucc" [ v "y1"; v "y2" ];
    ]

let query_tbl : (Tiling.t, Datalog.query) Hashtbl.t = Hashtbl.create 8

let query (tp : Tiling.t) =
  memoize query_tbl tp @@ fun () ->
  (* Qstart takes one marked step on each axis before recursing: without
     this, approximations with an empty axis have S = C×D = ∅ and the
     other axis's marks become invisible through the views, breaking
     Prop 10 for unsolvable problems (see EXPERIMENTS.md, finding 2). *)
  let base =
    Parse.program
      "Q <- XSucc(o,x), D(x), A(x), YSucc(o,y), C(y), B(y).
       A(x) <- XSucc(x,x2), A(x2), D(x2).
       A(x) <- XEnd(x).
       B(y) <- YSucc(y,y2), B(y2), C(y2).
       B(y) <- YEnd(y).
       Q <- C(u), YProj(y,z), XProj(x,z).
       Q <- D(u), YProj(y,z), XProj(x,z)."
  in
  let goal = Cq.atom "Q" [] in
  let pairs l = List.concat_map (fun a -> List.map (fun b -> (a, b)) l) l in
  let hc_rules =
    List.filter_map
      (fun (a, b) ->
        if Tiling.horizontally_compatible tp a b then None
        else
          Some
            (Datalog.rule goal
               (ha_cq.Cq.body
               @ [ Cq.atom (tile_rel a) [ v "z1" ]; Cq.atom (tile_rel b) [ v "z2" ] ])))
      (pairs tp.Tiling.tiles)
  in
  let vc_rules =
    List.filter_map
      (fun (a, b) ->
        if Tiling.vertically_compatible tp a b then None
        else
          Some
            (Datalog.rule goal
               (va_cq.Cq.body
               @ [ Cq.atom (tile_rel a) [ v "z1" ]; Cq.atom (tile_rel b) [ v "z2" ] ])))
      (pairs tp.Tiling.tiles)
  in
  let init_rules =
    List.filter_map
      (fun t ->
        if List.mem t tp.Tiling.init then None
        else
          Some
            (Datalog.rule goal
               [
                 Cq.atom "XSucc" [ v "o"; v "x" ];
                 Cq.atom "YSucc" [ v "o"; v "y" ];
                 Cq.atom "XProj" [ v "x"; v "z" ];
                 Cq.atom "YProj" [ v "y"; v "z" ];
                 Cq.atom (tile_rel t) [ v "z" ];
               ]))
      tp.Tiling.tiles
  in
  let final_rules =
    List.filter_map
      (fun t ->
        if List.mem t tp.Tiling.final then None
        else
          Some
            (Datalog.rule goal
               [
                 Cq.atom "XEnd" [ v "x" ];
                 Cq.atom "YEnd" [ v "y" ];
                 Cq.atom "XProj" [ v "x"; v "z" ];
                 Cq.atom "YProj" [ v "y"; v "z" ];
                 Cq.atom (tile_rel t) [ v "z" ];
               ]))
      tp.Tiling.tiles
  in
  Datalog.query (base @ hc_rules @ vc_rules @ init_rules @ final_rules) "Q"

let views_tbl : (Tiling.t, View.collection) Hashtbl.t = Hashtbl.create 8

let views (tp : Tiling.t) : View.collection =
  memoize views_tbl tp @@ fun () ->
  let grid_view =
    View.ucq "S"
      (Ucq.make
         (Cq.make ~head:[ "a"; "b" ]
            [ Cq.atom "C" [ v "a" ]; Cq.atom "D" [ v "b" ] ]
         :: List.map
              (fun t ->
                Cq.make ~head:[ "a"; "b" ]
                  [
                    Cq.atom "YProj" [ v "a"; v "s" ];
                    Cq.atom "XProj" [ v "b"; v "s" ];
                    Cq.atom (tile_rel t) [ v "s" ];
                  ])
              tp.Tiling.tiles))
  in
  let atomic =
    [
      View.atomic "VXSucc" "XSucc" 2;
      View.atomic "VYSucc" "YSucc" 2;
      View.atomic "VXEnd" "XEnd" 1;
      View.atomic "VYEnd" "YEnd" 1;
    ]
    @ List.map (fun t -> View.atomic ("V" ^ tile_rel t) (tile_rel t) 1) tp.Tiling.tiles
  in
  let special =
    [
      View.cq "VhC"
        (Cq.make ~head:[ "u"; "x"; "y"; "z" ]
           [
             Cq.atom "C" [ v "u" ];
             Cq.atom "XProj" [ v "x"; v "z" ];
             Cq.atom "YProj" [ v "y"; v "z" ];
           ]);
      View.cq "VhD"
        (Cq.make ~head:[ "u"; "x"; "y"; "z" ]
           [
             Cq.atom "D" [ v "u" ];
             Cq.atom "XProj" [ v "x"; v "z" ];
             Cq.atom "YProj" [ v "y"; v "z" ];
           ]);
      View.cq "VHA" ha_cq;
      View.cq "VVA" va_cq;
      View.cq "VI"
        (Cq.make ~head:[ "o"; "x"; "y"; "z" ]
           [
             Cq.atom "XSucc" [ v "o"; v "x" ];
             Cq.atom "XProj" [ v "x"; v "z" ];
             Cq.atom "YSucc" [ v "o"; v "y" ];
             Cq.atom "YProj" [ v "y"; v "z" ];
           ]);
      View.cq "VF"
        (Cq.make ~head:[ "x"; "y"; "z" ]
           [
             Cq.atom "XProj" [ v "x"; v "z" ];
             Cq.atom "XEnd" [ v "x" ];
             Cq.atom "YEnd" [ v "y" ];
             Cq.atom "YProj" [ v "y"; v "z" ];
           ]);
    ]
  in
  (grid_view :: atomic) @ special

let c s = Const.named s
let xi i = c (Printf.sprintf "x%d" i)
let yj j = c (Printf.sprintf "y%d" j)
let zij i j = c (Printf.sprintf "z%d_%d" i j)

let axes_tbl : (int, Instance.t) Hashtbl.t = Hashtbl.create 8

let axes l =
  memoize axes_tbl l @@ fun () ->
  let facts = ref [] in
  let add f = facts := f :: !facts in
  add (Fact.make "XSucc" [ c "o"; xi 1 ]);
  add (Fact.make "YSucc" [ c "o"; yj 1 ]);
  for i = 1 to l - 1 do
    add (Fact.make "XSucc" [ xi i; xi (i + 1) ]);
    add (Fact.make "YSucc" [ yj i; yj (i + 1) ])
  done;
  for i = 1 to l do
    add (Fact.make "D" [ xi i ]);
    add (Fact.make "C" [ yj i ])
  done;
  add (Fact.make "XEnd" [ xi l ]);
  add (Fact.make "YEnd" [ yj l ]);
  Instance.of_list !facts

let grid_test_tbl : (Tiling.t * string list * int * int, Instance.t) Hashtbl.t =
  Hashtbl.create 8

let grid_test (tp : Tiling.t) ~tau n m =
  (* materialize the tile assignment so the memo key captures it *)
  let taus =
    List.concat (List.init n (fun i -> List.init m (fun j -> tau (i + 1) (j + 1))))
  in
  memoize grid_test_tbl (tp, taus, n, m) @@ fun () ->
  let tau i j = List.nth taus (((i - 1) * m) + j - 1) in
  let facts = ref [] in
  let add f = facts := f :: !facts in
  add (Fact.make "XSucc" [ c "o"; xi 1 ]);
  add (Fact.make "YSucc" [ c "o"; yj 1 ]);
  for i = 1 to n - 1 do
    add (Fact.make "XSucc" [ xi i; xi (i + 1) ])
  done;
  for j = 1 to m - 1 do
    add (Fact.make "YSucc" [ yj j; yj (j + 1) ])
  done;
  add (Fact.make "XEnd" [ xi n ]);
  add (Fact.make "YEnd" [ yj m ]);
  for i = 1 to n do
    for j = 1 to m do
      add (Fact.make "XProj" [ xi i; zij i j ]);
      add (Fact.make "YProj" [ yj j; zij i j ]);
      add (Fact.make (tile_rel (tau i j)) [ zij i j ])
    done
  done;
  Instance.of_list !facts

(* ------------------------------------------------------------------ *)
(* The appendix's stratified rewriting of Q_TP over V_TP.              *)

(* Q*start: the start disjunct with C/D read off the projections of S *)
let star_start (_tp : Tiling.t) =
  Parse.query ~goal:"Qs"
    "Cstar(a) <- S(a,b).
     Dstar(b) <- S(a,b).
     A(x) <- VXSucc(x,x2), A(x2), Dstar(x2).
     A(x) <- VXEnd(x).
     B(y) <- VYSucc(y,y2), B(y2), Cstar(y2).
     B(y) <- VYEnd(y).
     Qs <- VXSucc(o,x), Dstar(x), A(x), VYSucc(o,y), Cstar(y), B(y)."

(* Q*verify: the verify disjuncts through the special views *)
let star_verify (tp : Tiling.t) =
  let v = Cq.(fun s -> Var s) in
  let goal = Cq.atom "Qv" [] in
  let pairs l = List.concat_map (fun a -> List.map (fun b -> (a, b)) l) l in
  let vt t z = Cq.atom ("V" ^ tile_rel t) [ v z ] in
  let hc =
    List.filter_map
      (fun (a, b) ->
        if Tiling.horizontally_compatible tp a b then None
        else
          Some
            (Datalog.rule goal
               [
                 Cq.atom "VHA" [ v "z1"; v "z2"; v "x1"; v "x2"; v "y" ];
                 vt a "z1"; vt b "z2";
               ]))
      (pairs tp.Tiling.tiles)
  in
  let vc =
    List.filter_map
      (fun (a, b) ->
        if Tiling.vertically_compatible tp a b then None
        else
          Some
            (Datalog.rule goal
               [
                 Cq.atom "VVA" [ v "z1"; v "z2"; v "x"; v "y1"; v "y2" ];
                 vt a "z1"; vt b "z2";
               ]))
      (pairs tp.Tiling.tiles)
  in
  let init =
    List.filter_map
      (fun t ->
        if List.mem t tp.Tiling.init then None
        else
          Some
            (Datalog.rule goal
               [ Cq.atom "VI" [ v "o"; v "x"; v "y"; v "z" ]; vt t "z" ]))
      tp.Tiling.tiles
  in
  let final =
    List.filter_map
      (fun t ->
        if List.mem t tp.Tiling.final then None
        else
          Some
            (Datalog.rule goal
               [ Cq.atom "VF" [ v "x"; v "y"; v "z" ]; vt t "z" ]))
      tp.Tiling.tiles
  in
  Datalog.query (hc @ vc @ init @ final) "Qv"

(* ProductTest: S is the product of its projections *)
let product_test j =
  let s = Instance.tuples j "S" in
  let firsts = List.sort_uniq Const.compare (List.map (fun t -> t.(0)) s) in
  let seconds = List.sort_uniq Const.compare (List.map (fun t -> t.(1)) s) in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          List.exists
            (fun t -> Const.equal t.(0) a && Const.equal t.(1) b)
            s)
        seconds)
    firsts

let stratified_rewriting tp =
  let qs = star_start tp in
  let qv = star_verify tp in
  fun j ->
    Instance.tuples j "VhC" <> []
    || Instance.tuples j "VhD" <> []
    || Dl_eval.holds_boolean qv j
    || (product_test j && Dl_eval.holds_boolean qs j)
