exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Every token carries the 1-based line/column where it starts, so parser
   errors — not just tokenizer errors — can say where they struck. *)
type pos = { line : int; col : int }

let fail_at pos fmt =
  Format.kasprintf
    (fun s -> raise (Error (Printf.sprintf "line %d, column %d: %s" pos.line pos.col s)))
    fmt

type token =
  | Ident of string
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Period
  | Arrow
  | Eof

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Quoted s -> Printf.sprintf "constant '%s'" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Period -> "'.'"
  | Arrow -> "'<-'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '#' || c = '~' || c = '!' || c = '?' || c = '$' || c = '*'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 and bol = ref 0 in
  let here () = { line = !line; col = !i - !bol + 1 } in
  let push t p = toks := (t, p) :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = '\n' then (
      incr i;
      incr line;
      bol := !i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then (
      while !i < n && s.[!i] <> '\n' do
        incr i
      done)
    else if c = '(' then (
      push Lparen (here ());
      incr i)
    else if c = ')' then (
      push Rparen (here ());
      incr i)
    else if c = ',' then (
      push Comma (here ());
      incr i)
    else if c = '.' then (
      push Period (here ());
      incr i)
    else if c = '\'' then (
      let p = here () in
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail_at p "unterminated quote";
      push (Quoted (String.sub s (!i + 1) (!j - !i - 1))) p;
      i := !j + 1)
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '-' then (
      push Arrow (here ());
      i := !i + 2)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '-' then (
      push Arrow (here ());
      i := !i + 2)
    else if is_ident_char c then (
      let p = here () in
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      push (Ident (String.sub s !i (!j - !i))) p;
      i := !j)
    else fail_at (here ()) "unexpected character %C" c
  done;
  push Eof (here ());
  List.rev !toks

type state = { mutable toks : (token * pos) list }

let eof_pos = { line = 1; col = 1 }

let peek st = match st.toks with [] -> Eof | (t, _) :: _ -> t

let pos st = match st.toks with [] -> eof_pos | (_, p) :: _ -> p

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* term in rule position: identifiers are variables, quotes are constants *)
let parse_args st ~term =
  match peek st with
  | Lparen ->
      advance st;
      if peek st = Rparen then (
        advance st;
        [])
      else
        let rec go acc =
          let a = term st in
          match peek st with
          | Comma ->
              advance st;
              go (a :: acc)
          | Rparen ->
              advance st;
              List.rev (a :: acc)
          | t -> fail_at (pos st) "expected ',' or ')', found %s" (token_name t)
        in
        go []
  | _ -> []

let rule_term st =
  match peek st with
  | Ident v ->
      advance st;
      Cq.Var v
  | Quoted c ->
      advance st;
      Cq.Cst (Const.named c)
  | t -> fail_at (pos st) "expected term, found %s" (token_name t)

let fact_term st =
  match peek st with
  | Ident v ->
      advance st;
      Const.named v
  | Quoted c ->
      advance st;
      Const.named c
  | t -> fail_at (pos st) "expected constant, found %s" (token_name t)

let parse_atom st =
  match peek st with
  | Ident name ->
      advance st;
      Cq.atom name (parse_args st ~term:rule_term)
  | t -> fail_at (pos st) "expected atom, found %s" (token_name t)

let parse_rule st =
  let head_pos = pos st in
  let head = parse_atom st in
  let body =
    match peek st with
    | Arrow ->
        advance st;
        let rec go acc =
          let a = parse_atom st in
          match peek st with
          | Comma ->
              advance st;
              go (a :: acc)
          | _ -> List.rev (a :: acc)
        in
        go []
    | _ -> []
  in
  if peek st = Period then advance st;
  (* rule validation failures (head variable absent from the body, arity
     clash, head constant) point at the rule's head token *)
  try Datalog.rule head body with Invalid_argument m -> fail_at head_pos "%s" m

let parse_program st =
  let rec go acc =
    match peek st with
    | Eof -> List.rev acc
    | _ -> go (parse_rule st :: acc)
  in
  go []

let with_input s f =
  let st = { toks = tokenize s } in
  let r = f st in
  (match peek st with
  | Eof -> ()
  | t -> fail_at (pos st) "trailing input at %s" (token_name t));
  r

let program s = with_input s parse_program

let query ~goal s = Datalog.query (program s) goal

let rule s =
  with_input s (fun st ->
      let r = parse_rule st in
      r)

let atom s = with_input s parse_atom

let cq_of_rule (r : Datalog.rule) =
  let head =
    List.map
      (function
        | Cq.Var v -> v
        | Cq.Cst _ -> fail "constant in CQ head")
      r.head.Cq.args
  in
  Cq.make ~head r.body

let cq s = cq_of_rule (rule s)

let ucq s =
  let rules = program s in
  match rules with
  | [] -> fail "empty UCQ"
  | r :: _ ->
      let name = r.head.Cq.rel in
      List.iter
        (fun (r' : Datalog.rule) ->
          if not (String.equal r'.head.Cq.rel name) then
            fail "UCQ disjuncts must share a head predicate")
        rules;
      Ucq.make (List.map cq_of_rule rules)

let instance s =
  with_input s (fun st ->
      let rec go acc =
        match peek st with
        | Eof -> acc
        | Ident name ->
            advance st;
            let args = parse_args st ~term:fact_term in
            if peek st = Period then advance st;
            go (Instance.add (Fact.make name args) acc)
        | t -> fail_at (pos st) "expected fact, found %s" (token_name t)
      in
      go Instance.empty)

(* ------------------------------------------------------------------ *)
(* Views: a program whose rules are grouped by head predicate — each
   group defines one view (a CQ view if a single rule, a UCQ view
   otherwise).  Shared by the CLI's views files and the service's [load
   views] payloads. *)

let views_of_program (rules : Datalog.program) : View.collection =
  let names =
    List.sort_uniq String.compare
      (List.map (fun (r : Datalog.rule) -> r.Datalog.head.Cq.rel) rules)
  in
  List.map
    (fun name ->
      let group =
        List.filter
          (fun (r : Datalog.rule) -> r.Datalog.head.Cq.rel = name)
          rules
      in
      let cq_of (r : Datalog.rule) =
        let head =
          List.map
            (function
              | Cq.Var v -> v
              | Cq.Cst _ -> fail "view %s: constant in view head" name)
            r.Datalog.head.Cq.args
        in
        Cq.make ~head r.Datalog.body
      in
      match group with
      | [ r ] -> View.cq name (cq_of r)
      | rs -> View.ucq name (Ucq.make (List.map cq_of rs)))
    names

let views s = views_of_program (program s)
