(** A small surface syntax for rules, queries and instances.

    Rules are written
    {v  W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w). v}
    ([":-"] is accepted for ["<-"]).  In rules, plain identifiers are
    variables and quoted identifiers (['a]) are constants.  In instances,
    plain identifiers are constants:
    {v  R(a,b). U(a). v}
    Nullary atoms are written with or without parentheses.  Comments run
    from [%] to the end of the line. *)

exception Error of string
(** Raised on any syntax error, with a human-readable message.  Messages
    for errors attributable to a place in the input are prefixed with the
    1-based [line L, column C: ] of the offending token. *)

val program : string -> Datalog.program
val query : goal:string -> string -> Datalog.query
val rule : string -> Datalog.rule
(** A single rule (trailing period optional). *)

val cq : string -> Cq.t
(** A single rule; the head arguments become the CQ head variables. *)

val ucq : string -> Ucq.t
(** One or more rules sharing a head predicate. *)

val atom : string -> Cq.atom
val instance : string -> Instance.t
(** Period- or whitespace-separated ground facts; identifiers denote
    constants. *)

val views : string -> View.collection
(** A views program: rules grouped by head predicate, each group one view
    (a CQ view for a single rule, a UCQ view otherwise).  This is the
    format of the CLI's VIEWS files and the service's [load views]
    payloads.
    @raise Error on syntax errors, or if some view head contains a
    constant (the message names the offending view). *)

val views_of_program : Datalog.program -> View.collection
(** {!views} on an already-parsed program. *)
