(* Layer 2 of the rule-compilation pipeline: lower static join plans
   (Dl_plan) to a flat int-array bytecode executed by a tight dispatch
   loop over a preallocated register file of unboxed constants.

   Why bytecode wins over the interpreted slot matcher
   (Dl_eval.run_compiled):

   - the join order is fixed at compile time, so the per-depth O(nb)
     selectivity rescan (one index probe per remaining atom, at every
     depth of every firing) disappears — only the probe *position* of
     each step is still chosen at run time, from the step's statically
     known bound positions;
   - under a static plan every slot has exactly one binding site, so the
     register file is a plain [Const.t array] ([Const.t] is a private
     int — no tags, no options) and backtracking needs no trail: re-
     entering a binder simply overwrites;
   - matching a tuple is straight-line [check-const] / [check-slot-eq] /
     [bind-slot] opcodes with precomputed positions — no closure calls,
     no per-position match on term constructors.

   Control flow is the classic nested-loops join, flattened: each step's
   block opens a cursor over its candidate tuples ([scan] or
   [index-probe]), advances it ([next]), and falls through to the next
   step; exhausted cursors jump back to the enclosing step's advance
   point, failed checks to their own step's.  A [cancel-probe] sits on
   every advance path, so a deadline interrupts a long fixpoint round
   mid-enumeration — something the round-boundary probes of the
   interpreted engines cannot do. *)

(* ------------------------------------------------------------------ *)
(* Opcodes.  Layout (operands after the opcode word):

     halt                                        []
     scan           [step; src]
     index-probe    [step; src; n; (pos, kind, arg) * n]
     next           [step; arity; fail_pc]
     check-const    [step; pos; pool; fail_pc]
     check-slot-eq  [step; pos; reg; fail_pc]
     bind-slot      [step; pos; reg]
     emit-head      [resume_pc]
     cancel-probe   []

   [src] selects the step's instance: 0 = full, 1 = old, 2 = delta (the
   delta-position variants of a rule differ only in these words).  In an
   [index-probe] each triple names a statically bound position and where
   its value comes from ([kind] 0 = constant pool, 1 = register); the
   most selective one (smallest index bucket) is chosen per execution. *)

let op_halt = 0
let op_scan = 1
let op_probe = 2
let op_next = 3
let op_check_const = 4
let op_check_slot = 5
let op_bind = 6
let op_emit = 7
let op_cancel = 8

type program = {
  code : int array;
  pool : Const.t array; (* constant pool, indexed by check-const/probe *)
  rels : Symtab.sym array; (* per step: interned relation id *)
  rel_names : string array; (* per step: relation name, for errors/pp *)
  srcs : int array; (* per step: instance source (full/old/delta) *)
  nregs : int;
  nsteps : int;
  head_rid : Symtab.sym;
  head_rel : string;
  head_regs : int array; (* per head position: source register *)
}

type rule_prog = {
  source : Dl_plan.crule;
  naive : program; (* all body atoms read the full instance *)
  semi : program array; (* one delta-position variant per body atom *)
}

(* ------------------------------------------------------------------ *)
(* Codegen. *)

let src_full = 0
let src_old = 1
let src_delta = 2

let lower (pl : Dl_plan.t) : program =
  let cr = pl.prule in
  let nsteps = Array.length pl.steps in
  (* constant pool, deduplicated *)
  let pool_rev = ref [] and npool = ref 0 in
  let pool_tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let pool_idx (c : Const.t) =
    match Hashtbl.find_opt pool_tbl (c :> int) with
    | Some i -> i
    | None ->
        let i = !npool in
        incr npool;
        pool_rev := c :: !pool_rev;
        Hashtbl.add pool_tbl (c :> int) i;
        i
  in
  let src_of satom =
    match pl.pdelta with
    | None -> src_full
    | Some j -> if satom = j then src_delta else if satom < j then src_old else src_full
  in
  (* per-step probe triples: positions fixed before any tuple of this
     step is read — constants, and checks of slots bound by an earlier
     step (a slot bound earlier in the *same* atom has no value yet at
     probe time) *)
  let probes k (st : Dl_plan.step) =
    let acc = ref [] in
    Array.iteri
      (fun pos b ->
        match (b : Dl_plan.binding) with
        | Dl_plan.Bconst c -> acc := (pos, 0, pool_idx c) :: !acc
        | Dl_plan.Bcheck s when pl.first_def.(s) < k -> acc := (pos, 1, s) :: !acc
        | Dl_plan.Bcheck _ | Dl_plan.Bbind _ -> ())
      st.spat;
    List.rev !acc
  in
  let step_probes = Array.mapi probes pl.steps in
  (* sizes: open, cancel (1), next (3+1), pattern ops *)
  let open_size k =
    match step_probes.(k) with [] -> 3 | ps -> 4 + (3 * List.length ps)
  in
  let pat_size (st : Dl_plan.step) =
    Array.fold_left
      (fun n b ->
        n
        + match (b : Dl_plan.binding) with
          | Dl_plan.Bconst _ | Dl_plan.Bcheck _ -> 5
          | Dl_plan.Bbind _ -> 4)
      0 st.spat
  in
  let open_off = Array.make (max nsteps 1) 0 in
  let cancel_off = Array.make (max nsteps 1) 0 in
  let next_off = Array.make (max nsteps 1) 0 in
  let off = ref 0 in
  for k = 0 to nsteps - 1 do
    open_off.(k) <- !off;
    off := !off + open_size k;
    cancel_off.(k) <- !off;
    off := !off + 1;
    next_off.(k) <- !off;
    off := !off + 4;
    off := !off + pat_size pl.steps.(k)
  done;
  let emit_off = !off in
  let halt_off = emit_off + 2 in
  let code = Array.make (halt_off + 1) op_halt in
  let w = ref 0 in
  let put v =
    code.(!w) <- v;
    incr w
  in
  for k = 0 to nsteps - 1 do
    let st = pl.steps.(k) in
    let atom = cr.cbody.(st.satom) in
    (match step_probes.(k) with
    | [] ->
        put op_scan;
        put k;
        put (src_of st.satom)
    | ps ->
        put op_probe;
        put k;
        put (src_of st.satom);
        put (List.length ps);
        List.iter
          (fun (pos, kind, arg) ->
            put pos;
            put kind;
            put arg)
          ps);
    put op_cancel;
    put op_next;
    put k;
    put (Array.length atom.cterms);
    put (if k = 0 then halt_off else cancel_off.(k - 1));
    Array.iteri
      (fun pos b ->
        match (b : Dl_plan.binding) with
        | Dl_plan.Bconst c ->
            put op_check_const;
            put k;
            put pos;
            put (pool_idx c);
            put cancel_off.(k)
        | Dl_plan.Bcheck s ->
            put op_check_slot;
            put k;
            put pos;
            put s;
            put cancel_off.(k)
        | Dl_plan.Bbind s ->
            put op_bind;
            put k;
            put pos;
            put s)
      st.spat
  done;
  put op_emit;
  put (if nsteps = 0 then halt_off else cancel_off.(nsteps - 1));
  put op_halt;
  assert (!w = halt_off + 1);
  let head_regs =
    Array.map
      (function
        | Dl_plan.Cslot s -> s
        | Dl_plan.Cconst _ -> assert false (* ruled out by Datalog.rule *))
      cr.chead.cterms
  in
  {
    code;
    pool = Array.of_list (List.rev !pool_rev);
    rels = Array.map (fun (st : Dl_plan.step) -> cr.cbody.(st.satom).crid) pl.steps;
    rel_names =
      Array.map (fun (st : Dl_plan.step) -> cr.cbody.(st.satom).crel) pl.steps;
    srcs = Array.map (fun (st : Dl_plan.step) -> src_of st.satom) pl.steps;
    nregs = cr.nvars;
    nsteps;
    head_rid = cr.chead.crid;
    head_rel = cr.chead.crel;
    head_regs;
  }

let compile_rule (cr : Dl_plan.crule) =
  let nb = Array.length cr.cbody in
  {
    source = cr;
    naive = lower (Dl_plan.plan cr ~delta:None);
    semi = Array.init nb (fun j -> lower (Dl_plan.plan cr ~delta:(Some j)));
  }

(* Bytecode is cached per program *fingerprint* (not physical equality):
   structurally equal programs share one compilation, wherever they came
   from.  Mutex-guarded like the slot cache — any domain may compile. *)
let cache_mutex = Mutex.create ()
let cache : ((int * int) * rule_prog list) list ref = ref []

let compile (p : Datalog.program) =
  let key = Datalog.program_fingerprint p in
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match List.assoc_opt key !cache with
      | Some c -> c
      | None ->
          let c = List.map (fun r -> compile_rule (Dl_plan.compile_rule r)) p in
          let keep = if List.length !cache >= 32 then [] else !cache in
          cache := (key, c) :: keep;
          c)

(* ------------------------------------------------------------------ *)
(* The dispatch loop. *)

(* registers are written before they are read (static plan invariant);
   the initializer below is never observed *)
let reg_init = Const.named "%vm"

(* how many advance-path opcodes run between two cancellation probes —
   small enough that a 1 ms deadline lands well inside a round, large
   enough that the probe's clock read stays off the profile *)
let cancel_interval = 4096

let arity_error name tup arity =
  invalid_arg
    (Printf.sprintf "Dl_vm: %s has a fact of arity %d but an atom of arity %d"
       name (Array.length tup) arity)

let exec (prog : program) ~full ?(old = Instance.empty)
    ?(delta = Instance.empty) ?(cancel = Dl_cancel.none) emit =
  let code = prog.code in
  let pool = prog.pool in
  let regs = Array.make (max prog.nregs 1) reg_init in
  let cur = Array.make (max prog.nsteps 1) [||] in
  let cursors : Const.t array list array = Array.make (max prog.nsteps 1) [] in
  let fuel = ref cancel_interval in
  let pc = ref 0 in
  let running = ref true in
  let inst_of s = if s = src_full then full else if s = src_old then old else delta in
  (* each step's (relation, source) pair is static, so its index is
     loop-invariant: resolve once here instead of one cache lookup per
     probe/scan execution (this is also where a cold index gets built —
     before the loop, on the calling thread) *)
  let idxs =
    Array.init (max prog.nsteps 1) (fun k ->
        if k >= prog.nsteps then None
        else Instance.index_id (inst_of prog.srcs.(k)) prog.rels.(k))
  in
  (* all unsafe accesses below are bounds-safe by construction: [code]
     offsets come from the codegen, [pos < arity] is enforced by the next
     opcode's arity check before any pattern opcode touches the tuple *)
  while !running do
    let base = !pc in
    let op = Array.unsafe_get code base in
    if op = op_next then begin
      let step = Array.unsafe_get code (base + 1) in
      match Array.unsafe_get cursors step with
      | [] -> pc := Array.unsafe_get code (base + 3)
      | tup :: rest ->
          Array.unsafe_set cursors step rest;
          let arity = Array.unsafe_get code (base + 2) in
          if Array.length tup <> arity then
            arity_error prog.rel_names.(step) tup arity;
          Array.unsafe_set cur step tup;
          pc := base + 4
    end
    else if op = op_check_slot then begin
      let step = Array.unsafe_get code (base + 1) in
      let pos = Array.unsafe_get code (base + 2) in
      let reg = Array.unsafe_get code (base + 3) in
      if
        Const.equal
          (Array.unsafe_get (Array.unsafe_get cur step) pos)
          (Array.unsafe_get regs reg)
      then pc := base + 5
      else pc := Array.unsafe_get code (base + 4)
    end
    else if op = op_cancel then begin
      decr fuel;
      if !fuel <= 0 then begin
        fuel := cancel_interval;
        Dl_cancel.check cancel
      end;
      pc := base + 1
    end
    else if op = op_bind then begin
      let step = Array.unsafe_get code (base + 1) in
      let pos = Array.unsafe_get code (base + 2) in
      let reg = Array.unsafe_get code (base + 3) in
      Array.unsafe_set regs reg (Array.unsafe_get (Array.unsafe_get cur step) pos);
      pc := base + 4
    end
    else if op = op_emit then begin
      let nh = Array.length prog.head_regs in
      let args = Array.make nh reg_init in
      for i = 0 to nh - 1 do
        Array.unsafe_set args i
          (Array.unsafe_get regs (Array.unsafe_get prog.head_regs i))
      done;
      if emit (Fact.of_interned prog.head_rid args) then
        pc := Array.unsafe_get code (base + 1)
      else running := false
    end
    else if op = op_check_const then begin
      let step = Array.unsafe_get code (base + 1) in
      let pos = Array.unsafe_get code (base + 2) in
      let c = Array.unsafe_get pool (Array.unsafe_get code (base + 3)) in
      if Const.equal (Array.unsafe_get (Array.unsafe_get cur step) pos) c then
        pc := base + 5
      else pc := Array.unsafe_get code (base + 4)
    end
    else if op = op_probe then begin
      let step = Array.unsafe_get code (base + 1) in
      let n = Array.unsafe_get code (base + 3) in
      (match Array.unsafe_get idxs step with
      | None -> Array.unsafe_set cursors step []
      | Some idx when n = 1 ->
          (* one bound position: probe it directly, no count pass *)
          let pos = Array.unsafe_get code (base + 4) in
          let c =
            if Array.unsafe_get code (base + 5) = 0 then
              Array.unsafe_get pool (Array.unsafe_get code (base + 6))
            else Array.unsafe_get regs (Array.unsafe_get code (base + 6))
          in
          Array.unsafe_set cursors step (Index.lookup idx pos c)
      | Some idx ->
          let best = ref max_int and best_p = ref 0 and best_c = ref reg_init in
          for t = 0 to n - 1 do
            let o = base + 4 + (3 * t) in
            let pos = Array.unsafe_get code o in
            let c =
              if Array.unsafe_get code (o + 1) = 0 then
                Array.unsafe_get pool (Array.unsafe_get code (o + 2))
              else Array.unsafe_get regs (Array.unsafe_get code (o + 2))
            in
            let cnt = Index.count idx pos c in
            if cnt < !best then begin
              best := cnt;
              best_p := pos;
              best_c := c
            end
          done;
          Array.unsafe_set cursors step
            (if !best = 0 then [] else Index.lookup idx !best_p !best_c));
      pc := base + 4 + (3 * n)
    end
    else if op = op_scan then begin
      let step = Array.unsafe_get code (base + 1) in
      Array.unsafe_set cursors step
        (match Array.unsafe_get idxs step with
        | None -> []
        | Some idx -> Index.all idx);
      pc := base + 3
    end
    else (* op_halt *)
      running := false
  done

(* ------------------------------------------------------------------ *)
(* Semi-naive fixpoint over bytecode — the same round structure as
   Dl_eval.fixpoint_gen, with every firing dispatched through exec. *)

exception Stopped of Instance.t

(* One semi-naive round: dispatch every applicable delta variant through
   [exec].  [derive] dedups against [full] and accumulates into the
   [fresh] ref it is given. *)
let fire_semi_round rules ~cancel derive ~old ~delta full =
  let fresh = ref Instance.empty in
  List.iter
    (fun rp ->
      if
        List.exists
          (fun r -> Instance.cardinal_id delta r > 0)
          rp.source.Dl_plan.crels
      then
        Array.iteri
          (fun j prog ->
            if Instance.cardinal_id delta rp.source.Dl_plan.cbody.(j).crid > 0
            then exec prog ~full ~old ~delta ~cancel (derive full fresh))
          rp.semi)
    rules;
  !fresh

let fixpoint_gen ?(stop = fun _ -> false) ?(cancel = Dl_cancel.none) p inst =
  Dl_cancel.check cancel;
  let rules = compile p in
  let derive full fresh f =
    if not (Instance.mem f full) then begin
      fresh := Instance.add f !fresh;
      if stop f then raise_notrace (Stopped (Instance.union full !fresh))
    end;
    true
  in
  let fire_naive full =
    let fresh = ref Instance.empty in
    List.iter
      (fun rp -> exec rp.naive ~full ~cancel (derive full fresh))
      rules;
    !fresh
  in
  let fire_semi ~old ~delta full =
    fire_semi_round rules ~cancel derive ~old ~delta full
  in
  (* [old] is the previous round's [full], so [full = old ∪ delta]; the
     round-boundary probe is kept in addition to the in-loop cancel-probe
     opcode, so empty rounds still observe the token *)
  let rec loop old delta =
    Dl_cancel.check cancel;
    let full = Instance.union old delta in
    if Instance.is_empty delta then full
    else loop full (fire_semi ~old ~delta full)
  in
  try loop inst (fire_naive inst) with Stopped i -> i

let fixpoint ?cancel p inst = fixpoint_gen ?cancel p inst

(* Delta-start entry, same contract as {!Dl_eval.fixpoint_delta} but with
   every firing dispatched through the bytecode matcher (so deadline
   probes also run mid-round, via the cancel-probe opcode). *)
let fixpoint_delta ?(cancel = Dl_cancel.none) p ~old ~delta =
  Dl_cancel.check cancel;
  let rules = compile p in
  let derive full fresh f =
    if not (Instance.mem f full) then fresh := Instance.add f !fresh;
    true
  in
  let rec loop old delta acc =
    Dl_cancel.check cancel;
    let full = Instance.union old delta in
    if Instance.is_empty delta then (full, acc)
    else
      let fresh = fire_semi_round rules ~cancel derive ~old ~delta full in
      loop full fresh (Instance.union acc fresh)
  in
  loop (Instance.diff old delta) delta Instance.empty

let eval ?cancel (q : Datalog.query) inst =
  Instance.tuples (fixpoint ?cancel q.program inst) q.goal

let tuple_equal a b =
  Array.length a = Array.length b && Array.for_all2 Const.equal a b

let holds ?cancel (q : Datalog.query) inst tup =
  let want (f : Fact.t) =
    String.equal f.rel q.goal && tuple_equal f.args tup
  in
  let fp = fixpoint_gen ~stop:want ?cancel q.program inst in
  List.exists (tuple_equal tup) (Instance.tuples fp q.goal)

let holds_boolean ?cancel (q : Datalog.query) inst =
  let stop (f : Fact.t) = String.equal f.rel q.goal in
  Instance.cardinal (fixpoint_gen ~stop ?cancel q.program inst) q.goal > 0

(* ------------------------------------------------------------------ *)
(* Disassembly.  Prints relation and constant *names* (never raw intern
   ids), so the output is stable across processes and suite orders; pcs
   are printed so opcode-layout changes show up in the goldens. *)

let src_name = function
  | 0 -> "full"
  | 1 -> "old"
  | _ -> "delta"

let pp_program ppf (p : program) =
  Fmt.pf ppf "program %s/%d: %d steps, %d regs@." p.head_rel
    (Array.length p.head_regs) p.nsteps p.nregs;
  Fmt.pf ppf "  head %s(%s)@." p.head_rel
    (String.concat ","
       (Array.to_list (Array.map (Printf.sprintf "r%d") p.head_regs)));
  if Array.length p.pool > 0 then
    Fmt.pf ppf "  pool %s@."
      (String.concat " "
         (List.mapi
            (fun i c -> Printf.sprintf "c%d=%s" i (Const.to_string c))
            (Array.to_list p.pool)));
  let pc = ref 0 in
  let code = p.code in
  let line fmt = Fmt.pf ppf ("  %04d  " ^^ fmt ^^ "@.") !pc in
  let finished = ref false in
  while not !finished do
    let base = !pc in
    (match code.(base) with
    | op when op = op_halt ->
        line "halt";
        pc := base + 1;
        if base >= Array.length code - 1 then finished := true
    | op when op = op_scan ->
        line "scan           step=%d rel=%s src=%s" code.(base + 1)
          p.rel_names.(code.(base + 1))
          (src_name code.(base + 2));
        pc := base + 3
    | op when op = op_probe ->
        let n = code.(base + 3) in
        let triples =
          List.init n (fun t ->
              let o = base + 4 + (3 * t) in
              Printf.sprintf "%d%s"
                code.(o)
                (if code.(o + 1) = 0 then Printf.sprintf "=c%d" code.(o + 2)
                 else Printf.sprintf "=r%d" code.(o + 2)))
        in
        line "index-probe    step=%d rel=%s src=%s bound=[%s]" code.(base + 1)
          p.rel_names.(code.(base + 1))
          (src_name code.(base + 2))
          (String.concat "; " triples);
        pc := base + 4 + (3 * n)
    | op when op = op_next ->
        line "next           step=%d arity=%d fail=@%04d" code.(base + 1)
          code.(base + 2)
          code.(base + 3);
        pc := base + 4
    | op when op = op_check_const ->
        line "check-const    step=%d pos=%d c%d fail=@%04d" code.(base + 1)
          code.(base + 2)
          code.(base + 3)
          code.(base + 4);
        pc := base + 5
    | op when op = op_check_slot ->
        line "check-slot-eq  step=%d pos=%d r%d fail=@%04d" code.(base + 1)
          code.(base + 2)
          code.(base + 3)
          code.(base + 4);
        pc := base + 5
    | op when op = op_bind ->
        line "bind-slot      step=%d pos=%d r%d" code.(base + 1)
          code.(base + 2)
          code.(base + 3);
        pc := base + 4
    | op when op = op_emit ->
        line "emit-head      resume=@%04d" code.(base + 1);
        pc := base + 2
    | op when op = op_cancel ->
        line "cancel-probe";
        pc := base + 1
    | op -> Fmt.failwith "Dl_vm.pp_program: unknown opcode %d" op);
    if !pc >= Array.length code then finished := true
  done

let pp_rule_prog ppf (rp : rule_prog) =
  Fmt.pf ppf "-- naive --@.%a" pp_program rp.naive;
  Array.iteri
    (fun j prog -> Fmt.pf ppf "-- delta@%d --@.%a" j pp_program prog)
    rp.semi
