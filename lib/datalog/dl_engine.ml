(* One front door for Datalog evaluation.

   Every decision procedure in the system bottoms out in [holds] /
   [holds_boolean] / [eval]; this facade routes them through one of five
   strategies:

   - [Naive]: the seed's scan-based, textual-order, naive-iteration
     evaluator ({!Dl_eval.fixpoint_naive}) — the differential-testing
     oracle;
   - [Indexed]: the slot-compiled, index-backed semi-naive engine with
     early stop ({!Dl_eval});
   - [Magic]: the magic-sets demand transformation ({!Dl_magic}) composed
     with the indexed engine, so bottom-up rounds derive only facts the
     goal demands.  Queries whose goal is extensional (no rules) fall back
     to [Indexed] — there is nothing to specialize.
   - [Parallel]: the indexed engine's rounds sharded across a pool of
     OCaml 5 domains ({!Dl_parallel}).
   - [Vm]: static join plans lowered to flat register bytecode
     ({!Dl_vm}), same semi-naive rounds as [Indexed] with a compiled
     per-rule matcher and mid-round cancellation probes.

   The default strategy is a process-wide setting (the CLI's [--engine]
   flag and the MONDET_ENGINE environment variable set it; the bench
   ablations and the tests override it per call). *)

type strategy = Naive | Indexed | Magic | Parallel | Vm

(* The single registry every name-facing derivation comes from: the
   strategy list, [to_string]/[of_string], and the "expected …" text of
   the MONDET_ENGINE warning.  Adding a strategy means adding one row
   here (plus its dispatch arms below — the compiler enforces those). *)
let registry = [
  (Naive, "naive");
  (Indexed, "indexed");
  (Magic, "magic");
  (Parallel, "parallel");
  (Vm, "vm");
]

let all = List.map fst registry
let to_string s = List.assoc s registry
let of_string n = List.find_map (fun (s, n') -> if String.equal n n' then Some s else None) registry
let expected = String.concat "|" (List.map snd registry)

(* Indexed by default: on the paper's workloads (small instances, Boolean
   all-free goals) the demand transformation prunes little and its extra
   magic rules cost more than they save, and sharding has nothing to bite
   on — see the engine/* rows of BENCH_eval.json.

   The default lives in an [Atomic.t]: now that domains exist, a plain
   [ref] would make concurrent [set_default]/[default] a data race.  The
   remaining (documented) coarseness is intentional: the default is a
   process-wide knob, so a [set_default] racing with an evaluation on
   another domain changes which engine that evaluation uses but never its
   answer — each top-level facade call reads the default exactly once
   (see [resolve]), so one call never mixes strategies across rounds. *)
let default_strategy =
  Atomic.make
    (match Sys.getenv_opt "MONDET_ENGINE" with
    | None -> Indexed
    | Some s -> (
        match of_string (String.trim s) with
        | Some st -> st
        | None ->
            Printf.eprintf "mondet: ignoring MONDET_ENGINE=%S (expected %s)\n%!"
              s expected;
            Indexed))

let default () = Atomic.get default_strategy
let set_default s = Atomic.set default_strategy s

(* A per-call [?strategy] always wins; the process default is read once
   per top-level call, never again mid-evaluation. *)
let resolve = function Some s -> s | None -> Atomic.get default_strategy

(* Strategies safe to run from a worker domain of a shared pool.
   [Parallel] would re-enter the pool from inside a task (deadlock on the
   round barrier); [Magic]'s transform cache is an unguarded global.
   Everything else either has no shared mutable state ([Naive]) or
   mutex-guarded caches ([Indexed]'s slot compile via {!Dl_plan},
   [Vm]'s bytecode cache). *)
let pool_safe = function
  | Parallel | Magic -> Indexed
  | (Naive | Indexed | Vm) as s -> s

(* What a service worker domain should actually run, given the session
   default.  Unlike [pool_safe] — the conservative "nearest legal
   strategy" used when the caller's choice must be preserved — this is a
   preference: the pool-unsafe strategies AND the indexed default all
   map to [Vm], which matches [Indexed]'s answers round for round but
   wins on the wide recursive workloads the pool serves, and probes
   cancellation inside rounds.  An explicit [Naive] (differential
   debugging) or [Vm] default passes through. *)
let pool_strategy () =
  match default () with
  | Indexed | Parallel | Magic -> Vm
  | (Naive | Vm) as s -> s

let goal_tuples_naive ?cancel (q : Datalog.query) inst =
  Instance.tuples
    (Dl_eval.fixpoint_naive ?cancel q.Datalog.program inst)
    q.Datalog.goal

let eval ?strategy ?cancel (q : Datalog.query) inst =
  match resolve strategy with
  | Naive -> goal_tuples_naive ?cancel q inst
  | Indexed -> Dl_eval.eval ?cancel q inst
  | Vm -> Dl_vm.eval ?cancel q inst
  | Parallel -> Dl_parallel.eval ?cancel q inst
  | Magic when not (Dl_magic.applicable q) -> Dl_eval.eval ?cancel q inst
  | Magic ->
      let m = Dl_magic.transform q (Dl_magic.all_free (Datalog.goal_arity q)) in
      Dl_eval.eval ?cancel m.Dl_magic.query
        (Instance.add (Dl_magic.seed_free m) inst)

(* Whole-program fixpoints, for the maintenance layer ({!Dl_incr}) and
   anyone else who needs the materialized instance rather than goal
   tuples.  [Magic] is goal-directed — with no goal to demand-transform
   there is nothing to specialize — so it falls back to [Indexed], the
   engine it composes with anyway. *)
let fixpoint ?strategy ?cancel p inst =
  match resolve strategy with
  | Naive -> Dl_eval.fixpoint_naive ?cancel p inst
  | Indexed | Magic -> Dl_eval.fixpoint ?cancel p inst
  | Vm -> Dl_vm.fixpoint ?cancel p inst
  | Parallel -> Dl_parallel.fixpoint ?cancel p inst

(* Delta-start continuation of a closed [old]: the insertion path of
   incremental maintenance.  [Naive] has no delta machinery, so it
   recomputes from the union and diffs — the differential oracle for the
   three real delta engines. *)
let fixpoint_delta ?strategy ?cancel p ~old ~delta =
  match resolve strategy with
  | Naive ->
      let seed = Instance.union old delta in
      let full = Dl_eval.fixpoint_naive ?cancel p seed in
      (full, Instance.diff full seed)
  | Indexed | Magic -> Dl_eval.fixpoint_delta ?cancel p ~old ~delta
  | Vm -> Dl_vm.fixpoint_delta ?cancel p ~old ~delta
  | Parallel -> Dl_parallel.fixpoint_delta ?cancel p ~old ~delta

let tuple_equal a b =
  Array.length a = Array.length b && Array.for_all2 Const.equal a b

let holds ?strategy ?cancel (q : Datalog.query) inst tup =
  match resolve strategy with
  | Naive -> List.exists (tuple_equal tup) (goal_tuples_naive ?cancel q inst)
  | Indexed -> Dl_eval.holds ?cancel q inst tup
  | Vm -> Dl_vm.holds ?cancel q inst tup
  | Parallel -> Dl_parallel.holds ?cancel q inst tup
  | Magic when not (Dl_magic.applicable q) -> Dl_eval.holds ?cancel q inst tup
  | Magic ->
      let m = Dl_magic.transform q (Dl_magic.all_bound (Array.length tup)) in
      Dl_eval.holds ?cancel m.Dl_magic.query
        (Instance.add (Dl_magic.seed m tup) inst)
        tup

let holds_boolean ?strategy ?cancel (q : Datalog.query) inst =
  match resolve strategy with
  | Naive -> goal_tuples_naive ?cancel q inst <> []
  | Indexed -> Dl_eval.holds_boolean ?cancel q inst
  | Vm -> Dl_vm.holds_boolean ?cancel q inst
  | Parallel -> Dl_parallel.holds_boolean ?cancel q inst
  | Magic when not (Dl_magic.applicable q) -> Dl_eval.holds_boolean ?cancel q inst
  | Magic ->
      let m = Dl_magic.transform q (Dl_magic.all_free (Datalog.goal_arity q)) in
      Dl_eval.holds_boolean ?cancel m.Dl_magic.query
        (Instance.add (Dl_magic.seed_free m) inst)

let contained_cq_in ?strategy ?cancel (cq : Cq.t) q =
  let db = Cq.canonical_db cq in
  let tup = Array.of_list (Cq.head_consts cq) in
  holds ?strategy ?cancel q db tup
