(* Incremental view maintenance: counting for the non-recursive strata,
   Delete-and-Rederive (DRed) for the recursive ones.

   The maintained invariant is [ifull = Dl_engine.fixpoint iprogram ibase]
   with membership of every fact read as [base ∨ derived].  The program is
   split into the SCC condensation of its IDB dependency graph and strata
   are repaired bottom-up, so when stratum k runs, every relation its rule
   bodies mention (EDBs and lower IDBs) already has its *new* membership
   in [state] and its *old* membership in the saved pre-mutation fixpoint.
   Two instances accumulate the finalized membership deltas — [dall]
   (deleted) and [aall] (added) — and are the only channel between
   strata. *)

type stratum = {
  spreds : string list;  (* IDB predicates of this SCC, sorted *)
  srecursive : bool;
  srules : Datalog.program;  (* rules whose head is in [spreds] *)
  scrules : Dl_eval.crule list;  (* the same, slot-compiled once *)
  scounts : (Fact.t, int) Hashtbl.t;
      (* derivation counts; only populated when [not srecursive] *)
}

type t = {
  iprogram : Datalog.program;
  istrategy : Dl_engine.strategy option;
  istrata : stratum list;  (* in topological (bottom-up) order *)
  mutable ibase : Instance.t;
  mutable ifull : Instance.t;
  mutable iok : bool;  (* false while (or after) a mutation went wrong *)
}

let program t = t.iprogram
let strategy t = t.istrategy
let base t = t.ibase
let full t = t.ifull
let valid t = t.iok
let strata t = List.map (fun s -> (s.spreds, s.srecursive)) t.istrata

(* ---------- stratification ---------- *)

(* SCCs of the IDB dependency graph via the transitive [depends_on]
   (mutual reachability), then Kahn-style topological selection of the
   condensation.  Quadratic in the number of IDBs — programs here have a
   handful of predicates, so clarity wins over a linear-time SCC pass. *)
let stratify p =
  let dep = Datalog.depends_on p in
  let rec comps = function
    | [] -> []
    | a :: rest ->
        let same, other = List.partition (fun b -> dep a b && dep b a) rest in
        (a :: same) :: comps other
  in
  let cs = comps (Datalog.idbs p) in
  let uses c c' = List.exists (fun a -> List.exists (fun b -> dep a b) c') c in
  let rec topo acc = function
    | [] -> List.rev acc
    | remaining ->
        let ready, blocked =
          List.partition
            (fun c ->
              not (List.exists (fun c' -> c != c' && uses c c') remaining))
            remaining
        in
        if ready = [] then invalid_arg "Dl_incr.stratify: not a DAG"
        else topo (List.rev_append ready acc) blocked
  in
  topo [] cs

let make_stratum p comp =
  let srules =
    List.filter (fun r -> List.mem r.Datalog.head.Cq.rel comp) p
  in
  let srecursive =
    match comp with [ a ] -> Datalog.depends_on p a a | _ -> true
  in
  {
    spreds = List.sort String.compare comp;
    srecursive;
    srules;
    scrules = Dl_eval.compile srules;
    scounts = Hashtbl.create 64;
  }

(* ---------- derivation enumeration ---------- *)

(* Enumerate, for every rule, every body match whose *leftmost* atom
   drawing from [delta] sits at position j: positions left of j draw from
   [lo], j from [delta], positions right of j from [hi].  With
   [lo = hi ∖ delta] this produces each match using at least one [delta]
   fact exactly once — the invariant the counting passes rely on. *)
let fire_split crules ~delta ~lo ~hi k =
  List.iter
    (fun cr ->
      if List.exists (fun r -> Instance.cardinal_id delta r > 0) cr.Dl_eval.crels
      then begin
        let nb = Array.length cr.Dl_eval.cbody in
        let sources = Array.make nb hi in
        for j = 0 to nb - 1 do
          if Instance.cardinal_id delta cr.Dl_eval.cbody.(j).Dl_eval.crid > 0
          then begin
            sources.(j) <- delta;
            Dl_eval.run_compiled cr sources (fun env ->
                k (Dl_eval.chead_fact cr env);
                true);
            sources.(j) <- lo
          end
          else sources.(j) <- lo
        done
      end)
    crules

let count counts f =
  match Hashtbl.find_opt counts f with Some c -> c | None -> 0

let bump counts f d =
  let c = count counts f + d in
  if c = 0 then Hashtbl.remove counts f else Hashtbl.replace counts f c

(* ---------- create ---------- *)

let create ?strategy ?(cancel = Dl_cancel.none) p inst =
  Datalog.validate p;
  let strata = List.map (make_stratum p) (stratify p) in
  let state = ref inst in
  List.iter
    (fun s ->
      Dl_cancel.check cancel;
      if s.srecursive then
        state := Dl_engine.fixpoint ?strategy ~cancel s.srules !state
      else begin
        (* All body predicates live strictly below, so one full
           enumeration over the state seen so far counts every
           derivation of the stratum exactly once. *)
        List.iter
          (fun cr ->
            let sources = Array.make (Array.length cr.Dl_eval.cbody) !state in
            Dl_eval.run_compiled cr sources (fun env ->
                bump s.scounts (Dl_eval.chead_fact cr env) 1;
                true))
          s.scrules;
        Hashtbl.iter
          (fun f _ ->
            if not (Instance.mem f !state) then state := Instance.add f !state)
          s.scounts
      end)
    strata;
  {
    iprogram = p;
    istrategy = strategy;
    istrata = strata;
    ibase = inst;
    ifull = !state;
    iok = true;
  }

(* ---------- rederivation (DRed phase 2) ---------- *)

(* Head-bound one-step derivability: seed the environment by unifying the
   rule head with the fact, then let the indexed matcher check the body
   against the deletion-free state. *)
let unify_head (head : Cq.atom) (f : Fact.t) =
  let args = f.Fact.args in
  if
    (not (String.equal head.Cq.rel f.Fact.rel))
    || List.length head.Cq.args <> Array.length args
  then None
  else
    let rec go i env = function
      | [] -> Some env
      | Cq.Var v :: rest -> (
          match Smap.find_opt v env with
          | Some c -> if Const.equal c args.(i) then go (i + 1) env rest else None
          | None -> go (i + 1) (Smap.add v args.(i) env) rest)
      | Cq.Cst c :: rest ->
          if Const.equal c args.(i) then go (i + 1) env rest else None
    in
    go 0 Smap.empty head.Cq.args

let rederivable srules state1 f =
  List.exists
    (fun r ->
      match unify_head r.Datalog.head f with
      | None -> false
      | Some env ->
          let found = ref false in
          Dl_eval.match_body state1 r.Datalog.body env (fun _ ->
              found := true;
              false);
          !found)
    srules

(* ---------- apply ---------- *)

let apply ?(cancel = Dl_cancel.none) t ~adds ~dels =
  if not t.iok then
    invalid_arg "Dl_incr: materialization poisoned by a cancelled mutation";
  (* Normalize to real base edits (sets, restricted to actual changes):
     retracting an absent fact and re-asserting a present one are no-ops
     and must not poison anything. *)
  let del_inst =
    Instance.of_list (List.filter (fun f -> Instance.mem f t.ibase) dels)
  in
  let add_inst =
    Instance.of_list
      (List.filter (fun f -> not (Instance.mem f t.ibase)) adds)
  in
  if Instance.is_empty del_inst && Instance.is_empty add_inst then ()
  else begin
    t.iok <- false;
    let old_full = t.ifull in
    let new_base =
      Instance.union (Instance.diff t.ibase del_inst) add_inst
    in
    let is_idb f = Datalog.is_idb t.iprogram f.Fact.rel in
    (* EDB membership is base membership: those deltas are final now.
       IDB base edits only *seed* their own stratum — a retracted but
       still-derivable fact, or an asserted already-derived one, must not
       propagate at all. *)
    let edb_del = Instance.filter (fun f -> not (is_idb f)) del_inst in
    let edb_add = Instance.filter (fun f -> not (is_idb f)) add_inst in
    let idb_del = Instance.filter is_idb del_inst in
    let idb_add = Instance.filter is_idb add_inst in
    let state = ref (Instance.union (Instance.diff old_full edb_del) edb_add) in
    let dall = ref edb_del in
    let aall = ref edb_add in
    List.iter
      (fun s ->
        Dl_cancel.check cancel;
        let in_stratum f = List.mem f.Fact.rel s.spreds in
        let local_del = Instance.filter in_stratum idb_del in
        let local_add =
          Instance.filter
            (fun f -> in_stratum f && not (Instance.mem f !state))
            idb_add
        in
        if not s.srecursive then begin
          (* Counting repair: one pass enumerating lost derivations
             against the old state, one enumerating gained derivations
             against the new, each derivation exactly once (leftmost
             delta position); then recompute membership of every touched
             fact.  Base edits to the stratum's own predicate join the
             touched set and go through the same membership formula. *)
          let touched = Hashtbl.create 16 in
          let touch f = if not (Hashtbl.mem touched f) then Hashtbl.add touched f () in
          if not (Instance.is_empty !dall) then
            fire_split s.scrules ~delta:!dall
              ~lo:(Instance.diff old_full !dall)
              ~hi:old_full
              (fun f ->
                bump s.scounts f (-1);
                touch f);
          if not (Instance.is_empty !aall) then
            fire_split s.scrules ~delta:!aall
              ~lo:(Instance.diff !state !aall)
              ~hi:!state
              (fun f ->
                bump s.scounts f 1;
                touch f);
          Instance.iter touch local_del;
          Instance.iter touch local_add;
          let fin = ref Instance.empty in
          let fout = ref Instance.empty in
          Hashtbl.iter
            (fun f () ->
              let now = Instance.mem f new_base || count s.scounts f > 0 in
              let was = Instance.mem f !state in
              if now && not was then fin := Instance.add f !fin
              else if was && not now then fout := Instance.add f !fout)
            touched;
          state := Instance.union (Instance.diff !state !fout) !fin;
          dall := Instance.union !dall !fout;
          aall := Instance.union !aall !fin
        end
        else begin
          (* DRed.  Phase 1: over-delete every stratum fact with an old
             derivation touching a deleted fact, frontier round by round
             over the OLD state — facts asserted in the new base are
             never over-deleted (membership holds regardless). *)
          let d = ref Instance.empty in
          let freshly = ref Instance.empty in
          let note f =
            if (not (Instance.mem f !d)) && not (Instance.mem f new_base)
            then begin
              d := Instance.add f !d;
              freshly := Instance.add f !freshly
            end
          in
          Instance.iter note local_del;
          let frontier = ref (Instance.union !dall !freshly) in
          while not (Instance.is_empty !frontier) do
            Dl_cancel.check cancel;
            freshly := Instance.empty;
            fire_split s.scrules ~delta:!frontier ~lo:old_full ~hi:old_full
              note;
            frontier := !freshly
          done;
          (* Phase 2: one-step rederive each over-deleted fact against
             the deletion-free state. *)
          let state1 = Instance.diff !state !d in
          let r = ref Instance.empty in
          Instance.iter
            (fun f -> if rederivable s.srules state1 f then r := Instance.add f !r)
            !d;
          Dl_cancel.check cancel;
          (* Phase 3: close under insertions (lower-strata additions,
             rederived survivors, asserted seeds) with a delta fixpoint —
             this is where the engine strategies serve maintenance. *)
          let delta = Instance.union !aall (Instance.union !r local_add) in
          let full2, derived =
            if Instance.is_empty delta then (state1, Instance.empty)
            else
              Dl_engine.fixpoint_delta ?strategy:t.istrategy ~cancel s.srules
                ~old:state1 ~delta
          in
          let out_del = Instance.diff !d full2 in
          let out_add =
            (* pure-assert fast path: with nothing over-deleted and no
               IDB seeds, every derived fact is fresh by construction
               ([fixpoint_delta] only accumulates facts beyond [state1]),
               so the membership filter is a no-op — skip its
               O(derived · log) rebuild. *)
            if Instance.is_empty !d && Instance.is_empty local_add then
              derived
            else
              Instance.filter
                (fun f -> not (Instance.mem f !state))
                (Instance.union local_add derived)
          in
          state := full2;
          dall := Instance.union !dall out_del;
          aall := Instance.union !aall out_add
        end)
      t.istrata;
    t.ibase <- new_base;
    t.ifull <- !state;
    t.iok <- true
  end

let assert_facts ?cancel t facts = apply ?cancel t ~adds:facts ~dels:[]
let retract_facts ?cancel t facts = apply ?cancel t ~adds:[] ~dels:facts
