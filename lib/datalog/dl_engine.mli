(** Strategy-routing facade over the Datalog evaluators.

    Decision procedures ({!Md_tests}, separators, certain-answer
    evaluation, containment) call evaluation through this module so that
    one process-wide switch — or a per-call [?strategy] — selects the
    engine.

    {2 The strategy contract}

    All five strategies compute the same answers: for every query [q],
    instance [i] and tuple [t], [eval], [holds] and [holds_boolean] agree
    across strategies (this is enforced by the qcheck differential suites
    in [test/test_datalog.ml], [test/test_magic.ml],
    [test/test_parallel.ml] and [test/test_vm.ml], 120 random
    program/instance pairs each per entry point).  They differ only in
    how the fixpoint is computed:

    - {!Naive} — the seed's scan-based, textual-order, naive-iteration
      evaluator ({!Dl_eval.fixpoint_naive}).  Slowest by far; exists as
      the differential-testing oracle.  Use it when you want the
      least-clever execution imaginable.
    - {!Indexed} — slot-compiled semi-naive evaluation over per-relation
      secondary indexes, with dynamic most-constrained-first atom
      ordering and early stop on goal checks ({!Dl_eval}).  The default:
      it wins on the paper's workloads (small instances, all-free
      Boolean goals) and has no setup cost beyond rule compilation
      (cached per program).
    - {!Magic} — the magic-sets demand transformation ({!Dl_magic})
      composed with the indexed engine.  Wins when the goal binds
      constants (point queries: ~50× on [engine/tc256-point] in
      [BENCH_eval.json]) because bottom-up rounds then derive only
      demanded facts; loses ~2× on all-free Boolean goals, where the
      extra magic rules prune nothing.  Falls back to [Indexed] when the
      goal is extensional ({!Dl_magic.applicable} is false).
    - {!Parallel} — the indexed engine's semi-naive rounds with the
      (rule × delta-position × delta-chunk) firing set sharded across a
      persistent pool of OCaml 5 domains ({!Dl_parallel}; pool size from
      [--domains] / [MONDET_DOMAINS] / [Domain.recommended_domain_count]).
      Wins on wide rounds — many rules and/or large deltas, e.g. the
      Theorem 6 grid programs with hundreds of incompatibility rules —
      once per-round work dwarfs the barrier cost (~10 µs); loses on
      narrow rounds.  With one effective domain it delegates to
      [Indexed] outright.
    - {!Vm} — static join plans ({!Dl_plan.plan}) lowered to flat
      register bytecode executed by a tight dispatch loop ({!Dl_vm}).
      Same semi-naive rounds and early stop as [Indexed], but the atom
      order is fixed at compile time (only the index-probe position is
      chosen per execution), so the per-depth selectivity rescans of the
      interpreted matcher disappear — it wins on recursive workloads
      with deep joins (see [engine/vm-*] in [BENCH_eval.json]).  Also
      the only engine that probes cancellation {e inside} a round
      (a [cancel-probe] opcode on every cursor advance), so deadlines
      interrupt long rounds mid-enumeration.

    {2 Determinism}

    [eval] returns the goal tuples of the {e least fixpoint}, which is
    unique; all strategies (including [Parallel], at every domain count)
    therefore return the same tuple set — [Parallel] additionally
    guarantees the same fixpoint {e instance} per round, because delta
    chunks partition each round's firings and the barrier merge is a set
    union.  [holds]/[holds_boolean] may stop evaluation early; the facts
    materialized at that point differ between strategies (and, under
    [Parallel], between schedules), but the Boolean verdict never does.

    {2 Thread safety}

    The facade itself is meant to be called from one coordinating thread:
    the process-wide default is an [Atomic.t] (so concurrent
    [set_default] is a race only on {e which} engine runs, never on its
    answer, and each top-level call reads the default exactly once — not
    once per fixpoint round).  The compile caches behind [Indexed] and
    [Vm] are mutex-guarded ({!Dl_plan}, {!Dl_vm}), but [Magic]'s
    transform cache and lazily built instance indexes are not; use
    {!pool_safe} before evaluating on a worker domain.  [Parallel]'s
    worker domains are internal to {!Dl_parallel} and never call back
    into this module. *)

type strategy = Naive | Indexed | Magic | Parallel | Vm

val to_string : strategy -> string
val of_string : string -> strategy option

val all : strategy list
(** All strategies, for CLI enums and ablation loops.  [to_string],
    [of_string], [all] and the MONDET_ENGINE warning text all derive
    from one internal registry, so they can never disagree. *)

val pool_safe : strategy -> strategy
(** The nearest strategy safe to run from a worker domain of a shared
    pool: [Parallel] (would re-enter the pool) and [Magic] (unguarded
    transform cache) map to [Indexed]; [Naive], [Indexed] and [Vm] pass
    through. *)

val pool_strategy : unit -> strategy
(** The strategy service worker domains should run, derived from the
    process default: [Indexed], [Parallel] and [Magic] all map to [Vm]
    (same answers as [Indexed], faster on the pool's wide recursive
    workloads, and the only engine probing cancellation inside a round);
    an explicit [Naive] or [Vm] default passes through.  Use
    {!pool_safe} instead when a caller-chosen strategy must be preserved
    as closely as legality allows. *)

val default : unit -> strategy
val set_default : strategy -> unit
(** The process-wide default used when [?strategy] is omitted.  Initially
    {!Indexed}, unless the [MONDET_ENGINE] environment variable names
    another strategy.  A per-call [?strategy] always wins over the
    default; the default is read once per top-level call, so a concurrent
    [set_default] can never make one evaluation mix strategies across
    rounds. *)

val fixpoint :
  ?strategy:strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  Instance.t ->
  Instance.t
(** The materialized least fixpoint itself (the input instance extended
    with every derivable IDB fact).  [Magic] falls back to [Indexed]:
    with no goal there is no demand pattern to specialize for. *)

val fixpoint_delta :
  ?strategy:strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  old:Instance.t ->
  delta:Instance.t ->
  Instance.t * Instance.t
(** Delta-start continuation: [old] must already be closed under the
    program; returns [(full, derived)] where [full] is the fixpoint of
    [old ∪ delta] and [derived] the facts beyond [old ∪ delta].  Cost is
    proportional to the derivations touching [delta].  This is the rule
    firing path of the incremental-maintenance layer ({!Dl_incr}), so
    every strategy serves maintenance fixpoints; [Naive] recomputes from
    scratch (the maintenance differential oracle), [Magic] falls back to
    [Indexed] as for {!fixpoint}. *)

val eval :
  ?strategy:strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  Instance.t ->
  Const.t array list
(** All goal tuples of the query on the instance.  [cancel] is the
    cooperative cancellation token threaded into the underlying fixpoint,
    probed at semi-naive round boundaries (see {!Dl_cancel}); a cancelled
    token raises {!Dl_cancel.Cancelled}. *)

val holds :
  ?strategy:strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.query ->
  Instance.t ->
  Const.t array ->
  bool
(** Membership of one goal tuple.  Under [Magic] this binds every goal
    position in the demand pattern, so only derivations consistent with
    the tuple are explored. *)

val holds_boolean :
  ?strategy:strategy -> ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> bool
(** The Boolean query is true (its goal relation is nonempty). *)

val contained_cq_in :
  ?strategy:strategy -> ?cancel:Dl_cancel.t -> Cq.t -> Datalog.query -> bool
(** CQ ⊆ Datalog containment via the canonical-database check. *)
