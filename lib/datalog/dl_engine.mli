(** Strategy-routing facade over the Datalog evaluators.

    Decision procedures ({!Md_tests}, separators, certain-answer
    evaluation, containment) call evaluation through this module so that
    one process-wide switch — or a per-call [?strategy] — selects the
    engine:

    - {!Naive}: scan-based naive iteration ({!Dl_eval.fixpoint_naive}),
      the differential-testing oracle;
    - {!Indexed}: the slot-compiled, index-backed semi-naive engine;
    - {!Magic}: magic-sets demand transformation ({!Dl_magic}) composed
      with the indexed engine.  Falls back to [Indexed] when the goal is
      extensional ({!Dl_magic.applicable} is false). *)

type strategy = Naive | Indexed | Magic

val to_string : strategy -> string
val of_string : string -> strategy option

val all : strategy list
(** All strategies, for CLI enums and ablation loops. *)

val default : unit -> strategy
val set_default : strategy -> unit
(** The process-wide default used when [?strategy] is omitted.  Initially
    {!Indexed}: on the paper's workloads (small instances, all-free
    Boolean goals) demand pruning rarely pays for the extra magic rules;
    {!Magic} wins on bound-goal point queries and is opt-in. *)

val eval : ?strategy:strategy -> Datalog.query -> Instance.t -> Const.t array list
(** All goal tuples of the query on the instance. *)

val holds : ?strategy:strategy -> Datalog.query -> Instance.t -> Const.t array -> bool
(** Membership of one goal tuple.  Under [Magic] this binds every goal
    position in the demand pattern, so only derivations consistent with
    the tuple are explored. *)

val holds_boolean : ?strategy:strategy -> Datalog.query -> Instance.t -> bool
(** The Boolean query is true (its goal relation is nonempty). *)

val contained_cq_in : ?strategy:strategy -> Cq.t -> Datalog.query -> bool
(** CQ ⊆ Datalog containment via the canonical-database check. *)
