let formal_head p name =
  let n =
    match Schema.arity (Datalog.schema p) name with
    | Some n -> n
    | None -> invalid_arg ("Dl_approx: unknown predicate " ^ name)
  in
  List.init n (fun i -> Printf.sprintf "%s#%d" name i)

(* canonical renaming: variables numbered by first occurrence; iterate
   (rename, sort atoms) twice to make the key mostly order-insensitive. *)
let canonical_string (q : Cq.t) =
  let rename (q : Cq.t) =
    let tbl = Hashtbl.create 16 and n = ref 0 in
    let var v =
      match Hashtbl.find_opt tbl v with
      | Some v' -> v'
      | None ->
          let v' = Printf.sprintf "v%d" !n in
          incr n;
          Hashtbl.add tbl v v';
          v'
    in
    let tm = function Cq.Var v -> Cq.Var (var v) | Cq.Cst c -> Cq.Cst c in
    let head = List.map var q.head in
    let body =
      List.map (fun (a : Cq.atom) -> { a with args = List.map tm a.args }) q.body
    in
    { Cq.head; body }
  in
  let sort_body (q : Cq.t) =
    { q with body = List.sort compare q.body }
  in
  let q = sort_body (rename (sort_body (rename q))) in
  Fmt.str "%a" Cq.pp q

let subst_term m = function
  | Cq.Cst c -> Cq.Cst c
  | Cq.Var v -> ( match Smap.find_opt v m with Some t -> t | None -> Cq.Var v)

let subst_atom m (a : Cq.atom) = { a with args = List.map (subst_term m) a.args }

(* Substitute an approximation [q] (over formal head vars) for the IDB atom
   [a]: freshen existentials, map head vars to the atom's argument terms. *)
let plug (q : Cq.t) (a : Cq.atom) : Cq.atom list =
  let q = Cq.freshen q in
  let m =
    List.fold_left2
      (fun m h t -> Smap.add h t m)
      Smap.empty q.head a.args
  in
  List.map (subst_atom m) q.body

let distinct_head_vars (r : Datalog.rule) =
  let vs = Datalog.head_vars r in
  List.length vs = List.length (List.sort_uniq String.compare vs)

let approximations_of_pred_uncached ~max_depth ~max_count p name =
  List.iter
    (fun r ->
      if not (distinct_head_vars r) then
        invalid_arg "Dl_approx: rule head with repeated variables")
    p;
  let idb = Datalog.is_idb p in
  (* memo.(pred) at depth d: approximations with derivation depth ≤ d,
     heads = formal vars. *)
  let memo : (string * int, Cq.t list) Hashtbl.t = Hashtbl.create 16 in
  let dedup qs =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun q ->
        let key = canonical_string q in
        if Hashtbl.mem seen key then false
        else (
          Hashtbl.add seen key ();
          true))
      qs
  in
  let take n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n l
  in
  let rec approx pred depth =
    match Hashtbl.find_opt memo (pred, depth) with
    | Some r -> r
    | None ->
        let result =
          if depth = 0 then []
          else
            let per_rule (r : Datalog.rule) =
              (* rename the rule apart, then map its head vars to the
                 formal variables of [pred]. *)
              let r = Datalog.rename_rule_apart r in
              let m =
                List.fold_left2
                  (fun m hv fv -> Smap.add hv (Cq.Var fv) m)
                  Smap.empty (Datalog.head_vars r) (formal_head p pred)
              in
              let body = List.map (subst_atom m) r.body in
              let intensional, extensional =
                List.partition (fun (a : Cq.atom) -> idb a.rel) body
              in
              (* choices: for each intensional atom, an approximation of
                 depth ≤ depth-1 *)
              let rec expand acc = function
                | [] -> [ acc ]
                | a :: rest ->
                    let subs = approx a.Cq.rel (depth - 1) in
                    List.concat_map
                      (fun q -> expand (acc @ plug q a) rest)
                      (take max_count subs)
              in
              take max_count (expand extensional intensional)
            in
            let bodies = List.concat_map per_rule (Datalog.rules_for p pred) in
            let qs =
              List.map
                (fun body -> Cq.make ~head:(formal_head p pred) body)
                (List.filter
                   (fun body ->
                     (* every formal head var must occur in the body *)
                     let bv =
                       List.concat_map
                         (fun (a : Cq.atom) ->
                           List.filter_map
                             (function Cq.Var v -> Some v | Cq.Cst _ -> None)
                             a.args)
                         body
                     in
                     List.for_all (fun v -> List.mem v bv) (formal_head p pred))
                   bodies)
            in
            take max_count (dedup qs)
        in
        Hashtbl.add memo (pred, depth) result;
        result
  in
  approx name max_depth

(* Approximation sets are requested repeatedly for the same few programs
   (the query under test and each view definition, once per chase round):
   cache them.  Keys are structural, values immutable. *)
let approx_tbl : (Datalog.program * string * int * int, Cq.t list) Hashtbl.t =
  Hashtbl.create 16

let approximations_of_pred ?(max_depth = 4) ?(max_count = 2000) p name =
  match Hashtbl.find_opt approx_tbl (p, name, max_depth, max_count) with
  | Some r -> r
  | None ->
      let r = approximations_of_pred_uncached ~max_depth ~max_count p name in
      if Hashtbl.length approx_tbl >= 256 then Hashtbl.reset approx_tbl;
      Hashtbl.add approx_tbl (p, name, max_depth, max_count) r;
      r

let approximations ?max_depth ?max_count (q : Datalog.query) =
  approximations_of_pred ?max_depth ?max_count q.program q.goal

let is_nonrecursive p =
  List.for_all (fun name -> not (Datalog.depends_on p name name)) (Datalog.idbs p)

let complete_unfolding ?(max_count = 2000) (q : Datalog.query) =
  if not (is_nonrecursive q.program) then None
  else
    let depth = List.length (Datalog.idbs q.program) + 1 in
    let qs = approximations ~max_depth:depth ~max_count:(max_count + 1) q in
    if List.length qs > max_count then None else Some qs
