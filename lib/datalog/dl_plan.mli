(** Layer 1 of the rule-compilation pipeline: slot compilation and join
    planning.

    Rules are {e slot-compiled} — variables numbered into slots of a flat
    binding array — and then {e planned}: an explicit per-rule join order
    with a binding pattern for every argument position and the lifetime
    of every slot.  {!Dl_eval.run_compiled} interprets slot-compiled
    rules with {e dynamic} atom ordering (re-chosen per firing from index
    statistics, via {!estimate_atom} / {!select_candidates});
    {!Dl_vm} lowers {e static} plans to flat register bytecode.

    {2 Thread safety}

    {!compile}'s per-program cache is mutex-guarded: any domain may call
    it concurrently (the coordinator compiling ahead of a parallel round
    merely warms the cache).  Everything else here is pure. *)

type cterm = Cslot of int | Cconst of Const.t

type catom = {
  crel : string;
  crid : Symtab.sym;  (** interned [crel], cached at compile time *)
  cterms : cterm array;
}

type crule = {
  nvars : int;
  cbody : catom array;
  chead : catom;
  crels : Symtab.sym list;  (** distinct body relation ids, sorted *)
}

val compile_rule : Datalog.rule -> crule

val compile : Datalog.program -> crule list
(** Slot-compile a program.  Results are cached under physical equality
    of the program; the cache is mutex-guarded, so concurrent calls from
    worker domains are safe (they serialize on the cache). *)

(** {2 Dynamic planning primitives}

    Per-firing selectivity estimates over a partial binding [env]
    (a [Const.t option array] indexed by slot), used by the interpreted
    matcher to order atoms most-constrained-first at every depth. *)

val estimate_atom : catom -> Const.t option array -> Instance.t -> int
(** Upper bound on the number of candidate tuples for the atom under the
    bindings accumulated so far: the smallest index bucket among its
    bound positions, or the relation's cardinality if none is bound. *)

val select_candidates :
  catom -> Const.t option array -> Instance.t -> Const.t array list
(** The candidate tuples behind {!estimate_atom}'s bound: the most
    selective bound position's bucket (the whole relation if no position
    is bound). *)

(** {2 Static plans}

    A plan fixes the complete control shape of one rule body: the order
    atoms are matched in, and for every argument position whether it
    checks a constant, checks an already-bound slot, or binds a fresh
    slot.  Under a fixed plan each slot has exactly one binding site, so
    an executor needs neither option tags nor an undo trail — the basis
    of {!Dl_vm}'s register bytecode. *)

type binding =
  | Bconst of Const.t  (** position must equal the constant *)
  | Bbind of int  (** position binds this slot (first occurrence) *)
  | Bcheck of int  (** position must equal the already-bound slot *)

type step = {
  satom : int;  (** index of the matched atom in [prule.cbody] *)
  spat : binding array;  (** binding pattern, one entry per position *)
}

type t = {
  prule : crule;
  pdelta : int option;
      (** the semi-naive delta position this plan serves, if any: that
          atom is matched first against the delta, atoms left of it (in
          the original body) against the old facts, the rest against the
          full instance *)
  steps : step array;  (** join order: one step per body atom *)
  first_def : int array;  (** per slot: the step that binds it *)
  last_use : int array;
      (** per slot: the last step reading it ([Array.length steps] when
          the head reads it at emit time) *)
}

val plan : crule -> delta:int option -> t
(** Plan one rule.  [delta = Some j] forces body atom [j] first (it
    matches the small delta); the remaining atoms are ordered greedily
    most-bound-first (constants and already-bound slots count as bound,
    constants break ties), lowest body index on full ties — so plans are
    deterministic functions of the rule. *)

val pp : t Fmt.t
