(** Cooperative cancellation tokens for long-running decisions.

    Every fixpoint entry point ({!Dl_eval}, {!Dl_parallel}, the
    {!Dl_engine} facade) and the chase-based separator checks take an
    optional token and probe it at coarse boundaries: the start of each
    semi-naive round, and each chase step.  A probe on an expired or
    cancelled token raises {!Cancelled}; because probes sit at round
    boundaries, an abort never leaves shared caches (compiled rules,
    instance indexes, memoized chase prefixes) in a half-written state —
    see DESIGN.md, "The cancellation-token contract". *)

type t

exception Cancelled

val none : t
(** The shared never-cancelled token — the default for every [?cancel]
    parameter.  {!cancel} on it is a no-op. *)

val token : unit -> t
(** A manually cancellable token with no deadline. *)

val with_deadline : float -> t
(** Token that expires at the given absolute [Unix.gettimeofday] time. *)

val with_deadline_ms : int -> t
(** Token that expires the given number of milliseconds from now.
    [with_deadline_ms 0] is expired immediately (every probe fires). *)

val cancel : t -> unit
(** Cancel explicitly; threads observing the token see it on their next
    {!check}. *)

val cancelled : t -> bool
(** Has the token been cancelled, or its deadline passed? *)

val check : t -> unit
(** @raise Cancelled iff {!cancelled}. *)

val protect : t -> (unit -> 'a) -> ('a, [ `Cancelled ]) result
(** [protect t f] runs [f], turning a {!Cancelled} escape into
    [Error `Cancelled] (and marking [t] cancelled so later probes agree). *)
