(** Bottom-up (semi-naive) evaluation of Datalog programs.

    [fixpoint p i] is the paper's [FPEval(Π, I)]: the minimal IDB-extension
    of [I] satisfying all rules of [Π]. *)

type env = Const.t Smap.t
(** Variable bindings, see {!Smap}. *)

val match_body :
  ?delta:Instance.t ->
  Instance.t ->
  Cq.atom list ->
  env ->
  (env -> bool) ->
  unit
(** [match_body ?delta inst atoms env yield] enumerates extensions of [env]
    matching all atoms into [inst]; when [delta] is given, at least one atom
    must match a fact of [delta], atoms to its left match only
    [inst \ delta] (so no derivation is enumerated twice), and atoms to its
    right match [inst].  Atoms are joined most-constrained-first: the next
    atom matched is always the one with the fewest index candidates under
    the bindings accumulated so far.  [yield] returns false to stop
    early. *)

val fixpoint : ?cancel:Dl_cancel.t -> Datalog.program -> Instance.t -> Instance.t
(** Least fixpoint; returns the input instance extended with IDB facts.
    [cancel] is probed at every semi-naive round boundary (and once on
    entry): a cancelled or expired token raises {!Dl_cancel.Cancelled}
    without corrupting any shared cache. *)

val fixpoint_delta :
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  old:Instance.t ->
  delta:Instance.t ->
  Instance.t * Instance.t
(** [fixpoint_delta p ~old ~delta] resumes the semi-naive iteration
    mid-run: [old] must be closed under the rules of [p] (no rule firing
    entirely within [old] derives a missing fact) and [delta] is a set of
    newly arrived facts.  Returns [(full, derived)] where [full] is the
    least fixpoint of [p] over [old ∪ delta] and [derived] are the facts
    of [full] beyond [old ∪ delta].  This is the insertion path of
    incremental maintenance ({!Dl_incr}): cost is proportional to the
    derivations touching [delta], never to a re-derivation of [old]. *)

val eval : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array list
(** Goal tuples of the query on the instance. *)

val holds : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array -> bool
val holds_boolean : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> bool

val contained_cq_in : ?cancel:Dl_cancel.t -> Cq.t -> Datalog.query -> bool
(** [contained_cq_in q p] decides [q ⊆ p]: evaluate [p] on the canonical
    database of [q] and test the head tuple. *)

val equivalent_on : Datalog.query -> Datalog.query -> Instance.t list -> bool
(** Differential check: the two queries agree on all given instances. *)

val fixpoint_naive : ?cancel:Dl_cancel.t -> Datalog.program -> Instance.t -> Instance.t
(** Reference implementation: scan-based matching in textual atom order
    and naive (non-incremental) iteration — the seed's evaluator, kept as
    the oracle for differential tests of the indexed engine. *)

val eval_naive : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array list
(** Goal tuples via {!fixpoint_naive}. *)

(** {2 Compiled-rule internals}

    The slot-compiled representation behind {!fixpoint} — defined in
    {!Dl_plan} (layer 1 of the compile pipeline) and re-exported here for
    {!Dl_parallel}, which drives the same per-rule matcher from several
    domains.  Everything here is reentrant: {!run_compiled} allocates its
    binding array and trail per call and only {e reads} the instances it
    is given (provided their relation indexes are already built — see
    {!Instance.index}; building one is a benign cache fill but makes the
    call a writer). *)

type cterm = Dl_plan.cterm = Cslot of int | Cconst of Const.t

type catom = Dl_plan.catom = {
  crel : string;
  crid : Symtab.sym;  (** interned [crel], cached at compile time *)
  cterms : cterm array;
}

type crule = Dl_plan.crule = {
  nvars : int;
  cbody : catom array;
  chead : catom;
  crels : Symtab.sym list;  (** distinct body relation ids, sorted *)
}

val compile : Datalog.program -> crule list
(** Slot-compile a program (alias of {!Dl_plan.compile}).  Results are
    cached under physical equality of the program; the cache is
    mutex-guarded, so a worker domain re-entering [compile] is safe —
    compiling on the coordinating thread first merely warms the cache. *)

val run_compiled :
  crule -> Instance.t array -> (Const.t option array -> bool) -> unit
(** [run_compiled cr sources on_match] enumerates all matches of
    [cr.cbody] where body atom [i] draws its candidate tuples from
    [sources.(i)], most-constrained-first.  [on_match] receives the slot
    bindings and returns [false] to stop the enumeration. *)

val chead_fact : crule -> Const.t option array -> Fact.t
(** The head fact under a complete binding of the rule's slots. *)
