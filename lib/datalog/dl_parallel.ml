(* Parallel semi-naive fixpoint: shard each round's (rule × delta-position
   × delta-chunk) firing set across a persistent pool of domains.

   Safety argument, in one place:

   - the shared round instances ([old], [full], the delta chunks) are
     persistent maps; the only mutable field reachable from them is the
     per-relation index cache, which [prewarm] fills on the coordinating
     thread before dispatch, so workers are pure readers;
   - each worker derives into a private accumulator instance;
   - the pool's mutex hand-off publishes everything the coordinator wrote
     before the round to every worker, and everything the workers wrote
     back to the coordinator at the barrier;
   - the early-stop flag is an [Atomic.t].

   Determinism argument: the chunks partition the delta, so the units of a
   round cover exactly the matches the sequential [Dl_eval.fixpoint_gen]
   round enumerates, each exactly once across units; the barrier merge is
   a set union; hence every round's delta — and therefore the fixpoint —
   is identical for every domain count and schedule. *)

(* ------------------------------------------------------------------ *)
(* Domain-count configuration: --domains > MONDET_DOMAINS > recommended. *)

let clamp n = max 1 (min n 64)

let env_domains =
  lazy
    (match Sys.getenv_opt "MONDET_DOMAINS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Some (clamp n)
        | None ->
            Printf.eprintf
              "mondet: ignoring MONDET_DOMAINS=%S (expected an integer)\n%!" s;
            None))

let requested : int option ref = ref None

let set_domains n = requested := Some (clamp n)

let domains () =
  match !requested with
  | Some n -> n
  | None -> (
      match Lazy.force env_domains with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Matcher configuration: which per-rule matcher the workers run.  Both
   enumerate exactly the same matches per unit, so the fixpoint is
   identical; [Bytecode] trades the interpreted matcher's per-depth
   selectivity rescans for a fixed plan (see {!Dl_vm}). *)

type matcher = Slots | Bytecode

let matcher_of_string = function
  | "slots" -> Some Slots
  | "bytecode" -> Some Bytecode
  | _ -> None

let env_matcher =
  lazy
    (match Sys.getenv_opt "MONDET_PAR_MATCHER" with
    | None -> None
    | Some s -> (
        match matcher_of_string (String.trim s) with
        | Some m -> Some m
        | None ->
            Printf.eprintf
              "mondet: ignoring MONDET_PAR_MATCHER=%S (expected \
               slots|bytecode)\n%!" s;
            None))

let requested_matcher : matcher option ref = ref None
let set_matcher m = requested_matcher := Some m

let matcher () =
  match !requested_matcher with
  | Some m -> m
  | None -> (
      match Lazy.force env_matcher with Some m -> m | None -> Bytecode)

(* ------------------------------------------------------------------ *)
(* A persistent pool of [size - 1] spawned domains plus the caller.  One
   batch at a time: [run] publishes a task, bumps the epoch, works as
   worker 0 itself, then blocks until every spawned worker has finished.
   Workers park on [start] between batches, so an idle pool costs
   nothing. *)

type pool = {
  size : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable task : (int -> unit) option;
  mutable pending : int;
  mutable closing : bool;
  mutable errors : exn list;
  mutable handles : unit Domain.t list;
}

let rec worker_loop pool i seen =
  Mutex.lock pool.mutex;
  while pool.epoch = seen && not pool.closing do
    Condition.wait pool.start pool.mutex
  done;
  if pool.closing then Mutex.unlock pool.mutex
  else begin
    let epoch = pool.epoch in
    let task = match pool.task with Some t -> t | None -> assert false in
    Mutex.unlock pool.mutex;
    let err = try task i; None with exn -> Some exn in
    Mutex.lock pool.mutex;
    (match err with Some e -> pool.errors <- e :: pool.errors | None -> ());
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.signal pool.finished;
    Mutex.unlock pool.mutex;
    worker_loop pool i epoch
  end

let make_pool size =
  let pool =
    {
      size;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      task = None;
      pending = 0;
      closing = false;
      errors = [];
      handles = [];
    }
  in
  pool.handles <-
    List.init (size - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop pool (k + 1) 0));
  pool

let shutdown_pool pool =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.handles;
  pool.handles <- []

let the_pool : pool option ref = ref None
let at_exit_registered = ref false

(* Even parked domains cost: every minor collection is a stop-the-world
   synchronization across all live domains, so a single-threaded phase
   that runs while the pool idles pays a per-GC tax.  [shutdown] joins
   the pool so that tax disappears; the next parallel call respawns. *)
let shutdown () =
  match !the_pool with
  | Some p ->
      the_pool := None;
      shutdown_pool p
  | None -> ()

let get_pool size =
  match !the_pool with
  | Some p when p.size = size -> p
  | _ ->
      shutdown ();
      let p = make_pool size in
      the_pool := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        (* parked domains must be woken and joined before the runtime
           tears down, or exit can block on them *)
        at_exit shutdown
      end;
      p

(* Run one batch: every worker (the caller included) executes [task] with
   its worker index; returns once all have finished, re-raising the first
   exception any of them recorded. *)
let run pool task =
  if pool.size = 1 then task 0
  else begin
    Mutex.lock pool.mutex;
    pool.task <- Some task;
    pool.pending <- pool.size - 1;
    pool.errors <- [];
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.start;
    Mutex.unlock pool.mutex;
    let main_err = try task 0; None with exn -> Some exn in
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.finished pool.mutex
    done;
    pool.task <- None;
    let errors = pool.errors in
    Mutex.unlock pool.mutex;
    match main_err with
    | Some e -> raise e
    | None -> ( match errors with e :: _ -> raise e | [] -> ())
  end

(* ------------------------------------------------------------------ *)
(* Long-lived workers: a handle over [Domain.spawn]/[Domain.join] for
   callers that need domains running their own loops for the life of a
   server rather than sharing the epoch pool's batch discipline (the TCP
   front-end's connection workers).  Kept here so every domain the
   process ever spawns goes through one module — the count shares the
   same clamp, and the pool/worker split stays visible in one place. *)

type workers = { wdomains : unit Domain.t array }

let spawn_workers n body =
  let n = clamp n in
  { wdomains = Array.init n (fun i -> Domain.spawn (fun () -> body i)) }

let worker_count w = Array.length w.wdomains

let join_workers w =
  let err = ref None in
  Array.iter
    (fun d ->
      try Domain.join d
      with e -> if !err = None then err := Some e)
    w.wdomains;
  match !err with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* Round machinery. *)

(* Split [delta] round-robin into at most [k] non-empty chunks.  Tiny
   deltas are not worth the per-chunk planner overhead. *)
let split_delta k delta =
  if k <= 1 || Instance.size delta < 2 * k then [| delta |]
  else begin
    let parts = Array.make k Instance.empty in
    let i = ref 0 in
    Instance.iter
      (fun f ->
        let j = !i mod k in
        parts.(j) <- Instance.add f parts.(j);
        incr i)
      delta;
    Array.of_list
      (List.filter (fun p -> not (Instance.is_empty p)) (Array.to_list parts))
  end

(* Build every relation index a worker could touch, on the coordinating
   thread, so the parallel phase never writes a shared cache. *)
let prewarm body_rels insts =
  List.iter
    (fun inst ->
      List.iter (fun r -> ignore (Instance.index_id inst r)) body_rels)
    insts

(* One firing unit: body position [pos] of rule [ri] ([rule] in compiled
   form) draws candidates from delta chunk [chunk], positions before it
   from [old], after it from [full].  [pos = -1] fires an empty-body rule
   (first round only — later rounds cannot re-derive its head).  [ri]
   indexes the program's rule list, so a bytecode worker can look up the
   rule's {!Dl_vm.rule_prog} without re-deriving it. *)
type unit_ = { rule : Dl_eval.crule; ri : int; pos : int; chunk : Instance.t }

let round_units ~first ~delta chunks rules =
  let units = ref [] in
  List.iteri
    (fun ri (cr : Dl_eval.crule) ->
      let nb = Array.length cr.cbody in
      if nb = 0 then begin
        if first then
          units := { rule = cr; ri; pos = -1; chunk = Instance.empty } :: !units
      end
      else if
        List.exists (fun r -> Instance.cardinal_id delta r > 0) cr.crels
      then
        for j = 0 to nb - 1 do
          (* positions left of [j] match [old]; in the first round [old]
             is empty, so only [j = 0] can fire *)
          if (not (first && j > 0))
             && Instance.cardinal_id delta cr.cbody.(j).crid > 0
          then
            Array.iter
              (fun chunk ->
                if Instance.cardinal_id chunk cr.cbody.(j).crid > 0 then
                  units := { rule = cr; ri; pos = j; chunk } :: !units)
              chunks
        done)
    rules;
  Array.of_list !units

(* The shared sharded-round core.  [start] selects the entry point:
   [`Cold inst] runs the classic first-round-naive iteration from
   scratch; [`Delta (old, delta)] resumes mid-iteration for incremental
   maintenance ([old] closed under [p]).  Returns the fixpoint and the
   facts derived beyond the starting state. *)
let fixpoint_core ?(stop = fun _ -> false) ?(cancel = Dl_cancel.none) p start =
  Dl_cancel.check cancel;
  let rules = Dl_eval.compile p in
  (* bytecode compiled up front on the coordinating thread (warming the
     mutex-guarded cache, keyed by program fingerprint); [Dl_vm.compile]
     preserves rule order, so [vms.(u.ri)] is [u.rule]'s program *)
  let mode = matcher () in
  let vms =
    match mode with
    | Slots -> [||]
    | Bytecode -> Array.of_list (Dl_vm.compile p)
  in
  let body_rels =
    List.sort_uniq Int.compare
      (List.concat_map (fun (cr : Dl_eval.crule) -> cr.crels) rules)
  in
  let pool = get_pool (domains ()) in
  let nworkers = pool.size in
  let accs = Array.make nworkers Instance.empty in
  let found = Atomic.make false in
  (* one sharded semi-naive round: fire all units, merge the private
     accumulators at the barrier into this round's fresh facts *)
  let fire_round ~old ~full units =
    Array.fill accs 0 nworkers Instance.empty;
    let next = Atomic.make 0 in
    let nunits = Array.length units in
    run pool (fun w ->
        let acc = ref Instance.empty in
        let derive_fact f =
          if Atomic.get found then false
          else begin
            if not (Instance.mem f full) && not (Instance.mem f !acc) then begin
              acc := Instance.add f !acc;
              if stop f then Atomic.set found true
            end;
            not (Atomic.get found)
          end
        in
        let derive cr env = derive_fact (Dl_eval.chead_fact cr env) in
        let rec grab () =
          let u = Atomic.fetch_and_add next 1 in
          if u < nunits && not (Atomic.get found) then begin
            let { rule = cr; ri; pos; chunk } = units.(u) in
            (match mode with
            | Bytecode ->
                (* a raised Cancelled propagates through the pool's error
                   list and re-raises at the barrier *)
                let rp = vms.(ri) in
                if pos = -1 then
                  Dl_vm.exec rp.Dl_vm.naive ~full ~cancel derive_fact
                else
                  Dl_vm.exec rp.Dl_vm.semi.(pos) ~full ~old ~delta:chunk
                    ~cancel derive_fact
            | Slots ->
                let nb = Array.length cr.cbody in
                if nb = 0 then ignore (derive cr [||])
                else begin
                  let sources = Array.make nb full in
                  for i = 0 to pos - 1 do
                    sources.(i) <- old
                  done;
                  sources.(pos) <- chunk;
                  Dl_eval.run_compiled cr sources (derive cr)
                end);
            grab ()
          end
        in
        grab ();
        accs.(w) <- !acc);
    let fresh = ref Instance.empty in
    Array.iter (fun a -> fresh := Instance.union !fresh a) accs;
    !fresh
  in
  (* [full = old ∪ delta]; the first round treats the whole input as the
     delta over an empty [old], which fires every rule naively (only
     position 0 can match) — each derivation exactly once. *)
  (* the cancellation probe sits at the round boundary, where the pool is
     parked: an abort raises on the coordinating thread only and leaves
     every worker idle and every shared cache complete *)
  let rec loop ~first old delta acc =
    Dl_cancel.check cancel;
    let full = Instance.union old delta in
    if Instance.is_empty delta || Atomic.get found then (full, acc)
    else begin
      let chunks = split_delta (2 * nworkers) delta in
      prewarm body_rels (full :: old :: Array.to_list chunks);
      let units = round_units ~first ~delta chunks rules in
      let fresh = fire_round ~old ~full units in
      loop ~first:false full fresh (Instance.union acc fresh)
    end
  in
  match start with
  | `Cold inst -> loop ~first:true Instance.empty inst Instance.empty
  | `Delta (old, delta) ->
      loop ~first:false (Instance.diff old delta) delta Instance.empty

let fixpoint_gen ?stop ?cancel p inst =
  fst (fixpoint_core ?stop ?cancel p (`Cold inst))

let fixpoint ?stop ?cancel p inst =
  if domains () = 1 then
    match stop with
    | None -> Dl_eval.fixpoint ?cancel p inst
    | Some _ ->
        (* Dl_eval does not export its ?stop; the sharded path with a
           1-sized pool degenerates to sequential evaluation anyway *)
        fixpoint_gen ?stop ?cancel p inst
  else fixpoint_gen ?stop ?cancel p inst

(* Delta-start entry, same contract as {!Dl_eval.fixpoint_delta}; the
   delta rounds shard exactly like the cold iteration's.  With one
   effective domain the sequential engine is strictly better (no
   chunking, no barrier), so delegate outright. *)
let fixpoint_delta ?cancel p ~old ~delta =
  if domains () = 1 then Dl_eval.fixpoint_delta ?cancel p ~old ~delta
  else fixpoint_core ?cancel p (`Delta (old, delta))

let eval ?cancel (q : Datalog.query) inst =
  Instance.tuples (fixpoint ?cancel q.program inst) q.goal

let tuple_equal a b =
  Array.length a = Array.length b && Array.for_all2 Const.equal a b

let holds ?cancel (q : Datalog.query) inst tup =
  let want (f : Fact.t) =
    String.equal f.rel q.goal && tuple_equal f.args tup
  in
  let fp = fixpoint ~stop:want ?cancel q.program inst in
  List.exists (tuple_equal tup) (Instance.tuples fp q.goal)

let holds_boolean ?cancel (q : Datalog.query) inst =
  let stop (f : Fact.t) = String.equal f.rel q.goal in
  Instance.cardinal (fixpoint ~stop ?cancel q.program inst) q.goal > 0

(* ------------------------------------------------------------------ *)
(* Generic batch dispatch over the same pool, for callers with
   independent coarse-grained tasks (the request service's read-only
   batches).  Tasks are drained off an atomic counter by every worker
   (the caller included); each task must confine its effects to its own
   data — see the safety contract in the mli. *)

let run_tasks tasks =
  match tasks with
  | [] -> ()
  | [ t ] -> t ()
  | _ ->
      let pool = get_pool (domains ()) in
      let arr = Array.of_list tasks in
      let n = Array.length arr in
      let next = Atomic.make 0 in
      run pool (fun _ ->
          let rec grab () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              arr.(i) ();
              grab ()
            end
          in
          grab ())
