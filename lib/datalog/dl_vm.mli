(** Layer 2 of the rule-compilation pipeline: a flat register-bytecode VM
    for Datalog rule bodies.

    Static join plans ({!Dl_plan.plan}) are lowered to an [int array] of
    opcodes — [scan] / [index-probe] to open a step's cursor, [next] to
    advance it, [check-const] / [check-slot-eq] / [bind-slot] for the
    step's binding pattern, [emit-head] on a complete match, and
    [cancel-probe] on every advance path — executed by a tight dispatch
    loop over a preallocated [Const.t array] register file.  Because a
    static plan gives every slot exactly one binding site, the register
    file is untagged and backtracking needs no trail.

    Each rule is compiled once into a naive variant (all atoms read the
    full instance) and one semi-naive variant per body position (that
    atom reads the delta, atoms left of it the old facts, the rest the
    full instance), so {!fixpoint}'s round structure is identical to
    {!Dl_eval.fixpoint}'s — only the per-rule matcher differs.

    {2 Thread safety}

    {!compile}'s cache is keyed on {!Datalog.program_fingerprint} and
    mutex-guarded: any domain may compile concurrently (structurally
    equal programs share one compilation).  {!exec} is reentrant — all
    mutable state is per-call — provided the instances' relation indexes
    are already built (see {!Instance.index}); {!Dl_parallel} prewarms
    them before fanning out.

    {2 Cancellation}

    Unlike the interpreted engines, which probe only at round
    boundaries, the VM executes a [cancel-probe] opcode on every cursor
    advance and every failed check (with a fuel counter so the actual
    clock read is periodic), so a deadline interrupts a long round
    mid-enumeration. *)

type program = private {
  code : int array;  (** flat bytecode *)
  pool : Const.t array;  (** constant pool *)
  rels : Symtab.sym array;  (** per step: interned relation id *)
  rel_names : string array;  (** per step: relation name *)
  srcs : int array;  (** per step: instance source (0 full, 1 old, 2 delta) *)
  nregs : int;
  nsteps : int;
  head_rid : Symtab.sym;
  head_rel : string;
  head_regs : int array;  (** per head position: source register *)
}

type rule_prog = private {
  source : Dl_plan.crule;
  naive : program;
  semi : program array;  (** one delta-position variant per body atom *)
}

val compile : Datalog.program -> rule_prog list
(** Lower every rule of the program to bytecode.  Cached by
    {!Datalog.program_fingerprint} under a mutex; safe from any
    domain. *)

val exec :
  program ->
  full:Instance.t ->
  ?old:Instance.t ->
  ?delta:Instance.t ->
  ?cancel:Dl_cancel.t ->
  (Fact.t -> bool) ->
  unit
(** [exec prog ~full emit] runs the bytecode, calling [emit] with the
    head fact of every match; [emit] returns [false] to stop the
    enumeration.  [old]/[delta] back the corresponding sources of
    semi-naive variants (default empty).  Raises {!Dl_cancel.Cancelled}
    if [cancel] fires, and [Invalid_argument] on an arity mismatch
    between a stored fact and its atom. *)

val fixpoint :
  ?cancel:Dl_cancel.t -> Datalog.program -> Instance.t -> Instance.t
(** Least fixpoint via bytecode execution; same contract as
    {!Dl_eval.fixpoint}. *)

val fixpoint_delta :
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  old:Instance.t ->
  delta:Instance.t ->
  Instance.t * Instance.t
(** Delta-start semi-naive rounds through the bytecode matcher; same
    contract as {!Dl_eval.fixpoint_delta}.  Being VM-backed, deadline
    tokens are additionally probed mid-round by the cancel-probe
    opcode. *)

val eval :
  ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array list

val holds :
  ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array -> bool

val holds_boolean : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> bool

val pp_program : program Fmt.t
(** Disassembly: header (head shape, step/register counts, constant
    pool) followed by one line per opcode with its pc.  Relation and
    constant names are printed, never raw intern ids, so the output is
    stable across processes. *)

val pp_rule_prog : rule_prog Fmt.t
(** The naive variant followed by every delta variant. *)
