(* Cooperative cancellation tokens.

   A token is either the shared never-cancelled [none] (so every fixpoint
   entry point can take a [?cancel] parameter without paying an
   allocation), or a real token carrying an atomic flag and an optional
   wall-clock deadline.  Evaluators probe [check] at coarse, safe
   boundaries — semi-naive round starts, chase steps — so an abort never
   leaves shared state (compiled-rule caches, instance indexes, memoized
   chase prefixes) half-written: everything those caches hold at abort
   time was completed before the probe fired. *)

type t = {
  never : bool;  (* the shared [none]: [cancel] is a no-op on it *)
  flag : bool Atomic.t;
  deadline : float option;  (* absolute, Unix.gettimeofday seconds *)
}

exception Cancelled

let none = { never = true; flag = Atomic.make false; deadline = None }

let token () = { never = false; flag = Atomic.make false; deadline = None }

let with_deadline t = { never = false; flag = Atomic.make false; deadline = Some t }

let with_deadline_ms ms =
  with_deadline (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

let cancel t = if not t.never then Atomic.set t.flag true

let cancelled t =
  (not t.never)
  && (Atomic.get t.flag
     ||
     match t.deadline with
     | None -> false
     | Some d -> Unix.gettimeofday () >= d)

let check t = if cancelled t then raise Cancelled

let protect t f = try Ok (f ()) with Cancelled -> cancel t; Error `Cancelled
