(** Work-sharded semi-naive evaluation over OCaml 5 domains.

    Same semantics as {!Dl_eval} — least fixpoint, early-stopping goal
    checks — but each semi-naive round's firing set is partitioned across
    a persistent pool of [Domain.t] workers.  The unit of work is a
    (rule × delta-position × delta-chunk) triple: the round's delta is
    split round-robin into chunks, and each worker matches its units with
    the slot-compiled matcher of {!Dl_eval} into a private accumulator
    instance.  Workers only read the shared round instances (their
    indexes are pre-built before dispatch), so matching is race-free; the
    single synchronization point is the round barrier, where the private
    accumulators are merged single-threaded with the warm
    {!Instance.union} (which extends cached indexes instead of rebuilding
    them).

    The result is deterministic: every round derives exactly the facts
    the sequential engine would, whatever the domain count or schedule,
    because chunks partition the delta and the merged union is a set.
    Early-stopping checks ({!holds}, {!holds_boolean}) communicate
    through an atomic flag — a worker that derives the goal sets it,
    everyone drains at the next check, and the barrier returns what was
    derived so far — so the Boolean verdict is deterministic even though
    the stopped instance need not be.

    With an effective domain count of 1 everything delegates straight to
    {!Dl_eval}: no pool, no chunking, no overhead.

    Thread-safety contract: call this module (and anything routed to it
    through {!Dl_engine}) from one coordinating thread only.  The worker
    pool is process-global, sized by {!set_domains} / [MONDET_DOMAINS] /
    [Domain.recommended_domain_count], and is resized lazily when the
    requested count changes. *)

val set_domains : int -> unit
(** Request a total worker count (the coordinating thread counts as one
    worker, so [n - 1] domains are spawned).  Clamped to [1, 64].  This
    is what the CLI's [--domains] flag calls; it overrides the
    [MONDET_DOMAINS] environment variable, which in turn overrides
    [Domain.recommended_domain_count ()]. *)

val domains : unit -> int
(** The effective worker count the next evaluation will use. *)

type matcher = Slots | Bytecode
(** Which per-rule matcher the workers run on their units: [Slots] is the
    interpreted slot matcher ({!Dl_eval.run_compiled}, dynamic
    most-constrained-first ordering per firing), [Bytecode] executes the
    rule's static plan lowered to register bytecode ({!Dl_vm.exec}).
    Both enumerate exactly the same matches per unit, so the fixpoint —
    and the determinism argument — are unchanged; only per-unit matching
    cost differs.  Under [Bytecode] the compilation happens once on the
    coordinating thread (the cache is mutex-guarded either way), and the
    VM's in-loop cancellation probes are live inside workers: a deadline
    can interrupt a unit mid-enumeration, raising at the round barrier. *)

val set_matcher : matcher -> unit
(** Select the worker matcher.  Overrides the [MONDET_PAR_MATCHER]
    environment variable ([slots] | [bytecode]); the default is
    [Bytecode] — the VM wins on the wide rounds this engine exists for
    (see the [engine/vm-*] and E19 rows), and its in-loop cancel probes
    keep deadlines live inside workers.  [MONDET_PAR_MATCHER=slots]
    restores the interpreted matcher. *)

val matcher : unit -> matcher
(** The matcher the next evaluation will use. *)

val shutdown : unit -> unit
(** Join the worker pool (a no-op if none is live).  Idle domains are
    not free: every minor collection synchronizes all live domains, so a
    long single-threaded phase after a parallel one runs measurably
    slower while the pool idles.  Benchmarks and other timing-sensitive
    callers should [shutdown] when switching back to sequential work;
    the next parallel evaluation respawns the pool transparently.  Also
    registered with [at_exit]. *)

val fixpoint :
  ?stop:(Fact.t -> bool) ->
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  Instance.t ->
  Instance.t
(** Least fixpoint, as {!Dl_eval.fixpoint}.  [stop] is probed on every
    newly derived fact; returning [true] aborts the evaluation after the
    current round's barrier with the facts derived so far.  [cancel] is
    probed at every round boundary, on the coordinating thread, while the
    pool is parked: a cancelled token raises {!Dl_cancel.Cancelled}
    leaving the pool reusable and every shared cache complete. *)

val fixpoint_delta :
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  old:Instance.t ->
  delta:Instance.t ->
  Instance.t * Instance.t
(** Delta-start semi-naive rounds with the same sharding as {!fixpoint};
    contract as {!Dl_eval.fixpoint_delta}.  With one effective domain it
    delegates to the sequential engine outright (no chunking, no
    barrier). *)

val eval : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array list
(** All goal tuples, via the full parallel fixpoint. *)

val holds : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> Const.t array -> bool
(** Membership of one goal tuple, early-stopping. *)

val holds_boolean : ?cancel:Dl_cancel.t -> Datalog.query -> Instance.t -> bool
(** Goal-relation nonemptiness, early-stopping. *)

(** {2 Long-lived workers}

    The epoch pool above runs one batch at a time with the caller
    participating; servers instead need domains that run their own
    loops — connection multiplexers — for the whole process lifetime.
    {!spawn_workers} is the handle for those: it shares the pool's
    domain-count clamp but nothing else, and the two kinds compose
    (a spawned worker must never call into the epoch pool — pool entry
    points are coordinator-only). *)

type workers

val spawn_workers : int -> (int -> unit) -> workers
(** [spawn_workers n body] spawns [n] domains (clamped to [1, 64]),
    each running [body i] with its index [i].  The bodies run until
    they return; arrange their termination yourself (a stop flag they
    poll), then {!join_workers}. *)

val worker_count : workers -> int
(** The clamped number of spawned domains. *)

val join_workers : workers -> unit
(** Block until every worker body returns, then re-raise the first
    exception any of them died with (after joining all). *)

val run_tasks : (unit -> unit) list -> unit
(** Drain independent tasks across the worker pool (the calling thread
    included), off a shared atomic counter; returns when all have run.
    This is the request service's dispatch primitive: tasks must be
    mutually independent and confine their writes to data they own —
    shared read-only structures (instances, compiled rules) must have
    their caches pre-built on the calling thread first, exactly as the
    fixpoint rounds pre-warm indexes before sharding.  An exception in a
    task is re-raised after the batch completes ([] and singleton lists
    bypass the pool entirely). *)
