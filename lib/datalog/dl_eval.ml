type env = Const.t Smap.t

(* Argument positions of [a] already fixed by [env] (or by constants). *)
let bound_positions (a : Cq.atom) env =
  let bound = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Cq.Cst c -> bound := (i, c) :: !bound
      | Cq.Var v -> (
          match Smap.find_opt v env with
          | Some c -> bound := (i, c) :: !bound
          | None -> ()))
    a.args;
  !bound

(* Extend [env] by matching atom [a] against tuple [tup]; [None] on clash.
   A tuple whose arity disagrees with the atom is a schema violation — the
   program constructors validate arity, so this is loud, not silent. *)
let extend_env (a : Cq.atom) tup env =
  if Array.length tup <> List.length a.args then
    invalid_arg
      (Printf.sprintf "Dl_eval: %s has a fact of arity %d but an atom of arity %d"
         a.rel (Array.length tup) (List.length a.args));
  let env' = ref env and ok = ref true in
  List.iteri
    (fun i t ->
      if !ok then
        match t with
        | Cq.Cst c -> if not (Const.equal c tup.(i)) then ok := false
        | Cq.Var v -> (
            match Smap.find_opt v !env' with
            | Some c -> if not (Const.equal c tup.(i)) then ok := false
            | None -> env' := Smap.add v tup.(i) !env'))
    a.args;
  if !ok then Some !env' else None

(* Enumerate all matches of the (atom, source-instance) pairs in [sources],
   choosing the next atom dynamically: the one with the fewest index
   candidates under the bindings accumulated so far.  Returns [false] when
   a [yield] stopped the enumeration. *)
let match_plan sources env yield =
  let arr = Array.of_list sources in
  let n = Array.length arr in
  let swap i j =
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  in
  let rec solve k env =
    if k = n then yield env
    else begin
      let best = ref k
      and best_bound = ref (bound_positions (fst arr.(k)) env)
      and best_cost = ref max_int in
      let a0, src0 = arr.(k) in
      best_cost := Instance.estimate_with src0 a0.Cq.rel !best_bound;
      for j = k + 1 to n - 1 do
        if !best_cost > 0 then begin
          let a, src = arr.(j) in
          let b = bound_positions a env in
          let c = Instance.estimate_with src a.Cq.rel b in
          if c < !best_cost then begin
            best := j;
            best_bound := b;
            best_cost := c
          end
        end
      done;
      swap k !best;
      let a, src = arr.(k) in
      let candidates = Instance.tuples_with src a.Cq.rel !best_bound in
      let rec go = function
        | [] -> true
        | tup :: rest -> (
            match extend_env a tup env with
            | Some env' -> if solve (k + 1) env' then go rest else false
            | None -> go rest)
      in
      let continue_ = go candidates in
      swap k !best;
      continue_
    end
  in
  solve 0 env

(* semi-naive split: some atom matches the delta; atoms before it match
   only the old facts [old = inst \ delta] (so a derivation using several
   delta facts is produced exactly once), atoms after it match the full
   instance. *)
let match_body_semi ~old ~delta inst atoms env yield =
  let rec split pre = function
    | [] -> true
    | a :: post ->
        let sources =
          (a, delta)
          :: List.rev_append
               (List.rev_map (fun x -> (x, old)) pre)
               (List.map (fun x -> (x, inst)) post)
        in
        if match_plan sources env yield then split (a :: pre) post else false
  in
  ignore (split [] atoms)

let match_body ?delta inst atoms env yield =
  match delta with
  | None ->
      ignore (match_plan (List.map (fun a -> (a, inst)) atoms) env yield)
  | Some d -> match_body_semi ~old:(Instance.diff inst d) ~delta:d inst atoms env yield

let head_fact (r : Datalog.rule) env =
  let args =
    List.map
      (function
        | Cq.Var v -> Smap.find v env
        | Cq.Cst _ -> assert false (* ruled out by Datalog.rule *))
      r.head.Cq.args
  in
  Fact.make r.head.Cq.rel args

exception Stopped of Instance.t

(* Semi-naive fixpoint.  [stop] is probed on every newly derived fact:
   returning [true] aborts the iteration with the facts derived so far —
   this is what makes Boolean goal checks sublinear in the fixpoint. *)
(* ------------------------------------------------------------------ *)
(* Slot-compiled rules: the fixpoint's inner loop.  Variables are numbered
   into slots of a mutable binding array, so matching a tuple is array
   reads/writes (undone via a trail on backtracking) instead of string-map
   operations.  Slot compilation and the selectivity primitives live in
   {!Dl_plan} (layer 1 of the compile pipeline, shared with the {!Dl_vm}
   bytecode backend); this matcher keeps the {e dynamic} discipline: atom
   order is re-chosen per firing from live index statistics. *)

type cterm = Dl_plan.cterm = Cslot of int | Cconst of Const.t

type catom = Dl_plan.catom = {
  crel : string;
  crid : Symtab.sym;
  cterms : cterm array;
}

type crule = Dl_plan.crule = {
  nvars : int;
  cbody : catom array;
  chead : catom;
  crels : Symtab.sym list;
}

let compile = Dl_plan.compile
let select_candidates = Dl_plan.select_candidates
let estimate_atom = Dl_plan.estimate_atom

(* Match [tup] against [a], binding fresh slots; returns the number of
   slots pushed on [trail] (to undo), or [-1] on mismatch (already
   undone). *)
let match_tuple (a : catom) tup env trail tp =
  let nt = Array.length a.cterms in
  if Array.length tup <> nt then
    invalid_arg
      (Printf.sprintf "Dl_eval: %s has a fact of arity %d but an atom of arity %d"
         a.crel (Array.length tup) nt);
  let rec go i pushed =
    if i = nt then pushed
    else
      let fail () =
        for k = tp to tp + pushed - 1 do
          env.(trail.(k)) <- None
        done;
        -1
      in
      match a.cterms.(i) with
      | Cconst c -> if Const.equal c tup.(i) then go (i + 1) pushed else fail ()
      | Cslot s -> (
          match env.(s) with
          | Some c -> if Const.equal c tup.(i) then go (i + 1) pushed else fail ()
          | None ->
              env.(s) <- Some tup.(i);
              trail.(tp + pushed) <- s;
              go (i + 1) (pushed + 1))
  in
  go 0 0

(* Enumerate matches of [cr.cbody] where atom [i] draws its candidates from
   [sources.(i)]; atoms are matched most-constrained-first.  [on_match]
   returns [false] to stop.  Returns [false] iff stopped. *)
let run_compiled (cr : crule) (sources : Instance.t array) on_match =
  let nb = Array.length cr.cbody in
  let env = Array.make (max cr.nvars 1) None in
  let trail = Array.make (max cr.nvars 1) (-1) in
  let order = Array.init nb (fun i -> i) in
  let rec solve k tp =
    if k = nb then on_match env
    else begin
      let best = ref k and best_cost = ref max_int in
      for j = k to nb - 1 do
        if !best_cost > 0 then begin
          let i = order.(j) in
          let c = estimate_atom cr.cbody.(i) env sources.(i) in
          if c < !best_cost then begin
            best := j;
            best_cost := c
          end
        end
      done;
      let tmp = order.(k) in
      order.(k) <- order.(!best);
      order.(!best) <- tmp;
      let i = order.(k) in
      let a = cr.cbody.(i) in
      let rec go = function
        | [] -> true
        | tup :: rest -> (
            match match_tuple a tup env trail tp with
            | -1 -> go rest
            | pushed ->
                let cont = solve (k + 1) (tp + pushed) in
                for t = tp to tp + pushed - 1 do
                  env.(trail.(t)) <- None
                done;
                if cont then go rest else false)
      in
      let cont = go (select_candidates a env sources.(i)) in
      let tmp = order.(k) in
      order.(k) <- order.(!best);
      order.(!best) <- tmp;
      cont
    end
  in
  ignore (solve 0 0)

(* The firing path builds the head's argument array directly and hands it
   to the interned array constructor: one allocation, no list, no symbol
   lookup — the head's relation id was cached at compile time. *)
let chead_fact (cr : crule) env =
  Fact.of_interned cr.chead.crid
    (Array.map
       (function
         | Cslot s -> ( match env.(s) with Some c -> c | None -> assert false)
         | Cconst _ -> assert false (* ruled out by Datalog.rule *))
       cr.chead.cterms)

(* One semi-naive round over [rules]: for each rule and each body position
   whose relation has delta facts, match that occurrence against the delta,
   earlier atoms against the old facts [old = full \ delta] and later ones
   against the full instance — each new derivation is found exactly once.
   [derive] is the per-match continuation (it dedups against [full] and
   accumulates into the [fresh] ref it is given). *)
let fire_semi_round rules derive ~old ~delta full =
  let fresh = ref Instance.empty in
  List.iter
    (fun cr ->
      if List.exists (fun r -> Instance.cardinal_id delta r > 0) cr.crels
      then begin
        let nb = Array.length cr.cbody in
        let sources = Array.make nb full in
        for j = 0 to nb - 1 do
          if Instance.cardinal_id delta cr.cbody.(j).crid > 0 then begin
            sources.(j) <- delta;
            run_compiled cr sources (derive cr full fresh);
            sources.(j) <- old
          end
          else sources.(j) <- old
        done
      end)
    rules;
  !fresh

let fixpoint_gen ?(stop = fun _ -> false) ?(cancel = Dl_cancel.none) p inst =
  Dl_cancel.check cancel;
  let rules = compile p in
  let derive cr full fresh env =
    let f = chead_fact cr env in
    if not (Instance.mem f full) then begin
      fresh := Instance.add f !fresh;
      if stop f then raise_notrace (Stopped (Instance.union full !fresh))
    end;
    true
  in
  (* initial round: naive evaluation of every rule *)
  let fire_naive full =
    let fresh = ref Instance.empty in
    List.iter
      (fun cr ->
        let sources = Array.make (Array.length cr.cbody) full in
        run_compiled cr sources (derive cr full fresh))
      rules;
    !fresh
  in
  let fire_semi ~old ~delta full = fire_semi_round rules derive ~old ~delta full in
  (* [old] is the previous round's [full], so [full = old ∪ delta] and the
     semi-naive split needs no set difference; [derive] only ever puts facts
     absent from [full] into the delta, so no deduplication is needed
     either. *)
  (* the cancellation probe sits at the round boundary: aborting there
     leaves no shared state half-written (the compiled-rule cache and the
     instances' index caches only ever hold completed entries) *)
  let rec loop old delta =
    Dl_cancel.check cancel;
    let full = Instance.union old delta in
    if Instance.is_empty delta then full
    else loop full (fire_semi ~old ~delta full)
  in
  try loop inst (fire_naive inst) with Stopped i -> i

let fixpoint ?cancel p inst = fixpoint_gen ?cancel p inst

(* Delta-start entry: resume the semi-naive iteration mid-run, for the
   incremental-maintenance layer ({!Dl_incr}).  [old] is assumed closed
   under [p] (no rule firing entirely inside [old] derives a missing
   fact); the rounds therefore only chase derivations touching [delta].
   Also accumulates every fact derived beyond [old ∪ delta], so callers
   get delta-sized bookkeeping for free. *)
let fixpoint_delta ?(cancel = Dl_cancel.none) p ~old ~delta =
  Dl_cancel.check cancel;
  let rules = compile p in
  let derive cr full fresh env =
    let f = chead_fact cr env in
    if not (Instance.mem f full) then fresh := Instance.add f !fresh;
    true
  in
  let rec loop old delta acc =
    Dl_cancel.check cancel;
    let full = Instance.union old delta in
    if Instance.is_empty delta then (full, acc)
    else
      let fresh = fire_semi_round rules derive ~old ~delta full in
      loop full fresh (Instance.union acc fresh)
  in
  loop (Instance.diff old delta) delta Instance.empty

let eval ?cancel (q : Datalog.query) inst =
  let fp = fixpoint ?cancel q.program inst in
  Instance.tuples fp q.goal

(* goal checks stop the fixpoint as soon as the wanted fact is derived *)
let holds ?cancel (q : Datalog.query) inst tup =
  let want (f : Fact.t) =
    String.equal f.rel q.goal
    && Array.length f.args = Array.length tup
    && Array.for_all2 Const.equal f.args tup
  in
  let fp = fixpoint_gen ~stop:want ?cancel q.program inst in
  List.exists
    (fun t -> Array.length t = Array.length tup
              && Array.for_all2 Const.equal t tup)
    (Instance.tuples fp q.goal)

let holds_boolean ?cancel (q : Datalog.query) inst =
  let stop (f : Fact.t) = String.equal f.rel q.goal in
  Instance.cardinal (fixpoint_gen ~stop ?cancel q.program inst) q.goal > 0

let contained_cq_in ?cancel (cq : Cq.t) q =
  let db = Cq.canonical_db cq in
  let tup = Array.of_list (Cq.head_consts cq) in
  holds ?cancel q db tup

let equivalent_on q1 q2 insts =
  let norm ts = List.sort compare (List.map Array.to_list ts) in
  List.for_all (fun i -> norm (eval q1 i) = norm (eval q2 i)) insts

(* ------------------------------------------------------------------ *)
(* Reference implementation: the seed's scan-based, left-to-right,
   naive-iteration evaluator.  Kept verbatim (modulo the scan helper) as
   the oracle for differential tests of the indexed engine above. *)

let scan_tuples_with inst rel cs =
  let ok tup =
    List.for_all
      (fun (p, c) -> p < Array.length tup && Const.equal tup.(p) c)
      cs
  in
  List.filter ok (Instance.tuples inst rel)

let match_atom_scan inst (a : Cq.atom) env yield =
  let candidates = scan_tuples_with inst a.rel (bound_positions a env) in
  let rec go = function
    | [] -> true
    | tup :: rest ->
        if Array.length tup <> List.length a.args then go rest
        else (
          match extend_env a tup env with
          | Some env' -> if yield env' then go rest else false
          | None -> go rest)
  in
  ignore (go candidates)

let rec match_all_scan inst atoms env yield =
  match atoms with
  | [] -> yield env
  | a :: rest ->
      let continue_ = ref true in
      match_atom_scan inst a env (fun env' ->
          let c = match_all_scan inst rest env' yield in
          continue_ := c;
          c);
      !continue_

let fixpoint_naive ?(cancel = Dl_cancel.none) p inst =
  let fire full =
    let fresh = ref Instance.empty in
    List.iter
      (fun (r : Datalog.rule) ->
        ignore
          (match_all_scan full r.body Smap.empty (fun env ->
               let f = head_fact r env in
               if not (Instance.mem f full) then fresh := Instance.add f !fresh;
               true)))
      p;
    !fresh
  in
  let rec loop full =
    Dl_cancel.check cancel;
    let fresh = Instance.diff (fire full) full in
    if Instance.is_empty fresh then full else loop (Instance.union full fresh)
  in
  loop inst

let eval_naive ?cancel (q : Datalog.query) inst =
  Instance.tuples (fixpoint_naive ?cancel q.program inst) q.goal
