(** Incremental view maintenance: materialized Datalog fixpoints kept
    consistent under fact assertion and retraction.

    A {!t} pairs a program with a base instance and its materialized
    least fixpoint.  {!assert_facts} and {!retract_facts} edit the base
    and repair the fixpoint {e incrementally} — cost proportional to the
    consequences of the change, never a recomputation from scratch —
    which is what turns the service's mutation verbs into
    microsecond-scale updates against big sessions.

    {2 Algorithm}

    The program is stratified into the condensation of its IDB
    dependency graph ({!Datalog.depends_on}), processed in topological
    order.  (The programs here are positive, so this is not the
    negation-driven stratification of the literature — and not
    {!Dl_normalize}, which normalizes {e rule shape} for MDL: it is the
    SCC decomposition that lets each maintenance step see a fully
    repaired lower state.)  Membership of a fact is [base ∨ derived]:
    retracting a base fact that is still derivable, or asserting one
    that was already derived, changes nothing downstream.

    - {e Non-recursive strata} (single predicate, no self-dependency)
      keep a per-fact {e derivation count}: the number of
      (rule, body-binding) pairs producing the fact.  A change in the
      inputs fires two semi-naive-split passes — one enumerating lost
      derivations against the old state, one enumerating gained
      derivations against the new — each derivation counted exactly
      once; membership flips exactly when the count crosses zero (and
      the fact is not base-asserted).
    - {e Recursive strata} run Delete-and-Rederive (DRed): over-delete
      everything reachable from the deleted inputs through old
      derivations (base-asserted facts are never over-deleted), rederive
      the over-deleted facts that still have a one-step derivation from
      the survivors, then close under insertions with a delta fixpoint —
      {!Dl_engine.fixpoint_delta}, so the indexed, bytecode-VM and
      parallel engines all serve maintenance fixpoints, reusing the warm
      {!Instance.union} paths and incremental fingerprints.

    {2 Ownership and threading}

    A [t] is single-owner mutable state: exactly one thread may call
    {!assert_facts}/{!retract_facts} at a time, and nobody may read
    {!full} concurrently with a mutation.  The service upholds this by
    storing materializations inside {!Svc_session} and touching them
    only under the session regime of the entry point in use (the
    concurrent path's whole-request session lock, or the
    single-coordinator discipline).  The instances returned by {!base}
    and {!full} are immutable snapshots — safe to keep across later
    mutations.

    {2 Cancellation}

    Both mutators take a {!Dl_cancel} token, probed per stratum and at
    every delta-fixpoint round.  A mutation is {e atomic}: it either
    completes (base and fixpoint both updated) or raises, in which case
    the base is untouched but internal tables may be half-repaired — the
    [t] is poisoned ({!valid} becomes [false] and further mutations
    raise [Invalid_argument]).  Callers drop a poisoned materialization
    and rebuild from {!create}; the service maps this to its usual
    timeout-never-poisons-caches rule. *)

type t

val create :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Datalog.program ->
  Instance.t ->
  t
(** Materialize the fixpoint of the program over the instance and set up
    the maintenance bookkeeping (stratification, derivation counts).
    [strategy] selects the {!Dl_engine} strategy used for recursive
    strata now and for every later maintenance fixpoint; default is the
    process default.  Cost is comparable to one cold
    {!Dl_engine.fixpoint}. *)

val program : t -> Datalog.program
val strategy : t -> Dl_engine.strategy option

val base : t -> Instance.t
(** The current base (extensional) instance: the loaded facts as edited
    by assertions and retractions, {e without} derived facts. *)

val full : t -> Instance.t
(** The maintained fixpoint: {!base} extended with every derivable IDB
    fact.  Equal to [Dl_engine.fixpoint (program t) (base t)] whenever
    {!valid} — the invariant the qcheck differential suite checks after
    every mutation. *)

val valid : t -> bool
(** [false] once a mutation was cancelled mid-repair; the only remedy is
    to rebuild with {!create}. *)

val apply : ?cancel:Dl_cancel.t -> t -> adds:Fact.t list -> dels:Fact.t list -> unit
(** Apply a combined edit — assertions and retractions together — in
    {e one} maintenance pass: the whole payload is normalized into a
    single add-delta and a single delete-delta, and every stratum runs
    its counting or DRed repair once over the coalesced deltas (never
    fact-by-fact).  This is what makes batch edits scale: a 32-edge
    pendant chain asserted through [apply] costs one delta fixpoint, not
    32.  [assert_facts] and [retract_facts] are thin wrappers.  Both
    lists are normalized against the {e pre-edit} base — asserting a
    present fact and retracting an absent one are no-ops — so a fact
    named on both sides flips its base membership; don't do that. *)

val assert_facts : ?cancel:Dl_cancel.t -> t -> Fact.t list -> unit
(** Add the facts to the base and repair the fixpoint.  Facts already in
    the base are no-ops; asserting a fact that was only {e derived} so
    far does extend the base (it survives retraction of its former
    support).  Raises [Invalid_argument] if the materialization is not
    {!valid}. *)

val retract_facts : ?cancel:Dl_cancel.t -> t -> Fact.t list -> unit
(** Remove the facts from the base and repair the fixpoint.  Retracting
    a fact that was never asserted is a no-op; retracting a base fact
    that is also derivable keeps it in {!full} (membership is
    [base ∨ derived]).  Raises [Invalid_argument] if not {!valid}. *)

val strata : t -> (string list * bool) list
(** The stratification, in processing order: each stratum's IDB
    predicates and whether it is recursive (maintained by DRed rather
    than counting).  Exposed for tests and diagnostics. *)
