(** Magic-sets (demand) transformation for goal-directed bottom-up
    evaluation.

    [transform q pattern] specializes [q] for calls where the goal
    positions marked [true] in [pattern] are bound to known constants:
    every intensional predicate is split by adornment, rule firings are
    gated by magic predicates that propagate demand left-to-right through
    rule bodies (sideways information passing), and a {e copy rule} per
    adorned predicate keeps instance facts of intensional predicates
    visible.  Evaluating [t.query] on [inst] extended with the magic seed
    fact agrees with evaluating [q] on [inst], restricted to goal facts
    matching the seed — while the fixpoint derives only facts demanded by
    the goal. *)

type pattern = bool array
(** One flag per goal position: [true] = bound at call time. *)

val all_free : int -> pattern
val all_bound : int -> pattern

val pattern_string : pattern -> string
(** ["bf…"] rendering, e.g. [[|true; false|]] is ["bf"]. *)

val adorned_name : string -> pattern -> string
(** [adorned_name "P" [|true; false|]] is ["P#bf"]. *)

val magic_name : string -> pattern -> string
(** [magic_name "P" [|true; false|]] is ["m#P#bf"]. *)

type t = {
  query : Datalog.query;  (** transformed program; goal = adorned goal *)
  source_goal : string;  (** the original query's goal predicate *)
  pattern : pattern;
  magic_goal : string;  (** name of the goal's magic predicate *)
}

val transform : Datalog.query -> pattern -> t
(** Cached under physical equality of the source program.
    @raise Invalid_argument if the pattern length differs from the goal
    arity or the goal has no rules (see {!applicable}). *)

val applicable : Datalog.query -> bool
(** The goal is intensional — [transform] only specializes rule-defined
    goals; extensional goals answer directly from the instance. *)

val seed : t -> Const.t array -> Fact.t
(** [seed m tup] is the magic seed fact for the full goal tuple [tup]
    (only bound positions of [tup] are used). *)

val seed_free : t -> Fact.t
(** The (nullary) seed for a pattern with no bound position. *)

val adornments : t -> (string * string) list
(** The (relation, adornment) pairs reachable from the goal demand —
    one entry per adorned predicate of the transformed program. *)
