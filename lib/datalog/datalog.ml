type rule = { head : Cq.atom; body : Cq.atom list }
type program = rule list
type query = { program : program; goal : string }

let atom_vars (a : Cq.atom) =
  List.filter_map (function Cq.Var v -> Some v | Cq.Cst _ -> None) a.args

let atom_schema (a : Cq.atom) s = Schema.add a.rel (List.length a.args) s

(* Arity consistency.  This runs on every rule/program construction, so it
   must stay cheap: an association list for the handful of relations in one
   rule, a hashtable for whole programs. *)
let arity_clash rel m n =
  invalid_arg
    (Printf.sprintf "Datalog: relation %s used with arities %d and %d" rel m n)

let check_rule_arities atoms =
  let rec go seen = function
    | [] -> ()
    | (a : Cq.atom) :: rest -> (
        let n = List.length a.args in
        match List.assoc_opt a.rel seen with
        | Some m -> if m <> n then arity_clash a.rel m n else go seen rest
        | None -> go ((a.rel, n) :: seen) rest)
  in
  go [] atoms

let check_arities tbl atoms =
  List.iter
    (fun (a : Cq.atom) ->
      let n = List.length a.args in
      match Hashtbl.find_opt tbl a.rel with
      | Some m -> if m <> n then arity_clash a.rel m n
      | None -> Hashtbl.add tbl a.rel n)
    atoms

let rule head body =
  List.iter
    (function
      | Cq.Cst _ -> invalid_arg "Datalog.rule: constant in head"
      | Cq.Var _ -> ())
    head.Cq.args;
  let bv = List.concat_map atom_vars body in
  List.iter
    (fun v ->
      if not (List.mem v bv) then
        invalid_arg ("Datalog.rule: head variable " ^ v ^ " not in body"))
    (atom_vars head);
  check_rule_arities (head :: body);
  { head; body }

let validate p =
  (* every relation used with a single arity across the whole program *)
  let tbl = Hashtbl.create 16 in
  List.iter (fun r -> check_arities tbl (r.head :: r.body)) p

let make program goal =
  validate program;
  { program; goal }

let query = make

let idbs p =
  List.map (fun r -> r.head.Cq.rel) p |> List.sort_uniq String.compare

let is_idb p name = List.exists (fun r -> String.equal r.head.Cq.rel name) p

let edbs p =
  let i = idbs p in
  List.concat_map (fun r -> List.map (fun (a : Cq.atom) -> a.rel) r.body) p
  |> List.sort_uniq String.compare
  |> List.filter (fun n -> not (List.mem n i))

let schema p =
  List.fold_left
    (fun s r -> List.fold_left (fun s a -> atom_schema a s) (atom_schema r.head s) r.body)
    Schema.empty p

let edb_schema p =
  let i = idbs p in
  Schema.restrict (fun n -> not (List.mem n i)) (schema p)

let idb_schema p =
  let i = idbs p in
  Schema.restrict (fun n -> List.mem n i) (schema p)

let goal_arity q =
  match Schema.arity (schema q.program) q.goal with
  | Some n -> n
  | None -> invalid_arg ("Datalog.goal_arity: goal " ^ q.goal ^ " not in program")

let rules_for p name =
  List.filter (fun r -> String.equal r.head.Cq.rel name) p

let head_vars r = atom_vars r.head

let body_vars r =
  List.concat_map atom_vars r.body |> List.sort_uniq String.compare

let fresh_counter = ref 0

let rename_rule_apart r =
  let tbl = Hashtbl.create 8 in
  let f v =
    match Hashtbl.find_opt tbl v with
    | Some v' -> v'
    | None ->
        incr fresh_counter;
        let v' = Printf.sprintf "%s!%d" v !fresh_counter in
        Hashtbl.add tbl v v';
        v'
  in
  let tm = function Cq.Var v -> Cq.Var (f v) | Cq.Cst c -> Cq.Cst c in
  let ren (a : Cq.atom) = { a with args = List.map tm a.args } in
  { head = ren r.head; body = List.map ren r.body }

(* direct dependency: a's rules mention b in their bodies *)
let direct_deps p a =
  List.concat_map
    (fun r ->
      if String.equal r.head.Cq.rel a then
        List.map (fun (at : Cq.atom) -> at.rel) r.body
      else [])
    p
  |> List.sort_uniq String.compare

let depends_on p a b =
  let seen = Hashtbl.create 8 in
  let rec go x =
    if Hashtbl.mem seen x then false
    else (
      Hashtbl.add seen x ();
      let ds = direct_deps p x in
      List.mem b ds || List.exists go ds)
  in
  go a

let is_recursive_rule p r =
  let h = r.head.Cq.rel in
  List.exists
    (fun (a : Cq.atom) ->
      is_idb p a.rel && (String.equal a.rel h || depends_on p a.rel h))
    r.body

let rename_idbs f q =
  let i = idbs q.program in
  let rn name = if List.mem name i then f name else name in
  let ra (a : Cq.atom) = { a with rel = rn a.rel } in
  {
    program =
      List.map (fun r -> { head = ra r.head; body = List.map ra r.body }) q.program;
    goal = rn q.goal;
  }

let max_body_vars p =
  List.fold_left (fun m r -> max m (List.length (body_vars r))) 0 p

let of_cq ~goal (q : Cq.t) =
  let head = Cq.atom goal (List.map (fun v -> Cq.Var v) q.head) in
  { program = [ rule head q.body ]; goal }

let of_ucq ~goal (u : Ucq.t) =
  let rules =
    List.map
      (fun (q : Cq.t) ->
        let head = Cq.atom goal (List.map (fun v -> Cq.Var v) q.head) in
        rule head q.body)
      u.Ucq.disjuncts
  in
  { program = rules; goal }

let union q1 q2 g =
  let a1 = goal_arity q1 and a2 = goal_arity q2 in
  if a1 <> a2 then invalid_arg "Datalog.union: arity mismatch";
  let vars = List.init a1 (fun i -> Cq.Var (Printf.sprintf "u%d" i)) in
  let h = Cq.atom g vars in
  make
    (q1.program @ q2.program
    @ [
        rule h [ Cq.atom q1.goal vars ];
        rule h [ Cq.atom q2.goal vars ];
      ])
    g

(* Structural fingerprint of a query: two independently seeded
   position-sensitive folds over the goal, the rules in order, and every
   atom's relation, arity and terms.  Structurally equal queries always
   fingerprint equal; named constants hash by interned id, so the value
   is process-local (same contract as Instance fingerprints). *)
let fp_stream_program seed chash (p : program) =
  let h = ref (Fp.mix seed) in
  let term t =
    h :=
      match t with
      | Cq.Var v -> Fp.step !h (Fp.string_hash v)
      | Cq.Cst c -> Fp.step (Fp.step !h 1) (chash c)
  in
  let atom (a : Cq.atom) =
    h := Fp.step !h (Fp.string_hash a.rel);
    h := Fp.step !h (List.length a.args);
    List.iter term a.args
  in
  List.iter
    (fun r ->
      h := Fp.step !h (List.length r.body);
      atom r.head;
      List.iter atom r.body)
    p;
  !h

let fp_stream seed chash (q : query) =
  fp_stream_program (seed lxor Fp.string_hash q.goal) chash q.program

(* Memoized under physical equality: sessions hand the same query value
   to every request, so warm cache-key construction never re-traverses
   the program (same pattern as Dl_eval's compiled-rule cache). *)
let fp_cache : (query * (int * int)) list ref = ref []

let fingerprint q =
  match List.find_opt (fun (q', _) -> q' == q) !fp_cache with
  | Some (_, v) -> v
  | None ->
      let v =
        (fp_stream Fp.seed1 Const.hash q, fp_stream Fp.seed2 Const.hash2 q)
      in
      let keep = if List.length !fp_cache >= 32 then [] else !fp_cache in
      fp_cache := (q, v) :: keep;
      v

let fingerprint_hex q =
  let h1, h2 = fingerprint q in
  Fp.hex h1 h2

(* Goal-less fingerprint of a bare program, for caches keyed on the rule
   set alone (the bytecode cache in Dl_vm).  Deliberately unmemoized:
   the fold is O(|p|) on always-small programs, and keeping it pure makes
   it safe to call from any domain. *)
let program_fingerprint (p : program) =
  ( fp_stream_program Fp.seed1 Const.hash p,
    fp_stream_program Fp.seed2 Const.hash2 p )

let pp_rule ppf r =
  Fmt.pf ppf "%a ← %a" Cq.pp_atom r.head
    Fmt.(list ~sep:comma Cq.pp_atom)
    r.body

let pp_program ppf p = Fmt.(list ~sep:(any ".@\n") pp_rule) ppf p

let pp_query ppf q =
  Fmt.pf ppf "@[<v>goal: %s@,%a@]" q.goal pp_program q.program
