(** Datalog programs and queries (paper §2).

    A rule is [P(x̄) ← φ(x̄,ȳ)] with [φ] a conjunction of atoms and every
    head variable occurring in the body.  Relation symbols occurring in
    rule heads are the intensional predicates (IDBs); all others are
    extensional (EDBs).  A query is a program with a distinguished goal
    IDB. *)

type rule = { head : Cq.atom; body : Cq.atom list }

type program = rule list

type query = { program : program; goal : string }

val rule : Cq.atom -> Cq.atom list -> rule
(** @raise Invalid_argument if a head variable is absent from the body,
    the head contains a constant, or a relation occurs in the rule with
    two different arities. *)

val validate : program -> unit
(** @raise Invalid_argument if a relation is used with two different
    arities anywhere in the program.  Catching this at rule-load time is
    what lets the evaluator treat an arity mismatch against an instance as
    a hard error instead of silently skipping the fact. *)

val make : program -> string -> query
(** Validating constructor: runs {!validate} on the program. *)

val query : program -> string -> query
(** Alias of {!make}. *)

val idbs : program -> string list
(** Head predicates, sorted. *)

val edbs : program -> string list
(** Body predicates that are not IDBs, sorted. *)

val is_idb : program -> string -> bool

val edb_schema : program -> Schema.t
val idb_schema : program -> Schema.t
val schema : program -> Schema.t

val goal_arity : query -> int

val rules_for : program -> string -> rule list
(** Rules whose head predicate is the given name. *)

val head_vars : rule -> string list
val body_vars : rule -> string list

val rename_rule_apart : rule -> rule
(** Rename all variables of the rule to globally fresh ones. *)

val depends_on : program -> string -> string -> bool
(** [depends_on p a b]: predicate [a] (transitively) uses predicate [b]. *)

val is_recursive_rule : program -> rule -> bool
(** The body mentions an IDB that transitively depends on the head. *)

val rename_idbs : (string -> string) -> query -> query
(** Rename intensional predicates (including the goal). *)

val max_body_vars : program -> int
(** Maximum number of distinct variables in a rule body — the paper's bound
    [k = O(|Q|)] on decomposition width. *)

val of_cq : goal:string -> Cq.t -> query
(** The single-rule nonrecursive query [goal(x̄) ← body]. *)

val of_ucq : goal:string -> Ucq.t -> query

val union : query -> query -> string -> query
(** [union q1 q2 g]: a query with goal [g] holding iff either goal holds.
    IDB name clashes are the caller's responsibility (use
    {!rename_idbs}). *)

val fingerprint : query -> int * int
(** 126-bit structural fingerprint: structurally equal queries always
    fingerprint equal, unequal fingerprints prove inequality.  Named
    constants contribute their interned id, so values are process-local.
    Memoized under physical equality of the query, so repeated calls on
    a session-held query are O(1). *)

val fingerprint_hex : query -> string
(** 32-hex-digit rendering of {!fingerprint}. *)

val program_fingerprint : program -> int * int
(** Fingerprint of a bare program (no goal mixed in), for caches keyed on
    the rule set alone.  Unmemoized — the fold is O(|p|) and pure, so it
    is safe from any domain. *)

val pp_rule : rule Fmt.t
val pp_program : program Fmt.t
val pp_query : query Fmt.t
