(* Layer 1 of the rule-compilation pipeline: slot compilation and join
   planning.

   Slot compilation numbers a rule's variables into slots of a flat
   binding array (shared with {!Dl_eval}'s interpreted matcher and
   {!Dl_vm}'s bytecode).  Planning then fixes, per rule and per delta
   position, an explicit join order with a binding pattern for every
   argument position and the lifetime of every slot — everything the
   bytecode codegen needs to emit straight-line matching code with no
   runtime tags.

   Two planning disciplines coexist:

   - the {e dynamic} primitives ({!estimate_atom}, {!select_candidates})
     used by {!Dl_eval.run_compiled}, which re-chooses the next atom at
     every depth of every firing from live index statistics;
   - the {e static} planner ({!plan}), which commits to an atom order at
     compile time (delta atom first, then greedily most-bound-first) and
     leaves only the index-probe {e position} choice to run time.  The
     static order is what makes flat bytecode possible: each slot has one
     binding site per plan, so the register file needs no option tags and
     no trail. *)

type cterm = Cslot of int | Cconst of Const.t

type catom = {
  crel : string;
  crid : Symtab.sym; (* interned [crel], cached at compile time *)
  cterms : cterm array;
}

type crule = {
  nvars : int;
  cbody : catom array;
  chead : catom;
  crels : Symtab.sym list;
      (* distinct body relation ids, for the relevance filter *)
}

let compile_rule (r : Datalog.rule) =
  let tbl = Hashtbl.create 8 and n = ref 0 in
  let slot v =
    match Hashtbl.find_opt tbl v with
    | Some s -> s
    | None ->
        let s = !n in
        incr n;
        Hashtbl.add tbl v s;
        s
  in
  let cterm = function Cq.Var v -> Cslot (slot v) | Cq.Cst c -> Cconst c in
  let catom (a : Cq.atom) =
    {
      crel = a.rel;
      crid = Symtab.intern a.rel;
      cterms = Array.of_list (List.map cterm a.args);
    }
  in
  let cbody = Array.of_list (List.map catom r.body) in
  let chead = catom r.head in
  {
    nvars = !n;
    cbody;
    chead;
    crels =
      Array.to_list cbody
      |> List.map (fun a -> a.crid)
      |> List.sort_uniq Int.compare;
  }

(* Compiled programs are cached under physical equality: the constructors
   upstream memoize their programs, so repeated fixpoints over the same
   query compile once.  The cache is mutex-guarded — any domain may call
   [compile]; see the thread-safety note in the mli. *)
let cache_mutex = Mutex.create ()
let compiled_cache : (Datalog.program * crule list) list ref = ref []

let compile (p : Datalog.program) =
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match List.find_opt (fun (p', _) -> p' == p) !compiled_cache with
      | Some (_, c) -> c
      | None ->
          let c = List.map compile_rule p in
          let keep =
            if List.length !compiled_cache >= 32 then [] else !compiled_cache
          in
          compiled_cache := (p, c) :: keep;
          c)

(* ------------------------------------------------------------------ *)
(* Dynamic planning primitives (used per-firing by Dl_eval.run_compiled). *)

(* Smallest index bucket consistent with the bindings so far (the whole
   relation if no position is bound); also reports the best bucket's
   position/constant so the caller can fetch exactly those candidates. *)
let select_candidates (a : catom) env src =
  match Instance.index_id src a.crid with
  | None -> []
  | Some idx ->
      let best = ref (Index.size idx) and where = ref None in
      Array.iteri
        (fun p t ->
          let c = match t with Cconst c -> Some c | Cslot s -> env.(s) in
          match c with
          | None -> ()
          | Some c ->
              let n = Index.count idx p c in
              if n < !best || !where = None then begin
                best := n;
                where := Some (p, c)
              end)
        a.cterms;
      (match !where with
      | None -> Index.all idx
      | Some (p, c) -> Index.lookup idx p c)

let estimate_atom (a : catom) env src =
  match Instance.index_id src a.crid with
  | None -> 0
  | Some idx ->
      let best = ref (Index.size idx) in
      Array.iteri
        (fun p t ->
          match (match t with Cconst c -> Some c | Cslot s -> env.(s)) with
          | Some c -> best := min !best (Index.count idx p c)
          | None -> ())
        a.cterms;
      !best

(* ------------------------------------------------------------------ *)
(* Static plans. *)

type binding = Bconst of Const.t | Bbind of int | Bcheck of int
type step = { satom : int; spat : binding array }

type t = {
  prule : crule;
  pdelta : int option;
  steps : step array;
  first_def : int array;
  last_use : int array;
}

let plan (cr : crule) ~delta =
  let nb = Array.length cr.cbody in
  let ns = max cr.nvars 1 in
  let bound = Array.make ns false in
  let chosen = Array.make nb false in
  let first_def = Array.make ns (-1) in
  let last_use = Array.make ns (-1) in
  (* score of a candidate atom under the current bindings: positions
     already fixed (constants or bound slots), with constants as the
     tie-break — a static proxy for most-constrained-first *)
  let score i =
    let b = ref 0 and cst = ref 0 in
    Array.iter
      (function
        | Cconst _ ->
            incr b;
            incr cst
        | Cslot s -> if bound.(s) then incr b)
      cr.cbody.(i).cterms;
    (!b, !cst)
  in
  let pick forced =
    match forced with
    | Some i -> i
    | None ->
        let best = ref (-1) and best_sc = ref (-1, -1) in
        for i = 0 to nb - 1 do
          if not chosen.(i) then begin
            let sc = score i in
            if !best < 0 || sc > !best_sc then begin
              best := i;
              best_sc := sc
            end
          end
        done;
        !best
  in
  let steps =
    Array.init nb (fun k ->
        let i = pick (if k = 0 then delta else None) in
        chosen.(i) <- true;
        let spat =
          Array.map
            (function
              | Cconst c -> Bconst c
              | Cslot s ->
                  if bound.(s) then begin
                    last_use.(s) <- k;
                    Bcheck s
                  end
                  else begin
                    bound.(s) <- true;
                    first_def.(s) <- k;
                    last_use.(s) <- k;
                    Bbind s
                  end)
            cr.cbody.(i).cterms
        in
        { satom = i; spat })
  in
  (* head slots stay live through the emit pseudo-step *)
  Array.iter
    (function Cslot s -> last_use.(s) <- nb | Cconst _ -> ())
    cr.chead.cterms;
  { prule = cr; pdelta = delta; steps; first_def; last_use }

let pp_binding ppf = function
  | Bconst c -> Fmt.pf ppf "=%a" Const.pp c
  | Bbind s -> Fmt.pf ppf "+r%d" s
  | Bcheck s -> Fmt.pf ppf "?r%d" s

let pp ppf (pl : t) =
  Fmt.pf ppf "plan %s/%d%a:@." pl.prule.chead.crel
    (Array.length pl.prule.chead.cterms)
    (fun ppf -> function
      | None -> ()
      | Some j -> Fmt.pf ppf " delta@%d" j)
    pl.pdelta;
  Array.iteri
    (fun k { satom; spat } ->
      Fmt.pf ppf "  %d: %s(%a)  [atom %d]@." k pl.prule.cbody.(satom).crel
        Fmt.(array ~sep:(any ", ") pp_binding)
        spat satom)
    pl.steps;
  Fmt.pf ppf "  lifetimes:%t@." (fun ppf ->
      Array.iteri
        (fun s d ->
          if d >= 0 then Fmt.pf ppf " r%d=[%d,%d]" s d pl.last_use.(s))
        pl.first_def)
