(* Magic-sets transformation: goal-directed (demand-driven) specialization
   of a Datalog query for bottom-up evaluation.

   Given a goal adornment (which goal positions are bound to constants at
   call time), the transformation produces, for every reachable
   (predicate, adornment) pair:

   - an *adorned* predicate [P#a] with P's rules, each gated by a magic
     atom, so P#a-facts are derived only under demand;
   - a *magic* predicate [m#P#a] over the bound positions of [a], holding
     the tuples of bound arguments for which P-facts are actually needed;
     magic rules propagate demand sideways through rule bodies in textual
     order (left-to-right SIP);
   - a *copy* rule [P#a(x̄) ← m#P#a(x̄|bound), P(x̄)], so facts of an
     intensional predicate already present in the input instance (the
     engine's fixpoints extend instances that may pre-populate IDBs)
     remain visible under the adorned name.

   Evaluating the transformed query on [inst + seed] computes exactly the
   original goal facts matching the seed's bound arguments, while deriving
   only facts reachable from that demand — the bottom-up engine then never
   explores rule firings that cannot contribute to the goal.

   Bound positions are only ever *variables*: a constant argument of a
   body atom is adorned free (rule heads cannot carry constants), which
   loses a little pruning but no correctness — the adorned atom still
   filters on the constant.  The goal's own bound positions are an
   exception: their constants live in the seed *fact*, not in a rule. *)

module SS = Set.Make (String)

type pattern = bool array

let all_free n = Array.make n false
let all_bound n = Array.make n true

let pattern_string a =
  String.init (Array.length a) (fun i -> if a.(i) then 'b' else 'f')

(* '#' cannot occur in parsed relation names, so the generated names never
   collide with user relations *)
let adorned_name rel a = rel ^ "#" ^ pattern_string a
let magic_name rel a = "m#" ^ rel ^ "#" ^ pattern_string a

type t = {
  query : Datalog.query;  (** transformed program; goal = adorned goal *)
  source_goal : string;  (** the original query's goal predicate *)
  pattern : pattern;
  magic_goal : string;  (** name of the goal's magic predicate *)
}

let bound_args a terms = List.filteri (fun i _ -> a.(i)) terms

let seed m (tup : Const.t array) =
  if Array.length tup <> Array.length m.pattern then
    invalid_arg "Dl_magic.seed: tuple arity does not match the goal pattern";
  Fact.make m.magic_goal (bound_args m.pattern (Array.to_list tup))

(* seed for a pattern with no bound position (Boolean / all-free goals) *)
let seed_free m =
  if Array.exists Fun.id m.pattern then
    invalid_arg "Dl_magic.seed_free: the goal pattern has bound positions";
  Fact.make m.magic_goal []

let add_vars terms s =
  List.fold_left
    (fun s t -> match t with Cq.Var v -> SS.add v s | Cq.Cst _ -> s)
    s terms

let transform_uncached (q : Datalog.query) (pattern : pattern) : t =
  let p = q.Datalog.program in
  let idb = Datalog.idbs p in
  let is_idb r = List.mem r idb in
  if Array.length pattern <> Datalog.goal_arity q then
    invalid_arg "Dl_magic.transform: pattern length differs from goal arity";
  if not (is_idb q.Datalog.goal) then
    invalid_arg "Dl_magic.transform: the goal has no rules";
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let demand rel a =
    let key = adorned_name rel a in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.push (rel, a) queue
    end
  in
  demand q.Datalog.goal pattern;
  while not (Queue.is_empty queue) do
    let rel, a = Queue.pop queue in
    let aname = adorned_name rel a and mname = magic_name rel a in
    (* copy rule: demanded instance facts of [rel] flow into [rel#a] *)
    let gvars = List.init (Array.length a) (fun i -> Cq.Var (Printf.sprintf "m%d" i)) in
    out :=
      Datalog.rule (Cq.atom aname gvars)
        [ Cq.atom mname (bound_args a gvars); Cq.atom rel gvars ]
      :: !out;
    List.iter
      (fun (r : Datalog.rule) ->
        if String.equal r.Datalog.head.Cq.rel rel then begin
          let hargs = r.Datalog.head.Cq.args in
          let magic_atom = Cq.atom mname (bound_args a hargs) in
          let bound = ref (add_vars (bound_args a hargs) SS.empty) in
          let prefix = ref [ magic_atom ] in
          List.iter
            (fun (atm : Cq.atom) ->
              (if is_idb atm.Cq.rel then begin
                 let a' =
                   Array.of_list
                     (List.map
                        (function
                          | Cq.Cst _ -> false
                          | Cq.Var v -> SS.mem v !bound)
                        atm.Cq.args)
                 in
                 demand atm.Cq.rel a';
                 out :=
                   Datalog.rule
                     (Cq.atom (magic_name atm.Cq.rel a')
                        (bound_args a' atm.Cq.args))
                     (List.rev !prefix)
                   :: !out;
                 prefix :=
                   { atm with Cq.rel = adorned_name atm.Cq.rel a' } :: !prefix
               end
               else prefix := atm :: !prefix);
              bound := add_vars atm.Cq.args !bound)
            r.Datalog.body;
          out := Datalog.rule (Cq.atom aname hargs) (List.rev !prefix) :: !out
        end)
      p
  done;
  {
    query = Datalog.make (List.rev !out) (adorned_name q.Datalog.goal pattern);
    source_goal = q.Datalog.goal;
    pattern;
    magic_goal = magic_name q.Datalog.goal pattern;
  }

(* Transformed queries are cached under physical equality of the source
   program (the constructors upstream memoize their programs), so repeated
   goal checks over the same query transform — and hence slot-compile —
   once. *)
let cache : (Datalog.program * string * string * t) list ref = ref []

let transform q pattern =
  let key = pattern_string pattern in
  match
    List.find_opt
      (fun (p, g, k, _) ->
        p == q.Datalog.program
        && String.equal g q.Datalog.goal
        && String.equal k key)
      !cache
  with
  | Some (_, _, _, t) -> t
  | None ->
      let t = transform_uncached q pattern in
      let keep = if List.length !cache >= 32 then [] else !cache in
      cache := (q.Datalog.program, q.Datalog.goal, key, t) :: keep;
      t

let applicable (q : Datalog.query) = Datalog.is_idb q.Datalog.program q.Datalog.goal

(* every head of the transformed program is [rel#pat] (2 parts) or
   [m#rel#pat] (3 parts); source relation names cannot contain '#' *)
let adornments m =
  List.filter_map
    (fun r ->
      match String.split_on_char '#' r.Datalog.head.Cq.rel with
      | [ rel; pat ] -> Some (rel, pat)
      | _ -> None)
    m.query.Datalog.program
  |> List.sort_uniq compare
