

type term = Var of string | Cst of Const.t
type atom = { rel : string; args : term list }
type t = { head : string list; body : atom list }

let atom rel args = { rel; args }

let atom_vars a =
  List.filter_map (function Var v -> Some v | Cst _ -> None) a.args

let body_vars body =
  List.concat_map atom_vars body |> List.sort_uniq String.compare

let make ~head body =
  let bv = body_vars body in
  List.iter
    (fun v ->
      if not (List.mem v bv) then
        invalid_arg ("Cq.make: head variable " ^ v ^ " not in body"))
    head;
  { head; body }

let boolean body = { head = []; body }
let arity q = List.length q.head

let vars q =
  let bv = body_vars q.body in
  q.head @ List.filter (fun v -> not (List.mem v q.head)) bv

let exi_vars q =
  List.filter (fun v -> not (List.mem v q.head)) (body_vars q.body)

let body_schema q =
  List.fold_left
    (fun s a -> Schema.add a.rel (List.length a.args) s)
    Schema.empty q.body

let const_of_var v = Const.named ("?" ^ v)

let term_const = function Var v -> const_of_var v | Cst c -> c

(* The canonical database is asked for over and over on the same query
   value (containment tests, hom dualities, repeated Boolean checks), so
   it is memoized under physical equality — instances are persistent, so
   sharing one across callers is safe.  Coordinator-only, like
   [Dl_eval]'s compiled-rule cache. *)
let cdb_cache : (t * Instance.t) list ref = ref []

let canonical_db q =
  match List.find_opt (fun (q', _) -> q' == q) !cdb_cache with
  | Some (_, db) -> db
  | None ->
      let db =
        Instance.of_list
          (List.map (fun a -> Fact.make a.rel (List.map term_const a.args)) q.body)
      in
      let keep = if List.length !cdb_cache >= 32 then [] else !cdb_cache in
      cdb_cache := (q, db) :: keep;
      db

let head_consts q = List.map const_of_var q.head

let body_consts q =
  List.concat_map
    (fun a -> List.filter_map (function Cst c -> Some c | Var _ -> None) a.args)
    q.body
  |> List.sort_uniq Const.compare

(* Constants appearing in the body must be mapped to themselves. *)
let frozen_init q =
  List.fold_left
    (fun m c -> Const.Map.add c c m)
    Const.Map.empty (body_consts q)

let of_instance ~head inst =
  let var_of c =
    match Const.name c with
    | Some s -> "n" ^ s
    | None -> "f" ^ Const.to_string c
  in
  let body =
    List.map
      (fun (f : Fact.t) ->
        { rel = f.rel; args = Array.to_list f.args |> List.map (fun c -> Var (var_of c)) })
      (Instance.facts inst)
  in
  { head = List.map var_of head; body }

let compare_tuple (a : Const.t array) b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a then 0
      else
        let c = Const.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let eval q inst =
  let db = canonical_db q in
  let hc = head_consts q in
  let homs = Hom.all ~init:(frozen_init q) ~limit:max_int db inst in
  List.map
    (fun h -> Array.of_list (List.map (fun c -> Const.Map.find c h) hc))
    homs
  |> List.sort_uniq compare_tuple

let holds q inst tuple =
  if Array.length tuple <> arity q then false
  else
    let init =
      List.fold_left2
        (fun m c t -> Const.Map.add c t m)
        (frozen_init q) (head_consts q) (Array.to_list tuple)
    in
    Hom.exists ~init (canonical_db q) inst

let holds_boolean q inst =
  Hom.exists ~init:(frozen_init q) (canonical_db q) inst

let contained_in q1 q2 =
  if arity q1 <> arity q2 then false
  else
    let init =
      List.fold_left2
        (fun m c2 c1 -> Const.Map.add c2 c1 m)
        (frozen_init q2) (head_consts q2) (head_consts q1)
    in
    Hom.exists ~init (canonical_db q2) (canonical_db q1)

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let minimize q =
  let rec go q =
    let rec try_atoms pre = function
      | [] -> None
      | a :: post ->
          let q' = { q with body = List.rev_append pre post } in
          let head_ok =
            List.for_all (fun v -> List.mem v (body_vars q'.body)) q.head
          in
          if head_ok && contained_in q' q then Some q'
          else try_atoms (a :: pre) post
    in
    match try_atoms [] q.body with None -> q | Some q' -> go q'
  in
  go q

let radius q = Gaifman.radius (Gaifman.of_instance (canonical_db q))
let connected q = Gaifman.connected (Gaifman.of_instance (canonical_db q))

let rename_vars f q =
  let tm = function Var v -> Var (f v) | Cst c -> Cst c in
  {
    head = List.map f q.head;
    body = List.map (fun a -> { a with args = List.map tm a.args }) q.body;
  }

let fresh_var_counter = ref 0

let freshen q =
  let tbl = Hashtbl.create 8 in
  let f v =
    match Hashtbl.find_opt tbl v with
    | Some v' -> v'
    | None ->
        incr fresh_var_counter;
        let v' = Printf.sprintf "%s~%d" v !fresh_var_counter in
        Hashtbl.add tbl v v';
        v'
  in
  rename_vars f q

let conjoin q1 q2 =
  let head =
    q1.head @ List.filter (fun v -> not (List.mem v q1.head)) q2.head
  in
  { head; body = q1.body @ q2.body }

let pp_term ppf = function
  | Var v -> Fmt.string ppf v
  | Cst c -> Fmt.pf ppf "'%a'" Const.pp c

let pp_atom ppf a =
  if a.args = [] then Fmt.string ppf a.rel
  else Fmt.pf ppf "%s(%a)" a.rel Fmt.(list ~sep:comma pp_term) a.args

let pp ppf q =
  Fmt.pf ppf "(%a) :- %a"
    Fmt.(list ~sep:comma string)
    q.head
    Fmt.(list ~sep:comma pp_atom)
    q.body
