(** RPQ → linear Datalog, through the {!Dl_engine} facade.

    The translation is the product of the query's word NFA with the edge
    relations: one binary IDB [PREFIXsK] per automaton state [K],
    holding the pairs [(x, y)] such that some path [x → y] spells a word
    taking the NFA from a start state to state [K].  Seed rules read one
    edge from a start-state transition, closure rules extend a state
    relation by one edge, and the goal [PREFIXans] collects the final
    states — a {e linear} program (every rule body has at most one IDB),
    which every engine strategy evaluates round-per-path-length.

    Source-anchored evaluation uses unary state relations seeded from
    the reserved EDB [PREFIXsrc]: rule heads cannot carry constants, so
    the source is injected as a fact.  This keeps the program — and
    hence its fingerprint, and hence every program-keyed cache —
    independent of the source constant.

    All generated relation names start with [prefix] (default [rpq_]);
    expressions whose alphabet collides with the prefix are rejected. *)

val ans_rel : ?prefix:string -> unit -> string
(** The goal relation, [PREFIXans]. *)

val src_rel : ?prefix:string -> unit -> string
(** The anchored seed relation, [PREFIXsrc]. *)

val pairs_of_nfa : ?prefix:string -> Rpq_nfa.t -> Datalog.query
(** The all-pairs program of an arbitrary ε-free NFA (no empty-word
    handling: [ε ∈ L] contributes nothing — callers add their own
    diagonal, as {!eval} and {!Rpq_views.certain} do). *)

val anchored_of_nfa : ?prefix:string -> Rpq_nfa.t -> Datalog.query
(** The source-anchored program of an NFA: unary state IDBs, seeded by
    [PREFIXsrc] facts.  Again no empty-word handling. *)

val pairs : ?prefix:string -> Rpq.t -> Datalog.query
(** [pairs_of_nfa] of the expression's NFA, plus the diagonal rules for
    the empty word: if [ε ∈ L(e)], [(x, x)] is derived for every node
    [x] of the sub-instance restricted to the expression's alphabet. *)

val anchored : ?prefix:string -> Rpq.t -> Datalog.query
(** [anchored_of_nfa] of the expression's NFA, plus — if [ε ∈ L(e)] —
    the rule deriving the source itself. *)

val eval :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Rpq.t ->
  Instance.t ->
  (Const.t * Const.t) list
(** All pairs selected by the expression, sorted. *)

val eval_from :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Rpq.t ->
  Instance.t ->
  Const.t ->
  Const.t list
(** The nodes reachable from the source along a path in the language,
    sorted; includes the source iff [ε ∈ L(e)]. *)

val holds :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  Rpq.t ->
  Instance.t ->
  Const.t ->
  Const.t ->
  bool
(** [(x, y)] membership, with the engine's early-stop goal check. *)
