(** Deterministic graph workloads for the RPQ benches and experiments.

    All generators are pure functions of their parameters — randomness
    comes from an inline LCG seeded explicitly, never from global state,
    so bench rows and experiment tables reproduce bit-for-bit. *)

val node : int -> Const.t
(** The constant [n<i>]. *)

val grid_node : int -> int -> Const.t
(** The constant [g<i>_<j>]. *)

val chain : ?label:string -> int -> Instance.t
(** [chain n]: nodes [n0 … n(n-1)], edges [ni → n(i+1)] labeled
    [label] (default ["e"]). *)

val cycle : ?label:string -> int -> Instance.t
(** [chain n] plus the closing edge [n(n-1) → n0]. *)

val grid : ?right:string -> ?down:string -> int -> int -> Instance.t
(** [grid h w]: nodes [gi_j], edges [gi_j → gi_(j+1)] labeled [right]
    (default ["r"]) and [gi_j → g(i+1)_j] labeled [down] (default
    ["d"]). *)

val scale_free :
  ?seed:int -> ?labels:string list -> nodes:int -> edges:int -> unit -> Instance.t
(** Preferential-attachment multigraph: [edges] edges over nodes
    [n0 … n(nodes-1)], each from a uniformly random source to a target
    drawn degree-proportionally (uniformly from the endpoints seen so
    far, bootstrapped by a chain over the first few nodes), labeled
    uniformly from [labels] (default [["e"]]).  Duplicate edges
    collapse, so the instance may hold slightly fewer than [edges]
    facts. *)
