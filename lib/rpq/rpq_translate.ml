(* RPQ → linear Datalog.  One binary IDB per NFA state for all-pairs
   evaluation, one unary IDB per state for source-anchored evaluation
   (seeded from the reserved [rpq_src] EDB, since rule heads cannot
   carry constants — this keeps the program independent of the source,
   so program-keyed caches stay warm across sources). *)

let default_prefix = "rpq_"

let ans_rel ?(prefix = default_prefix) () = prefix ^ "ans"
let src_rel ?(prefix = default_prefix) () = prefix ^ "src"

(* binary state relations of the all-pairs program *)
let pair_state prefix q = prefix ^ "s" ^ string_of_int q

(* unary state relations of the anchored program — a distinct namespace,
   so the two translations never use one relation at two arities *)
let reach_state prefix q = prefix ^ "r" ^ string_of_int q

let check_alphabet prefix rels =
  List.iter
    (fun r ->
      if
        String.length r >= String.length prefix
        && String.sub r 0 (String.length prefix) = prefix
      then
        invalid_arg
          (Printf.sprintf
             "Rpq_translate: edge relation %S collides with the reserved \
              prefix %S"
             r prefix))
    rels

let v s = Cq.Var s

(* the one-edge step atom: traversing [l] from [x] to [y] *)
let edge_atom (l : Rpq_nfa.letter) x y =
  if l.back then Cq.atom l.rel [ v y; v x ] else Cq.atom l.rel [ v x; v y ]

let pairs_of_nfa ?(prefix = default_prefix) (a : Rpq_nfa.t) =
  check_alphabet prefix (List.map (fun l -> l.Rpq_nfa.rel) (Rpq_nfa.letters a));
  let ans = ans_rel ~prefix () in
  let seed =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (p, l, q) ->
            if p = s then
              Some
                (Datalog.rule
                   (Cq.atom (pair_state prefix q) [ v "x"; v "y" ])
                   [ edge_atom l "x" "y" ])
            else None)
          a.Rpq_nfa.delta)
      a.Rpq_nfa.starts
  in
  let step =
    List.map
      (fun (p, l, q) ->
        Datalog.rule
          (Cq.atom (pair_state prefix q) [ v "x"; v "y" ])
          [ Cq.atom (pair_state prefix p) [ v "x"; v "z" ];
            edge_atom l "z" "y"
          ])
      a.Rpq_nfa.delta
  in
  let goal =
    List.map
      (fun f ->
        Datalog.rule
          (Cq.atom ans [ v "x"; v "y" ])
          [ Cq.atom (pair_state prefix f) [ v "x"; v "y" ] ])
      a.Rpq_nfa.finals
  in
  Datalog.make (seed @ step @ goal) ans

let anchored_of_nfa ?(prefix = default_prefix) (a : Rpq_nfa.t) =
  check_alphabet prefix (List.map (fun l -> l.Rpq_nfa.rel) (Rpq_nfa.letters a));
  let ans = ans_rel ~prefix () and src = src_rel ~prefix () in
  let seed =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (p, l, q) ->
            if p = s then
              Some
                (Datalog.rule
                   (Cq.atom (reach_state prefix q) [ v "y" ])
                   [ Cq.atom src [ v "x" ]; edge_atom l "x" "y" ])
            else None)
          a.Rpq_nfa.delta)
      a.Rpq_nfa.starts
  in
  let step =
    List.map
      (fun (p, l, q) ->
        Datalog.rule
          (Cq.atom (reach_state prefix q) [ v "y" ])
          [ Cq.atom (reach_state prefix p) [ v "x" ]; edge_atom l "x" "y" ])
      a.Rpq_nfa.delta
  in
  let goal =
    List.map
      (fun f ->
        Datalog.rule
          (Cq.atom ans [ v "y" ])
          [ Cq.atom (reach_state prefix f) [ v "y" ] ])
      a.Rpq_nfa.finals
  in
  Datalog.make (seed @ step @ goal) ans

(* diagonal rules for the empty word: (x, x) for every node of the
   sub-instance restricted to the expression's alphabet *)
let diagonal_rules prefix rels =
  let ans = ans_rel ~prefix () in
  List.concat_map
    (fun r ->
      [ Datalog.rule (Cq.atom ans [ v "x"; v "x" ]) [ Cq.atom r [ v "x"; v "y" ] ];
        Datalog.rule (Cq.atom ans [ v "x"; v "x" ]) [ Cq.atom r [ v "y"; v "x" ] ]
      ])
    rels

let pairs ?(prefix = default_prefix) e =
  let q = pairs_of_nfa ~prefix (Rpq_nfa.of_regex e) in
  if Rpq.nullable e then
    Datalog.make (q.Datalog.program @ diagonal_rules prefix (Rpq.rels e)) q.Datalog.goal
  else q

let anchored ?(prefix = default_prefix) e =
  let q = anchored_of_nfa ~prefix (Rpq_nfa.of_regex e) in
  if Rpq.nullable e then
    let keep =
      Datalog.rule
        (Cq.atom (ans_rel ~prefix ()) [ v "x" ])
        [ Cq.atom (src_rel ~prefix ()) [ v "x" ] ]
    in
    Datalog.make (keep :: q.Datalog.program) q.Datalog.goal
  else q

let eval ?strategy ?cancel e inst =
  let tuples = Dl_engine.eval ?strategy ?cancel (pairs e) inst in
  List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) tuples)

let eval_from ?strategy ?cancel e inst src =
  let inst = Instance.add (Fact.make (src_rel ()) [ src ]) inst in
  let tuples = Dl_engine.eval ?strategy ?cancel (anchored e) inst in
  List.sort_uniq Const.compare (List.map (fun t -> t.(0)) tuples)

let holds ?strategy ?cancel e inst x y =
  Dl_engine.holds ?strategy ?cancel (pairs e) inst [| x; y |]
