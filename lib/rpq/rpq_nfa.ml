(* Word NFAs over edge letters.  The regex compiles via Thompson with
   ε-edges; everything downstream works on the ε-eliminated, trimmed
   form.  Emptiness, witnesses and intersections ride the tree-automaton
   layer through a unary-tree encoding (see [to_nta]). *)

type letter = { rel : string; back : bool }

type t = {
  n : int;
  starts : int list;
  finals : int list;
  delta : (int * letter * int) list;
}

let letter_to_string l = if l.back then l.rel ^ "^" else l.rel

let word_to_string = function
  | [] -> "eps"
  | w -> String.concat "." (List.map letter_to_string w)

let compare_letter a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else Bool.compare a.back b.back

let letters a =
  List.sort_uniq compare_letter (List.map (fun (_, l, _) -> l) a.delta)

(* ---------- ε-elimination ---------- *)

(* [of_raw] closes every transition target and the start set under
   ε-reachability: [(p, a, q)] is kept for every [q] ε-reachable from a
   raw target, and the start set is the closure of the raw starts.
   Finals stay as given — a word is accepted iff some ε-closed run ends
   in a final.  Then trim to states reachable from the starts and
   renumber. *)
let of_raw ~n ~starts ~finals ~trans ~eps =
  let succ = Array.make n [] in
  List.iter (fun (p, q) -> if p <> q then succ.(p) <- q :: succ.(p)) eps;
  let closure p =
    let seen = Array.make n false in
    let rec go p = if not seen.(p) then begin
      seen.(p) <- true;
      List.iter go succ.(p)
    end in
    go p;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if seen.(i) then out := i :: !out
    done;
    !out
  in
  let closed = Array.init n closure in
  let starts' =
    List.sort_uniq Int.compare (List.concat_map (fun s -> closed.(s)) starts)
  in
  let delta' =
    List.concat_map
      (fun (p, a, q) -> List.map (fun q' -> (p, a, q')) closed.(q))
      trans
  in
  (* reachability from the closed starts over the closed transitions *)
  let reach = Array.make n false in
  let by_src = Array.make n [] in
  List.iter (fun ((p, _, _) as t) -> by_src.(p) <- t :: by_src.(p)) delta';
  let rec visit p =
    if not reach.(p) then begin
      reach.(p) <- true;
      List.iter (fun (_, _, q) -> visit q) by_src.(p)
    end
  in
  List.iter visit starts';
  let renum = Array.make n (-1) in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if reach.(i) then begin
      renum.(i) <- !m;
      incr m
    end
  done;
  let keep p = renum.(p) >= 0 in
  {
    n = !m;
    starts = List.map (fun p -> renum.(p)) starts';
    finals = List.filter_map (fun p -> if keep p then Some renum.(p) else None) finals;
    delta =
      List.sort_uniq Stdlib.compare
        (List.filter_map
           (fun (p, a, q) ->
             if keep p && keep q then Some (renum.(p), a, renum.(q)) else None)
           delta');
  }

(* ---------- Thompson construction ---------- *)

let of_regex e =
  let n = ref 0 in
  let fresh () =
    let s = !n in
    incr n;
    s
  in
  let trans = ref [] and eps = ref [] in
  let rec go = function
    | Rpq.Eps ->
        let s = fresh () in
        (s, s)
    | Rpq.Sym (r, d) ->
        let s = fresh () and f = fresh () in
        trans := (s, { rel = r; back = d = Rpq.Bwd }, f) :: !trans;
        (s, f)
    | Rpq.Seq (a, b) ->
        let sa, fa = go a in
        let sb, fb = go b in
        eps := (fa, sb) :: !eps;
        (sa, fb)
    | Rpq.Alt (a, b) ->
        let s = fresh () and f = fresh () in
        let sa, fa = go a in
        let sb, fb = go b in
        eps := (s, sa) :: (s, sb) :: (fa, f) :: (fb, f) :: !eps;
        (s, f)
    | Rpq.Star a ->
        let s = fresh () in
        let sa, fa = go a in
        eps := (s, sa) :: (fa, s) :: !eps;
        (s, s)
    | Rpq.Plus a ->
        let sa, fa = go a in
        eps := (fa, sa) :: !eps;
        (sa, fa)
    | Rpq.Opt a ->
        let s = fresh () and f = fresh () in
        let sa, fa = go a in
        eps := (s, sa) :: (s, f) :: (fa, f) :: !eps;
        (s, f)
  in
  let s0, f0 = go e in
  of_raw ~n:!n ~starts:[ s0 ] ~finals:[ f0 ] ~trans:!trans ~eps:!eps

(* ---------- membership / structure ---------- *)

let nullable a = List.exists (fun s -> List.mem s a.finals) a.starts

let accepts a w =
  let step states l =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (p, l', q) ->
           if compare_letter l l' = 0 && List.mem p states then Some q
           else None)
         a.delta)
  in
  let final = List.fold_left step a.starts w in
  List.exists (fun s -> List.mem s a.finals) final

(* ---------- determinization ---------- *)

(* Subset construction over an explicit alphabet, always total: the
   empty subset is the sink, and every (state, letter) has exactly one
   successor.  Subsets are keyed by their sorted element list. *)
let determinize ~alphabet a =
  let alphabet = List.sort_uniq compare_letter alphabet in
  let tbl = Hashtbl.create 16 in
  let states = ref [] and count = ref 0 in
  let intern set =
    match Hashtbl.find_opt tbl set with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add tbl set i;
        states := (set, i) :: !states;
        i
  in
  let step set l =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (p, l', q) ->
           if compare_letter l l' = 0 && List.mem p set then Some q else None)
         a.delta)
  in
  let start = intern (List.sort_uniq Int.compare a.starts) in
  let delta = ref [] in
  let rec explore (set, i) =
    List.iter
      (fun l ->
        let set' = step set l in
        let known = Hashtbl.mem tbl set' in
        let j = intern set' in
        delta := (i, l, j) :: !delta;
        if not known then explore (set', j))
      alphabet
  in
  explore (List.find (fun (_, i) -> i = start) !states);
  let finals =
    List.filter_map
      (fun (set, i) ->
        if List.exists (fun s -> List.mem s a.finals) set then Some i
        else None)
      !states
  in
  { n = !count; starts = [ start ]; finals; delta = !delta }

let complement ~alphabet a =
  let d = determinize ~alphabet a in
  { d with finals = List.filter (fun s -> not (List.mem s d.finals)) (List.init d.n Fun.id) }

(* ---------- tree-automaton encoding ---------- *)

(* A word [a1 … ak] is the unary tree with root labeled [a1], one child
   per next letter, and the leaf labeled ["$"].  A bottom-up automaton
   reads it right-to-left, so the NFA's FINAL states are assigned at the
   leaf and its START states accept at the root:

     leaf  $            → f            for every final f
     child q, letter a  → p            for every transition (p, a, q)
     accepting root states             = starts

   [Nta.product] then computes word-language intersections for free —
   symbols match exactly because both sides encode letters the same
   way. *)

let sym_of_letter l : Nta.sym =
  { label = [ (letter_to_string l, []) ]; edges = [ [] ] }

let leaf_sym : Nta.sym = { label = [ ("$", []) ]; edges = [] }

let to_nta a =
  let leaf =
    List.map
      (fun f -> { Nta.children = []; sym = leaf_sym; target = f })
      a.finals
  in
  let steps =
    List.map
      (fun (p, l, q) ->
        { Nta.children = [ q ]; sym = sym_of_letter l; target = p })
      a.delta
  in
  (* an automaton with no states at all is illegal for [Nta.make] *)
  Nta.make ~n_states:(max 1 a.n) ~finals:a.starts (leaf @ steps)

let letter_of_label = function
  | [ (name, ([] : int list)) ] when name <> "$" ->
      let k = String.length name in
      if k > 1 && name.[k - 1] = '^' then
        { rel = String.sub name 0 (k - 1); back = true }
      else { rel = name; back = false }
  | _ -> invalid_arg "Rpq_nfa: not a letter label"

let rec word_of_code (c : Code.t) =
  match c.Code.children with
  | [] -> []
  | [ (_, child) ] -> letter_of_label c.Code.label :: word_of_code child
  | _ -> invalid_arg "Rpq_nfa: not a unary code"

let witness a =
  match Nta.witness (to_nta a) with
  | None -> None
  | Some c -> Some (word_of_code c)

let is_empty a = Nta.is_empty (to_nta a)

let inter_witness a b =
  match Nta.witness (Nta.product (to_nta a) (to_nta b)) with
  | None -> None
  | Some c -> Some (word_of_code c)

let subseteq ~alphabet a b = inter_witness a (complement ~alphabet b)

let pp ppf a =
  Fmt.pf ppf "@[<v>states=%d starts=%a finals=%a@,%a@]" a.n
    Fmt.(list ~sep:comma int)
    a.starts
    Fmt.(list ~sep:comma int)
    a.finals
    Fmt.(
      list ~sep:cut (fun ppf (p, l, q) ->
          pf ppf "%d -%s-> %d" p (letter_to_string l) q))
    a.delta
