(* Maximal contained rewriting of an RPQ over RPQ views (CDLV / FSS).

   The whole construction works on ε-free word NFAs:

     A_d  = determinize(NFA(Q)) over Σ, total             (Rpq_nfa)
     B    = view-level NFA on A_d's states:
              (p, ω, q)  iff  L(V_ω) ∩ L(A_d[p→q]) ≠ ∅
            starts = A_d starts, finals = A_d NON-finals
     R_max = complement of B over Ω

   B accepts an ω-word iff SOME expansion escapes L(Q), so its
   complement accepts exactly the ω-words all of whose expansions stay
   inside — the maximal rewriting contained in Q.  The transition test
   is a product reachability of the view NFA with A_d, seeded at (view
   starts × {p}); determinism of A_d makes one pass per p sufficient.

   Losslessness is decided on the substitution automaton: R_max with
   every ω-transition replaced by a glued-in copy of V_ω's NFA
   (of_raw absorbs the ε glue), checked against NFA(Q) with subseteq —
   i.e. Nta.product emptiness on the unary-tree encodings. *)

type t = {
  views : (string * Rpq.t) list;
  query : Rpq.t;
  dfa : Rpq_nfa.t;
  rauto : Rpq_nfa.t;
  lossless : bool;
  gap : Rpq_nfa.letter list option;
}

(* all A_d states reachable from [p] by reading some word of [L(v)] —
   BFS on the (v × A_d) product; [dfa] total makes every expansion
   traceable *)
let view_reach (v : Rpq_nfa.t) (dfa : Rpq_nfa.t) p =
  let seen = Array.make (max 1 (v.Rpq_nfa.n * dfa.Rpq_nfa.n)) false in
  let key s q = (s * dfa.Rpq_nfa.n) + q in
  let frontier = ref [] in
  let push s q =
    if not seen.(key s q) then begin
      seen.(key s q) <- true;
      frontier := (s, q) :: !frontier
    end
  in
  List.iter (fun s -> push s p) v.Rpq_nfa.starts;
  while !frontier <> [] do
    let batch = !frontier in
    frontier := [];
    List.iter
      (fun (s, q) ->
        List.iter
          (fun (s1, a, s2) ->
            if s1 = s then
              List.iter
                (fun (q1, a', q2) ->
                  if q1 = q && Rpq_nfa.compare_letter a a' = 0 then push s2 q2)
                dfa.Rpq_nfa.delta)
          v.Rpq_nfa.delta)
      batch
  done;
  let out = ref [] in
  List.iter
    (fun f ->
      for q = dfa.Rpq_nfa.n - 1 downto 0 do
        if seen.(key f q) then out := q :: !out
      done)
    v.Rpq_nfa.finals;
  List.sort_uniq Int.compare !out

(* R_max with each ω-transition (p, ω, q) replaced by a fresh copy of
   V_ω's NFA: ε from p into the copy's starts, ε from its finals to q,
   and a direct ε (p, q) when ε ∈ L(V_ω).  Accepts σ(L(R_max)). *)
let substitution (rauto : Rpq_nfa.t) vnfas =
  let n = ref rauto.Rpq_nfa.n in
  let trans = ref [] and eps = ref [] in
  List.iter
    (fun (p, (l : Rpq_nfa.letter), q) ->
      let v : Rpq_nfa.t = List.assoc l.rel vnfas in
      let off = !n in
      n := !n + v.n;
      List.iter
        (fun (a, x, b) -> trans := (off + a, x, off + b) :: !trans)
        v.delta;
      List.iter (fun s -> eps := (p, off + s) :: !eps) v.starts;
      List.iter (fun f -> eps := (off + f, q) :: !eps) v.finals;
      if Rpq_nfa.nullable v then eps := (p, q) :: !eps)
    rauto.Rpq_nfa.delta;
  Rpq_nfa.of_raw ~n:!n ~starts:rauto.Rpq_nfa.starts
    ~finals:rauto.Rpq_nfa.finals ~trans:!trans ~eps:!eps

let rewrite ~views query =
  let names = List.map fst views in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Rpq_views: duplicate view name";
  List.iter
    (fun n ->
      if String.length n >= 4 && String.sub n 0 4 = "rpq_" then
        invalid_arg
          (Printf.sprintf
             "Rpq_views: view name %S collides with the reserved rpq_ prefix"
             n))
    names;
  let nfaq = Rpq_nfa.of_regex query in
  let vnfas = List.map (fun (n, d) -> (n, Rpq_nfa.of_regex d)) views in
  let sigma =
    List.sort_uniq Rpq_nfa.compare_letter
      (Rpq_nfa.letters nfaq
      @ List.concat_map (fun (_, v) -> Rpq_nfa.letters v) vnfas)
  in
  let dfa = Rpq_nfa.determinize ~alphabet:sigma nfaq in
  let omega =
    List.map (fun n -> { Rpq_nfa.rel = n; back = false }) names
  in
  let btrans =
    List.concat_map
      (fun (name, v) ->
        let l = { Rpq_nfa.rel = name; back = false } in
        List.concat_map
          (fun p -> List.map (fun q -> (p, l, q)) (view_reach v dfa p))
          (List.init dfa.Rpq_nfa.n Fun.id))
      vnfas
  in
  let b =
    {
      Rpq_nfa.n = dfa.Rpq_nfa.n;
      starts = dfa.Rpq_nfa.starts;
      finals =
        List.filter
          (fun s -> not (List.mem s dfa.Rpq_nfa.finals))
          (List.init dfa.Rpq_nfa.n Fun.id);
      delta = btrans;
    }
  in
  let rauto = Rpq_nfa.complement ~alphabet:omega b in
  let gap = Rpq_nfa.subseteq ~alphabet:sigma nfaq (substitution rauto vnfas) in
  { views; query; dfa; rauto; lossless = gap = None; gap }

let image ?strategy ?cancel views inst =
  List.fold_left
    (fun acc (name, def) ->
      List.fold_left
        (fun acc (x, y) -> Instance.add (Fact.make name [ x; y ]) acc)
        acc
        (Rpq_translate.eval ?strategy ?cancel def inst))
    Instance.empty views

(* the base-instance diagonal of the nullable case: nodes of G
   restricted to Q's alphabet (see the .mli headnote) *)
let diag_nodes query inst =
  let rels = Rpq.rels query in
  Instance.adom (Instance.restrict (fun r -> List.mem r rels) inst)

let certain ?strategy ?cancel t inst =
  let img = image ?strategy ?cancel t.views inst in
  let tuples =
    Dl_engine.eval ?strategy ?cancel (Rpq_translate.pairs_of_nfa t.rauto) img
  in
  let pairs = List.map (fun tp -> (tp.(0), tp.(1))) tuples in
  let diag =
    if Rpq.nullable t.query then
      Const.Set.fold (fun c acc -> (c, c) :: acc) (diag_nodes t.query inst) []
    else []
  in
  List.sort_uniq compare (diag @ pairs)

let certain_from ?strategy ?cancel t inst src =
  let img = image ?strategy ?cancel t.views inst in
  let img = Instance.add (Fact.make (Rpq_translate.src_rel ()) [ src ]) img in
  let tuples =
    Dl_engine.eval ?strategy ?cancel
      (Rpq_translate.anchored_of_nfa t.rauto)
      img
  in
  let out = List.map (fun tp -> tp.(0)) tuples in
  let out = if Rpq.nullable t.query then src :: out else out in
  List.sort_uniq Const.compare out

let certain_holds ?strategy ?cancel t inst x y =
  (Const.equal x y
  && Rpq.nullable t.query
  && Const.Set.mem x (diag_nodes t.query inst))
  ||
  let img = image ?strategy ?cancel t.views inst in
  Dl_engine.holds ?strategy ?cancel
    (Rpq_translate.pairs_of_nfa t.rauto)
    img [| x; y |]
