(** Regular path queries: regular expressions over binary relation
    symbols, with inverse edges.

    An RPQ selects node pairs [(x, y)] of a graph instance connected by
    a path whose edge labels spell a word of the expression's language;
    traversing relation [r] forwards reads the letter [r], traversing it
    backwards reads [r^].  This is the query surface of
    Francis–Segoufin–Sirangelo, "Datalog Rewritings of Regular Path
    Queries using Views" (arXiv:1511.00938); {!Rpq_nfa} compiles it to
    word automata, {!Rpq_translate} to linear Datalog over the engine
    facade, and {!Rpq_views} rewrites it over RPQ views.

    {2 Semantics of the empty word}

    When [ε ∈ L(e)], the all-pairs answer includes [(x, x)] for every
    node [x] occurring in the sub-instance restricted to the
    expression's alphabet — not for every constant of the full instance.
    A query whose alphabet is empty ([eps], [eps?], …) therefore has an
    empty all-pairs answer.  Source-anchored evaluation
    ({!Rpq_translate.eval_from}) instead always includes the given
    source when [ε ∈ L(e)]: the source is named explicitly, so it needs
    no witnessing edge. *)

type dir = Fwd | Bwd

type t =
  | Eps
  | Sym of string * dir  (** an edge relation, traversed Fwd or Bwd *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

exception Error of string
(** Parse error, with a character position in the message. *)

val parse : string -> t
(** Concrete syntax:

    {v
    alt   ::= cat ('|' cat)*
    cat   ::= post (('.')? post)*          concatenation, '.' optional
    post  ::= atom ('*' | '+' | '?' | '^')*
    atom  ::= IDENT | 'eps' | '(' alt ')'
    v}

    [IDENT] is a strict identifier (a letter or underscore followed by
    letters, digits and underscores) — the postfix operators are not
    identifier characters here, unlike in the {!Parse} surface syntax.  [^] reverses an expression: on a symbol it
    flips the traversal direction, and on a composite it is pushed
    inwards ({!rev}), so the parsed tree never contains a reversal node.
    @raise Error on malformed input. *)

val parse_defs : string -> (string * t) list
(** A sequence of named definitions [name = regex ; name = regex ; …]
    (trailing [;] allowed).  Definition order is kept; duplicate names
    are an {!Error}. *)

val to_string : t -> string
(** Minimal-parentheses rendering; [parse (to_string e)] is structurally
    equal to [e]. *)

val rev : t -> t
(** The reversal [e^]: [L (rev e) = { w^ | w ∈ L e }] where the reversal
    of a word flips letter order and each letter's direction.  Involutive. *)

val nullable : t -> bool
(** Is [ε ∈ L(e)]? *)

val rels : t -> string list
(** The relation names of the alphabet, sorted, without duplicates and
    without direction. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val fingerprint : t -> int * int
(** Structural 126-bit fingerprint in the style of
    {!Datalog.fingerprint}: equal expressions fingerprint equal, unequal
    fingerprints prove inequality.  Relation names contribute their
    interned {!Symtab} id, so values are process-local. *)

val fingerprint_hex : t -> string

val pp : t Fmt.t
