(* Graph generators.  LCG state stays in a ref local to one generator
   call, so concurrent callers and repeated calls always see the same
   stream. *)

let node i = Const.named (Printf.sprintf "n%d" i)
let grid_node i j = Const.named (Printf.sprintf "g%d_%d" i j)

let edge label x y = Fact.make label [ x; y ]

let chain ?(label = "e") n =
  let rec go i acc =
    if i >= n - 1 then acc
    else go (i + 1) (Instance.add (edge label (node i) (node (i + 1))) acc)
  in
  go 0 Instance.empty

let cycle ?(label = "e") n =
  Instance.add (edge label (node (n - 1)) (node 0)) (chain ~label n)

let grid ?(right = "r") ?(down = "d") h w =
  let acc = ref Instance.empty in
  for i = 0 to h - 1 do
    for j = 0 to w - 1 do
      if j + 1 < w then
        acc := Instance.add (edge right (grid_node i j) (grid_node i (j + 1))) !acc;
      if i + 1 < h then
        acc := Instance.add (edge down (grid_node i j) (grid_node (i + 1) j)) !acc
    done
  done;
  !acc

let scale_free ?(seed = 1) ?(labels = [ "e" ]) ~nodes ~edges () =
  if nodes < 2 then invalid_arg "Rpq_graph.scale_free: need at least 2 nodes";
  if labels = [] then invalid_arg "Rpq_graph.scale_free: need a label";
  let state = ref (seed * 2 + 1) in
  let rand bound =
    (* 48-bit drand48-style LCG — fits OCaml's boxed-free int range *)
    state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    (* the multiplier's low bits cycle fast — draw from the top *)
    let top = !state lsr 17 in
    top mod bound
  in
  let labels = Array.of_list labels in
  (* endpoint pool for degree-proportional target sampling, bootstrapped
     by a short chain so early draws have somewhere to land *)
  let boot = min nodes 4 in
  let pool = ref [] and pool_n = ref 0 in
  let note v =
    pool := v :: !pool;
    incr pool_n
  in
  let pool_arr = ref [||] and pool_arr_n = ref 0 in
  let pick_pool () =
    (* refresh the array view lazily; the pool only grows *)
    if !pool_arr_n <> !pool_n then begin
      pool_arr := Array.of_list !pool;
      pool_arr_n := !pool_n
    end;
    !pool_arr.(rand !pool_arr_n)
  in
  let acc = ref Instance.empty in
  let add_edge l x y =
    acc := Instance.add (edge l x y) !acc;
    note x;
    note y
  in
  for i = 0 to boot - 2 do
    add_edge labels.(0) (node i) (node (i + 1))
  done;
  for _ = 1 to edges - (boot - 1) do
    let l = labels.(rand (Array.length labels)) in
    let x = node (rand nodes) in
    let y = if rand 10 < 8 then pick_pool () else node (rand nodes) in
    add_edge l x y
  done;
  !acc
