(** View-based rewriting of RPQs, after Calvanese–De Giacomo–Lenzerini–
    Vardi and Francis–Segoufin–Sirangelo (arXiv:1511.00938).

    Given RPQ views [V_ω] and an RPQ [Q], {!rewrite} constructs the
    {e maximal contained rewriting} [R_max]: the regular language over
    the view alphabet [Ω] of exactly the ω-words whose {e every}
    expansion (replace each [ω] by a word of [L(V_ω)]) lands in [L(Q)].
    The construction is the classical automaton one, on this repo's
    machinery: determinize [Q]'s word NFA over the combined edge
    alphabet ({!Rpq_nfa.determinize}), read off a view-level automaton
    [B] whose [(p, ω, q)] transitions witness [L(V_ω) ∩ L(A_d\[p→q\]) ≠ ∅]
    (a product reachability per state pair), and complement [B] over
    [Ω] — emptiness and the final containment certificate both ride the
    tree-automaton layer ({!Rpq_nfa.subseteq}, hence {!Nta.product}).

    Soundness is unconditional: [σ(L(R_max)) ⊆ L(Q)], so every
    rewriting answer is an answer of [Q] on the base graph.  When the
    substitution of the views into [R_max] covers all of [L(Q)] the
    rewriting is {e lossless} and {!certain} equals direct evaluation on
    every instance; otherwise {!gap} holds a witness word of
    [L(Q) \ σ(L(R_max))].

    {2 The empty word, again}

    [ε ∈ L(R_max)] iff [ε ∈ L(Q)] (complementation over a total DFA
    preserves the empty-word verdict), and {!certain} keeps the
    convention of {!Rpq}: the diagonal is drawn from the {e base}
    instance restricted to [Q]'s alphabet — the evaluation functions
    here take the base graph and compute the view image internally, so
    rewriting answers stay comparable with {!Rpq_translate.eval} on the
    nose. *)

type t = private {
  views : (string * Rpq.t) list;
  query : Rpq.t;
  dfa : Rpq_nfa.t;  (** [A_d]: [Q]'s NFA determinized over [Σ], total *)
  rauto : Rpq_nfa.t;  (** [R_max], a DFA over the view-name alphabet *)
  lossless : bool;
  gap : Rpq_nfa.letter list option;
      (** a word of [L(Q) \ σ(L(R_max))]; [None] iff lossless *)
}

val rewrite : views:(string * Rpq.t) list -> Rpq.t -> t
(** @raise Invalid_argument on duplicate view names or view names that
    collide with the reserved [rpq_] relation prefix. *)

val image :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  (string * Rpq.t) list ->
  Instance.t ->
  Instance.t
(** The view instance [V(G)]: one binary relation per view name holding
    that view's all-pairs answer on the base graph. *)

val certain :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  t ->
  Instance.t ->
  (Const.t * Const.t) list
(** Rewriting answers on the base graph: evaluate [R_max]'s Datalog
    translation over the view image, plus the base diagonal if
    [ε ∈ L(Q)].  Sorted; always a subset of
    [Rpq_translate.eval query], and equal to it when {!lossless}. *)

val certain_from :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  t ->
  Instance.t ->
  Const.t ->
  Const.t list
(** Source-anchored rewriting answers; includes the source iff
    [ε ∈ L(Q)], matching {!Rpq_translate.eval_from}. *)

val certain_holds :
  ?strategy:Dl_engine.strategy ->
  ?cancel:Dl_cancel.t ->
  t ->
  Instance.t ->
  Const.t ->
  Const.t ->
  bool
