(** Word automata over edge letters, compiled from {!Rpq} expressions.

    A letter is a relation symbol with a traversal direction; an ε-free
    NFA over letters is the common currency of the translation to
    Datalog ({!Rpq_translate}) and of the view-rewriting constructions
    ({!Rpq_views}).

    Emptiness, witnesses and intersection go through the tree-automaton
    layer ({!Nta}): a word is encoded as a unary tree read right-to-left
    (the leaf [$] is the end of the word), an NFA becomes a bottom-up
    automaton whose accepting root states are the NFA's start states,
    and language intersection is {!Nta.product} on the encodings — the
    same machinery the paper's decision procedures run on. *)

type letter = { rel : string; back : bool }

type t = {
  n : int;  (** states are [0 .. n-1] *)
  starts : int list;
  finals : int list;
  delta : (int * letter * int) list;  (** ε-free *)
}

val letter_to_string : letter -> string
(** [r] or [r^]. *)

val word_to_string : letter list -> string
(** Dot-separated letters; the empty word prints as [eps].  The result
    re-parses ({!Rpq.parse}) to an expression denoting exactly that
    word. *)

val compare_letter : letter -> letter -> int

val of_regex : Rpq.t -> t
(** Thompson construction followed by ε-elimination and trimming. *)

val of_raw :
  n:int ->
  starts:int list ->
  finals:int list ->
  trans:(int * letter * int) list ->
  eps:(int * int) list ->
  t
(** ε-eliminate and trim an automaton given with explicit ε-edges — the
    substitution construction of {!Rpq_views} builds its automaton this
    way. *)

val letters : t -> letter list
(** Distinct letters on transitions, sorted. *)

val nullable : t -> bool
val accepts : t -> letter list -> bool

val determinize : alphabet:letter list -> t -> t
(** Subset construction, total over [alphabet] (a sink state is
    included), with a single start state.  Letters of the automaton not
    in [alphabet] are dropped. *)

val complement : alphabet:letter list -> t -> t
(** [Σ* \ L], relative to [alphabet]: determinize, then flip finals. *)

val to_nta : t -> Nta.t
(** The unary-tree encoding described above:
    [Nta.accepts (to_nta a) (encode w) ⟺ accepts a w]. *)

val is_empty : t -> bool
val witness : t -> letter list option
(** Some accepted word, via {!Nta.witness} on the encoding. *)

val inter_witness : t -> t -> letter list option
(** A word of [L(a) ∩ L(b)], via {!Nta.product}; [None] iff the
    intersection is empty. *)

val subseteq : alphabet:letter list -> t -> t -> letter list option
(** [subseteq ~alphabet a b] is [None] when [L(a) ⊆ L(b)] (languages
    over [alphabet]), and otherwise a witness word of [L(a) \ L(b)]. *)

val pp : t Fmt.t
