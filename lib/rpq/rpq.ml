(* RPQ surface syntax: a regex AST over binary relation symbols with
   inverse traversal, plus its parser, printer and fingerprint.  The
   reversal operator of the concrete syntax is normalized away at parse
   time ([rev]), so downstream passes only ever see the seven
   constructors. *)

type dir = Fwd | Bwd

type t =
  | Eps
  | Sym of string * dir
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---------- reversal ---------- *)

let flip = function Fwd -> Bwd | Bwd -> Fwd

let rec rev = function
  | Eps -> Eps
  | Sym (r, d) -> Sym (r, flip d)
  | Seq (a, b) -> Seq (rev b, rev a)
  | Alt (a, b) -> Alt (rev a, rev b)
  | Star e -> Star (rev e)
  | Plus e -> Plus (rev e)
  | Opt e -> Opt (rev e)

(* ---------- structure ---------- *)

let rec nullable = function
  | Eps | Star _ | Opt _ -> true
  | Sym _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus e -> nullable e

let rels e =
  let rec go acc = function
    | Eps -> acc
    | Sym (r, _) -> r :: acc
    | Seq (a, b) | Alt (a, b) -> go (go acc a) b
    | Star e | Plus e | Opt e -> go acc e
  in
  List.sort_uniq String.compare (go [] e)

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* ---------- parser ---------- *)

(* A tiny hand lexer with character positions.  Identifiers are strict
   (letters, digits, underscore): the surface syntax of Parse lets the
   characters *?!~$# into identifiers, which would swallow the postfix
   operators here, so the RPQ grammar has its own charset. *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

type token = Tid of string | Tlpar | Trpar | Tbar | Tdot | Tstar | Tplus
           | Topt | Tinv | Teq | Tsemi | Teof

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := (Tid (String.sub s !i (!j - !i)), pos) :: !toks;
      i := !j
    end
    else begin
      let t =
        match c with
        | '(' -> Tlpar
        | ')' -> Trpar
        | '|' -> Tbar
        | '.' -> Tdot
        | '*' -> Tstar
        | '+' -> Tplus
        | '?' -> Topt
        | '^' -> Tinv
        | '=' -> Teq
        | ';' -> Tsemi
        | c -> err "rpq: unexpected character %C at position %d" c pos
      in
      toks := (t, pos) :: !toks;
      incr i
    end
  done;
  List.rev ((Teof, n) :: !toks)

(* Recursive descent over a mutable token stream.
     alt  ::= cat ('|' cat)*
     cat  ::= post (('.')? post)*
     post ::= atom ('*'|'+'|'?'|'^')*
     atom ::= IDENT | 'eps' | '(' alt ')'                              *)

type stream = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, p) :: _ -> (t, p) | [] -> (Teof, 0)
let next st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let starts_atom = function
  | Tid _ | Tlpar -> true
  | _ -> false

let rec p_alt st =
  let a = p_cat st in
  match peek st with
  | Tbar, _ ->
      next st;
      Alt (a, p_alt st)
  | _ -> a

and p_cat st =
  let a = p_post st in
  match peek st with
  | Tdot, _ ->
      next st;
      let t, p = peek st in
      if starts_atom t then Seq (a, p_cat st)
      else err "rpq: expected an expression after '.' at position %d" p
  | t, _ when starts_atom t -> Seq (a, p_cat st)
  | _ -> a

and p_post st =
  let e = ref (p_atom st) in
  let rec go () =
    match peek st with
    | Tstar, _ -> next st; e := Star !e; go ()
    | Tplus, _ -> next st; e := Plus !e; go ()
    | Topt, _ -> next st; e := Opt !e; go ()
    | Tinv, _ -> next st; e := rev !e; go ()
    | _ -> ()
  in
  go ();
  !e

and p_atom st =
  match peek st with
  | Tid "eps", _ ->
      next st;
      Eps
  | Tid r, _ ->
      next st;
      Sym (r, Fwd)
  | Tlpar, p ->
      next st;
      let e = p_alt st in
      (match peek st with
      | Trpar, _ -> next st; e
      | _, p' ->
          ignore p;
          err "rpq: unclosed '(' (expected ')' at position %d)" p')
  | _, p -> err "rpq: expected an identifier, 'eps' or '(' at position %d" p

let parse_stream st =
  let e = p_alt st in
  e

let parse s =
  let st = { toks = lex s } in
  let e = parse_stream st in
  (match peek st with
  | Teof, _ -> ()
  | _, p -> err "rpq: trailing input at position %d" p);
  e

let parse_defs s =
  let st = { toks = lex s } in
  let defs = ref [] in
  let rec go () =
    match peek st with
    | Teof, _ -> ()
    | Tid name, _ -> (
        next st;
        (match peek st with
        | Teq, _ -> next st
        | _, p -> err "rpq: expected '=' after name %S at position %d" name p);
        if List.mem_assoc name !defs then err "rpq: duplicate name %S" name;
        defs := (name, parse_stream st) :: !defs;
        match peek st with
        | Tsemi, _ ->
            next st;
            go ()
        | Teof, _ -> ()
        | _, p -> err "rpq: expected ';' or end of input at position %d" p)
    | _, p -> err "rpq: expected a definition name at position %d" p
  in
  go ();
  List.rev !defs

(* ---------- printer ---------- *)

(* precedence levels: alt (0) < cat (1) < postfix (2) *)
let rec bprint b prec e =
  let paren p body =
    if prec > p then begin
      Buffer.add_char b '(';
      body ();
      Buffer.add_char b ')'
    end
    else body ()
  in
  match e with
  | Eps -> Buffer.add_string b "eps"
  | Sym (r, Fwd) -> Buffer.add_string b r
  | Sym (r, Bwd) ->
      Buffer.add_string b r;
      Buffer.add_char b '^'
  | Seq (x, y) ->
      paren 1 (fun () ->
          bprint b 1 x;
          Buffer.add_char b '.';
          bprint b 1 y)
  | Alt (x, y) ->
      paren 0 (fun () ->
          bprint b 0 x;
          Buffer.add_char b '|';
          bprint b 0 y)
  | Star x ->
      paren 2 (fun () -> bprint b 2 x);
      Buffer.add_char b '*'
  | Plus x ->
      paren 2 (fun () -> bprint b 2 x);
      Buffer.add_char b '+'
  | Opt x ->
      paren 2 (fun () -> bprint b 2 x);
      Buffer.add_char b '?'

let to_string e =
  let b = Buffer.create 32 in
  bprint b 0 e;
  Buffer.contents b

let pp ppf e = Fmt.string ppf (to_string e)

(* ---------- fingerprint ---------- *)

(* Same two-stream mixing discipline as {!Datalog.fingerprint}: a
   constructor tag step, then the children in order.  Relation names
   contribute their interned id via {!Fp.string_hash}. *)
let fingerprint e =
  let tag (a, b) t = (Fp.step a t, Fp.step b (t + 1)) in
  let rec go acc e =
    match e with
    | Eps -> tag acc 3
    | Sym (r, d) ->
        let h = Fp.string_hash r in
        let a, b = tag acc (if d = Fwd then 7 else 13) in
        (Fp.step a h, Fp.step b h)
    | Seq (x, y) -> go (go (tag acc 29) x) y
    | Alt (x, y) -> go (go (tag acc 37) x) y
    | Star x -> go (tag acc 43) x
    | Plus x -> go (tag acc 53) x
    | Opt x -> go (tag acc 61) x
  in
  go (Fp.seed1, Fp.seed2) e

let fingerprint_hex e =
  let a, b = fingerprint e in
  Fp.hex a b
