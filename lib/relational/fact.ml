(* Ground facts.  The relation name is interned ([rid]) and a structural
   hash pair is computed once at construction, so set membership and
   fingerprint maintenance never re-hash and never compare strings. *)

type t = {
  rel : string;
  rid : Symtab.sym;
  args : Const.t array;
  h1 : int;
  h2 : int;
}

(* The per-fact hash pair: two independently seeded position-sensitive
   folds over the relation id and the argument ids.  [Instance] uses the
   same function on raw tuples, so a fact's cached pair and a tuple's
   recomputed pair always agree. *)
let tuple_hash rid (args : Const.t array) =
  let h1 = ref (Fp.mix (Fp.seed1 lxor rid))
  and h2 = ref (Fp.mix (Fp.seed2 lxor rid)) in
  Array.iter
    (fun c ->
      h1 := Fp.step !h1 (Const.hash c);
      h2 := Fp.step !h2 (Const.hash2 c))
    args;
  (!h1, !h2)

let of_interned rid args =
  let h1, h2 = tuple_hash rid args in
  { rel = Symtab.name rid; rid; args; h1; h2 }

(* Callers hand over ownership of [args]: the array must not be mutated
   afterwards (the cached hashes would go stale). *)
let of_array rel args =
  let rid = Symtab.intern rel in
  let h1, h2 = tuple_hash rid args in
  { rel; rid; args; h1; h2 }

let make_arr = of_array
let make rel args = of_array rel (Array.of_list args)

let compare a b =
  let c = Int.compare a.rid b.rid in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

(* the cached hash rejects unequal facts without looking at the arrays *)
let equal a b = a.h1 = b.h1 && a.h2 = b.h2 && compare a b = 0

let hash f = f.h1
let hash_pair f = (f.h1, f.h2)
let arity f = Array.length f.args
let map h f = of_interned f.rid (Array.map h f.args)

let consts f = Array.fold_left (fun s c -> Const.Set.add c s) Const.Set.empty f.args

let pp ppf f =
  if Array.length f.args = 0 then Fmt.string ppf f.rel
  else Fmt.pf ppf "%s(%a)" f.rel Fmt.(array ~sep:comma Const.pp) f.args

let to_string f = Fmt.str "%a" pp f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
