(* Global, domain-safe symbol interning.

   Both directions are immutable-once-published snapshots behind
   [Atomic.t]s, so lookups of already-interned names — the hot path:
   every [Const.named] and every string-keyed relation access — never
   take a lock.  Only a first occurrence takes [lock], copies the
   forward table, adds the binding, and publishes the copy; the handful
   of distinct symbols a process ever sees makes the O(n) copy
   irrelevant.  A published table/array is never mutated again, and an
   id only ever reaches a reader through some happens-before edge (it
   was interned first), so readers always observe fully written
   entries. *)

type sym = int

let lock = Mutex.create ()

let tbl : (string, int) Hashtbl.t Atomic.t =
  Atomic.make (Hashtbl.create 1024)

let names : string array Atomic.t = Atomic.make (Array.make 1024 "")
let count = Atomic.make 0

let size () = Atomic.get count

let name id = (Atomic.get names).(id)

let find_opt s = Hashtbl.find_opt (Atomic.get tbl) s

let intern s =
  match Hashtbl.find_opt (Atomic.get tbl) s with
  | Some id -> id
  | None ->
      Mutex.lock lock;
      (* re-probe: another domain may have interned [s] meanwhile *)
      let cur = Atomic.get tbl in
      let id =
        match Hashtbl.find_opt cur s with
        | Some id -> id
        | None ->
            let id = Atomic.get count in
            let arr = Atomic.get names in
            let arr =
              if id < Array.length arr then arr
              else begin
                let a' = Array.make (2 * Array.length arr) "" in
                Array.blit arr 0 a' 0 (Array.length arr);
                a'
              end
            in
            arr.(id) <- s;
            (* publish the slot before the id becomes visible *)
            Atomic.set names arr;
            Atomic.set count (id + 1);
            let tbl' = Hashtbl.copy cur in
            Hashtbl.add tbl' s id;
            Atomic.set tbl tbl';
            id
      in
      Mutex.unlock lock;
      id
