(** Domain elements of database instances.

    Elements are either named (coming from user input or canonical
    databases of queries, where the name records the originating variable)
    or fresh nulls generated during chase steps and inverse-rule
    applications.

    Constants are interned: a named constant is a dense {!Symtab} id, a
    fresh null a tagged counter value, so {!compare}, {!equal} and {!hash}
    are integer operations.  The total order is intern order, not
    lexicographic — deterministic within a process for a fixed input
    sequence, but not stable across processes. *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Well-mixed structural hash (an avalanche of the interned id). *)

val hash2 : t -> int
(** A second hash stream independent of {!hash}, for 126-bit
    fingerprints. *)

val named : string -> t
(** [named s] is the constant written [s].  Interns [s] on first sight;
    safe from any domain. *)

val fresh : unit -> t
(** [fresh ()] is a globally fresh null.  Freshness is per-process; the
    counter is atomic, so concurrent callers on different domains always
    receive distinct nulls. *)

val fresh_reset : unit -> unit
(** Reset the fresh-null counter.  Only for reproducible tests, and only
    when no other domain is generating nulls. *)

val is_fresh : t -> bool

val name : t -> string option
(** The name of a named constant, [None] for a fresh null. *)

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
