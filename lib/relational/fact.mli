(** Ground facts [R(c1,...,cn)].

    A fact carries its interned relation id and a cached structural hash
    pair, both fixed at construction; {!compare} orders by relation id
    (intern order, not alphabetical), and {!equal} rejects unequal facts
    by hash before touching the argument arrays. *)

type t = private {
  rel : string;
  rid : Symtab.sym;  (** interned [rel] *)
  args : Const.t array;
  h1 : int;  (** cached structural hash, first stream *)
  h2 : int;  (** second stream, for 126-bit fingerprints *)
}

val make : string -> Const.t list -> t

val of_array : string -> Const.t array -> t
(** Array-based constructor for hot paths: no intermediate list.  The
    caller hands over ownership of the array — it must not be mutated
    afterwards, or the cached hashes go stale. *)

val make_arr : string -> Const.t array -> t
(** Alias of {!of_array}. *)

val of_interned : Symtab.sym -> Const.t array -> t
(** Like {!of_array} with the relation already interned (the id must come
    from {!Symtab.intern}); skips the symbol-table lookup. *)

val tuple_hash : Symtab.sym -> Const.t array -> int * int
(** The structural hash pair of the fact [rid(args)], without building
    the fact — {!Instance} fingerprints raw tuples with this. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val hash_pair : t -> int * int
val arity : t -> int

val map : (Const.t -> Const.t) -> t -> t
(** [map h f] applies [h] to every argument of [f]. *)

val consts : t -> Const.Set.t
val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
