(* Buckets hang off a hashtable specialized to interned constants: the
   hash is an integer mix of the id, never a generic structural hash. *)
module H = Hashtbl.Make (struct
  type t = Const.t

  let equal = Const.equal
  let hash = Const.hash
end)

type bucket = { mutable n : int; mutable tups : Const.t array list }

type t = {
  size : int;
  all : Const.t array list;
  tables : bucket H.t array; (* one table per position *)
}

let build tuples =
  let arity = List.fold_left (fun m t -> max m (Array.length t)) 0 tuples in
  let tables = Array.init arity (fun _ -> H.create 16) in
  let size =
    List.fold_left
      (fun k tup ->
        Array.iteri
          (fun p c ->
            let tbl = tables.(p) in
            match H.find_opt tbl c with
            | Some b ->
                b.n <- b.n + 1;
                b.tups <- tup :: b.tups
            | None -> H.add tbl c { n = 1; tups = [ tup ] })
          tup;
        k + 1)
      0 tuples
  in
  { size; all = tuples; tables }

(* Extending shares the bucket tuple lists with the old index (lists are
   immutable; new tuples are consed on top), so only the bucket records and
   the position tables themselves are copied.  The old index stays valid:
   nothing reachable from it is mutated. *)
let extend idx tuples =
  match tuples with
  | [] -> idx
  | _ ->
      let arity =
        List.fold_left
          (fun m t -> max m (Array.length t))
          (Array.length idx.tables) tuples
      in
      let tables =
        Array.init arity (fun p ->
            if p < Array.length idx.tables then begin
              let old = idx.tables.(p) in
              let tbl = H.create (max 16 (H.length old)) in
              H.iter
                (fun c b -> H.add tbl c { n = b.n; tups = b.tups })
                old;
              tbl
            end
            else H.create 16)
      in
      let size =
        List.fold_left
          (fun k tup ->
            Array.iteri
              (fun p c ->
                let tbl = tables.(p) in
                match H.find_opt tbl c with
                | Some b ->
                    b.n <- b.n + 1;
                    b.tups <- tup :: b.tups
                | None -> H.add tbl c { n = 1; tups = [ tup ] })
              tup;
            k + 1)
          idx.size tuples
      in
      { size; all = List.rev_append tuples idx.all; tables }

let size idx = idx.size
let all idx = idx.all

let count idx p c =
  if p < 0 || p >= Array.length idx.tables then 0
  else match H.find_opt idx.tables.(p) c with None -> 0 | Some b -> b.n

let lookup idx p c =
  if p < 0 || p >= Array.length idx.tables then []
  else
    match H.find_opt idx.tables.(p) c with None -> [] | Some b -> b.tups
