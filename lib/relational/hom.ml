type map = Const.t Const.Map.t

let is_hom h src dst =
  let ok = ref true in
  Instance.iter
    (fun f ->
      if !ok then
        match
          Array.for_all (fun c -> Const.Map.mem c h) f.Fact.args
        with
        | false -> ok := false
        | true ->
            let f' = Fact.map (fun c -> Const.Map.find c h) f in
            if not (Instance.mem f' dst) then ok := false)
    src;
  !ok

(* Bound positions of [f]'s arguments under the partial map [h]. *)
let bound_positions (f : Fact.t) h =
  let bound = ref [] in
  Array.iteri
    (fun i c ->
      match Const.Map.find_opt c h with
      | Some c' -> bound := (i, c') :: !bound
      | None -> ())
    f.args;
  !bound

(* Enumerate homomorphisms extending [init]; call [yield] on each complete
   one.  [yield] returns [true] to continue enumeration, [false] to stop.

   The search picks the next source fact dynamically: at every node the
   remaining fact with the fewest index candidates in [dst] (given the
   bindings accumulated so far) is matched first.  This subsumes the old
   static connected ordering — a fact sharing elements with the frontier
   has bound positions and hence small buckets — and also exploits
   relation cardinalities and constants fixed by [init]. *)
let enumerate ?(init = Const.Map.empty) src dst yield =
  let facts = Array.of_list (Instance.facts src) in
  let n = Array.length facts in
  let swap i j =
    let t = facts.(i) in
    facts.(i) <- facts.(j);
    facts.(j) <- t
  in
  let rec solve h k =
    if k = n then yield h
    else begin
      (* most-constrained-first: fewest candidate tuples next *)
      let best = ref k
      and best_bound = ref (bound_positions facts.(k) h)
      and best_cost = ref max_int in
      best_cost := Instance.estimate_with_id dst facts.(k).Fact.rid !best_bound;
      for j = k + 1 to n - 1 do
        if !best_cost > 0 then begin
          let b = bound_positions facts.(j) h in
          let c = Instance.estimate_with_id dst facts.(j).Fact.rid b in
          if c < !best_cost then begin
            best := j;
            best_bound := b;
            best_cost := c
          end
        end
      done;
      swap k !best;
      let f = facts.(k) in
      let candidates = Instance.tuples_with_id dst f.Fact.rid !best_bound in
      let rec try_tuples = function
        | [] -> true
        | tup :: tups ->
            let h' = ref h and ok = ref true in
            Array.iteri
              (fun i c ->
                if !ok then
                  match Const.Map.find_opt c !h' with
                  | Some c' -> if not (Const.equal c' tup.(i)) then ok := false
                  | None -> h' := Const.Map.add c tup.(i) !h')
              f.Fact.args;
            if !ok then if solve !h' (k + 1) then try_tuples tups else false
            else try_tuples tups
      in
      let continue_ = try_tuples candidates in
      swap k !best;
      continue_
    end
  in
  ignore (solve init 0)

let find ?init src dst =
  let result = ref None in
  enumerate ?init src dst (fun h ->
      result := Some h;
      false);
  !result

let exists ?init src dst = Option.is_some (find ?init src dst)

let all ?init ?(limit = 1000) src dst =
  let acc = ref [] and n = ref 0 in
  enumerate ?init src dst (fun h ->
      acc := h :: !acc;
      incr n;
      !n < limit);
  List.rev !acc

let count ?init ?(limit = 1000) src dst =
  let n = ref 0 in
  enumerate ?init src dst (fun _ ->
      incr n;
      !n < limit);
  !n

let compose g h = Const.Map.map (fun c -> match Const.Map.find_opt c g with Some c' -> c' | None -> c) h

let image h src = Instance.map (fun c -> Const.Map.find c h) src

let endo_core inst =
  let rec shrink inst =
    let dom = Const.Set.elements (Instance.adom inst) in
    let try_drop a =
      let target = Instance.filter (fun f -> not (Const.Set.mem a (Fact.consts f))) inst in
      find inst target
    in
    let rec loop = function
      | [] -> inst
      | a :: rest -> (
          match try_drop a with
          | Some h -> shrink (image h inst)
          | None -> loop rest)
    in
    loop dom
  in
  shrink inst

let pp_map ppf h =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:comma (fun ppf (a, b) -> Fmt.pf ppf "%a↦%a" Const.pp a Const.pp b))
    (Const.Map.bindings h)
