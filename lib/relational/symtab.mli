(** Global, domain-safe symbol table.

    Maps relation names and named-constant strings to dense integer ids.
    Ids are process-local and assigned in first-intern order; they are
    never recycled.  All operations are safe to call from any domain:
    lookups of already-interned names ({!intern} on a hit, {!find_opt},
    {!name}) are lock-free reads of immutable copy-on-write snapshots;
    only a first occurrence serializes on a mutex. *)

type sym = int
(** A dense id, [0 <= sym < size ()]. *)

val intern : string -> sym
(** The id of the given name, allocating a fresh one on first sight. *)

val find_opt : string -> sym option
(** The id of the given name if it was ever interned — a read-only probe
    that never grows the table (lookups of never-seen relation names must
    not allocate ids). *)

val name : sym -> string
(** The name behind an id.  O(1), lock-free. *)

val size : unit -> int
(** Number of interned symbols. *)
