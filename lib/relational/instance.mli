(** Database instances: finite sets of facts, indexed by relation name.

    Instances follow the paper's conventions: an instance is just a set of
    facts; its active domain is the set of elements occurring in them.

    Internally relations are keyed by interned {!Symtab} ids and every
    instance carries an order-independent 126-bit structural fingerprint,
    maintained incrementally by {!add}, {!remove} and {!union} (including
    the warm index-extending union path) and recomputed per affected
    relation by the set operations.  Structurally equal instances always
    have equal fingerprints, however they were built; unequal fingerprints
    prove inequality.  Fingerprints depend on intern order and fresh-null
    identity, so they are only meaningful within one process. *)

type t

val empty : t
val add : Fact.t -> t -> t
val remove : Fact.t -> t -> t
val of_list : Fact.t list -> t
val of_facts : Fact.Set.t -> t
val singleton : Fact.t -> t
val facts : t -> Fact.t list
val fact_set : t -> Fact.Set.t
val mem : Fact.t -> t -> bool
val size : t -> int
(** Number of facts. *)

val is_empty : t -> bool

val union : t -> t -> t
(** Set union.  Index caches stay warm: a relation unchanged by the union
    shares its [rel] record (index included) with the operand it came
    from, and a relation that grows reuses the larger operand's cached
    index extended with the smaller side's novel tuples
    (see {!Index.extend}) instead of rebuilding it on next use. *)

val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool

val equal : t -> t -> bool
(** Structural equality.  Unequal fingerprints reject in O(1); equal
    fingerprints are confirmed structurally. *)

val compare : t -> t -> int

val fingerprint : t -> int * int
(** The instance's structural fingerprint pair, in O(1). *)

val fingerprint_hex : t -> string
(** 32-hex-digit rendering of {!fingerprint}, in O(1) — cache keys over
    instances cost the same whatever the instance size. *)

val relations : t -> string list
(** Relation names with at least one fact, sorted. *)

val tuples : t -> string -> Const.t array list
(** All tuples of the given relation (empty list if none). *)

val tuples_with : t -> string -> (int * Const.t) list -> Const.t array list
(** [tuples_with i r cs] returns the tuples of [r] whose position [p] holds
    constant [c] for every [(p, c)] in [cs].  Backed by a per-relation
    secondary index (see {!Index}): the bucket of the most selective bound
    position is scanned and the remaining constraints filter it. *)

val cardinal : t -> string -> int
(** Number of tuples of the given relation. *)

val index : t -> string -> Index.t option
(** The relation's secondary index (built on first request, then cached),
    or [None] if the relation has no facts.  This is the raw handle behind
    {!tuples_with} / {!estimate_with}, for callers that drive their own
    join loop. *)

val estimate_with : t -> string -> (int * Const.t) list -> int
(** Upper bound on [List.length (tuples_with i r cs)], in O(|cs|) index
    lookups: the smallest bucket count among the bound positions, or the
    relation's cardinality when [cs] is empty.  Join planners use this to
    order atoms most-constrained-first. *)

(** {2 Id-keyed access paths}

    Variants of the relation-name accessors taking an interned {!Symtab}
    id (e.g. {!Fact.rid} or a compiled rule's cached id) — the evaluator's
    inner loops use these so no string is hashed or compared per lookup.
    The string versions cost one symbol-table probe ({!Symtab.find_opt});
    names never interned resolve to the empty relation without growing
    the table. *)

val cardinal_id : t -> Symtab.sym -> int
val index_id : t -> Symtab.sym -> Index.t option
val tuples_with_id : t -> Symtab.sym -> (int * Const.t) list -> Const.t array list
val estimate_with_id : t -> Symtab.sym -> (int * Const.t) list -> int

val adom : t -> Const.Set.t
(** Active domain. *)

val map : (Const.t -> Const.t) -> t -> t
(** Apply a renaming to every fact. *)

val restrict : (string -> bool) -> t -> t
(** Keep only facts whose relation satisfies the predicate (the paper's
    [F ↾ Σ']). *)

val restrict_schema : Schema.t -> t -> t
val filter : (Fact.t -> bool) -> t -> t
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val schema : t -> Schema.t
(** The schema inferred from the facts present. *)

val rename_apart : t -> t
(** A copy of the instance with every element replaced by a fresh null
    (used to take disjoint copies). *)

val pp : t Fmt.t
