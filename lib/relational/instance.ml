module Tuple = struct
  type t = Const.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
end

module TS = Set.Make (Tuple)
module M = Map.Make (String)

(* Each relation carries its tuple set plus a lazily-built secondary index.
   The index is derived data over the immutable [ts], so the mutable cache
   is sound: any operation producing a different tuple set allocates a new
   [rel] with an empty cache, while unchanged relations keep sharing theirs.

   Invariant: every [rel] stored in the map has a non-empty tuple set, so
   [M.is_empty] ⇔ no facts and [M.bindings] lists exactly the non-empty
   relations. *)
type rel = { ts : TS.t; mutable idx : Index.t option }

type t = rel M.t

let mk ts = { ts; idx = None }

let index_of r =
  match r.idx with
  | Some i -> i
  | None ->
      let i = Index.build (TS.elements r.ts) in
      r.idx <- Some i;
      i

let empty = M.empty

let add (f : Fact.t) t =
  match M.find_opt f.rel t with
  | None -> M.add f.rel (mk (TS.singleton f.args)) t
  | Some r ->
      if TS.mem f.args r.ts then t else M.add f.rel (mk (TS.add f.args r.ts)) t

let remove (f : Fact.t) t =
  match M.find_opt f.rel t with
  | None -> t
  | Some r ->
      if not (TS.mem f.args r.ts) then t
      else
        let ts = TS.remove f.args r.ts in
        if TS.is_empty ts then M.remove f.rel t else M.add f.rel (mk ts) t

let of_list fs = List.fold_left (fun t f -> add f t) empty fs
let of_facts fs = Fact.Set.fold add fs empty
let singleton f = add f empty

let fold g t acc =
  M.fold
    (fun rel r acc ->
      TS.fold (fun args acc -> g { Fact.rel; args } acc) r.ts acc)
    t acc

let iter g t = fold (fun f () -> g f) t ()
let facts t = List.rev (fold (fun f acc -> f :: acc) t [])
let fact_set t = fold Fact.Set.add t Fact.Set.empty

let mem (f : Fact.t) t =
  match M.find_opt f.rel t with None -> false | Some r -> TS.mem f.args r.ts

let size t = M.fold (fun _ r n -> n + TS.cardinal r.ts) t 0
let is_empty t = M.is_empty t

(* Incremental union: when one side subsumes the other, its whole [rel]
   record — index cache included — is shared.  Otherwise the result reuses
   the larger operand's cached index, extended with the smaller side's
   novel tuples: the fixpoint and the chase union many small deltas into a
   big accumulator, and this keeps its buckets warm instead of rebuilding
   them per round. *)
let union a b =
  M.union
    (fun _ x y ->
      if TS.subset y.ts x.ts then Some x
      else if TS.subset x.ts y.ts then Some y
      else
        let big, small =
          if TS.cardinal x.ts >= TS.cardinal y.ts then (x, y) else (y, x)
        in
        let r = mk (TS.union big.ts small.ts) in
        (match big.idx with
        | Some idx ->
            r.idx <- Some (Index.extend idx (TS.elements (TS.diff small.ts big.ts)))
        | None -> ());
        Some r)
    a b

let diff a b =
  M.merge
    (fun _ x y ->
      match (x, y) with
      | None, _ -> None
      | Some x, None -> Some x
      | Some x, Some y ->
          let d = TS.diff x.ts y.ts in
          if TS.is_empty d then None
          else if TS.cardinal d = TS.cardinal x.ts then Some x
          else Some (mk d))
    a b

let inter a b =
  M.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y ->
          let i = TS.inter x.ts y.ts in
          if TS.is_empty i then None else Some (mk i)
      | _ -> None)
    a b

let subset a b =
  M.for_all
    (fun rel r ->
      match M.find_opt rel b with
      | None -> false
      | Some r' -> TS.subset r.ts r'.ts)
    a

let compare = M.compare (fun a b -> TS.compare a.ts b.ts)
let equal a b = compare a b = 0

(* the no-empty-relation invariant makes the defensive filter unnecessary *)
let relations t = M.bindings t |> List.map fst

let tuples t rel =
  match M.find_opt rel t with None -> [] | Some r -> TS.elements r.ts

let cardinal t rel =
  match M.find_opt rel t with None -> 0 | Some r -> TS.cardinal r.ts

let index t rel =
  match M.find_opt rel t with None -> None | Some r -> Some (index_of r)

(* Pick the most selective bound position via the index, scan only its
   bucket, and filter the remaining bound positions. *)
let tuples_with t rel cs =
  match M.find_opt rel t with
  | None -> []
  | Some r -> (
      match cs with
      | [] -> TS.elements r.ts
      | [ (p, c) ] -> Index.lookup (index_of r) p c
      | _ ->
          let idx = index_of r in
          let (bp, bc), _ =
            List.fold_left
              (fun ((_, bn) as best) (p, c) ->
                let n = Index.count idx p c in
                if n < bn then ((p, c), n) else best)
              ((List.hd cs), max_int)
              cs
          in
          let rest = List.filter (fun (p, c) -> p <> bp || not (Const.equal c bc)) cs in
          let ok tup =
            List.for_all
              (fun (p, c) -> p < Array.length tup && Const.equal tup.(p) c)
              rest
          in
          List.filter ok (Index.lookup idx bp bc))

let estimate_with t rel cs =
  match M.find_opt rel t with
  | None -> 0
  | Some r ->
      let idx = index_of r in
      List.fold_left
        (fun acc (p, c) -> min acc (Index.count idx p c))
        (Index.size idx) cs

let adom t =
  fold (fun f s -> Const.Set.union (Fact.consts f) s) t Const.Set.empty

let map h t = fold (fun f acc -> add (Fact.map h f) acc) t empty
let restrict p t = M.filter (fun rel _ -> p rel) t
let restrict_schema s t = restrict (Schema.mem s) t

let filter p t =
  fold (fun f acc -> if p f then add f acc else acc) t empty

let schema t =
  M.fold
    (fun rel r s ->
      match TS.choose_opt r.ts with
      | None -> s
      | Some tup -> Schema.add rel (Array.length tup) s)
    t Schema.empty

let rename_apart t =
  let tbl = Hashtbl.create 16 in
  let rename c =
    match Hashtbl.find_opt tbl c with
    | Some c' -> c'
    | None ->
        let c' = Const.fresh () in
        Hashtbl.add tbl c c';
        c'
  in
  map rename t

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:semi Fact.pp) (facts t)
