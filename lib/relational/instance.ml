module Tuple = struct
  type t = Const.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Const.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
end

module TS = Set.Make (Tuple)
module M = Map.Make (Int)

(* Relations are keyed by their interned {!Symtab} id, so the per-fact map
   lookups of [add]/[mem]/[union] are integer comparisons; the name is
   recovered with [Symtab.name] on the cold paths that need it (printing,
   schema, restriction by predicate).

   Each relation carries its tuple set, the running fingerprint sums of
   that set, and a lazily-built secondary index.  The index is derived
   data over the immutable [ts], so the mutable cache is sound: any
   operation producing a different tuple set allocates a new [rel] with an
   empty cache, while unchanged relations keep sharing theirs.

   Invariant: every [rel] stored in the map has a non-empty tuple set, so
   [M.is_empty] ⇔ no facts and [M.bindings] lists exactly the non-empty
   relations. *)
type rel = {
  ts : TS.t;
  n : int; (* cached [TS.cardinal ts] — [Set.cardinal] walks the whole
              tree, and the per-round unions of a delta fixpoint were
              paying that O(n) walk just to pick the bigger operand *)
  s1 : int; (* sum over tuples of Fact.tuple_hash, first stream *)
  s2 : int; (* second stream; native addition wraps, order-independent *)
  mutable idx : Index.t option;
}

(* The instance-level fingerprint [f1]/[f2] is the sum of the relation
   sums: structurally equal instances always carry equal pairs (the sums
   range over the same fact multiset), whatever sequence of adds, unions
   and diffs produced them. *)
type t = { rels : rel M.t; f1 : int; f2 : int }

let sums_of rid ts =
  TS.fold
    (fun tup (s1, s2) ->
      let h1, h2 = Fact.tuple_hash rid tup in
      (s1 + h1, s2 + h2))
    ts (0, 0)

let mk rid ts =
  let s1, s2 = sums_of rid ts in
  { ts; n = TS.cardinal ts; s1; s2; idx = None }

(* recompute the instance sums from the relation sums: O(#relations) *)
let wrap rels =
  let f1, f2 =
    M.fold (fun _ r (f1, f2) -> (f1 + r.s1, f2 + r.s2)) rels (0, 0)
  in
  { rels; f1; f2 }

let index_of r =
  match r.idx with
  | Some i -> i
  | None ->
      let i = Index.build (TS.elements r.ts) in
      r.idx <- Some i;
      i

let empty = { rels = M.empty; f1 = 0; f2 = 0 }

let add (f : Fact.t) t =
  match M.find_opt f.rid t.rels with
  | None ->
      {
        rels =
          M.add f.rid
            { ts = TS.singleton f.args; n = 1; s1 = f.h1; s2 = f.h2; idx = None }
            t.rels;
        f1 = t.f1 + f.h1;
        f2 = t.f2 + f.h2;
      }
  | Some r ->
      if TS.mem f.args r.ts then t
      else
        {
          rels =
            M.add f.rid
              {
                ts = TS.add f.args r.ts;
                n = r.n + 1;
                s1 = r.s1 + f.h1;
                s2 = r.s2 + f.h2;
                idx = None;
              }
              t.rels;
          f1 = t.f1 + f.h1;
          f2 = t.f2 + f.h2;
        }

let remove (f : Fact.t) t =
  match M.find_opt f.rid t.rels with
  | None -> t
  | Some r ->
      if not (TS.mem f.args r.ts) then t
      else
        let ts = TS.remove f.args r.ts in
        let rels =
          if TS.is_empty ts then M.remove f.rid t.rels
          else
            M.add f.rid
              { ts; n = r.n - 1; s1 = r.s1 - f.h1; s2 = r.s2 - f.h2; idx = None }
              t.rels
        in
        { rels; f1 = t.f1 - f.h1; f2 = t.f2 - f.h2 }

let of_list fs = List.fold_left (fun t f -> add f t) empty fs
let of_facts fs = Fact.Set.fold add fs empty
let singleton f = add f empty

(* iteration in relation-name order (as before interning), so [facts] and
   [pp] stay deterministic and independent of intern order *)
let sorted_rels t =
  M.bindings t.rels
  |> List.map (fun (rid, r) -> (Symtab.name rid, rid, r))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let fold g t acc =
  List.fold_left
    (fun acc (_, rid, r) ->
      TS.fold (fun args acc -> g (Fact.of_interned rid args) acc) r.ts acc)
    acc (sorted_rels t)

let iter g t = fold (fun f () -> g f) t ()
let facts t = List.rev (fold (fun f acc -> f :: acc) t [])
let fact_set t = fold Fact.Set.add t Fact.Set.empty

let mem (f : Fact.t) t =
  match M.find_opt f.rid t.rels with
  | None -> false
  | Some r -> TS.mem f.args r.ts

let size t = M.fold (fun _ r n -> n + r.n) t.rels 0
let is_empty t = M.is_empty t.rels

(* Incremental union: when one side subsumes the other, its whole [rel]
   record — index cache and fingerprint sums included — is shared.
   Otherwise the result reuses the larger operand's record extended with
   the smaller side's novel tuples: the cached index grows by
   [Index.extend] and the fingerprint sums by the novel tuples' hashes,
   so the fixpoint's big accumulator keeps warm buckets and an
   up-to-date fingerprint instead of rebuilding either per round. *)
let union a b =
  wrap
    (M.union
       (fun rid x y ->
         if x.n >= y.n && TS.subset y.ts x.ts then Some x
         else if y.n >= x.n && TS.subset x.ts y.ts then Some y
         else
           let big, small = if x.n >= y.n then (x, y) else (y, x) in
           let novel = TS.elements (TS.diff small.ts big.ts) in
           let s1, s2 =
             List.fold_left
               (fun (s1, s2) tup ->
                 let h1, h2 = Fact.tuple_hash rid tup in
                 (s1 + h1, s2 + h2))
               (big.s1, big.s2) novel
           in
           let r =
             {
               ts = TS.union big.ts small.ts;
               n = big.n + List.length novel;
               s1;
               s2;
               idx = None;
             }
           in
           (match big.idx with
           | Some idx -> r.idx <- Some (Index.extend idx novel)
           | None -> ());
           Some r)
       a.rels b.rels)

let diff a b =
  wrap
    (M.merge
       (fun rid x y ->
         match (x, y) with
         | None, _ -> None
         | Some x, None -> Some x
         | Some x, Some y ->
             let d = TS.diff x.ts y.ts in
             if TS.is_empty d then None
             else if TS.cardinal d = x.n then Some x
             else Some (mk rid d))
       a.rels b.rels)

let inter a b =
  wrap
    (M.merge
       (fun rid x y ->
         match (x, y) with
         | Some x, Some y ->
             let i = TS.inter x.ts y.ts in
             if TS.is_empty i then None else Some (mk rid i)
         | _ -> None)
       a.rels b.rels)

let subset a b =
  M.for_all
    (fun rid r ->
      match M.find_opt rid b.rels with
      | None -> false
      | Some r' -> TS.subset r.ts r'.ts)
    a.rels

let compare a b =
  if a == b then 0
  else M.compare (fun a b -> TS.compare a.ts b.ts) a.rels b.rels

(* fingerprints are a sound fast negative: unequal pairs ⇒ unequal
   instances (equal instances always carry equal sums) *)
let equal a b = a.f1 = b.f1 && a.f2 = b.f2 && compare a b = 0

let fingerprint t = (t.f1, t.f2)
let fingerprint_hex t = Fp.hex t.f1 t.f2

(* the no-empty-relation invariant makes a defensive filter unnecessary *)
let relations t =
  M.fold (fun rid _ acc -> Symtab.name rid :: acc) t.rels []
  |> List.sort String.compare

let find_rel t rel =
  match Symtab.find_opt rel with
  | None -> None
  | Some rid -> M.find_opt rid t.rels

let tuples t rel =
  match find_rel t rel with None -> [] | Some r -> TS.elements r.ts

let cardinal_id t rid =
  match M.find_opt rid t.rels with None -> 0 | Some r -> r.n

let cardinal t rel =
  match find_rel t rel with None -> 0 | Some r -> r.n

let index_id t rid =
  match M.find_opt rid t.rels with None -> None | Some r -> Some (index_of r)

let index t rel =
  match find_rel t rel with None -> None | Some r -> Some (index_of r)

(* Pick the most selective bound position via the index, scan only its
   bucket, and filter the remaining bound positions. *)
let tuples_with_rel r cs =
  match cs with
  | [] -> TS.elements r.ts
  | [ (p, c) ] -> Index.lookup (index_of r) p c
  | _ ->
      let idx = index_of r in
      let (bp, bc), _ =
        List.fold_left
          (fun ((_, bn) as best) (p, c) ->
            let n = Index.count idx p c in
            if n < bn then ((p, c), n) else best)
          (List.hd cs, max_int)
          cs
      in
      let rest =
        List.filter (fun (p, c) -> p <> bp || not (Const.equal c bc)) cs
      in
      let ok tup =
        List.for_all
          (fun (p, c) -> p < Array.length tup && Const.equal tup.(p) c)
          rest
      in
      List.filter ok (Index.lookup idx bp bc)

let tuples_with t rel cs =
  match find_rel t rel with None -> [] | Some r -> tuples_with_rel r cs

let tuples_with_id t rid cs =
  match M.find_opt rid t.rels with None -> [] | Some r -> tuples_with_rel r cs

let estimate_with_rel r cs =
  let idx = index_of r in
  List.fold_left
    (fun acc (p, c) -> min acc (Index.count idx p c))
    (Index.size idx) cs

let estimate_with t rel cs =
  match find_rel t rel with None -> 0 | Some r -> estimate_with_rel r cs

let estimate_with_id t rid cs =
  match M.find_opt rid t.rels with None -> 0 | Some r -> estimate_with_rel r cs

let adom t =
  M.fold
    (fun _ r s ->
      TS.fold
        (fun tup s -> Array.fold_left (fun s c -> Const.Set.add c s) s tup)
        r.ts s)
    t.rels Const.Set.empty

let map h t = fold (fun f acc -> add (Fact.map h f) acc) t empty

let restrict p t = wrap (M.filter (fun rid _ -> p (Symtab.name rid)) t.rels)
let restrict_schema s t = restrict (Schema.mem s) t

let filter p t = fold (fun f acc -> if p f then add f acc else acc) t empty

let schema t =
  M.fold
    (fun rid r s ->
      match TS.choose_opt r.ts with
      | None -> s
      | Some tup -> Schema.add (Symtab.name rid) (Array.length tup) s)
    t.rels Schema.empty

let rename_apart t =
  let tbl = Hashtbl.create 16 in
  let rename c =
    match Hashtbl.find_opt tbl c with
    | Some c' -> c'
    | None ->
        let c' = Const.fresh () in
        Hashtbl.add tbl c c';
        c'
  in
  map rename t

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:semi Fact.pp) (facts t)
