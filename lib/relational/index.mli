(** Secondary hash indexes over one relation's tuples.

    An index maps [(position, constant)] to the tuples holding that constant
    at that position, with O(1) bucket counts so join planners can pick the
    most selective bound position before materializing anything.  Indexes
    are derived data: they are built once from an immutable tuple list and
    cached by {!Instance} alongside the tuple set they describe. *)

type t

val build : Const.t array list -> t
(** Build position indexes for the given tuples.  Positions up to the
    maximum arity present are indexed; tuples shorter than a position are
    simply absent from that position's table. *)

val extend : t -> Const.t array list -> t
(** [extend idx tups] is a fresh index over the old tuples plus [tups].
    [tups] must be disjoint from the indexed tuples (counts would be wrong
    otherwise).  Bucket tuple lists are shared with [idx], so the cost is
    O(distinct keys of [idx]) + O(|tups| · arity) — cheaper than a rebuild
    when [tups] is a small delta — and [idx] itself is left untouched. *)

val size : t -> int
(** Number of tuples indexed. *)

val all : t -> Const.t array list
(** The indexed tuples, as given to {!build}. *)

val count : t -> int -> Const.t -> int
(** [count idx p c] is the number of tuples holding [c] at position [p],
    in O(1). *)

val lookup : t -> int -> Const.t -> Const.t array list
(** [lookup idx p c] is the tuples holding [c] at position [p]. *)
