(** Fingerprint arithmetic: 63-bit mixing for structural hashes.

    Fingerprints are pairs of independently seeded 63-bit streams
    (~126 bits total), built either by folding {!step} over a sequence
    (position-sensitive) or by summing per-element hashes (native-int
    addition wraps, giving an order-independent set fingerprint that
    supports O(1) incremental add and remove). *)

val mix : int -> int
(** Avalanche finalizer: every input bit affects every output bit. *)

val step : int -> int -> int
(** [step acc x] folds [x] into the running hash [acc], position-sensitively. *)

val seed1 : int
val seed2 : int
(** Seeds for the two streams of a fingerprint pair. *)

val string_hash : string -> int
(** Full-string hash suitable as a [step] operand. *)

val hex : int -> int -> string
(** 32-hex-digit rendering of a fingerprint pair. *)
