(* Structural fingerprints: 63-bit avalanche mixing and order-independent
   126-bit accumulators.

   [mix] is a splitmix64-style finalizer truncated to OCaml's native int
   (the multipliers are the usual constants with the top bit dropped so
   the literals fit); overflow wraps, which is exactly what we want.  A
   fingerprint is a pair of independent streams: sequences fold with
   [step] (position-sensitive), sets sum the per-element pairs
   (order-independent, so incremental add/remove is +/-). *)

let mix z =
  let z = (z lxor (z lsr 30)) * 0x1BF58476D1CE4E5B in
  let z = (z lxor (z lsr 27)) * 0x14B82F63B169FD9 in
  z lxor (z lsr 31)

(* distinct odd seeds for the two streams *)
let seed1 = 0x1E3779B97F4A7C15
let seed2 = 0x2545F4914F6CDD1D

let step acc x = mix ((acc * 0x100000001B3) lxor x)

let string_hash s = Hashtbl.hash s
(* [Hashtbl.hash] reads whole short strings (its limit is far above any
   relation or variable name); fed through [step] it contributes a full
   63-bit word. *)

let hex h1 h2 = Printf.sprintf "%016x%016x" (h1 land max_int) (h2 land max_int)
