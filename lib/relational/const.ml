(* Domain elements, interned to ints.

   A constant is a tagged symbol id: named constants are even
   ([Symtab] id shifted left), fresh nulls are odd (counter shifted left,
   low bit set).  Comparison, equality and hashing are therefore pure
   integer arithmetic — no string is ever touched on the hot paths of
   joins, homomorphism search, or set union.  The order is intern order
   for named constants (deterministic per process for a fixed input
   sequence), not lexicographic. *)

type t = int

let compare : t -> t -> int = Int.compare
let equal : t -> t -> bool = Int.equal
let hash (c : t) = Fp.mix c
let hash2 (c : t) = Fp.mix (c lxor Fp.seed2)

let named s = Symtab.intern s lsl 1

(* fresh-null generation must be race-free: decision procedures running on
   the Dl_parallel domain pool (chase steps, rename_apart) may allocate
   nulls concurrently *)
let counter = Atomic.make 0

let fresh () =
  let i = 1 + Atomic.fetch_and_add counter 1 in
  (i lsl 1) lor 1

let fresh_reset () = Atomic.set counter 0

let is_fresh c = c land 1 = 1

let name c = if is_fresh c then None else Some (Symtab.name (c asr 1))

let to_string c =
  if is_fresh c then "_" ^ string_of_int (c asr 1) else Symtab.name (c asr 1)

let pp ppf c = Fmt.string ppf (to_string c)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
