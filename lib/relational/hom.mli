(** Homomorphisms between instances.

    A homomorphism from [I] to [I'] is a map [h] on [adom I] such that
    [R(c1..cn) ∈ I] implies [R(h c1..h cn) ∈ I'].  Search is by
    backtracking over the facts of the source, dynamically ordered
    most-constrained-first: at every node the remaining fact with the
    fewest index candidates in the target is matched next. *)

type map = Const.t Const.Map.t

val is_hom : map -> Instance.t -> Instance.t -> bool
(** [is_hom h src dst] checks that [h] is total on [adom src] and maps every
    fact of [src] into [dst]. *)

val find : ?init:map -> Instance.t -> Instance.t -> map option
(** [find ?init src dst] searches for a homomorphism extending [init]
    (default empty).  Elements bound by [init] are kept fixed. *)

val exists : ?init:map -> Instance.t -> Instance.t -> bool

val count : ?init:map -> ?limit:int -> Instance.t -> Instance.t -> int
(** Number of distinct homomorphisms, stopping at [limit] (default 1000). *)

val all : ?init:map -> ?limit:int -> Instance.t -> Instance.t -> map list
(** All homomorphisms extending [init], up to [limit] (default 1000). *)

val endo_core : Instance.t -> Instance.t
(** The core of an instance: a minimal retract.  Computed by greedily
    looking for proper retractions; exponential in the worst case, meant
    for small instances (CQ minimization). *)

val compose : map -> map -> map
(** [compose g h] is the map [x ↦ g(h(x))] (domain of [h]). *)

val pp_map : map Fmt.t
